//! Quickstart: build a FlexSFP running the NAT from the paper's §5.1
//! case study, push traffic through it, and talk to its control plane.
//!
//! Run with: `cargo run --example quickstart`

use flexsfp::apps::StaticNat;
use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::host::ManagementClient;
use flexsfp::ppe::Direction;
use flexsfp::wire::builder::PacketBuilder;
use flexsfp::wire::ipv4::{fmt_addr, parse_addr, Ipv4Packet};
use flexsfp::wire::MacAddr;
use flexsfp_core::auth::AuthKey;

fn main() {
    // 1. An application: static 1:1 source NAT with the prototype's
    //    32 768-flow table.
    let mut nat = StaticNat::new();
    let private = parse_addr("192.168.1.10").unwrap();
    let public = parse_addr("100.64.0.10").unwrap();
    nat.add_mapping(private, public).unwrap();

    // 2. The module: One-Way-Filter shell, 64-bit datapath at
    //    156.25 MHz — exactly the paper's prototype configuration.
    let mut module = FlexSfp::new(ModuleConfig::default(), Box::new(nat));
    println!("module: {:?}", module);
    let fit = module.fit_report();
    let (lut, ff, usram, lsram) = fit.utilization_pct();
    println!(
        "design fits the MPF200T: {} (4LUT {lut}%, FF {ff}%, uSRAM {usram}%, LSRAM {lsram}%)",
        fit.fits()
    );

    // 3. Offer three frames: two from the mapped host, one from an
    //    unmapped neighbour.
    let frame = |src: &str| {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([0x02, 0, 0, 0, 0, 1]),
            MacAddr([0x02, 0, 0, 0, 0, 2]),
            parse_addr(src).unwrap(),
            parse_addr("8.8.8.8").unwrap(),
            5000,
            53,
            b"query",
        )
    };
    let report = module.run(vec![
        SimPacket {
            arrival_ns: 0,
            direction: Direction::EdgeToOptical,
            frame: frame("192.168.1.10"),
        },
        SimPacket {
            arrival_ns: 1_000,
            direction: Direction::EdgeToOptical,
            frame: frame("192.168.1.10"),
        },
        SimPacket {
            arrival_ns: 2_000,
            direction: Direction::EdgeToOptical,
            frame: frame("192.168.1.99"),
        },
    ]);

    println!(
        "\nforwarded {} frames (mean transit {:.0} ns):",
        report.forwarded.1,
        report.latency.mean_ns()
    );
    for out in &report.outputs {
        let ip = Ipv4Packet::new_checked(&out.frame[14..]).unwrap();
        println!(
            "  t={:>5} ns  src {} -> dst {}  (checksum ok: {})",
            out.departure_ns,
            fmt_addr(ip.src()),
            fmt_addr(ip.dst()),
            ip.verify_checksum()
        );
    }

    // 4. The embedded control plane: read counters and diagnostics over
    //    the out-of-band management port.
    let client = ManagementClient::new(AuthKey::DEFAULT);
    let info = client.info(&mut module).unwrap();
    println!(
        "\ncontrol plane: app '{}' v{} on {}",
        info.app, info.app_version, info.module_id
    );
    let (translated, bytes) = client.read_counter(&mut module, 0).unwrap();
    let (missed, _) = client.read_counter(&mut module, 1).unwrap();
    println!("NAT counters: {translated} translated ({bytes} B), {missed} passed untranslated");
    let dom = client.read_dom(&mut module).unwrap();
    println!(
        "DOM: {:.1} degC, tx {:.1} dBm / rx {:.1} dBm @ {:.1} mA bias",
        dom.temp_c, dom.tx_power_dbm, dom.rx_power_dbm, dom.bias_ma
    );

    // 5. Module power at the line-rate stress point — the paper's
    //    ~1.5 W "cheap path" headline.
    let p = module.power(1.0, 1.0);
    println!(
        "power under stress: {:.2} W (optics {:.2} + static {:.2} + serdes {:.2} + fabric {:.2})",
        p.total_w(),
        p.optics_w,
        p.fpga_static_w,
        p.serdes_w,
        p.fabric_dynamic_w
    );

    assert_eq!(report.forwarded.1, 3);
    assert_eq!(translated, 2);
    assert_eq!(missed, 1);
    println!("\nquickstart OK");
}
