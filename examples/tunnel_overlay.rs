//! An in-cable GRE overlay: two FlexSFPs at either end of a fiber span
//! build a tunnel that neither host ever sees (§3, Packet
//! Transformation and Forwarding).
//!
//! Host A ── [FlexSFP A: GRE encap] ══ fiber ══ [FlexSFP B: GRE decap] ── Host B
//!
//! Run with: `cargo run --example tunnel_overlay`

use flexsfp::apps::tunnel::TunnelKind;
use flexsfp::apps::TunnelGateway;
use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::host::FiberLink;
use flexsfp::ppe::Direction;
use flexsfp::wire::builder::PacketBuilder;
use flexsfp::wire::ipv4::{fmt_addr, parse_addr, Ipv4Packet};
use flexsfp::wire::{IpProtocol, MacAddr};

fn main() {
    let underlay_a = parse_addr("10.200.0.1").unwrap();
    let underlay_b = parse_addr("10.200.0.2").unwrap();
    let gre_key = 0xbeef;

    // Module A encapsulates host traffic toward the fiber; module B
    // decapsulates traffic arriving from the fiber.
    let mut module_a = FlexSfp::new(
        ModuleConfig {
            id: "OVERLAY-A".into(),
            ..ModuleConfig::default()
        },
        Box::new(TunnelGateway::new(
            TunnelKind::Gre { key: gre_key },
            underlay_a,
            underlay_b,
        )),
    );
    let mut module_b = FlexSfp::new(
        ModuleConfig {
            id: "OVERLAY-B".into(),
            shell: flexsfp::core::ShellKind::OneWayFilter {
                ppe_direction: Direction::OpticalToEdge,
            },
            ..ModuleConfig::default()
        },
        Box::new(TunnelGateway::new(
            TunnelKind::Gre { key: gre_key },
            underlay_b,
            underlay_a,
        )),
    );

    // Host A sends ordinary IP packets; it knows nothing of the tunnel.
    let host_frames: Vec<Vec<u8>> = (0..5)
        .map(|i| {
            PacketBuilder::eth_ipv4_udp(
                MacAddr([0x02, 0, 0, 0, 0, 0xb]),
                MacAddr([0x02, 0, 0, 0, 0, 0xa]),
                parse_addr("192.168.7.10").unwrap(),
                parse_addr("192.168.9.20").unwrap(),
                6000 + i,
                7000,
                format!("payload-{i}").as_bytes(),
            )
        })
        .collect();

    let report_a = module_a.run(
        host_frames
            .iter()
            .enumerate()
            .map(|(i, f)| SimPacket {
                arrival_ns: i as u64 * 10_000,
                direction: Direction::EdgeToOptical,
                frame: f.clone(),
            })
            .collect(),
    );
    println!("module A encapsulated {} frames", report_a.forwarded.1);

    // On the fiber the packets are GRE: show one outer header.
    let on_wire = &report_a.outputs[0].frame;
    let outer = Ipv4Packet::new_checked(&on_wire[14..]).unwrap();
    println!(
        "on the fiber: {} -> {} proto {:?} ({} B outer frame)",
        fmt_addr(outer.src()),
        fmt_addr(outer.dst()),
        outer.protocol(),
        on_wire.len()
    );
    assert_eq!(outer.protocol(), IpProtocol::Gre);
    assert_eq!(outer.src(), underlay_a);
    assert_eq!(outer.dst(), underlay_b);

    // 2 km of fiber to the far module.
    let link = FiberLink::new(2_000.0);
    println!(
        "fiber: {} m, {:.1} ns propagation, {:.2} dB loss",
        link.length_m,
        link.delay_ns(),
        link.loss_db
    );
    let report_b = module_b.run(link.carry(&report_a.outputs));
    println!(
        "module B decapsulated {} frames toward host B",
        report_b.forwarded.0
    );

    // Host B receives exactly what host A sent.
    assert_eq!(report_b.forwarded.0, 5);
    for (sent, recv) in host_frames.iter().zip(&report_b.outputs) {
        assert_eq!(&recv.frame, sent, "overlay must be transparent");
    }
    let inner = Ipv4Packet::new_checked(&report_b.outputs[0].frame[14..]).unwrap();
    println!(
        "host B sees: {} -> {} (tunnel invisible, checksums ok: {})",
        fmt_addr(inner.src()),
        fmt_addr(inner.dst()),
        inner.verify_checksum()
    );

    // End-to-end latency including the fiber.
    let total_latency = report_b.outputs[0].departure_ns as f64
        - report_a.outputs[0].departure_ns as f64
        + report_a.outputs[0].latency_ns;
    println!("end-to-end added latency (encap + fiber + decap): {total_latency:.0} ns");

    println!("\ntunnel overlay example OK");
}
