//! The §4.2 developer workflow, end to end: write a packet function in
//! the XDP-like codelet ISA, verify it, "synthesize" it through the HLS
//! model (resources + achievable clock), check it fits the MPF200T next
//! to the interfaces and control plane, and run it in a module.
//!
//! The codelet: a small-flow DDoS guard. UDP packets shorter than
//! 100 bytes from sources not in an allowlist are dropped once the
//! source has sent more than 50 such packets (state in a hash table).
//!
//! Run with: `cargo run --example custom_codelet`

use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::fabric::resources::table1;
use flexsfp::fabric::{ClockDomain, Device};
use flexsfp::ppe::codelet::{AluOp, Cmp, Codelet, Field, Insn, Operand, VerdictCode};
use flexsfp::ppe::hls;
use flexsfp::ppe::tables::HashTable;
use flexsfp::ppe::Direction;
use flexsfp::wire::builder::PacketBuilder;
use flexsfp::wire::MacAddr;

fn main() {
    // --- 1. The packet function, as a verified codelet ------------------
    // r2 = proto; r3 = pkt_len; r4 = src_ip
    // if proto != UDP        -> forward
    // if len >= 100          -> forward
    // r0,r1 = lookup(counts, src)      (miss -> r0 = 0)
    // r5 = r0 + 1; update(counts, src, r5)
    // if r5 > 50             -> drop
    // forward
    let program = vec![
        Insn::LdField(2, Field::Proto),
        Insn::JmpIf(Cmp::Ne, 2, Operand::Imm(17), 9), // -> Count+Forward
        Insn::LdField(3, Field::PktLen),
        Insn::JmpIf(Cmp::Gt, 3, Operand::Imm(99), 7), // -> Count+Forward
        Insn::LdField(4, Field::SrcIp),
        Insn::Lookup(0, 4),
        Insn::Alu(AluOp::Add, 0, Operand::Imm(1)),
        Insn::Update(0, 4, 0),
        Insn::JmpIf(Cmp::Gt, 0, Operand::Imm(50), 3), // -> Drop
        Insn::Count(0),
        Insn::Return(VerdictCode::Forward),
        Insn::Count(1),
        Insn::Return(VerdictCode::Drop),
    ];

    let counts: HashTable<u64, u64> = HashTable::with_capacity(8_192);
    let codelet = Codelet::new("small-flow-guard", program, vec![counts])
        .expect("the verifier accepts this program");
    println!(
        "codelet 'small-flow-guard': {} instructions, verified (loop-free, bounded)",
        codelet.program().len()
    );

    // --- 2. "HLS synthesis": resources + timing -------------------------
    let report = hls::synthesize_codelet(&codelet);
    println!(
        "synthesis: {} LUT4, {} FF, {} uSRAM, {} LSRAM; fmax {:.0} MHz, latency {} cycles",
        report.manifest.lut4,
        report.manifest.ff,
        report.manifest.usram,
        report.manifest.lsram,
        report.fmax_hz as f64 / 1e6,
        report.latency_cycles
    );
    assert!(
        report.meets_timing(ClockDomain::XGMII_10G.hz()),
        "must close at the 156.25 MHz prototype clock"
    );

    // --- 3. Fit check next to the fixed components ----------------------
    let whole_design = report.manifest + table1::MI_V + table1::ELECTRICAL_IF + table1::OPTICAL_IF;
    let fit = Device::mpf200t().fit(whole_design);
    let (lut, ff, us, ls) = fit.utilization_pct();
    println!(
        "fit on MPF200T with interfaces + Mi-V: {} (4LUT {lut}%, FF {ff}%, uSRAM {us}%, LSRAM {ls}%)",
        fit.fits()
    );
    assert!(fit.fits());

    // --- 4. Run it in a module ------------------------------------------
    let mut module = FlexSfp::new(ModuleConfig::default(), Box::new(codelet));
    let attacker = 0x0bad_0001u32;
    let legit = 0xc0a8_0001u32;
    let mut packets = Vec::new();
    for i in 0..120u64 {
        // The attacker sprays tiny UDP packets...
        packets.push(SimPacket {
            arrival_ns: i * 1_000,
            direction: Direction::EdgeToOptical,
            frame: PacketBuilder::eth_ipv4_udp(
                MacAddr([2; 6]),
                MacAddr([4; 6]),
                attacker,
                0x08080808,
                7000,
                53,
                b"tiny",
            ),
        });
        // ...while a legitimate host sends full-size packets.
        packets.push(SimPacket {
            arrival_ns: i * 1_000 + 500,
            direction: Direction::EdgeToOptical,
            frame: PacketBuilder::eth_ipv4_udp(
                MacAddr([2; 6]),
                MacAddr([4; 6]),
                legit,
                0x08080808,
                7001,
                443,
                &[0u8; 400],
            ),
        });
    }
    let report = module.run(packets);
    println!(
        "\ntraffic: {} offered, {} forwarded, {} dropped by the guard",
        report.offered, report.forwarded.1, report.drops.app
    );
    // The first 50 tiny packets pass (learning), the remaining 70 drop;
    // all 120 legitimate packets pass.
    assert_eq!(report.drops.app, 70);
    assert_eq!(report.forwarded.1, 120 + 50);

    println!("\ncustom codelet example OK — write, verify, synthesize, deploy");
}
