//! Fleet metrics pipeline end-to-end: modules trace events and bucket
//! latencies in-module, the host scrapes telemetry snapshots over the
//! authenticated management channel, and the collector renders the
//! whole fleet as Prometheus text exposition and JSON.
//!
//! Run with: `cargo run --example fleet_metrics`

use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::host::{FleetCollector, FleetManager};
use flexsfp::ppe::Direction;
use flexsfp::traffic::{SizeModel, TraceBuilder};
use flexsfp_core::auth::AuthKey;

fn main() {
    // A rack's worth of modules on the default fleet key.
    let modules: Vec<FlexSfp> = (0..4)
        .map(|i| {
            let cfg = ModuleConfig {
                id: format!("RACK7-{i:02}"),
                ..ModuleConfig::default()
            };
            FlexSfp::new(cfg, Box::new(flexsfp::ppe::engine::PassThrough))
        })
        .collect();
    let fleet = FleetManager::new(modules, AuthKey::DEFAULT);

    // Unequal load per module, so the per-module distributions differ.
    for i in 0..fleet.len() {
        let trace = TraceBuilder::new(3_000 + i as u64)
            .flows(16)
            .sizes(SizeModel::Imix)
            .arrivals(flexsfp::traffic::gen::ArrivalModel::Poisson {
                utilization: 0.1 + 0.2 * i as f64,
            })
            .build(2_000 * (i + 1));
        fleet.with_module(i, |m| {
            let packets: Vec<SimPacket> = trace
                .iter()
                .map(|p| SimPacket {
                    arrival_ns: p.arrival_ns,
                    direction: Direction::EdgeToOptical,
                    frame: p.frame.clone(),
                })
                .collect();
            m.run(packets);
        });
    }
    // Age one laser so the health gauges have something to say.
    fleet.with_module(2, |m| {
        m.set_laser_ttf_hours(60_000.0);
        m.age_laser(57_500.0);
    });

    // Scrape: one authenticated snapshot per module, drained event
    // rings included, ingested into the collector. A module that failed
    // to answer would count as a scrape failure instead of aborting the
    // sweep.
    let mut collector = FleetCollector::new();
    let scraped = collector.ingest_sweep(fleet.telemetry_snapshots());
    assert_eq!(scraped, fleet.len());
    collector.set_transport_stats(fleet.client().transport_stats());

    println!("=== Prometheus text exposition ===");
    let text = collector.render_prometheus();
    print!("{text}");

    println!("\n=== JSON export (truncated) ===");
    let json = collector.to_json();
    for line in json.lines().take(30) {
        println!("{line}");
    }
    println!("... ({} bytes total)", json.len());

    // The demo's own sanity checks.
    assert_eq!(collector.len(), 4);
    assert!(
        text.contains("flexsfp_frames_total{module=\"RACK7-00\",port=\"edge\",direction=\"rx\"}")
    );
    assert!(
        text.contains("flexsfp_bytes_total{module=\"RACK7-03\",port=\"optical\",direction=\"tx\"}")
    );
    assert!(text.contains("flexsfp_latency_ns{module=\"RACK7-01\",quantile=\"0.99\"}"));
    assert!(text.contains("flexsfp_fleet_latency_ns{quantile=\"0.99\"}"));
    assert!(text.contains("flexsfp_laser_healthy{module=\"RACK7-00\"} 1"));
    let fleet_hist = collector.fleet_latency();
    println!(
        "\nfleet latency: {} samples, p50 {} ns, p99 {} ns, max {} ns",
        fleet_hist.count(),
        fleet_hist.p50(),
        fleet_hist.p99(),
        fleet_hist.max()
    );
    assert!(fleet_hist.count() > 0 && fleet_hist.p99() >= fleet_hist.p50());
    println!("fleet metrics example OK");
}
