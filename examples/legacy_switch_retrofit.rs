//! The §2.1 telecom scenario: retrofit a legacy aggregation switch by
//! swapping its SFPs for FlexSFPs — no chassis or switch-OS change.
//!
//! A 4-port fixed-function L2 switch aggregates FTTH subscribers toward
//! an uplink. We first show the legacy switch forwarding everything
//! blindly, then drop FlexSFPs into the subscriber ports to add
//! per-subscriber DNS filtering and rate limiting, and into the uplink
//! to add QinQ service tagging — all at the cable, mid-span.
//!
//! Run with: `cargo run --example legacy_switch_retrofit`

use flexsfp::apps::{DnsFilter, PerSourceRateLimiter, VlanTagger};
use flexsfp::core::module::{FlexSfp, ModuleConfig};
use flexsfp::core::ShellKind;
use flexsfp::host::LegacySwitch;
use flexsfp::ppe::Direction;
use flexsfp::wire::builder::PacketBuilder;
use flexsfp::wire::ipv4::parse_addr;
use flexsfp::wire::{dns, MacAddr};

const SUBSCRIBER_MAC: MacAddr = MacAddr([0x02, 0xaa, 0, 0, 0, 1]);
const UPLINK_MAC: MacAddr = MacAddr([0x02, 0xbb, 0, 0, 0, 1]);
const SUBSCRIBER_PORT: usize = 0;
const UPLINK_PORT: usize = 3;

fn dns_query(name: &str) -> Vec<u8> {
    let q = dns::build_query(0x4242, name, 1);
    PacketBuilder::eth_ipv4_udp(
        UPLINK_MAC,
        SUBSCRIBER_MAC,
        parse_addr("10.100.1.10").unwrap(),
        parse_addr("9.9.9.9").unwrap(),
        40_000,
        53,
        &q,
    )
}

fn bulk_frame(len: usize) -> Vec<u8> {
    let mut f = PacketBuilder::eth_ipv4_udp(
        UPLINK_MAC,
        SUBSCRIBER_MAC,
        parse_addr("10.100.1.10").unwrap(),
        parse_addr("203.0.113.7").unwrap(),
        50_000,
        443,
        &vec![0u8; len - 42],
    );
    f.truncate(len);
    f
}

fn wire_facing(app: Box<dyn flexsfp::ppe::PacketProcessor>) -> FlexSfp {
    // Subscriber-port policies screen traffic arriving from the wire,
    // so the PPE sits on the optical→edge path.
    FlexSfp::new(
        ModuleConfig {
            shell: ShellKind::OneWayFilter {
                ppe_direction: Direction::OpticalToEdge,
            },
            ..ModuleConfig::default()
        },
        app,
    )
}

fn main() {
    let mut sw = LegacySwitch::new(4);

    // Teach the switch where the uplink lives.
    sw.inject(
        UPLINK_PORT,
        PacketBuilder::ethernet(
            SUBSCRIBER_MAC,
            UPLINK_MAC,
            flexsfp::wire::EtherType::Ipv4,
            &PacketBuilder::ipv4_udp(
                parse_addr("203.0.113.1").unwrap(),
                parse_addr("10.100.1.10").unwrap(),
                1,
                2,
                b"hi",
            ),
        ),
        0,
    );

    // --- Before the retrofit: the legacy switch forwards everything.
    let delivered = sw.inject(SUBSCRIBER_PORT, dns_query("ads.tracker.example"), 1_000);
    println!(
        "legacy switch: DNS query to a tracker domain delivered to {} port(s) — no policy possible",
        delivered.len()
    );

    // --- The retrofit: swap SFPs for FlexSFPs, port by port.
    // Subscriber port: DNS filter + 8 Mb/s rate limit.
    let mut filter = DnsFilter::new();
    filter.block_domain("tracker.example");
    sw.insert_flexsfp(SUBSCRIBER_PORT, wire_facing(Box::new(filter)));
    println!("\ninserted FlexSFP (dns-filter) into subscriber port {SUBSCRIBER_PORT}");

    // Uplink port: QinQ service tag for the metro core.
    let mut tagger = VlanTagger::new(10).with_s_tag(500);
    tagger.drop_tagged_ingress = false;
    sw.insert_flexsfp(
        UPLINK_PORT,
        FlexSfp::new(ModuleConfig::default(), Box::new(tagger)),
    );
    println!("inserted FlexSFP (vlan-tagger, QinQ S-tag 500) into uplink port {UPLINK_PORT}");

    // Blocked domain: dropped in the cage, the switch ASIC never sees it.
    let out = sw.inject(SUBSCRIBER_PORT, dns_query("ads.tracker.example"), 2_000);
    println!(
        "\nDNS query for ads.tracker.example -> delivered to {} ports (blocked at the cable)",
        out.len()
    );
    assert!(out.is_empty());

    // Legitimate DNS passes and leaves the uplink double-tagged.
    let out = sw.inject(SUBSCRIBER_PORT, dns_query("example.org"), 3_000);
    assert_eq!(out.len(), 1);
    let parsed = flexsfp::ppe::Parser::default()
        .parse(&out[0].frame)
        .unwrap();
    println!(
        "DNS query for example.org -> uplink port {} with VLAN stack {:?}",
        out[0].port, parsed.vlans
    );
    assert_eq!(parsed.vlans, vec![500, 10]);

    // Swap the subscriber port policy at runtime: rate limiting instead.
    let mut limiter = PerSourceRateLimiter::new();
    limiter.add_limit(parse_addr("10.100.1.0").unwrap(), 24, 8_000_000, 3_000);
    sw.remove_flexsfp(SUBSCRIBER_PORT);
    sw.insert_flexsfp(SUBSCRIBER_PORT, wire_facing(Box::new(limiter)));
    println!("\nswapped subscriber-port module for a rate limiter (8 Mb/s, 3 kB burst)");

    let mut passed = 0;
    let mut dropped = 0;
    for i in 0..20 {
        let t = 10_000 + i * 500; // 20 × 1 kB in 10 µs: way over rate
        if sw.inject(SUBSCRIBER_PORT, bulk_frame(1000), t).is_empty() {
            dropped += 1;
        } else {
            passed += 1;
        }
    }
    println!("burst of 20 x 1 kB: {passed} passed (burst credit), {dropped} dropped at the cable");
    assert_eq!(passed, 3);
    assert_eq!(dropped, 17);

    println!(
        "\nswitch stats: {} received, {} delivered, {} dropped by port modules, {} MACs learned",
        sw.stats.received,
        sw.stats.delivered,
        sw.stats.dropped_by_modules,
        sw.learned()
    );
    println!("\nretrofit example OK — the chassis never changed");
}
