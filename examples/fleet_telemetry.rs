//! Fleet operations: telemetry collection, OTA rollout and laser-fault
//! diagnosis across a pool of FlexSFPs (§3 monitoring, §4.1 fleet
//! orchestration, §5.3 failure recovery).
//!
//! Run with: `cargo run --example fleet_telemetry`

use flexsfp::apps::factory::app_factory;
use flexsfp::apps::TelemetryProbe;
use flexsfp::core::bitstream::Bitstream;
use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::fabric::resources::ResourceManifest;
use flexsfp::host::FleetManager;
use flexsfp::ppe::Direction;
use flexsfp::traffic::{SizeModel, TraceBuilder};
use flexsfp_core::auth::AuthKey;
use flexsfp_core::failure::FaultDiagnosis;

fn main() {
    // A pool of eight modules running telemetry probes, as a metro
    // operator would deploy across an aggregation ring.
    let modules: Vec<FlexSfp> = (0..8)
        .map(|i| {
            let cfg = ModuleConfig {
                id: format!("RING-A-{i:02}"),
                ..ModuleConfig::default()
            };
            let mut m = FlexSfp::new(cfg, Box::new(TelemetryProbe::new(8_192, 100_000, 50_000)));
            m.set_factory(app_factory());
            m
        })
        .collect();
    let fleet = FleetManager::new(modules, AuthKey::DEFAULT);
    println!("managing a fleet of {} FlexSFPs", fleet.len());

    // Drive traffic through module 3, including a microburst that SNMP
    // polling could never catch.
    let trace = TraceBuilder::new(2026)
        .flows(32)
        .sizes(SizeModel::Imix)
        .arrivals(flexsfp::traffic::gen::ArrivalModel::Poisson { utilization: 0.3 })
        .microburst(500_000, 80)
        .build(5_000);
    fleet.with_module(3, |m| {
        let packets: Vec<SimPacket> = trace
            .iter()
            .map(|p| SimPacket {
                arrival_ns: p.arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: p.frame.clone(),
            })
            .collect();
        let report = m.run(packets);
        println!(
            "module RING-A-03 forwarded {} frames, mean latency {:.0} ns",
            report.forwarded.1,
            report.latency.mean_ns()
        );
    });

    // Read the telemetry summary through the control plane.
    fleet.with_module(3, |m| {
        let op = flexsfp::ppe::TableOp::Read {
            table: 1,
            key: vec![],
        };
        if let flexsfp::ppe::TableOpResult::Value(v) = m.app_mut().control_op(&op) {
            let flows = u64::from_be_bytes(v[0..8].try_into().unwrap());
            let bursts = u64::from_be_bytes(v[8..16].try_into().unwrap());
            let peak = u64::from_be_bytes(v[16..24].try_into().unwrap());
            println!(
                "telemetry: {flows} flows tracked, {bursts} microburst(s), peak window {peak} B"
            );
            assert!(bursts >= 1, "the injected microburst must be detected");
        }
    });

    // Age one module's laser toward end-of-life and sweep the fleet.
    fleet.with_module(5, |m| {
        m.set_laser_ttf_hours(120_000.0);
        m.age_laser(115_000.0);
    });
    let health = fleet.health_report();
    println!("\nfleet health:");
    for entry in &health {
        match entry {
            Ok(h) => println!(
                "  {}: app {} v{}, {:.1} degC, diagnosis {:?}",
                h.module_id, h.app, h.app_version, h.temperature_c, h.diagnosis
            ),
            Err(e) => println!("  <unreachable: {e}>"),
        }
    }
    let service = fleet.modules_needing_service();
    println!("modules needing a TOSA swap: {service:?}");
    assert_eq!(service, vec![5]);
    assert!(matches!(
        health[5].as_ref().unwrap().diagnosis,
        FaultDiagnosis::LaserDegradation | FaultDiagnosis::LaserFailed
    ));

    // Roll out a new telemetry build fleet-wide, four modules at a time.
    let image = Bitstream::new(
        "telemetry",
        2,
        ResourceManifest::new(5_400, 6_800, 28, 44),
        156_250_000,
    )
    .with_config(flexsfp_obs::json!({"flows": 16_384, "window_ns": 50_000, "burst_bytes": 40_000}))
    .to_bytes();
    println!(
        "\nrolling out telemetry v2 ({} kB image) across the fleet...",
        image.len() / 1024
    );
    let report = fleet.deploy_all(1, &image, 4);
    println!(
        "rollout complete: {} updated, {} rolled back to golden, {} failed, {} quarantined",
        report.updated.len(),
        report.rolled_back.len(),
        report.failed.len(),
        report.quarantined.len()
    );
    assert_eq!(report.updated.len(), 8);
    for i in 0..fleet.len() {
        fleet.with_module(i, |m| {
            assert_eq!(m.app_version(), 2);
            assert_eq!(m.app_name(), "telemetry");
        });
    }
    println!("every module rebooted into telemetry v2 without touching the host dataplane");
    println!("\nfleet example OK");
}
