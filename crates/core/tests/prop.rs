#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Property tests for core-module invariants: bitstream container
//! robustness, authentication soundness, and the update FSM under
//! arbitrary chunkings.

use flexsfp_core::auth::{self, AuthKey};
use flexsfp_core::bitstream::Bitstream;
use flexsfp_core::reprogram::{UpdateFsm, MAX_CHUNK};
use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_fabric::SpiFlash;
use proptest::prelude::*;

proptest! {
    /// Bitstream serialization round-trips arbitrary metadata.
    #[test]
    fn bitstream_round_trip(
        app in "[a-z]{1,12}",
        version in any::<u32>(),
        lut in 0u64..200_000,
        ff in 0u64..200_000,
        usram in 0u64..2_000,
        lsram in 0u64..700,
        clock in 1u64..500_000_000,
    ) {
        let bs = Bitstream::new(&app, version, ResourceManifest::new(lut, ff, usram, lsram), clock);
        let parsed = Bitstream::from_bytes(&bs.to_bytes()).unwrap();
        prop_assert_eq!(parsed, bs);
    }

    /// Arbitrary bytes never panic the bitstream parser, and any
    /// single-bit flip of a valid image is detected.
    #[test]
    fn bitstream_integrity(
        junk in proptest::collection::vec(any::<u8>(), 0..300),
        flip_bit in any::<u16>(),
    ) {
        let _ = Bitstream::from_bytes(&junk);
        let bs = Bitstream::new("app", 1, ResourceManifest::ZERO, 1);
        let mut bytes = bs.to_bytes();
        let pos = usize::from(flip_bit) % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(Bitstream::from_bytes(&bytes).is_err(), "bit flip at {pos} undetected");
    }

    /// Authentication: tags verify for the exact (key, message) pair and
    /// fail for any prefix/suffix/other-key variation.
    #[test]
    fn auth_soundness(
        key_bytes in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        extra in any::<u8>(),
    ) {
        let key = AuthKey(key_bytes);
        let tag = auth::tag(&key, &msg);
        prop_assert!(auth::verify(&key, &msg, &tag));
        // Extension attack: appending a byte must break the tag.
        let mut extended = msg.clone();
        extended.push(extra);
        prop_assert!(!auth::verify(&key, &extended, &tag));
        // Truncation breaks it too (when non-empty).
        if !msg.is_empty() {
            prop_assert!(!auth::verify(&key, &msg[..msg.len() - 1], &tag));
        }
        // A different key fails (with overwhelming probability).
        let mut other = key_bytes;
        other[0] ^= 1;
        prop_assert!(!auth::verify(&AuthKey(other), &msg, &tag));
    }

}

proptest! {
    // Each case allocates a 16 MiB flash model and erases a 4 MiB slot;
    // 24 cases give good coverage without dominating the suite runtime.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The update FSM accepts any chunking of a valid image and commits
    /// exactly the original bytes to flash.
    #[test]
    fn update_fsm_arbitrary_chunking(
        image in proptest::collection::vec(any::<u8>(), 1..5_000),
        chunk_sizes in proptest::collection::vec(1usize..MAX_CHUNK, 1..40),
        slot in 1usize..4,
    ) {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        fsm.begin(slot, image.len(), crc32(&image)).unwrap();
        let mut sent = 0usize;
        let mut seq = 0u32;
        let mut size_iter = chunk_sizes.iter().cycle();
        while sent < image.len() {
            let take = (*size_iter.next().unwrap()).min(image.len() - sent);
            fsm.chunk(seq, &image[sent..sent + take]).unwrap();
            sent += take;
            seq += 1;
        }
        let committed_slot = fsm.commit(&mut flash).unwrap();
        prop_assert_eq!(committed_slot, slot);
        prop_assert_eq!(flash.read_slot(slot, image.len()).unwrap(), &image[..]);
    }

    /// A wrong CRC is always rejected and leaves the slot erased.
    #[test]
    fn update_fsm_rejects_bad_crc(
        image in proptest::collection::vec(any::<u8>(), 1..2_000),
        wrong in any::<u32>(),
    ) {
        let good = crc32(&image);
        prop_assume!(wrong != good);
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        fsm.begin(1, image.len(), wrong).unwrap();
        for (seq, chunk) in image.chunks(MAX_CHUNK).enumerate() {
            fsm.chunk(seq as u32, chunk).unwrap();
        }
        prop_assert!(fsm.commit(&mut flash).is_err());
        prop_assert_eq!(flash.read_slot(1, 4).unwrap(), &[0xff; 4]);
    }
}
