//! The three architecture shells of Figure 1.
//!
//! A shell is the fixed plumbing around the PPE: where the demux/merge
//! blocks sit, which directions traverse the PPE, and whether the
//! control plane is a passive manager or an active traffic endpoint.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::Direction;

/// Architecture shell selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShellKind {
    /// Figure 1a: the PPE sits on one direction only; the reverse path
    /// merely merges control-plane traffic back in. The paper's default
    /// places it edge→optical, but either placement is legal (§4.1).
    OneWayFilter {
        /// The direction that traverses the PPE.
        ppe_direction: Direction,
    },
    /// Figure 1b: both directions aggregate into one shared PPE, which
    /// therefore sees up to twice the packet rate; the mitigation is a
    /// faster PPE clock.
    TwoWayCore,
    /// The third model of §4.1: Two-Way-Core plumbing plus a control
    /// plane with its own network interface that can originate and
    /// terminate traffic (the "self-contained microservice node").
    ActiveControlPlane,
}

impl ShellKind {
    /// The paper's default One-Way-Filter (PPE on the egress path).
    pub fn one_way_egress() -> ShellKind {
        ShellKind::OneWayFilter {
            ppe_direction: Direction::EdgeToOptical,
        }
    }

    /// Does traffic in `dir` traverse the PPE?
    pub fn ppe_applies(&self, dir: Direction) -> bool {
        match self {
            ShellKind::OneWayFilter { ppe_direction } => dir == *ppe_direction,
            ShellKind::TwoWayCore | ShellKind::ActiveControlPlane => true,
        }
    }

    /// The clock multiplier the shell needs on the PPE to keep line rate
    /// on every port it serves (the §4.1 "Processing Load" point).
    pub fn required_ppe_clock_factor(&self) -> u64 {
        match self {
            ShellKind::OneWayFilter { .. } => 1,
            ShellKind::TwoWayCore | ShellKind::ActiveControlPlane => 2,
        }
    }

    /// Can the control plane originate its own traffic?
    pub fn control_plane_active(&self) -> bool {
        matches!(self, ShellKind::ActiveControlPlane)
    }

    /// Fabric overhead of the shell plumbing itself (mux/demux,
    /// aggregator, per-direction FIFOs). The Two-Way-Core costs more
    /// than the One-Way-Filter, "but the increase is not linear" —
    /// shared components mitigate the growth (§4.1).
    pub fn overhead_manifest(&self) -> ResourceManifest {
        match self {
            ShellKind::OneWayFilter { .. } => ResourceManifest::new(900, 1_200, 4, 0),
            ShellKind::TwoWayCore => ResourceManifest::new(1_450, 1_900, 8, 0),
            ShellKind::ActiveControlPlane => ResourceManifest::new(2_100, 2_600, 12, 0),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ShellKind::OneWayFilter { .. } => "One-Way-Filter",
            ShellKind::TwoWayCore => "Two-Way-Core",
            ShellKind::ActiveControlPlane => "Active-Control-Plane",
        }
    }
}

/// The two classes of embedded control plane the paper identifies
/// (§4.1, "Control Plane Considerations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlPlaneClass {
    /// "Softcore-based designs, which embed minimal RISC-V or MIPS CPUs
    /// as logic blocks within the FPGA fabric, programmed with
    /// lightweight OSes like FreeRTOS or Zephyr" — the prototype's Mi-V.
    Softcore,
    /// "SoC-based designs, which embed full-featured ARM (or RISC-V)
    /// hard processors alongside the dataplane logic … standard OSes
    /// like Linux … more expensive and power-hungry."
    Soc,
}

/// Control-plane capabilities applications may require.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpFeature {
    /// Static rule loading / coarse-grained table updates.
    StaticRules,
    /// Authenticated OTA reprogramming.
    OtaUpdate,
    /// Full RPC protocols / REST APIs for orchestration systems.
    RestApi,
    /// Running containerized microservices on a standard OS.
    LinuxServices,
}

impl ControlPlaneClass {
    /// Fabric resources the control plane consumes. The softcore is
    /// fabric logic (the Table 1 Mi-V row); a hard SoC lives next to
    /// the fabric and consumes none of it.
    pub fn manifest(&self) -> ResourceManifest {
        match self {
            ControlPlaneClass::Softcore => flexsfp_fabric::resources::table1::MI_V,
            ControlPlaneClass::Soc => ResourceManifest::ZERO,
        }
    }

    /// Additional board power beyond the fabric model, W. The softcore's
    /// power is already inside the fabric-dynamic term; a hard ARM SoC
    /// running Linux adds watts of its own.
    pub fn extra_power_w(&self) -> f64 {
        match self {
            ControlPlaneClass::Softcore => 0.0,
            ControlPlaneClass::Soc => 1.2,
        }
    }

    /// Additional unit cost, USD (the "more expensive" half of §4.1).
    pub fn extra_cost_usd(&self) -> f64 {
        match self {
            ControlPlaneClass::Softcore => 0.0,
            ControlPlaneClass::Soc => 45.0,
        }
    }

    /// Which control-plane features this class supports.
    pub fn supports(&self, feature: CpFeature) -> bool {
        match self {
            ControlPlaneClass::Softcore => {
                matches!(feature, CpFeature::StaticRules | CpFeature::OtaUpdate)
            }
            ControlPlaneClass::Soc => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_applies_to_one_direction() {
        let s = ShellKind::one_way_egress();
        assert!(s.ppe_applies(Direction::EdgeToOptical));
        assert!(!s.ppe_applies(Direction::OpticalToEdge));
        assert_eq!(s.required_ppe_clock_factor(), 1);
        assert!(!s.control_plane_active());
    }

    #[test]
    fn reverse_one_way_placement() {
        let s = ShellKind::OneWayFilter {
            ppe_direction: Direction::OpticalToEdge,
        };
        assert!(!s.ppe_applies(Direction::EdgeToOptical));
        assert!(s.ppe_applies(Direction::OpticalToEdge));
    }

    #[test]
    fn two_way_applies_everywhere_and_needs_2x() {
        for s in [ShellKind::TwoWayCore, ShellKind::ActiveControlPlane] {
            assert!(s.ppe_applies(Direction::EdgeToOptical));
            assert!(s.ppe_applies(Direction::OpticalToEdge));
            assert_eq!(s.required_ppe_clock_factor(), 2);
        }
        assert!(ShellKind::ActiveControlPlane.control_plane_active());
        assert!(!ShellKind::TwoWayCore.control_plane_active());
    }

    #[test]
    fn overhead_grows_sublinearly() {
        let one = ShellKind::one_way_egress().overhead_manifest();
        let two = ShellKind::TwoWayCore.overhead_manifest();
        // More than 1×, less than 2× — "the increase is not linear".
        assert!(two.lut4 > one.lut4);
        assert!(two.lut4 < 2 * one.lut4);
        assert!(two.ff < 2 * one.ff);
    }

    #[test]
    fn names() {
        assert_eq!(ShellKind::one_way_egress().name(), "One-Way-Filter");
        assert_eq!(ShellKind::TwoWayCore.name(), "Two-Way-Core");
        assert_eq!(ShellKind::ActiveControlPlane.name(), "Active-Control-Plane");
    }

    #[test]
    fn softcore_uses_fabric_soc_uses_watts() {
        let soft = ControlPlaneClass::Softcore;
        let soc = ControlPlaneClass::Soc;
        // The softcore is the Table 1 Mi-V row; the SoC burns no LUTs.
        assert_eq!(soft.manifest().lut4, 8_696);
        assert_eq!(soc.manifest(), ResourceManifest::ZERO);
        // Power and cost go the other way.
        assert_eq!(soft.extra_power_w(), 0.0);
        assert!(soc.extra_power_w() > 1.0);
        assert!(soc.extra_cost_usd() > soft.extra_cost_usd());
    }

    #[test]
    fn feature_matrix_matches_paper() {
        let soft = ControlPlaneClass::Softcore;
        let soc = ControlPlaneClass::Soc;
        // "use cases such as firewalling, tunneling, or in-line
        // telemetry often require only static rule loading" — the
        // softcore suffices there, plus OTA updates.
        assert!(soft.supports(CpFeature::StaticRules));
        assert!(soft.supports(CpFeature::OtaUpdate));
        // "...complex services such as RPC protocols or REST APIs" need
        // the SoC class.
        assert!(!soft.supports(CpFeature::RestApi));
        assert!(!soft.supports(CpFeature::LinuxServices));
        for f in [
            CpFeature::StaticRules,
            CpFeature::OtaUpdate,
            CpFeature::RestApi,
            CpFeature::LinuxServices,
        ] {
            assert!(soc.supports(f));
        }
    }
}
