//! # flexsfp-core
//!
//! The FlexSFP module — the paper's primary contribution — as a
//! deterministic software model:
//!
//! * [`shell`] — the three architecture shells of Figure 1:
//!   One-Way-Filter, Two-Way-Core and Active-Control-Plane;
//! * [`module`] — the component assembly (edge/optical transceivers,
//!   PPE, Mi-V control core, arbiter, SPI flash, I2C management) and the
//!   packet-level simulator with queueing, latency and power accounting;
//! * [`control`] — the embedded control plane: protocol framing,
//!   authenticated requests, table/counter APIs;
//! * [`reprogram`] — the over-the-network reprogramming FSM ("a small
//!   FSM writes it to SPI flash and then triggers a reboot", §4.2);
//! * [`bitstream`] — the bitstream container format with resource
//!   manifest and integrity checksum;
//! * [`auth`] — the SipHash-2-4 keyed MAC authenticating control and
//!   reconfiguration packets;
//! * [`failure`] — VCSEL wear-out (lognormal TTF, gradual power
//!   degradation) and the laser-vs-driver fault diagnosis of §5.3;
//! * [`microservice`] — the active control plane terminating traffic
//!   itself (ARP / ICMP echo responders) in the third §4.1 model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod bitstream;
pub mod control;
pub mod failure;
pub mod microservice;
pub mod module;
pub mod reprogram;
pub mod shell;

pub use bitstream::Bitstream;
pub use control::{ControlPlane, ControlRequest, ControlResponse};
pub use module::{FlexSfp, Interface, ModuleConfig, SimPacket, SimReport, StreamSession};
pub use shell::ShellKind;
