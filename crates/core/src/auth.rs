//! Keyed message authentication for control and reconfiguration packets.
//!
//! The paper requires that "the control plane authenticates
//! reconfiguration packets whose payload carries a new bitstream" (§4.2)
//! without prescribing a construction. A 128-bit-keyed SipHash-2-4 with a
//! 64-bit tag is the classic embedded choice (tiny state, no tables, a
//! handful of ARX rounds per 8 bytes — trivially synthesizable), so we
//! implement it from scratch here rather than pulling a crypto crate.

/// A 128-bit authentication key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthKey(pub [u8; 16]);

impl AuthKey {
    /// The all-zero key (factory default — rotate before deployment).
    pub const DEFAULT: AuthKey = AuthKey([0; 16]);

    /// Derive a key from a passphrase (test/deployment convenience; a
    /// real deployment provisions random keys).
    pub fn from_passphrase(phrase: &str) -> AuthKey {
        // Two chained SipHash invocations under fixed keys spread the
        // phrase entropy across 16 bytes.
        let k0 = siphash24(&AuthKey([0x5a; 16]), phrase.as_bytes());
        let k1 = siphash24(&AuthKey([0xa5; 16]), phrase.as_bytes());
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&k0.to_le_bytes());
        key[8..].copy_from_slice(&k1.to_le_bytes());
        AuthKey(key)
    }
}

fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under `key`, returning the 64-bit tag.
pub fn siphash24(key: &AuthKey, data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key.0[0..8].try_into().unwrap());
    let k1 = u64::from_le_bytes(key.0[8..16].try_into().unwrap());
    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Final block: remaining bytes + length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Compute the authentication tag for a control-plane payload.
pub fn tag(key: &AuthKey, payload: &[u8]) -> [u8; 8] {
    siphash24(key, payload).to_le_bytes()
}

/// Constant-time-ish tag verification (XOR-accumulate; good enough for a
/// model — the property that matters is correctness, not timing).
pub fn verify(key: &AuthKey, payload: &[u8], presented: &[u8; 8]) -> bool {
    let expected = tag(key, payload);
    expected
        .iter()
        .zip(presented)
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vector from the reference
    /// implementation: key 000102…0f, input 00 01 02 … (len 0..8).
    #[test]
    fn reference_vectors() {
        let mut key = [0u8; 16];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let key = AuthKey(key);
        // vectors_sip64 from the SipHash reference repo (first 4).
        let expected: [u64; 4] = [
            u64::from_le_bytes([0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]),
            u64::from_le_bytes([0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74]),
            u64::from_le_bytes([0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d]),
            u64::from_le_bytes([0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85]),
        ];
        let data: Vec<u8> = (0u8..8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(siphash24(&key, &data[..len]), *want, "len {len}");
        }
    }

    #[test]
    fn tag_verify_round_trip() {
        let key = AuthKey::from_passphrase("fleet-key-1");
        let payload = b"write table 0 entry";
        let t = tag(&key, payload);
        assert!(verify(&key, payload, &t));
        // Tampered payload fails.
        assert!(!verify(&key, b"write table 0 entrx", &t));
        // Wrong key fails.
        let other = AuthKey::from_passphrase("fleet-key-2");
        assert!(!verify(&other, payload, &t));
        // Tampered tag fails.
        let mut bad = t;
        bad[3] ^= 1;
        assert!(!verify(&key, payload, &bad));
    }

    #[test]
    fn passphrase_derivation_is_stable_and_distinct() {
        let a = AuthKey::from_passphrase("alpha");
        let b = AuthKey::from_passphrase("alpha");
        let c = AuthKey::from_passphrase("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, AuthKey::DEFAULT);
    }

    #[test]
    fn long_messages() {
        let key = AuthKey::from_passphrase("k");
        let long = vec![0xabu8; 10_000];
        let t1 = siphash24(&key, &long);
        let mut tweaked = long.clone();
        tweaked[9_999] ^= 1;
        assert_ne!(t1, siphash24(&key, &tweaked));
    }
}
