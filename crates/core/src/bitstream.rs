//! The bitstream container format.
//!
//! A real PolarFire bitstream is opaque vendor data; what the FlexSFP
//! system needs from it is (a) identity — which application, which
//! version, (b) the resource manifest for fit checking before activation,
//! (c) the target clock, and (d) integrity. This container carries
//! exactly that: a JSON-encoded metadata header (via the in-tree
//! `flexsfp_obs::json` codec) followed by the payload, protected by a
//! CRC-32.

use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_obs::json::{FromJson, ToJson, Value};

/// Magic bytes introducing a FlexSFP bitstream image.
pub const MAGIC: &[u8; 4] = b"FSBS";

/// Bitstream metadata.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitstreamMeta {
    /// Application identifier (resolved through the module's app
    /// factory at boot, standing in for the synthesized netlist).
    pub app: String,
    /// Application version.
    pub version: u32,
    /// Resources the design occupies — checked against the device
    /// before activation.
    pub manifest: ResourceManifest,
    /// Datapath clock the design closed timing at, Hz.
    pub clock_hz: u64,
    /// Free-form application configuration (e.g. initial table rules).
    #[cfg_attr(feature = "serde", serde(skip, default = "default_config"))]
    pub config: Value,
}

#[cfg(feature = "serde")]
fn default_config() -> Value {
    Value::Null
}

impl ToJson for BitstreamMeta {
    fn to_json(&self) -> Value {
        flexsfp_obs::json!({
            "app": self.app.as_str(),
            "version": self.version,
            "manifest": self.manifest.to_json(),
            "clock_hz": self.clock_hz,
            "config": self.config.clone(),
        })
    }
}

impl FromJson for BitstreamMeta {
    fn from_json(v: &Value) -> Option<BitstreamMeta> {
        let object = v.as_object()?;
        Some(BitstreamMeta {
            app: String::from_json(object.get("app")?)?,
            version: u32::from_json(object.get("version")?)?,
            manifest: ResourceManifest::from_json(object.get("manifest")?)?,
            clock_hz: u64::from_json(object.get("clock_hz")?)?,
            // Absent config defaults to null (images from older tools).
            config: object.get("config").cloned().unwrap_or(Value::Null),
        })
    }
}

/// A complete bitstream: metadata + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Metadata header.
    pub meta: BitstreamMeta,
    /// Synthetic configuration payload (stands in for the netlist).
    pub payload: Vec<u8>,
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Missing or wrong magic.
    BadMagic,
    /// Image shorter than its declared lengths.
    Truncated,
    /// CRC mismatch — flash corruption or tampering.
    BadChecksum,
    /// Metadata JSON failed to parse.
    BadMeta,
}

impl core::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for BitstreamError {}

impl Bitstream {
    /// Build a bitstream for `app`.
    pub fn new(app: &str, version: u32, manifest: ResourceManifest, clock_hz: u64) -> Bitstream {
        Bitstream {
            meta: BitstreamMeta {
                app: app.into(),
                version,
                manifest,
                clock_hz,
                config: Value::Null,
            },
            // A deterministic synthetic payload whose size scales with
            // the design (roughly 100 bits of config per LUT).
            payload: synth_payload(app, version, &manifest),
        }
    }

    /// Attach application configuration.
    pub fn with_config(mut self, config: Value) -> Bitstream {
        self.meta.config = config;
        self
    }

    /// Serialize: `MAGIC | meta_len:u32 | meta_json | payload | crc32`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta = self.meta.to_json().to_string().into_bytes();
        let mut out = Vec::with_capacity(4 + 4 + meta.len() + self.payload.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(meta.len() as u32).to_be_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parse and integrity-check an image.
    pub fn from_bytes(data: &[u8]) -> Result<Bitstream, BitstreamError> {
        if data.len() < 12 {
            return Err(BitstreamError::Truncated);
        }
        if &data[..4] != MAGIC {
            return Err(BitstreamError::BadMagic);
        }
        let body_len = data.len() - 4;
        let declared = u32::from_be_bytes(data[body_len..].try_into().unwrap());
        if crc32(&data[..body_len]) != declared {
            return Err(BitstreamError::BadChecksum);
        }
        let meta_len = u32::from_be_bytes(data[4..8].try_into().unwrap()) as usize;
        if 8 + meta_len > body_len {
            return Err(BitstreamError::Truncated);
        }
        let meta_text =
            std::str::from_utf8(&data[8..8 + meta_len]).map_err(|_| BitstreamError::BadMeta)?;
        let meta = Value::parse(meta_text)
            .ok()
            .and_then(|v| BitstreamMeta::from_json(&v))
            .ok_or(BitstreamError::BadMeta)?;
        Ok(Bitstream {
            meta,
            payload: data[8 + meta_len..body_len].to_vec(),
        })
    }

    /// Total serialized size.
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

fn synth_payload(app: &str, version: u32, manifest: &ResourceManifest) -> Vec<u8> {
    let n = (manifest.lut4 as usize * 100 / 8).clamp(256, 2 * 1024 * 1024);
    let seed = crc32(app.as_bytes()) ^ version;
    // A cheap xorshift fill — deterministic, incompressible enough.
    let mut state = u64::from(seed) | 1;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bitstream {
        Bitstream::new(
            "nat",
            3,
            ResourceManifest::new(9_122, 11_294, 36, 160),
            156_250_000,
        )
        .with_config(flexsfp_obs::json!({"table_size": 32768}))
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let bytes = b.to_bytes();
        let parsed = Bitstream::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.meta.app, "nat");
        assert_eq!(parsed.meta.clock_hz, 156_250_000);
        assert_eq!(parsed.meta.config["table_size"], Value::from(32768u64));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            Bitstream::from_bytes(&bytes),
            Err(BitstreamError::BadChecksum)
        );
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Bitstream::from_bytes(&bytes), Err(BitstreamError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Bitstream::from_bytes(&bytes[..8]),
            Err(BitstreamError::Truncated)
        );
    }

    #[test]
    fn payload_scales_with_design_size() {
        let small = Bitstream::new("a", 1, ResourceManifest::new(1_000, 0, 0, 0), 1);
        let big = Bitstream::new("b", 1, ResourceManifest::new(100_000, 0, 0, 0), 1);
        assert!(big.payload.len() > small.payload.len());
        // Fits in a 4 MiB flash slot.
        assert!(big.size_bytes() < flexsfp_fabric::flash::SLOT_BYTES);
    }

    #[test]
    fn payload_is_deterministic() {
        let a = Bitstream::new("nat", 1, ResourceManifest::new(5_000, 0, 0, 0), 1);
        let b = Bitstream::new("nat", 1, ResourceManifest::new(5_000, 0, 0, 0), 1);
        assert_eq!(a.payload, b.payload);
        let c = Bitstream::new("nat", 2, ResourceManifest::new(5_000, 0, 0, 0), 1);
        assert_ne!(a.payload, c.payload);
    }
}
