//! The FlexSFP module assembly and its packet-level simulator.
//!
//! [`FlexSfp`] wires together the components of the Figure 2 prototype:
//! two 10 G transceivers (electrical edge + optical), the PPE running the
//! loaded application, the Mi-V control plane, the arbiter/demux, the
//! SPI flash, and the SFF-8472 management interface. [`FlexSfp::run`]
//! pushes a timestamped packet sequence through the selected architecture
//! shell with a queueing model of the PPE (finite ingress FIFOs, a busy
//! server clocked at the PPE clock), producing latency, loss, throughput
//! and power accounting — the machinery behind the Figure 1, §5.1 and
//! §5.3 experiments.

use crate::auth::AuthKey;
use crate::bitstream::{Bitstream, BitstreamMeta};
use crate::control::{ControlContext, ControlPlane, ControlRequest, ControlResponse};
use crate::failure::{DiagnosisThresholds, FaultDiagnosis, VcselModel};
use crate::reprogram::UpdateState;
use crate::shell::{ControlPlaneClass, ShellKind};
use flexsfp_fabric::clock::ClockDomain;
use flexsfp_fabric::i2c::ManagementInterface;
use flexsfp_fabric::power::{PowerBreakdown, PowerModel};
use flexsfp_fabric::resources::{table1, Device, FitReport, ResourceManifest};
use flexsfp_fabric::serdes::{LineRate, Transceiver};
use flexsfp_fabric::stream::DatapathConfig;
use flexsfp_fabric::SpiFlash;
use flexsfp_obs::{
    CacheStats, DomSnapshot, DropCounters, DropReason, EventKind, EventRing, FlightRecord,
    FlightRing, FlightStamp, FlightVerdict, LatencyHistogram, PortCounters, TelemetrySnapshot,
    WindowedSeries,
};
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::{BatchPacket, Direction, KeyHint, PacketProcessor, ProcessContext, Verdict};
use flexsfp_traffic::rng::Xoshiro256;
use flexsfp_wire::MacAddr;
use std::collections::VecDeque;

/// PPE batch size: packets admitted to the PPE are queued and handed to
/// [`PacketProcessor::process_batch`] in fixed-size vectors, VPP-style,
/// amortizing dispatch and per-packet bookkeeping. Any event that could
/// observe or mutate dataplane state out of order (control frames,
/// microservice replies, bypass-path outputs, end of trace) flushes the
/// pending batch first, so results are bit-identical to per-packet
/// processing.
///
/// Public because it bounds the number of frames a module holds in
/// flight: a streaming run's arena allocation count is at most this
/// window (plus generator slack), which is the O(1)-memory bound the
/// perf harness enforces per thread.
pub const PPE_BATCH: usize = 32;

/// Physical interfaces of the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Host-side edge connector (electrical).
    Edge,
    /// Optical cage.
    Optical,
}

impl Interface {
    /// Natural egress interface for traffic travelling in `dir`.
    pub fn egress_for(dir: Direction) -> Interface {
        match dir {
            Direction::EdgeToOptical => Interface::Optical,
            Direction::OpticalToEdge => Interface::Edge,
        }
    }

    /// The other interface.
    pub fn other(self) -> Interface {
        match self {
            Interface::Edge => Interface::Optical,
            Interface::Optical => Interface::Edge,
        }
    }
}

/// Module configuration.
#[derive(Debug, Clone)]
pub struct ModuleConfig {
    /// Module serial / identifier.
    pub id: String,
    /// Architecture shell.
    pub shell: ShellKind,
    /// Control-plane class (§4.1): fabric softcore or hard SoC.
    pub cp_class: ControlPlaneClass,
    /// Interface datapath (width/clock at the Ethernet cores).
    pub datapath: DatapathConfig,
    /// PPE clock (the Two-Way-Core mitigation raises this to 2×).
    pub ppe_clock: ClockDomain,
    /// Line rate of both interfaces.
    pub line_rate: LineRate,
    /// Ingress FIFO capacity in bytes (per direction feeding the PPE).
    pub fifo_bytes: usize,
    /// Per-crossing SerDes+PCS latency, ns.
    pub serdes_latency_ns: f64,
    /// Management MAC address.
    pub mgmt_mac: MacAddr,
    /// Management IPv4 address.
    pub mgmt_ip: u32,
    /// Control-plane authentication key.
    pub auth_key: AuthKey,
}

impl Default for ModuleConfig {
    fn default() -> Self {
        ModuleConfig {
            id: "FSFP-PROTO-001".into(),
            shell: ShellKind::one_way_egress(),
            cp_class: ControlPlaneClass::Softcore,
            datapath: DatapathConfig::prototype_10g(),
            ppe_clock: ClockDomain::XGMII_10G,
            line_rate: LineRate::TenGig,
            // 64 KiB of LSRAM-backed buffering per direction.
            fifo_bytes: 64 * 1024,
            serdes_latency_ns: 100.0,
            mgmt_mac: MacAddr([0x02, 0xf5, 0x0f, 0x00, 0x00, 0x01]),
            mgmt_ip: 0x0a00_0164,
            auth_key: AuthKey::DEFAULT,
        }
    }
}

impl ModuleConfig {
    /// A Two-Way-Core configuration with the paper's 2× PPE clock.
    pub fn two_way_2x() -> ModuleConfig {
        ModuleConfig {
            shell: ShellKind::TwoWayCore,
            ppe_clock: ClockDomain::XGMII_10G_X2,
            ..Default::default()
        }
    }
}

/// A packet offered to the module.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Arrival time at the ingress interface, ns.
    pub arrival_ns: u64,
    /// Direction of travel.
    pub direction: Direction,
    /// The Ethernet frame (without FCS).
    pub frame: Vec<u8>,
}

/// A packet emitted by the module.
#[derive(Debug, Clone)]
pub struct OutputPacket {
    /// Departure time, ns.
    pub departure_ns: u64,
    /// Egress interface.
    pub egress: Interface,
    /// The (possibly modified) frame.
    pub frame: Vec<u8>,
    /// Module transit latency, ns.
    pub latency_ns: f64,
}

/// Drop reasons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Ingress FIFO overflow (PPE oversubscribed).
    pub fifo_overflow: u64,
    /// Application verdict.
    pub app: u64,
    /// Optical link down (laser failed / disabled lane).
    pub link: u64,
    /// Out-of-order arrival in the offered trace (host-composed traces
    /// must be sorted; stragglers are dropped, not fatal).
    pub unsorted: u64,
}

impl DropStats {
    /// Fold another run's drops into this one (shard-report merge).
    pub fn merge(&mut self, other: &DropStats) {
        self.fifo_overflow += other.fifo_overflow;
        self.app += other.app;
        self.link += other.link;
        self.unsorted += other.unsorted;
    }

    /// Total drops.
    pub fn total(&self) -> u64 {
        self.fifo_overflow + self.app + self.link + self.unsorted
    }
}

/// Latency aggregate over forwarded packets, backed by the shared
/// log-linear histogram (`flexsfp-obs`): percentiles within 1 %
/// relative error, bounded memory, and lossless merging across runs
/// and modules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    hist: LatencyHistogram,
}

impl LatencyStats {
    fn record(&mut self, l: f64) {
        self.hist.record_f64(l);
    }

    /// Fold another run's latency population into this one — exact,
    /// because the underlying histogram merge is exact (shard-report
    /// merge).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }

    /// Packets measured.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Minimum, ns (rounded to the nearest nanosecond).
    pub fn min_ns(&self) -> f64 {
        self.hist.min() as f64
    }

    /// Maximum, ns (rounded to the nearest nanosecond).
    pub fn max_ns(&self) -> f64 {
        self.hist.max() as f64
    }

    /// Mean latency, ns (exact).
    pub fn mean_ns(&self) -> f64 {
        self.hist.mean()
    }

    /// Median latency, ns.
    pub fn p50_ns(&self) -> f64 {
        self.hist.p50() as f64
    }

    /// 90th-percentile latency, ns.
    pub fn p90_ns(&self) -> f64 {
        self.hist.p90() as f64
    }

    /// 99th-percentile latency, ns.
    pub fn p99_ns(&self) -> f64 {
        self.hist.p99() as f64
    }

    /// 99.9th-percentile latency, ns.
    pub fn p999_ns(&self) -> f64 {
        self.hist.p999() as f64
    }

    /// The underlying mergeable histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Packets offered.
    pub offered: u64,
    /// Bytes offered.
    pub offered_bytes: u64,
    /// Forwarded packets per egress interface: (edge, optical).
    pub forwarded: (u64, u64),
    /// Bytes forwarded (total).
    pub forwarded_bytes: u64,
    /// Drops by reason.
    pub drops: DropStats,
    /// Packets diverted to the control plane by app verdict.
    pub to_control: u64,
    /// Control-protocol requests handled (frames answered).
    pub control_handled: u64,
    /// Frames originated by the active control plane itself (ARP/ICMP
    /// microservice replies; Active-Control-Plane shell only).
    pub cp_originated: u64,
    /// Latency over forwarded dataplane packets.
    pub latency: LatencyStats,
    /// Wall-clock span of the run, ns (last departure or arrival).
    pub duration_ns: u64,
    /// Emitted packets (in departure order).
    pub outputs: Vec<OutputPacket>,
}

impl SimReport {
    /// Delivered dataplane throughput over the run, bits/s.
    pub fn delivered_bps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.forwarded_bytes as f64 * 8.0 / (self.duration_ns as f64 / 1e9)
    }

    /// Fraction of offered packets forwarded.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        (self.forwarded.0 + self.forwarded.1) as f64 / self.offered as f64
    }
}

/// Constructs an application from bitstream metadata at boot.
pub type AppFactory = Box<dyn Fn(&BitstreamMeta) -> Option<Box<dyn PacketProcessor>> + Send>;

/// Timing metadata for a packet waiting in the PPE batch. The queueing
/// model runs at admit time (admission order is arrival order), so the
/// departure time is already known when the packet joins the batch.
#[derive(Debug, Clone, Copy)]
struct PendingPpe {
    /// Caller-supplied input tag (the global input sequence number in
    /// sharded runs), threaded through to the sink unchanged.
    tag: u64,
    arrival_ns: u64,
    arrival_fs: u128,
    departure_fs: u128,
}

/// Deterministic 1-in-N Bernoulli sampler driving the flight recorder.
/// One PRNG draw per dataplane packet, so the decision for the k-th
/// packet depends only on `(seed, k)` and two runs over the same trace
/// produce byte-identical record sets.
#[derive(Debug)]
struct FlightSampler {
    rng: Xoshiro256,
    /// Sample when the draw is `<=` this threshold (`u64::MAX / every`,
    /// so `every = 1` samples everything).
    threshold: u64,
}

impl FlightSampler {
    fn new(every: u64, seed: u64) -> FlightSampler {
        FlightSampler {
            rng: Xoshiro256::seed_from_u64(seed),
            threshold: u64::MAX / every.max(1),
        }
    }

    fn sample(&mut self) -> bool {
        self.rng.next_u64() <= self.threshold
    }
}

/// Armed flight-recorder state: the sampler, the bounded postcard ring
/// and the monotone record sequence number.
#[derive(Debug)]
struct FlightState {
    sampler: FlightSampler,
    ring: FlightRing,
    seq: u64,
}

impl FlightState {
    /// Stamp and ring-buffer one sampled packet's postcard.
    fn push(
        &mut self,
        arrival_ns: u64,
        cap: FlightCapture,
        stamp: FlightStamp,
        verdict: FlightVerdict,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.ring.push(FlightRecord {
            seq,
            arrival_ns,
            queue_bytes: cap.queue_bytes,
            queue_pkts: cap.queue_pkts,
            cache_hit: stamp.cache_hit,
            stages: stamp.stages,
            verdict,
        });
    }
}

/// Queue observation taken at admit time for a sampled packet.
#[derive(Debug, Clone, Copy)]
struct FlightCapture {
    queue_bytes: u64,
    queue_pkts: u64,
}

/// What became of a dispatched packet — feeds the flight recorder's
/// verdict and the windowed time-series.
#[derive(Debug, Clone, Copy)]
enum DispatchOutcome {
    /// Emitted to an egress lane at the given simulated time.
    Forwarded {
        /// Departure time, ns.
        departure_ns: u64,
    },
    /// The application's verdict was `Drop` (an explained, policy drop).
    AppDrop,
    /// The egress lane refused the frame (link down / budget).
    LinkDrop,
    /// Diverted to the embedded control plane.
    ToControl,
}

impl DispatchOutcome {
    fn verdict(self) -> FlightVerdict {
        match self {
            DispatchOutcome::Forwarded { departure_ns } => {
                FlightVerdict::Forwarded { departure_ns }
            }
            DispatchOutcome::AppDrop => FlightVerdict::Dropped {
                reason: DropReason::App,
            },
            DispatchOutcome::LinkDrop => FlightVerdict::Dropped {
                reason: DropReason::LinkDown,
            },
            DispatchOutcome::ToControl => FlightVerdict::ToControl,
        }
    }
}

/// Verdict dispatch for one processed packet: drop/divert accounting,
/// egress lane accounting, latency recording, time-series feeding and
/// output emission. A free function over the module's disjoint fields
/// so the batched and bypass paths share one exact implementation.
#[allow(clippy::too_many_arguments)]
fn dispatch_output<F: FnMut(u64, OutputPacket)>(
    tag: u64,
    frame: Vec<u8>,
    verdict: Verdict,
    direction: Direction,
    arrival_ns: u64,
    arrival_fs: u128,
    departure_fs: u128,
    report: &mut SimReport,
    edge: &mut Transceiver,
    optical: &mut Transceiver,
    events: &mut EventRing,
    lifetime_drops: &mut DropCounters,
    windows: &mut WindowedSeries,
    last_time_ns: &mut u64,
    sink: &mut F,
) -> DispatchOutcome {
    match verdict {
        Verdict::Drop => {
            report.drops.app += 1;
            lifetime_drops.app += 1;
            events.record(
                arrival_ns,
                EventKind::Drop {
                    reason: DropReason::App,
                },
            );
            windows.record_drop(arrival_ns, false);
            return DispatchOutcome::AppDrop;
        }
        Verdict::ToControlPlane => {
            report.to_control += 1;
            return DispatchOutcome::ToControl;
        }
        Verdict::Forward | Verdict::Reflect => {}
    }

    let natural = Interface::egress_for(direction);
    let egress = if verdict == Verdict::Reflect {
        natural.other()
    } else {
        natural
    };

    // Egress accounting; the optical lane drops when the link budget
    // no longer closes (degraded laser).
    let tx_ok = match egress {
        Interface::Edge => edge.record_tx(frame.len()),
        Interface::Optical => {
            if optical.link_up(3.0) {
                optical.record_tx(frame.len())
            } else {
                false
            }
        }
    };
    if !tx_ok {
        report.drops.link += 1;
        lifetime_drops.link += 1;
        events.record(
            arrival_ns,
            EventKind::Drop {
                reason: DropReason::LinkDown,
            },
        );
        windows.record_drop(arrival_ns, true);
        return DispatchOutcome::LinkDrop;
    }

    // u128 division compiles to a libcall; simulated times fit u64
    // femtoseconds (~5 h) in practice, so divide in u64 (a
    // multiply-shift) and keep the wide division as the fallback.
    let departure_ns = if departure_fs <= u128::from(u64::MAX) {
        (departure_fs as u64) / 1_000_000
    } else {
        (departure_fs / 1_000_000) as u64
    };
    let transit_fs = departure_fs - arrival_fs;
    let latency_ns = if transit_fs <= u128::from(u64::MAX) {
        transit_fs as u64 as f64 / 1e6
    } else {
        transit_fs as f64 / 1e6
    };
    report.latency.record(latency_ns);
    windows.record_forwarded(departure_ns, latency_ns);
    match egress {
        Interface::Edge => report.forwarded.0 += 1,
        Interface::Optical => report.forwarded.1 += 1,
    }
    report.forwarded_bytes += frame.len() as u64;
    *last_time_ns = (*last_time_ns).max(departure_ns);
    sink(
        tag,
        OutputPacket {
            departure_ns,
            egress,
            frame,
            latency_ns,
        },
    );
    DispatchOutcome::Forwarded { departure_ns }
}

/// Run the pending PPE batch through the application and dispatch every
/// slot's verdict in admission order. When `capture` is set, the
/// newest slot is a sampled packet (the sampler forces an immediate
/// flush) and its postcard is completed here: the application's stage
/// stamp joins the queue observation and the dispatch verdict.
#[allow(clippy::too_many_arguments)]
fn flush_ppe_batch<F: FnMut(u64, OutputPacket)>(
    app: &mut dyn PacketProcessor,
    batch: &mut Vec<BatchPacket>,
    pending: &mut Vec<PendingPpe>,
    report: &mut SimReport,
    edge: &mut Transceiver,
    optical: &mut Transceiver,
    events: &mut EventRing,
    lifetime_drops: &mut DropCounters,
    windows: &mut WindowedSeries,
    last_cache: &mut CacheStats,
    capture: Option<(FlightCapture, &mut FlightState)>,
    last_time_ns: &mut u64,
    sink: &mut F,
) {
    if batch.is_empty() {
        return;
    }
    app.process_batch(batch);
    // Fold this batch's cache-counter delta into the window its newest
    // packet lands in. Saturating: a reboot swaps the application and
    // resets its counters mid-run.
    let cache_ts = pending.last().map_or(0, |p| p.arrival_ns);
    if let Some(stats) = app.cache_stats() {
        windows.record_cache(
            cache_ts,
            stats.hits.saturating_sub(last_cache.hits),
            stats.misses.saturating_sub(last_cache.misses),
            stats.evictions.saturating_sub(last_cache.evictions),
            app.cache_occupancy().unwrap_or(0),
        );
        *last_cache = stats;
    }
    // The sampled packet is the newest slot, so the processor's most
    // recent stamp is its stage trace.
    let stamp = capture
        .as_ref()
        .map(|_| app.flight_stamp().unwrap_or_default());
    let mut capture = capture;
    let newest = batch.len() - 1;
    for (i, (slot, meta)) in batch.drain(..).zip(pending.drain(..)).enumerate() {
        let outcome = dispatch_output(
            meta.tag,
            slot.frame,
            slot.verdict,
            slot.ctx.direction,
            meta.arrival_ns,
            meta.arrival_fs,
            meta.departure_fs,
            report,
            edge,
            optical,
            events,
            lifetime_drops,
            windows,
            last_time_ns,
            sink,
        );
        if i == newest {
            if let Some((cap, state)) = capture.take() {
                let stamp = stamp.clone().unwrap_or_default();
                state.push(meta.arrival_ns, cap, stamp, outcome.verdict());
            }
        }
    }
}

/// One queued-entry record of the PPE server model.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    finish_fs: u128,
    bytes: usize,
}

/// A busy-server + finite-FIFO model of the PPE.
#[derive(Debug)]
struct PpeServer {
    free_fs: u128,
    fifo_bytes: usize,
    in_flight: VecDeque<InFlight>,
    /// Running sum of `in_flight` bytes, so admission is O(1) instead
    /// of re-summing the queue per packet.
    backlog: usize,
}

impl PpeServer {
    fn new(fifo_bytes: usize) -> PpeServer {
        PpeServer {
            free_fs: 0,
            fifo_bytes,
            in_flight: VecDeque::new(),
            backlog: 0,
        }
    }

    /// Try to admit a packet arriving at `arrival_fs` needing
    /// `service_fs` of PPE time. Returns the service start time, or
    /// `None` on FIFO overflow.
    fn admit(&mut self, arrival_fs: u128, len: usize, service_fs: u128) -> Option<u128> {
        // Entries that completed service have left the FIFO.
        while let Some(front) = self.in_flight.front() {
            if front.finish_fs <= arrival_fs {
                self.backlog -= front.bytes;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if self.backlog + len > self.fifo_bytes {
            return None;
        }
        let start = self.free_fs.max(arrival_fs);
        let finish = start + service_fs;
        self.free_fs = finish;
        self.backlog += len;
        self.in_flight.push_back(InFlight {
            finish_fs: finish,
            bytes: len,
        });
        Some(start)
    }

    /// The queue a packet arriving at `arrival_fs` would see: entries
    /// that completed service leave first, then the remaining backlog
    /// is the depth. The eviction is the same one `admit` performs (and
    /// is idempotent), so observing first does not perturb the model.
    fn depth_at(&mut self, arrival_fs: u128) -> (u64, u64) {
        while let Some(front) = self.in_flight.front() {
            if front.finish_fs <= arrival_fs {
                self.backlog -= front.bytes;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        (self.backlog as u64, self.in_flight.len() as u64)
    }
}

/// The FlexSFP module.
pub struct FlexSfp {
    /// Configuration.
    pub config: ModuleConfig,
    app: Box<dyn PacketProcessor>,
    app_version: u32,
    /// Embedded control plane.
    pub control: ControlPlane,
    /// SPI flash.
    pub flash: SpiFlash,
    /// SFF-8472 management EEPROM/diagnostics.
    pub mgmt: ManagementInterface,
    /// Edge (electrical) transceiver.
    pub edge: Transceiver,
    /// Optical transceiver.
    pub optical: Transceiver,
    /// Laser wear model.
    pub vcsel: VcselModel,
    laser_age_hours: f64,
    laser_ttf_hours: f64,
    boots: u32,
    factory: AppFactory,
    power_model: PowerModel,
    /// Dataplane event trace ring (a hardware trace buffer: drops,
    /// auth rejects, reprogram/reboot events), drained with each
    /// telemetry snapshot.
    pub events: EventRing,
    lifetime_drops: DropCounters,
    lifetime_latency: LatencyHistogram,
    /// High-water mark of simulated time, used to stamp events raised
    /// on the control path (which carries no packet timestamps).
    clock_ns: u64,
    snapshot_seq: u64,
    events_exported: u64,
    /// Flight recorder (sampled INT-style postcards); `None` until
    /// armed with [`enable_flight_recorder`](Self::enable_flight_recorder).
    flight: Option<FlightState>,
    /// Always-on windowed time-series over dataplane outcomes — what
    /// the SLO engine evaluates and the collector scrapes.
    windows: WindowedSeries,
    /// Application cache counters at the last batch flush, for
    /// per-window hit/miss deltas.
    last_cache: CacheStats,
}

impl std::fmt::Debug for FlexSfp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlexSfp")
            .field("id", &self.config.id)
            .field("shell", &self.config.shell.name())
            .field("app", &self.app.name())
            .field("boots", &self.boots)
            .finish()
    }
}

impl FlexSfp {
    /// Assemble a module running `app` under `config`.
    pub fn new(config: ModuleConfig, app: Box<dyn PacketProcessor>) -> FlexSfp {
        let control = ControlPlane::new(config.mgmt_mac, config.mgmt_ip, config.auth_key);
        let mut edge = Transceiver::new("electrical", config.line_rate);
        let mut optical = Transceiver::new("optical", config.line_rate);
        // The Mi-V startup sequence: configure transceivers, laser
        // driver and limiting amplifier (§5.1).
        edge.enable();
        optical.enable();
        let vcsel = VcselModel::default();
        let mut module = FlexSfp {
            config,
            app,
            app_version: 1,
            control,
            flash: SpiFlash::new(),
            mgmt: ManagementInterface::default(),
            edge,
            optical,
            vcsel,
            laser_age_hours: 0.0,
            laser_ttf_hours: vcsel.median_ttf_hours,
            boots: 1,
            factory: Box::new(default_factory),
            power_model: PowerModel::flexsfp_prototype(),
            events: EventRing::default(),
            lifetime_drops: DropCounters::default(),
            lifetime_latency: LatencyHistogram::new(),
            clock_ns: 0,
            snapshot_seq: 0,
            events_exported: 0,
            flight: None,
            windows: WindowedSeries::default(),
            last_cache: CacheStats::default(),
        };
        module.refresh_dom();
        module
    }

    /// A module with the default configuration and a pass-through app.
    pub fn passthrough() -> FlexSfp {
        FlexSfp::new(ModuleConfig::default(), Box::new(PassThrough))
    }

    /// Replace the application factory used at reboot.
    pub fn set_factory(&mut self, f: AppFactory) {
        self.factory = f;
    }

    /// Name of the running application.
    pub fn app_name(&self) -> &str {
        self.app.name()
    }

    /// Running application version.
    pub fn app_version(&self) -> u32 {
        self.app_version
    }

    /// Boot count.
    pub fn boots(&self) -> u32 {
        self.boots
    }

    /// Direct (mutable) access to the running application — the
    /// "local bus" between control core and PPE used by tests and the
    /// OOB management path.
    pub fn app_mut(&mut self) -> &mut dyn PacketProcessor {
        self.app.as_mut()
    }

    /// Arm the flight recorder: sample one in `every` dataplane packets
    /// (deterministically from `seed`), keeping up to `capacity`
    /// postcards in a bounded ring. Also turns on the running
    /// application's stage stamping; the setting survives reboots.
    pub fn enable_flight_recorder(&mut self, every: u64, seed: u64, capacity: usize) {
        self.flight = Some(FlightState {
            sampler: FlightSampler::new(every, seed),
            ring: FlightRing::new(capacity),
            seq: 0,
        });
        self.app.set_flight_recording(true);
    }

    /// Disarm the flight recorder, discarding any unread postcards and
    /// turning the application's stage stamping back off.
    pub fn disable_flight_recorder(&mut self) {
        self.app.set_flight_recording(false);
        self.flight = None;
    }

    /// Drain the recorded postcards, oldest first — what a
    /// `ReadFlightRecords` request on the OOB port returns. Empty when
    /// the recorder is disarmed.
    pub fn drain_flight_records(&mut self) -> Vec<FlightRecord> {
        self.flight
            .as_mut()
            .map(|f| f.ring.drain())
            .unwrap_or_default()
    }

    /// Postcards lost to ring overwrite since the recorder was armed.
    pub fn flight_overwritten(&self) -> u64 {
        self.flight.as_ref().map_or(0, |f| f.ring.overwritten())
    }

    /// The rolling windowed time-series (1 ms buckets by default) —
    /// also exported with every telemetry snapshot.
    pub fn windows(&self) -> &WindowedSeries {
        &self.windows
    }

    /// Replace the windowed-series geometry (bucket width × live-window
    /// count). Long soak runs widen the buckets and deepen the ring so
    /// the whole run stays SLO-evaluable instead of only the last
    /// 32 ms; call before offering traffic — swapping the series
    /// discards anything already recorded.
    pub fn configure_windows(&mut self, width_ns: u64, capacity: usize) {
        self.windows = WindowedSeries::new(width_ns, capacity);
    }

    /// Total design manifest: application + interfaces + control
    /// plane + shell plumbing (the Table 1 decomposition; the
    /// control-plane row is the Mi-V only for the softcore class).
    pub fn design_manifest(&self) -> ResourceManifest {
        self.app.resource_manifest()
            + self.config.cp_class.manifest()
            + table1::ELECTRICAL_IF
            + table1::OPTICAL_IF
            + self.config.shell.overhead_manifest()
    }

    /// Fit report of the whole design against the MPF200T.
    pub fn fit_report(&self) -> FitReport {
        Device::mpf200t().fit(self.design_manifest())
    }

    /// Module power at the given operating point. An SoC-class control
    /// plane adds its hard-processor watts to the static term.
    pub fn power(&self, line_utilization: f64, activity: f64) -> PowerBreakdown {
        let lanes = u32::from(self.edge.is_enabled()) + u32::from(self.optical.is_enabled());
        let mut p = self.power_model.power(
            &self.design_manifest(),
            self.config.ppe_clock,
            lanes,
            line_utilization,
            activity,
        );
        p.fpga_static_w += self.config.cp_class.extra_power_w();
        p
    }

    /// Age the laser by `hours` and refresh the DOM diagnostics.
    pub fn age_laser(&mut self, hours: f64) {
        self.laser_age_hours += hours;
        self.optical.health = self
            .vcsel
            .health_at(self.laser_age_hours, self.laser_ttf_hours);
        self.refresh_dom();
    }

    /// Override the sampled laser TTF (failure-injection hooks).
    pub fn set_laser_ttf_hours(&mut self, ttf: f64) {
        self.laser_ttf_hours = ttf;
    }

    /// Refresh the A2h diagnostics page from physical state.
    pub fn refresh_dom(&mut self) {
        let temp = 38.0 + 4.0 * self.power(1.0, 1.0).total_w();
        let rx_mw = 0.4; // nominal received light; link models override
        self.mgmt.update_dom(temp, 3.3, &self.optical.health, rx_mw);
    }

    /// Handle a control request arriving on the out-of-band management
    /// port (the arbiter's third port in Figure 1) — payload-level, no
    /// Ethernet framing. Returns the encoded response payload.
    pub fn handle_oob(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        let Some(req) = self.control.decode(payload) else {
            self.clock_ns += 1;
            self.events.record(self.clock_ns, EventKind::AuthReject);
            return None;
        };
        // Telemetry is answered at module level: the generic handler
        // cannot see the transceivers, event ring or laser model.
        if matches!(req, ControlRequest::ReadTelemetry) {
            let snap = self.telemetry_snapshot();
            return Some(
                self.control
                    .encode(&ControlResponse::Telemetry(Box::new(snap))),
            );
        }
        // The flight ring likewise lives in the shell, not the control
        // plane: drain and answer before the generic handler.
        if matches!(req, ControlRequest::ReadFlightRecords) {
            let records = self.drain_flight_records();
            return Some(
                self.control
                    .encode(&ControlResponse::FlightRecords(records)),
            );
        }
        // A commit flashes the image staged at `slot`; remember it so
        // the success can be traced as a Reprogram event.
        let committing_slot = match (&req, self.control.update_state()) {
            (ControlRequest::CommitUpdate, UpdateState::Receiving { slot, .. }) => {
                Some(*slot as u8)
            }
            _ => None,
        };
        // An abort that lands while an update is active tears it down;
        // trace that as its own event so a host resynchronising after
        // channel loss is visible in the ring.
        let aborting_update = matches!(
            (&req, self.control.update_state()),
            (
                ControlRequest::AbortUpdate,
                UpdateState::Receiving { .. } | UpdateState::Staged { .. }
            )
        );
        let dom = self.mgmt.read_dom();
        let mut ctx = ControlContext {
            app: self.app.as_mut(),
            flash: &mut self.flash,
            dom,
            module_id: &self.config.id,
            app_version: self.app_version,
            boots: self.boots,
        };
        let resp = self.control.handle(req, &mut ctx);
        if let (Some(slot), ControlResponse::Ack) = (committing_slot, &resp) {
            self.clock_ns += 1;
            self.events
                .record(self.clock_ns, EventKind::Reprogram { slot });
        }
        if aborting_update && matches!(resp, ControlResponse::Ack) {
            self.clock_ns += 1;
            self.events.record(self.clock_ns, EventKind::UpdateAbort);
        }
        let encoded = self.control.encode(&resp);
        self.maybe_reboot();
        Some(encoded)
    }

    /// Consume a pending activation and reboot from that flash slot.
    /// Falls back to the golden slot (0) when the staged image is
    /// corrupt, unknown to the factory, or does not fit the device.
    pub fn maybe_reboot(&mut self) -> bool {
        let Some(slot) = self.control.pending_activation.take() else {
            return false;
        };
        self.boots += 1;
        // The softcore restarts on reboot, so the in-memory update FSM
        // does not survive: tear down any in-progress transfer. This is
        // what keeps a rollback from wedging the next deploy.
        self.control.reset_update();
        let ok = self.try_boot_slot(slot);
        self.clock_ns += 1;
        self.events.record(
            self.clock_ns,
            EventKind::Reboot {
                slot: slot as u8,
                ok,
            },
        );
        if ok {
            return true;
        }
        // Fallback: golden image.
        if !self.try_boot_slot(0) {
            // Last resort: a pass-through "factory" datapath.
            self.app = Box::new(PassThrough);
            self.app_version = 0;
        }
        true
    }

    fn try_boot_slot(&mut self, slot: usize) -> bool {
        let Ok(raw) = self
            .flash
            .read_slot(slot, flexsfp_fabric::flash::SLOT_BYTES)
        else {
            return false;
        };
        let Ok(bs) = Bitstream::from_bytes(trim_flash_image(raw)) else {
            return false;
        };
        // Fit check before activation.
        let total = bs.meta.manifest
            + table1::MI_V
            + table1::ELECTRICAL_IF
            + table1::OPTICAL_IF
            + self.config.shell.overhead_manifest();
        if !Device::mpf200t().fit(total).fits() {
            return false;
        }
        let Some(app) = (self.factory)(&bs.meta) else {
            return false;
        };
        self.app = app;
        self.app_version = bs.meta.version;
        // Recorder settings survive the reboot: re-arm stage stamping
        // on the freshly booted application.
        if self.flight.is_some() {
            self.app.set_flight_recording(true);
        }
        true
    }

    /// Run a packet sequence through the module, materializing every
    /// output packet sorted by departure time. Packets must be sorted by
    /// arrival time; out-of-order packets are dropped and counted (see
    /// [`run_stream_with`](Self::run_stream_with)).
    pub fn run(&mut self, packets: Vec<SimPacket>) -> SimReport {
        let mut outputs = Vec::with_capacity(packets.len());
        let mut report = self.run_stream_with(packets, |o| outputs.push(o));
        outputs.sort_by_key(|o| o.departure_ns);
        report.outputs = outputs;
        report
    }

    /// Run a packet stream through the module without retaining outputs:
    /// aggregate statistics only, memory O(1) in trace length. This is
    /// the throughput-measurement entry point — 10M+-packet runs are
    /// feasible because neither the trace nor the outputs are ever
    /// materialized.
    pub fn run_stream<I>(&mut self, packets: I) -> SimReport
    where
        I: IntoIterator<Item = SimPacket>,
    {
        self.run_stream_with(packets, |_| {})
    }

    /// The streaming simulation core behind [`run`](Self::run) and
    /// [`run_stream`](Self::run_stream): consume `packets` lazily and
    /// emit each output packet to `sink` as it is produced.
    ///
    /// Outputs reach the sink in processing order, which is not globally
    /// departure order (control-plane replies depart 10 µs after their
    /// request); [`run`](Self::run) re-sorts. The sink owns each frame —
    /// recycling them into the [`flexsfp_wire::PacketArena`] the trace
    /// was leased from keeps a whole run allocation-free.
    ///
    /// Packets must be offered sorted by arrival time. A packet that
    /// arrives before its predecessor is dropped and counted
    /// (`drops.unsorted`, plus an `UnsortedArrival` dataplane event)
    /// rather than aborting the run, so host-composed traces (e.g.
    /// merged fleet traffic) can never crash the process.
    pub fn run_stream_with<I, F>(&mut self, packets: I, mut sink: F) -> SimReport
    where
        I: IntoIterator<Item = SimPacket>,
        F: FnMut(OutputPacket),
    {
        let mut session = self.begin_stream();
        let mut tagged = |_tag: u64, out: OutputPacket| sink(out);
        for (seq, pkt) in packets.into_iter().enumerate() {
            session.offer(self, seq as u64, pkt, &mut tagged);
        }
        session.finish(self, &mut tagged)
    }

    /// Begin an incremental streaming run: the session half of
    /// [`run_stream_with`](Self::run_stream_with), reified for callers
    /// that cannot hand over a complete iterator — the sharded
    /// dataplane dispatcher interleaves packet offers with ring I/O
    /// and needs every output labelled with the input tag that
    /// produced it. Drive it with [`StreamSession::offer`] and close
    /// with [`StreamSession::finish`].
    pub fn begin_stream(&mut self) -> StreamSession {
        StreamSession {
            report: SimReport::default(),
            server: PpeServer::new(self.config.fifo_bytes),
            serdes_fs: (self.config.serdes_latency_ns * 1e6) as u128,
            ppe_period_fs: self.config.ppe_clock.period_fs() as u128,
            pipeline_cycles: 4 + 3 * u128::from(self.app.pipeline_depth()),
            last_time_ns: 0,
            prev_arrival: 0,
            last_beats: (usize::MAX, 0),
            batch: Vec::with_capacity(PPE_BATCH),
            pending: Vec::with_capacity(PPE_BATCH),
        }
    }

    /// Produce one telemetry export: lifetime counters and latency
    /// histogram, the DOM/laser-health readout, and the drained event
    /// ring (module trace buffer plus the running app's own ring).
    /// This is what a `ReadTelemetry` request on the OOB port returns.
    pub fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        self.snapshot_seq += 1;
        self.refresh_dom();
        let dom = self.mgmt.read_dom();
        let diag = crate::failure::diagnose(&dom, &self.vcsel, &DiagnosisThresholds::default());
        let mut events = self.events.drain();
        events.extend(self.app.drain_events());
        events.sort_by_key(|e| e.timestamp_ns);
        self.events_exported += events.len() as u64;
        TelemetrySnapshot {
            module_id: self.config.id.clone(),
            seq: self.snapshot_seq,
            app: self.app.name().to_string(),
            app_version: self.app_version,
            boots: self.boots,
            edge_rx: port_counters(&self.edge.rx),
            edge_tx: port_counters(&self.edge.tx),
            optical_rx: port_counters(&self.optical.rx),
            optical_tx: port_counters(&self.optical.tx),
            drops: self.lifetime_drops,
            latency: self.lifetime_latency.clone(),
            dom: DomSnapshot::from_milliwatts(
                dom.tx_power_mw,
                dom.rx_power_mw,
                dom.tx_bias_ma,
                dom.temperature_c,
            ),
            laser_fault: fault_label(&diag).to_string(),
            laser_healthy: diag == FaultDiagnosis::Healthy,
            events,
            events_overwritten: self.events.overwritten() + self.app.events_lost(),
            events_drained: self.events_exported,
            cache: self.app.cache_stats().unwrap_or_default(),
            table: self.app.table_stats().unwrap_or_default(),
            ctrl: self.control.ctrl_counters(),
            windows: self.windows.clone(),
        }
    }
}

/// An in-progress streaming run: the loop state of
/// [`FlexSfp::run_stream_with`] reified as a value, so callers can
/// drive packets one at a time instead of surrendering an iterator.
/// Built by [`FlexSfp::begin_stream`]; the sharded dataplane holds one
/// session per shard module and interleaves [`offer`](Self::offer)
/// calls with ring I/O.
///
/// Each offered packet carries a caller-chosen `tag` (the global input
/// sequence number in sharded runs), handed back verbatim with every
/// output that packet produces — including outputs released later by a
/// batch flush — so a reconciler can restore global order without
/// inspecting frames.
///
/// The session borrows nothing from the module: `&mut FlexSfp` is
/// passed to each call, keeping the module usable for telemetry and
/// OOB control between offers. Run one live session per module;
/// interleaving two sessions over one module would share transceiver
/// and window state in arrival-order-breaking ways.
pub struct StreamSession {
    report: SimReport,
    server: PpeServer,
    serdes_fs: u128,
    ppe_period_fs: u128,
    pipeline_cycles: u128,
    last_time_ns: u64,
    prev_arrival: u64,
    /// One-entry memo of beats_for(len): the ceiling division has a
    /// runtime divisor, and fixed-size workloads repeat one length.
    last_beats: (usize, u128),
    batch: Vec<BatchPacket>,
    pending: Vec<PendingPpe>,
}

impl StreamSession {
    /// Run the pending PPE batch (if any) against the module, with an
    /// optional flight capture for the newest slot. All the disjoint
    /// module fields the flush needs are split here, in one place.
    fn flush_batch<F: FnMut(u64, OutputPacket)>(
        &mut self,
        m: &mut FlexSfp,
        cap: Option<FlightCapture>,
        sink: &mut F,
    ) {
        let FlexSfp {
            app,
            edge,
            optical,
            events,
            lifetime_drops,
            windows,
            last_cache,
            flight,
            ..
        } = m;
        let capture = match (cap, flight.as_mut()) {
            (Some(c), Some(state)) => Some((c, state)),
            _ => None,
        };
        flush_ppe_batch(
            app.as_mut(),
            &mut self.batch,
            &mut self.pending,
            &mut self.report,
            edge,
            optical,
            events,
            lifetime_drops,
            windows,
            last_cache,
            capture,
            &mut self.last_time_ns,
            sink,
        );
    }

    /// Flush the pending PPE batch to the sink. Offers already do this
    /// at every ordering boundary; the dispatcher calls it at flush
    /// barriers so shard progress is bounded between watermarks.
    pub fn flush<F: FnMut(u64, OutputPacket)>(&mut self, m: &mut FlexSfp, sink: &mut F) {
        self.flush_batch(m, None, sink);
    }

    /// Offer one packet to the module, emitting any outputs it (or a
    /// batch flush it triggers) produces to `sink` as `(tag, output)`
    /// pairs. Packets must be offered in nondecreasing arrival order;
    /// stragglers are dropped and counted exactly as in
    /// [`FlexSfp::run_stream_with`].
    pub fn offer<F: FnMut(u64, OutputPacket)>(
        &mut self,
        m: &mut FlexSfp,
        tag: u64,
        pkt: SimPacket,
        sink: &mut F,
    ) {
        self.offer_with_key(m, tag, pkt, KeyHint::Unknown, sink);
    }

    /// [`offer`](Self::offer) with a caller-supplied pre-parsed key
    /// hint. The sharded dispatcher extracts each frame's
    /// [`FlowKey`](flexsfp_ppe::FlowKey) once for flow hashing and
    /// hands it down here, so the shard neither re-parses for the
    /// control-plane arbiter nor for the microflow cache — the
    /// single-parse path. `offer` itself calls this with
    /// [`KeyHint::Unknown`]: the gates then stay conservative and the
    /// one extraction happens lazily in the PPE pipeline, so the
    /// serial path performs exactly one parse too (and none for
    /// packets the pipeline never keys).
    pub fn offer_with_key<F: FnMut(u64, OutputPacket)>(
        &mut self,
        m: &mut FlexSfp,
        tag: u64,
        pkt: SimPacket,
        hint: KeyHint,
        sink: &mut F,
    ) {
        self.report.offered += 1;
        self.report.offered_bytes += pkt.frame.len() as u64;
        if pkt.arrival_ns < self.prev_arrival {
            // Straggler in a host-composed trace: drop and count
            // before it reaches ingress accounting.
            self.report.drops.unsorted += 1;
            m.lifetime_drops.unsorted += 1;
            m.events.record(
                pkt.arrival_ns,
                EventKind::Drop {
                    reason: DropReason::UnsortedArrival,
                },
            );
            m.windows.record_drop(pkt.arrival_ns, true);
            return;
        }
        self.prev_arrival = pkt.arrival_ns;
        self.last_time_ns = self.last_time_ns.max(pkt.arrival_ns);

        // Ingress accounting.
        let (rx_ok, _ingress) = match pkt.direction {
            Direction::EdgeToOptical => (m.edge.record_rx(pkt.frame.len()), Interface::Edge),
            Direction::OpticalToEdge => (m.optical.record_rx(pkt.frame.len()), Interface::Optical),
        };
        if !rx_ok {
            self.report.drops.link += 1;
            m.lifetime_drops.link += 1;
            m.events.record(
                pkt.arrival_ns,
                EventKind::Drop {
                    reason: DropReason::LinkDown,
                },
            );
            m.windows.record_drop(pkt.arrival_ns, true);
            return;
        }

        // The single-parse contract: a dispatcher that already
        // extracted the microflow key passes it in, and every
        // downstream decision — the microservice filter, the
        // control-plane arbiter filter, and the PPE's flow cache —
        // reuses it instead of re-parsing. With no hint (`Unknown`,
        // the serial path) the gates stay conservative and the one
        // extraction happens lazily in the PPE pipeline, exactly
        // where it always did — frames the pipeline never keys
        // (cache disabled, bypass) are never parsed for a key at all.
        let key = hint;

        // Active-Control-Plane shell: the control plane terminates
        // traffic addressed to the module itself (ARP, ICMP echo)
        // from either interface — the §4.1 "microservice node".
        //
        // Fast filter: an untagged canonical-IPv4 frame (the key
        // extracted and saw no VLANs) can only be a microservice frame
        // if it is ICMP addressed to the management IP — `respond`
        // parses the same bytes at the same offsets. Keyless frames
        // (ARP, non-IPv4, odd shapes) and tagged frames still take the
        // full parse, so behavior is unchanged.
        if m.config.shell.control_plane_active() {
            let maybe_mine = match key {
                KeyHint::Key(k) => {
                    k.vlan_count() != 0 || (k.dst_ip() == m.config.mgmt_ip && k.proto() == 1)
                }
                _ => true,
            };
            if let Some((_svc, reply)) = maybe_mine
                .then(|| {
                    crate::microservice::respond(&pkt.frame, m.config.mgmt_mac, m.config.mgmt_ip)
                })
                .flatten()
            {
                // Keep sink emission in arrival order.
                self.flush_batch(m, None, sink);
                self.report.cp_originated += 1;
                // Replies exit the interface the request arrived on;
                // the softcore path costs ~10 µs.
                let back = match pkt.direction {
                    Direction::EdgeToOptical => Interface::Edge,
                    Direction::OpticalToEdge => Interface::Optical,
                };
                let departure = pkt.arrival_ns + 10_000;
                match back {
                    Interface::Edge => m.edge.record_tx(reply.len()),
                    Interface::Optical => m.optical.record_tx(reply.len()),
                };
                sink(
                    tag,
                    OutputPacket {
                        departure_ns: departure,
                        egress: back,
                        frame: reply,
                        latency_ns: 10_000.0,
                    },
                );
                self.last_time_ns = self.last_time_ns.max(departure);
                return;
            }
        }

        // Arbiter: control-plane frames divert before the PPE. The
        // pending batch must run first: control ops mutate tables,
        // and earlier packets belong to the pre-mutation state.
        //
        // Fast filter: `classify` demands unicast-to-us IPv4 to the
        // management IP on the control port. For an untagged frame
        // whose key extracted, the destination IP in the key is the
        // one `classify` would read, so a mismatch proves the frame is
        // dataplane without the full parse (this removes the last
        // per-packet parse from the serial fast path). Tagged or
        // keyless frames fall through to `classify` unchanged.
        let maybe_control = match key {
            KeyHint::Key(k) => m.control.may_classify(&k),
            _ => true,
        };
        if pkt.direction == Direction::EdgeToOptical
            && maybe_control
            && m.control.classify(&pkt.frame)
        {
            self.flush_batch(m, None, sink);
            let dom = m.mgmt.read_dom();
            let mut ctx = ControlContext {
                app: m.app.as_mut(),
                flash: &mut m.flash,
                dom,
                module_id: &m.config.id,
                app_version: m.app_version,
                boots: m.boots,
            };
            if let Some(resp) = m.control.handle_frame(&pkt.frame, &mut ctx) {
                self.report.control_handled += 1;
                // Response merges into the edge-bound stream; the
                // control path is slow (softcore), model 10 µs.
                let departure = pkt.arrival_ns + 10_000;
                m.edge.record_tx(resp.len());
                sink(
                    tag,
                    OutputPacket {
                        departure_ns: departure,
                        egress: Interface::Edge,
                        frame: resp,
                        latency_ns: 10_000.0,
                    },
                );
                self.last_time_ns = self.last_time_ns.max(departure);
            } else {
                // A classified control frame that failed decode or
                // authentication: trace the rejection.
                m.events.record(pkt.arrival_ns, EventKind::AuthReject);
            }
            m.maybe_reboot();
            return;
        }

        let arrival_fs = u128::from(pkt.arrival_ns) * 1_000_000;
        let uses_ppe = m.config.shell.ppe_applies(pkt.direction);
        // One sampler draw per dataplane packet (PPE and bypass
        // alike), taken before the FIFO decision so overflow drops
        // are observable in the flight record too. Control and
        // microservice frames diverted above never draw.
        let sampled = match m.flight.as_mut() {
            Some(f) => f.sampler.sample(),
            None => false,
        };

        if uses_ppe {
            let beats = if self.last_beats.0 == pkt.frame.len() {
                self.last_beats.1
            } else {
                let b = u128::from(m.config.datapath.beats_for(pkt.frame.len()));
                self.last_beats = (pkt.frame.len(), b);
                b
            };
            let service_fs = beats * self.ppe_period_fs;
            // Observe the queue a sampled packet meets before it is
            // admitted (admission changes the backlog).
            let depth = if sampled {
                Some(self.server.depth_at(arrival_fs))
            } else {
                None
            };
            let Some(start_fs) = self.server.admit(arrival_fs, pkt.frame.len(), service_fs) else {
                self.report.drops.fifo_overflow += 1;
                m.lifetime_drops.fifo_overflow += 1;
                m.events.record(
                    pkt.arrival_ns,
                    EventKind::Drop {
                        reason: DropReason::FifoOverflow,
                    },
                );
                m.windows.record_drop(pkt.arrival_ns, true);
                if sampled {
                    if let Some(state) = m.flight.as_mut() {
                        let (queue_bytes, queue_pkts) = depth.unwrap_or((0, 0));
                        state.push(
                            pkt.arrival_ns,
                            FlightCapture {
                                queue_bytes,
                                queue_pkts,
                            },
                            FlightStamp::default(),
                            FlightVerdict::Dropped {
                                reason: DropReason::FifoOverflow,
                            },
                        );
                    }
                }
                return;
            };
            let ctx = ProcessContext {
                timestamp_ns: pkt.arrival_ns,
                direction: pkt.direction,
            };
            self.batch.push(BatchPacket::with_key(ctx, pkt.frame, key));
            self.pending.push(PendingPpe {
                tag,
                arrival_ns: pkt.arrival_ns,
                arrival_fs,
                departure_fs: start_fs
                    + service_fs
                    + self.pipeline_cycles * self.ppe_period_fs
                    + 2 * self.serdes_fs,
            });
            if sampled {
                // A sampled packet flushes immediately: batching is
                // semantically per-packet, so results are unchanged,
                // and the postcard completes while the packet is the
                // processor's most recent.
                let (queue_bytes, queue_pkts) = depth.unwrap_or((0, 0));
                let cap = FlightCapture {
                    queue_bytes,
                    queue_pkts,
                };
                self.flush_batch(m, Some(cap), sink);
            } else if self.batch.len() == PPE_BATCH {
                self.flush_batch(m, None, sink);
            }
        } else {
            // Bypass path: SerDes in, merge, SerDes out. Flush so
            // outputs still reach the sink in arrival order.
            self.flush_batch(m, None, sink);
            let outcome = dispatch_output(
                tag,
                pkt.frame,
                Verdict::Forward,
                pkt.direction,
                pkt.arrival_ns,
                arrival_fs,
                arrival_fs + 2 * self.serdes_fs,
                &mut self.report,
                &mut m.edge,
                &mut m.optical,
                &mut m.events,
                &mut m.lifetime_drops,
                &mut m.windows,
                &mut self.last_time_ns,
                sink,
            );
            if sampled {
                if let Some(state) = m.flight.as_mut() {
                    // No PPE queue and no stages on the bypass path:
                    // an honest all-zero postcard bar the verdict.
                    state.push(
                        pkt.arrival_ns,
                        FlightCapture {
                            queue_bytes: 0,
                            queue_pkts: 0,
                        },
                        FlightStamp::default(),
                        outcome.verdict(),
                    );
                }
            }
        }
    }

    /// Close the run: flush the final partial batch, stamp the
    /// duration, and fold the run into the module's lifetime
    /// telemetry — byte-identical to how `run_stream_with` ends.
    pub fn finish<F: FnMut(u64, OutputPacket)>(
        mut self,
        m: &mut FlexSfp,
        sink: &mut F,
    ) -> SimReport {
        self.flush_batch(m, None, sink);
        self.report.duration_ns = self.last_time_ns;
        m.lifetime_latency.merge(self.report.latency.histogram());
        m.clock_ns = m.clock_ns.max(self.last_time_ns);
        self.report
    }
}

fn port_counters(lane: &flexsfp_fabric::serdes::LaneCounters) -> PortCounters {
    PortCounters {
        frames: lane.frames,
        bytes: lane.bytes,
        errors: lane.errors,
    }
}

/// Stable lowercase label for a fault diagnosis (Prometheus-friendly).
fn fault_label(d: &FaultDiagnosis) -> &'static str {
    match d {
        FaultDiagnosis::Healthy => "healthy",
        FaultDiagnosis::LaserDegradation => "laser_degradation",
        FaultDiagnosis::LaserFailed => "laser_failed",
        FaultDiagnosis::DriverFault => "driver_fault",
        FaultDiagnosis::RxLoss => "rx_loss",
    }
}

/// Strip the trailing 0xFF erase fill from a flash slot read so the
/// bitstream parser sees only the image. The bitstream's own length
/// fields + CRC make this safe.
fn trim_flash_image(raw: &[u8]) -> &[u8] {
    // Find the last non-0xFF byte; the CRC trailer is extremely unlikely
    // to be 0xFFFFFFFF on a real image (and the golden images we write
    // never are).
    let end = raw.iter().rposition(|&b| b != 0xff).map_or(0, |p| p + 1);
    &raw[..end]
}

fn default_factory(meta: &BitstreamMeta) -> Option<Box<dyn PacketProcessor>> {
    match meta.app.as_str() {
        "passthrough" => Some(Box::new(PassThrough)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ControlRequest, ControlResponse};
    use flexsfp_ppe::engine::DropAll;
    use flexsfp_wire::builder::PacketBuilder;

    fn data_frame(len: usize) -> Vec<u8> {
        let payload = vec![0xabu8; len.saturating_sub(14 + 20 + 8)];
        let mut f = PacketBuilder::eth_ipv4_udp(
            MacAddr([0x10; 6]),
            MacAddr([0x20; 6]),
            0xc0a80001,
            0x0a000001,
            1111,
            2222,
            &payload,
        );
        f.truncate(len.max(60));
        f
    }

    fn line_rate_trace(direction: Direction, n: usize, len: usize) -> Vec<SimPacket> {
        // 10G line rate: one `len`-byte frame every (len+20)*0.8 ns.
        let gap_ns = ((len + 20) as f64 * 0.8).ceil() as u64;
        (0..n)
            .map(|i| SimPacket {
                arrival_ns: i as u64 * gap_ns,
                direction,
                frame: data_frame(len),
            })
            .collect()
    }

    #[test]
    fn passthrough_forwards_at_line_rate() {
        let mut m = FlexSfp::passthrough();
        let trace = line_rate_trace(Direction::EdgeToOptical, 2_000, 64);
        let report = m.run(trace);
        assert_eq!(report.offered, 2_000);
        assert_eq!(report.forwarded.1, 2_000);
        assert_eq!(report.drops.total(), 0);
        assert!(report.latency.mean_ns() > 0.0);
        // Sub-microsecond transit (the low-latency claim).
        assert!(
            report.latency.max_ns() < 1_000.0,
            "max latency {} ns",
            report.latency.max_ns()
        );
        // Percentiles are ordered and bracketed by min/max.
        assert!(report.latency.p50_ns() <= report.latency.p99_ns());
        assert!(report.latency.p99_ns() <= report.latency.max_ns());
    }

    #[test]
    fn one_way_filter_bypasses_reverse_direction() {
        // Even with a drop-all app, optical→edge traffic passes the
        // One-Way-Filter untouched.
        let mut m = FlexSfp::new(ModuleConfig::default(), Box::new(DropAll));
        let fwd = m.run(line_rate_trace(Direction::EdgeToOptical, 100, 128));
        assert_eq!(fwd.drops.app, 100);
        assert_eq!(fwd.forwarded.1, 0);
        let rev = m.run(line_rate_trace(Direction::OpticalToEdge, 100, 128));
        assert_eq!(rev.forwarded.0, 100);
        assert_eq!(rev.drops.total(), 0);
    }

    #[test]
    fn two_way_core_at_1x_overloads_and_2x_sustains() {
        // Figure 1 / §4.1: aggregating both directions doubles the PPE
        // load; at 1× clock the FIFO overflows, at 2× it keeps up.
        let mut trace = Vec::new();
        let n = 5_000;
        let gap_ns = ((64 + 20) as f64 * 0.8).ceil() as u64;
        for i in 0..n {
            let t = i as u64 * gap_ns;
            trace.push(SimPacket {
                arrival_ns: t,
                direction: Direction::EdgeToOptical,
                frame: data_frame(64),
            });
            trace.push(SimPacket {
                arrival_ns: t,
                direction: Direction::OpticalToEdge,
                frame: data_frame(64),
            });
        }

        let mut slow = FlexSfp::new(
            ModuleConfig {
                shell: ShellKind::TwoWayCore,
                ppe_clock: ClockDomain::XGMII_10G,
                ..Default::default()
            },
            Box::new(PassThrough),
        );
        let r_slow = slow.run(trace.clone());
        assert!(
            r_slow.drops.fifo_overflow > 0,
            "1x Two-Way-Core should overflow: {:?}",
            r_slow.drops
        );

        let mut fast = FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(PassThrough));
        let r_fast = fast.run(trace);
        assert_eq!(r_fast.drops.total(), 0, "{:?}", r_fast.drops);
        assert_eq!(r_fast.forwarded.0 + r_fast.forwarded.1, 2 * n as u64);
    }

    #[test]
    fn control_frames_divert_and_answer() {
        let mut m = FlexSfp::passthrough();
        let payload =
            ControlPlane::encode_request(&AuthKey::DEFAULT, &ControlRequest::Ping { nonce: 5 });
        let frame = PacketBuilder::eth_ipv4_udp(
            m.config.mgmt_mac,
            MacAddr([0xee; 6]),
            0x0a000101,
            m.config.mgmt_ip,
            40_000,
            crate::control::CONTROL_PORT,
            &payload,
        );
        let report = m.run(vec![SimPacket {
            arrival_ns: 0,
            direction: Direction::EdgeToOptical,
            frame,
        }]);
        assert_eq!(report.control_handled, 1);
        assert_eq!(report.forwarded.1, 0); // did not hit the dataplane
        assert_eq!(report.outputs.len(), 1);
        assert_eq!(report.outputs[0].egress, Interface::Edge);
        let out = &report.outputs[0].frame;
        let eth = flexsfp_wire::EthernetFrame::new_checked(&out[..]).unwrap();
        let ip = flexsfp_wire::Ipv4Packet::new_checked(eth.payload()).unwrap();
        let udp = flexsfp_wire::UdpDatagram::new_checked(ip.payload()).unwrap();
        let resp = ControlPlane::decode_response(&AuthKey::DEFAULT, udp.payload()).unwrap();
        assert_eq!(resp, ControlResponse::Pong { nonce: 5 });
    }

    #[test]
    fn oob_port_reaches_control_plane() {
        let mut m = FlexSfp::passthrough();
        let req = ControlPlane::encode_request(&AuthKey::DEFAULT, &ControlRequest::GetInfo);
        let resp_payload = m.handle_oob(&req).unwrap();
        let resp = ControlPlane::decode_response(&AuthKey::DEFAULT, &resp_payload).unwrap();
        match resp {
            ControlResponse::Info { app, boots, .. } => {
                assert_eq!(app, "passthrough");
                assert_eq!(boots, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ota_update_and_reboot_via_oob() {
        let mut m = FlexSfp::passthrough();
        let bs = Bitstream::new(
            "passthrough",
            7,
            ResourceManifest::new(100, 100, 0, 0),
            156_250_000,
        );
        let image = bs.to_bytes();
        let crc = flexsfp_fabric::hash::crc32(&image);
        let key = AuthKey::DEFAULT;
        let send = |m: &mut FlexSfp, req: &ControlRequest| -> ControlResponse {
            let payload = ControlPlane::encode_request(&key, req);
            let resp = m.handle_oob(&payload).unwrap();
            ControlPlane::decode_response(&key, &resp).unwrap()
        };
        assert_eq!(
            send(
                &mut m,
                &ControlRequest::BeginUpdate {
                    slot: 1,
                    total_len: image.len(),
                    crc32: crc
                }
            ),
            ControlResponse::Ack
        );
        for (seq, chunk) in image.chunks(crate::reprogram::MAX_CHUNK).enumerate() {
            assert_eq!(
                send(
                    &mut m,
                    &ControlRequest::UpdateChunk {
                        seq: seq as u32,
                        data: chunk.to_vec()
                    }
                ),
                ControlResponse::Ack
            );
        }
        assert_eq!(
            send(&mut m, &ControlRequest::CommitUpdate),
            ControlResponse::Ack
        );
        assert_eq!(
            send(&mut m, &ControlRequest::Activate { slot: 1 }),
            ControlResponse::Ack
        );
        // The module rebooted into version 7.
        assert_eq!(m.boots(), 2);
        assert_eq!(m.app_version(), 7);
        assert_eq!(m.app_name(), "passthrough");
    }

    #[test]
    fn corrupt_staged_image_falls_back_to_golden() {
        let mut m = FlexSfp::passthrough();
        // Write a golden image first.
        let golden = Bitstream::new("passthrough", 1, ResourceManifest::ZERO, 156_250_000);
        m.flash.write_slot(0, &golden.to_bytes()).unwrap();
        // Slot 2 contains garbage.
        m.flash.write_slot(2, b"not a bitstream").unwrap();
        m.control.pending_activation = Some(2);
        assert!(m.maybe_reboot());
        assert_eq!(m.boots(), 2);
        // Booted the golden image, not the garbage.
        assert_eq!(m.app_version(), 1);
        assert_eq!(m.app_name(), "passthrough");
    }

    #[test]
    fn oversized_design_refused_at_boot() {
        let mut m = FlexSfp::passthrough();
        let golden = Bitstream::new("passthrough", 1, ResourceManifest::ZERO, 156_250_000);
        m.flash.write_slot(0, &golden.to_bytes()).unwrap();
        // A design claiming more LUTs than the device has.
        let huge = Bitstream::new(
            "passthrough",
            9,
            ResourceManifest::new(500_000, 0, 0, 0),
            156_250_000,
        );
        m.flash.write_slot(1, &huge.to_bytes()).unwrap();
        m.control.pending_activation = Some(1);
        m.maybe_reboot();
        // Fell back to golden v1, not the huge v9.
        assert_eq!(m.app_version(), 1);
    }

    #[test]
    fn failed_laser_drops_optical_egress() {
        let mut m = FlexSfp::passthrough();
        m.set_laser_ttf_hours(10_000.0);
        m.age_laser(20_000.0); // 2× TTF: far beyond failure
        let report = m.run(line_rate_trace(Direction::EdgeToOptical, 50, 64));
        assert_eq!(report.drops.link, 50);
        assert_eq!(report.forwarded.1, 0);
        // ...but the edge-bound direction still works (electrical).
        let rev = m.run(line_rate_trace(Direction::OpticalToEdge, 50, 64));
        assert_eq!(rev.forwarded.0, 50);
    }

    #[test]
    fn dom_reflects_laser_aging() {
        let mut m = FlexSfp::passthrough();
        let healthy = m.mgmt.read_dom();
        m.set_laser_ttf_hours(100_000.0);
        m.age_laser(90_000.0);
        let aged = m.mgmt.read_dom();
        assert!(aged.tx_power_dbm() < healthy.tx_power_dbm());
        assert!(aged.tx_bias_ma > healthy.tx_bias_ma);
        let diag = crate::failure::diagnose(
            &aged,
            &m.vcsel,
            &crate::failure::DiagnosisThresholds::default(),
        );
        assert_ne!(diag, crate::failure::FaultDiagnosis::Healthy);
    }

    #[test]
    fn soc_control_plane_busts_the_sfp_envelope() {
        // §4.1: SoC-based control planes are "more expensive and
        // power-hungry" — with one, the module exceeds every SFP+
        // power class under stress, while the softcore stays inside.
        let softcore = FlexSfp::new(ModuleConfig::default(), Box::new(PassThrough));
        let soc = FlexSfp::new(
            ModuleConfig {
                cp_class: ControlPlaneClass::Soc,
                ..Default::default()
            },
            Box::new(PassThrough),
        );
        let p_soft = softcore.power(1.0, 1.0).total_w();
        let p_soc = soc.power(1.0, 1.0).total_w();
        assert!(p_soc > p_soft + 1.0);
        use flexsfp_fabric::power::PowerClass;
        assert!(PowerClass::classify(p_soft).is_some());
        assert!(PowerClass::classify(p_soc).is_none(), "SoC at {p_soc} W");
        // The SoC frees the Mi-V's fabric share.
        assert!(soc.design_manifest().lut4 < softcore.design_manifest().lut4);
    }

    #[test]
    fn power_accounting_matches_calibration() {
        let m = FlexSfp::passthrough();
        let idle = m.power(0.0, 0.0).total_w();
        let busy = m.power(1.0, 1.0).total_w();
        assert!(idle < busy);
        // Within the SFP+ envelope even flat out.
        assert!(busy < 2.0, "busy power {busy}");
    }

    #[test]
    fn fit_report_for_passthrough_fits() {
        let m = FlexSfp::passthrough();
        assert!(m.fit_report().fits());
    }

    #[test]
    fn active_shell_answers_ping_from_the_wire() {
        let mut m = FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(PassThrough));
        m.config.shell = crate::ShellKind::ActiveControlPlane;
        // An ICMP echo request to the module's own management IP,
        // arriving from the optical side.
        let mut icmp_bytes = vec![0u8; 8 + 4];
        {
            let mut p = flexsfp_wire::IcmpPacket::new_unchecked(&mut icmp_bytes);
            p.set_msg_type(flexsfp_wire::IcmpType::EchoRequest);
            p.set_echo_ident(1);
            p.set_echo_seq(1);
        }
        flexsfp_wire::IcmpPacket::new_unchecked(&mut icmp_bytes).fill_checksum();
        let ip = PacketBuilder::ipv4(
            0x0a000101,
            m.config.mgmt_ip,
            flexsfp_wire::IpProtocol::Icmp,
            &icmp_bytes,
        );
        let ping = PacketBuilder::ethernet(
            m.config.mgmt_mac,
            MacAddr([0xee; 6]),
            flexsfp_wire::EtherType::Ipv4,
            &ip,
        );
        let report = m.run(vec![
            SimPacket {
                arrival_ns: 0,
                direction: Direction::OpticalToEdge,
                frame: ping.clone(),
            },
            // Ordinary traffic still flows through the PPE.
            SimPacket {
                arrival_ns: 100,
                direction: Direction::OpticalToEdge,
                frame: data_frame(64),
            },
        ]);
        assert_eq!(report.cp_originated, 1);
        assert_eq!(report.forwarded.0, 1); // only the data frame transits
                                           // The reply went back out the optical side.
        let reply = report
            .outputs
            .iter()
            .find(|o| o.egress == Interface::Optical)
            .unwrap();
        let eth = flexsfp_wire::EthernetFrame::new_checked(&reply.frame[..]).unwrap();
        assert_eq!(eth.dst(), MacAddr([0xee; 6]));

        // A passive shell does NOT answer: it is a bump in the wire.
        let mut passive = FlexSfp::passthrough();
        let r2 = passive.run(vec![SimPacket {
            arrival_ns: 0,
            direction: Direction::OpticalToEdge,
            frame: ping,
        }]);
        assert_eq!(r2.cp_originated, 0);
        assert_eq!(r2.forwarded.0, 1); // forwarded like any other frame
    }

    #[test]
    fn telemetry_snapshot_via_oob() {
        let mut m = FlexSfp::new(ModuleConfig::default(), Box::new(DropAll));
        m.run(line_rate_trace(Direction::EdgeToOptical, 20, 64));
        let req = ControlPlane::encode_request(&AuthKey::DEFAULT, &ControlRequest::ReadTelemetry);
        let resp_payload = m.handle_oob(&req).unwrap();
        let resp = ControlPlane::decode_response(&AuthKey::DEFAULT, &resp_payload).unwrap();
        let ControlResponse::Telemetry(snap) = resp else {
            panic!("expected telemetry");
        };
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.app, "drop-all");
        assert_eq!(snap.edge_rx.frames, 20);
        assert_eq!(snap.drops.app, 20);
        assert_eq!(snap.drops.total(), 20);
        // Every app drop left a trace event.
        assert_eq!(snap.events.len(), 20);
        assert!(snap.events.iter().all(|e| e.kind
            == EventKind::Drop {
                reason: DropReason::App
            }));
        assert_eq!(snap.events_overwritten, 0);
        assert_eq!(snap.events_drained, 20);
        assert!(snap.laser_healthy);
        assert_eq!(snap.laser_fault, "healthy");
        // A second snapshot finds the ring drained but keeps lifetime
        // counters.
        let resp2 = m.handle_oob(&req).unwrap();
        let ControlResponse::Telemetry(snap2) =
            ControlPlane::decode_response(&AuthKey::DEFAULT, &resp2).unwrap()
        else {
            panic!("expected telemetry");
        };
        assert_eq!(snap2.seq, 2);
        assert!(snap2.events.is_empty());
        assert_eq!(snap2.drops.app, 20);
    }

    #[test]
    fn lifetime_stats_accumulate_across_runs() {
        let mut m = FlexSfp::passthrough();
        m.run(line_rate_trace(Direction::EdgeToOptical, 10, 64));
        m.run(line_rate_trace(Direction::EdgeToOptical, 15, 64));
        let snap = m.telemetry_snapshot();
        assert_eq!(snap.latency.count(), 25);
        assert_eq!(snap.edge_rx.frames, 25);
        assert_eq!(snap.optical_tx.frames, 25);
        assert!(snap.latency.p99() > 0);
    }

    #[test]
    fn reboot_and_auth_events_traced() {
        let mut m = FlexSfp::passthrough();
        // A garbage OOB payload is an auth reject.
        assert!(m.handle_oob(b"not a control payload").is_none());
        // A reboot into an empty slot falls back and is traced as
        // failed.
        m.control.pending_activation = Some(3);
        m.maybe_reboot();
        let snap = m.telemetry_snapshot();
        let kinds: Vec<&EventKind> = snap.events.iter().map(|e| &e.kind).collect();
        assert!(kinds.contains(&&EventKind::AuthReject));
        assert!(kinds.contains(&&EventKind::Reboot { slot: 3, ok: false }));
    }

    #[test]
    fn unsorted_trace_drops_and_counts() {
        // A host-composed trace with a straggler must not abort the run:
        // the out-of-order packet is dropped, counted, and traced, and
        // everything else forwards normally.
        let mut m = FlexSfp::passthrough();
        let report = m.run(vec![
            SimPacket {
                arrival_ns: 100,
                direction: Direction::EdgeToOptical,
                frame: data_frame(64),
            },
            SimPacket {
                arrival_ns: 50,
                direction: Direction::EdgeToOptical,
                frame: data_frame(64),
            },
            SimPacket {
                arrival_ns: 200,
                direction: Direction::EdgeToOptical,
                frame: data_frame(64),
            },
        ]);
        assert_eq!(report.offered, 3);
        assert_eq!(report.drops.unsorted, 1);
        assert_eq!(report.drops.total(), 1);
        assert_eq!(report.forwarded.0 + report.forwarded.1, 2);
        assert_eq!(report.outputs.len(), 2);
        let snap = m.telemetry_snapshot();
        assert_eq!(snap.drops.unsorted, 1);
        assert!(snap.events.iter().any(|e| e.kind
            == EventKind::Drop {
                reason: DropReason::UnsortedArrival
            }));
    }

    #[test]
    fn run_stream_matches_run_aggregates() {
        // The streaming entry point must agree with the materializing one
        // on every aggregate statistic; only `outputs` differs (empty).
        let packets = || -> Vec<SimPacket> {
            (0..200)
                .map(|i| SimPacket {
                    arrival_ns: i * 700,
                    direction: Direction::EdgeToOptical,
                    frame: data_frame(64 + (i as usize % 128)),
                })
                .collect()
        };
        let mut a = FlexSfp::passthrough();
        let full = a.run(packets());
        let mut b = FlexSfp::passthrough();
        let streamed = b.run_stream(packets());
        assert_eq!(streamed.offered, full.offered);
        assert_eq!(streamed.offered_bytes, full.offered_bytes);
        assert_eq!(streamed.forwarded, full.forwarded);
        assert_eq!(streamed.forwarded_bytes, full.forwarded_bytes);
        assert_eq!(streamed.drops, full.drops);
        assert_eq!(streamed.duration_ns, full.duration_ns);
        assert_eq!(streamed.latency.count(), full.latency.count());
        assert!(streamed.outputs.is_empty());
        assert_eq!(
            full.outputs.len(),
            full.forwarded.0 as usize + full.forwarded.1 as usize
        );
    }

    #[test]
    fn flight_recorder_samples_deterministically() {
        use flexsfp_obs::ToJson;
        // Two modules, same seed, same trace: the drained record sets
        // must be byte-identical through the JSON wire format.
        let run = || {
            let mut m = FlexSfp::passthrough();
            m.enable_flight_recorder(64, 0xf00d, 4096);
            m.run_stream(line_rate_trace(Direction::EdgeToOptical, 10_000, 64));
            m.drain_flight_records()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty(), "1-in-64 over 10k packets must sample");
        // ~156 expected; the Bernoulli draw has some variance.
        assert!(a.len() > 50 && a.len() < 400, "sampled {}", a.len());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        // Sequence numbers are monotone and arrival times sorted.
        for w in a.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
        // Every postcard carries a concrete departure (passthrough
        // forwards everything).
        for r in &a {
            match r.verdict {
                FlightVerdict::Forwarded { departure_ns } => {
                    assert!(departure_ns >= r.arrival_ns)
                }
                ref other => panic!("unexpected verdict {other:?}"),
            }
        }
    }

    #[test]
    fn flight_records_drain_via_oob() {
        let mut m = FlexSfp::passthrough();
        // Sample everything so the count is exact.
        m.enable_flight_recorder(1, 7, 512);
        m.run_stream(line_rate_trace(Direction::EdgeToOptical, 100, 64));
        let payload =
            ControlPlane::encode_request(&AuthKey::DEFAULT, &ControlRequest::ReadFlightRecords);
        let resp_payload = m.handle_oob(&payload).expect("response due");
        let resp = ControlPlane::decode_response(&AuthKey::DEFAULT, &resp_payload).unwrap();
        let ControlResponse::FlightRecords(records) = resp else {
            panic!("unexpected response {resp:?}");
        };
        assert_eq!(records.len(), 100);
        // Drained means drained: a second read returns nothing.
        let again = m.handle_oob(&payload).unwrap();
        match ControlPlane::decode_response(&AuthKey::DEFAULT, &again).unwrap() {
            ControlResponse::FlightRecords(r) => assert!(r.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // Disarmed modules answer with an empty drain, not an error.
        m.disable_flight_recorder();
        let disarmed = m.handle_oob(&payload).unwrap();
        match ControlPlane::decode_response(&AuthKey::DEFAULT, &disarmed).unwrap() {
            ControlResponse::FlightRecords(r) => assert!(r.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sampled_overflow_records_queue_depth() {
        // The overloaded 1× Two-Way-Core: sampled postcards must show
        // both growing queues and FIFO-overflow verdicts.
        let mut trace = Vec::new();
        let gap_ns = ((64 + 20) as f64 * 0.8).ceil() as u64;
        for i in 0..5_000u64 {
            let t = i * gap_ns;
            for direction in [Direction::EdgeToOptical, Direction::OpticalToEdge] {
                trace.push(SimPacket {
                    arrival_ns: t,
                    direction,
                    frame: data_frame(64),
                });
            }
        }
        let mut m = FlexSfp::new(
            ModuleConfig {
                shell: ShellKind::TwoWayCore,
                ppe_clock: ClockDomain::XGMII_10G,
                ..Default::default()
            },
            Box::new(PassThrough),
        );
        m.enable_flight_recorder(1, 1, 16_384);
        let report = m.run_stream(trace);
        assert!(report.drops.fifo_overflow > 0);
        let records = m.drain_flight_records();
        assert_eq!(records.len() as u64 + m.flight_overwritten(), 10_000);
        assert!(records.iter().any(|r| r.queue_pkts > 0));
        let overflows = records
            .iter()
            .filter(|r| {
                matches!(
                    r.verdict,
                    FlightVerdict::Dropped {
                        reason: DropReason::FifoOverflow
                    }
                )
            })
            .count();
        assert!(overflows > 0, "overflow drops must be sampled too");
        // An overflowed packet saw a full FIFO.
        let full = records
            .iter()
            .find(|r| {
                matches!(
                    r.verdict,
                    FlightVerdict::Dropped {
                        reason: DropReason::FifoOverflow
                    }
                )
            })
            .unwrap();
        assert!(full.queue_bytes > 0);
    }

    #[test]
    fn windows_feed_snapshot_and_slo() {
        let mut m = FlexSfp::passthrough();
        let report = m.run(line_rate_trace(Direction::EdgeToOptical, 2_000, 64));
        assert_eq!(report.forwarded.1, 2_000);
        let life = m.windows().lifetime();
        assert_eq!(life.forwarded, 2_000);
        assert_eq!(life.latency.count(), 2_000);
        // The snapshot carries the same series.
        let snap = m.telemetry_snapshot();
        assert_eq!(snap.windows.lifetime().forwarded, 2_000);
        // A generous SLO holds on the healthy run.
        let spec = flexsfp_obs::SloSpec::generous();
        let report = flexsfp_obs::slo::evaluate(&spec, m.windows());
        assert!(report.healthy, "breaches: {:?}", report.breaches);
        // App drops are explained: they never breach the
        // unexplained-drop bound, and the verdict stays healthy on a
        // latency-only spec.
        let mut d = FlexSfp::new(ModuleConfig::default(), Box::new(DropAll));
        d.run(line_rate_trace(Direction::EdgeToOptical, 500, 64));
        assert_eq!(d.windows().lifetime().drops_app, 500);
        assert_eq!(d.windows().lifetime().drops_unexplained, 0);
    }
}
