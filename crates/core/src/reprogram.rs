//! The over-the-network reprogramming FSM.
//!
//! §4.2: "the control plane authenticates reconfiguration packets whose
//! payload carries a new bitstream; a small FSM writes it to SPI flash
//! and then triggers a reboot so the SFP boots the new application."
//! Authentication happens at the control-protocol framing layer; this
//! FSM handles ordered chunk assembly, integrity verification and the
//! flash commit.

use flexsfp_fabric::flash::{FlashError, SpiFlash};
use flexsfp_fabric::hash::crc32;

/// Maximum chunk payload carried by one reconfiguration packet (fits a
/// standard frame with protocol overhead).
pub const MAX_CHUNK: usize = 1024;

/// FSM states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateState {
    /// No update in progress.
    Idle,
    /// Receiving chunks.
    Receiving {
        /// Target flash slot.
        slot: usize,
        /// Expected total image length.
        total_len: usize,
        /// Expected CRC-32 of the full image.
        expected_crc: u32,
        /// Next expected chunk sequence number.
        next_seq: u32,
        /// Bytes received so far.
        received: usize,
    },
    /// Image assembled and verified, committed to flash; awaiting
    /// activation.
    Staged {
        /// Flash slot holding the staged image.
        slot: usize,
    },
}

/// Errors surfaced to the control protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// Operation invalid in the current state.
    WrongState,
    /// Chunk arrived out of order.
    BadSequence {
        /// Sequence number expected next.
        expected: u32,
        /// Sequence number received.
        got: u32,
    },
    /// Chunk exceeds [`MAX_CHUNK`] or overruns the declared total.
    BadChunk,
    /// Assembled image CRC mismatch.
    BadCrc,
    /// Slot invalid or image too large (slot 0 is the protected golden
    /// image).
    BadSlot,
    /// Flash programming failed.
    Flash(FlashError),
}

impl core::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for UpdateError {}

/// The reprogramming FSM with its assembly buffer.
#[derive(Debug)]
pub struct UpdateFsm {
    state: UpdateState,
    buffer: Vec<u8>,
    dup_acks: u64,
}

impl Default for UpdateFsm {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdateFsm {
    /// A fresh FSM in `Idle`.
    pub fn new() -> UpdateFsm {
        UpdateFsm {
            state: UpdateState::Idle,
            buffer: Vec::new(),
            dup_acks: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> &UpdateState {
        &self.state
    }

    /// Lifetime count of duplicate last-chunk retransmits acknowledged
    /// idempotently (each one is a lost ack the sender had to resend).
    pub fn dup_acks(&self) -> u64 {
        self.dup_acks
    }

    /// Begin an update targeting `slot` (1..SLOTS; 0 is golden).
    pub fn begin(
        &mut self,
        slot: usize,
        total_len: usize,
        expected_crc: u32,
    ) -> Result<(), UpdateError> {
        if !matches!(self.state, UpdateState::Idle) {
            return Err(UpdateError::WrongState);
        }
        if slot == 0
            || slot >= flexsfp_fabric::flash::SLOTS
            || total_len == 0
            || total_len > flexsfp_fabric::flash::SLOT_BYTES
        {
            return Err(UpdateError::BadSlot);
        }
        self.buffer = Vec::with_capacity(total_len);
        self.state = UpdateState::Receiving {
            slot,
            total_len,
            expected_crc,
            next_seq: 0,
            received: 0,
        };
        Ok(())
    }

    /// Feed chunk `seq`.
    pub fn chunk(&mut self, seq: u32, data: &[u8]) -> Result<(), UpdateError> {
        let UpdateState::Receiving {
            total_len,
            next_seq,
            received,
            ..
        } = &mut self.state
        else {
            return Err(UpdateError::WrongState);
        };
        if *next_seq > 0 && seq == *next_seq - 1 {
            // Retransmit of the last accepted chunk: its ack was lost in
            // flight. The bytes are already in the buffer, so acknowledge
            // idempotently instead of wedging the sender with an error.
            self.dup_acks += 1;
            return Ok(());
        }
        if seq != *next_seq {
            return Err(UpdateError::BadSequence {
                expected: *next_seq,
                got: seq,
            });
        }
        if data.is_empty() || data.len() > MAX_CHUNK || *received + data.len() > *total_len {
            return Err(UpdateError::BadChunk);
        }
        self.buffer.extend_from_slice(data);
        *received += data.len();
        *next_seq += 1;
        Ok(())
    }

    /// Verify the assembled image and commit it to flash. On success the
    /// FSM moves to `Staged` and returns the slot.
    pub fn commit(&mut self, flash: &mut SpiFlash) -> Result<usize, UpdateError> {
        let UpdateState::Receiving {
            slot,
            total_len,
            expected_crc,
            received,
            ..
        } = self.state
        else {
            return Err(UpdateError::WrongState);
        };
        if received != total_len {
            return Err(UpdateError::BadChunk);
        }
        if crc32(&self.buffer) != expected_crc {
            self.abort();
            return Err(UpdateError::BadCrc);
        }
        if let Err(e) = flash.write_slot(slot, &self.buffer) {
            // A flash failure is as terminal as a CRC mismatch: keeping
            // the stale buffer in `Receiving` would wedge every later
            // `begin` with `WrongState`. Drop back to `Idle`.
            self.abort();
            return Err(UpdateError::Flash(e));
        }
        self.buffer.clear();
        self.state = UpdateState::Staged { slot };
        Ok(slot)
    }

    /// Abort any in-progress update and return to `Idle`.
    pub fn abort(&mut self) {
        self.buffer.clear();
        self.state = UpdateState::Idle;
    }

    /// Acknowledge activation: `Staged → Idle` (the module reboots).
    pub fn activated(&mut self) {
        if matches!(self.state, UpdateState::Staged { .. }) {
            self.state = UpdateState::Idle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn full_update_flow() {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        let img = image(3000);
        let crc = crc32(&img);
        fsm.begin(1, img.len(), crc).unwrap();
        for (seq, chunk) in img.chunks(MAX_CHUNK).enumerate() {
            fsm.chunk(seq as u32, chunk).unwrap();
        }
        let slot = fsm.commit(&mut flash).unwrap();
        assert_eq!(slot, 1);
        assert_eq!(fsm.state(), &UpdateState::Staged { slot: 1 });
        assert_eq!(flash.read_slot(1, img.len()).unwrap(), &img[..]);
        fsm.activated();
        assert_eq!(fsm.state(), &UpdateState::Idle);
    }

    #[test]
    fn out_of_order_chunk_rejected() {
        let mut fsm = UpdateFsm::new();
        fsm.begin(1, 2048, 0).unwrap();
        fsm.chunk(0, &[0u8; 1024]).unwrap();
        assert_eq!(
            fsm.chunk(2, &[0u8; 1024]),
            Err(UpdateError::BadSequence {
                expected: 1,
                got: 2
            })
        );
        // Retransmit of the correct seq still works.
        fsm.chunk(1, &[0u8; 1024]).unwrap();
    }

    #[test]
    fn duplicate_of_last_chunk_is_idempotent_ack() {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        let img = image(3000);
        let crc = crc32(&img);
        fsm.begin(1, img.len(), crc).unwrap();
        let chunks: Vec<&[u8]> = img.chunks(MAX_CHUNK).collect();
        fsm.chunk(0, chunks[0]).unwrap();
        // The ack for chunk 0 was lost; the sender retransmits it.
        fsm.chunk(0, chunks[0]).unwrap();
        fsm.chunk(0, chunks[0]).unwrap();
        assert_eq!(fsm.dup_acks(), 2);
        // The buffer took the bytes exactly once: the rest of the image
        // still fits and the commit CRC still matches.
        fsm.chunk(1, chunks[1]).unwrap();
        fsm.chunk(1, chunks[1]).unwrap();
        fsm.chunk(2, chunks[2]).unwrap();
        assert_eq!(fsm.commit(&mut flash).unwrap(), 1);
        assert_eq!(flash.read_slot(1, img.len()).unwrap(), &img[..]);
        assert_eq!(fsm.dup_acks(), 3);
    }

    #[test]
    fn genuinely_out_of_order_chunk_still_rejected() {
        let mut fsm = UpdateFsm::new();
        fsm.begin(1, 4096, 0).unwrap();
        fsm.chunk(0, &[0u8; 1024]).unwrap();
        fsm.chunk(1, &[0u8; 1024]).unwrap();
        // Ahead of the window: rejected.
        assert_eq!(
            fsm.chunk(3, &[0u8; 1024]),
            Err(UpdateError::BadSequence {
                expected: 2,
                got: 3
            })
        );
        // More than one behind (not the last accepted): rejected.
        assert_eq!(
            fsm.chunk(0, &[0u8; 1024]),
            Err(UpdateError::BadSequence {
                expected: 2,
                got: 0
            })
        );
        // A duplicate before any chunk was accepted cannot exist; seq 0
        // at next_seq 0 is simply the first chunk.
        assert_eq!(fsm.dup_acks(), 0);
    }

    #[test]
    fn flash_failure_on_commit_returns_to_idle() {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        flash.protect_golden();
        let img = image(100);
        let crc = crc32(&img);
        fsm.begin(2, img.len(), crc).unwrap();
        fsm.chunk(0, &img).unwrap();
        flash.inject_fault(FlashError::NotErased);
        assert_eq!(
            fsm.commit(&mut flash),
            Err(UpdateError::Flash(FlashError::NotErased))
        );
        // The FSM must not stay wedged in `Receiving` with a stale
        // buffer: like `BadCrc`, a flash failure aborts to `Idle` …
        assert_eq!(fsm.state(), &UpdateState::Idle);
        // … so a fresh update can begin and succeed.
        fsm.begin(2, img.len(), crc).unwrap();
        fsm.chunk(0, &img).unwrap();
        assert_eq!(fsm.commit(&mut flash).unwrap(), 2);
        assert_eq!(flash.read_slot(2, img.len()).unwrap(), &img[..]);
    }

    #[test]
    fn crc_mismatch_aborts() {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        let img = image(100);
        fsm.begin(2, img.len(), 0xdeadbeef).unwrap();
        fsm.chunk(0, &img).unwrap();
        assert_eq!(fsm.commit(&mut flash), Err(UpdateError::BadCrc));
        assert_eq!(fsm.state(), &UpdateState::Idle);
        // Flash slot untouched (still erased).
        assert_eq!(flash.read_slot(2, 4).unwrap(), &[0xff; 4]);
    }

    #[test]
    fn golden_slot_refused() {
        let mut fsm = UpdateFsm::new();
        assert_eq!(fsm.begin(0, 100, 0), Err(UpdateError::BadSlot));
        assert_eq!(fsm.begin(9, 100, 0), Err(UpdateError::BadSlot));
        assert_eq!(
            fsm.begin(1, flexsfp_fabric::flash::SLOT_BYTES + 1, 0),
            Err(UpdateError::BadSlot)
        );
    }

    #[test]
    fn state_machine_guards() {
        let mut fsm = UpdateFsm::new();
        let mut flash = SpiFlash::new();
        assert_eq!(fsm.chunk(0, &[0]), Err(UpdateError::WrongState));
        assert_eq!(fsm.commit(&mut flash), Err(UpdateError::WrongState));
        fsm.begin(1, 10, 0).unwrap();
        assert_eq!(fsm.begin(1, 10, 0), Err(UpdateError::WrongState));
        // Oversized chunk.
        assert_eq!(fsm.chunk(0, &[0u8; 2000]), Err(UpdateError::BadChunk));
        // Overrun of declared total.
        fsm.chunk(0, &[0u8; 8]).unwrap();
        assert_eq!(fsm.chunk(1, &[0u8; 8]), Err(UpdateError::BadChunk));
        // Commit before all bytes arrive.
        assert_eq!(fsm.commit(&mut flash), Err(UpdateError::BadChunk));
        fsm.abort();
        assert_eq!(fsm.state(), &UpdateState::Idle);
    }
}
