//! The active control plane as a network endpoint (§4.1, third model).
//!
//! "The control plane is not limited to configuring the data plane, but
//! can also originate and terminate traffic, transforming the SFP from a
//! reactive device into an active network component … the SFP could act
//! as a self-contained microservice node." The minimal useful
//! microservices are the ones that make the module addressable on the
//! network it lives in: an ARP responder and an ICMP echo responder for
//! the management address. The [`respond`] entry point inspects a frame
//! and, when it targets the module, produces the reply the control
//! plane originates.

use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::{
    arp, icmp, ArpOperation, ArpPacket, EtherType, EthernetFrame, IcmpPacket, IcmpType, IpProtocol,
    Ipv4Packet, MacAddr,
};

/// Which microservice produced a reply (for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// ARP responder.
    Arp,
    /// ICMP echo responder.
    Ping,
}

/// Inspect `frame`; when it is an ARP request or ICMP echo request for
/// `(mac, ip)`, build the reply frame the control plane sends back out
/// the interface the request arrived on.
pub fn respond(frame: &[u8], mac: MacAddr, ip: u32) -> Option<(Service, Vec<u8>)> {
    let eth = EthernetFrame::new_checked(frame).ok()?;
    match eth.ethertype() {
        EtherType::Arp => {
            let req = ArpPacket::new_checked(eth.payload()).ok()?;
            if req.operation() != ArpOperation::Request || req.target_ip() != ip {
                return None;
            }
            let mut reply = vec![0u8; arp::PACKET_LEN];
            {
                let mut a = ArpPacket::new_unchecked(&mut reply);
                a.init_ethernet_ipv4();
                a.set_operation(ArpOperation::Reply);
                a.set_sender_mac(mac);
                a.set_sender_ip(ip);
                a.set_target_mac(req.sender_mac());
                a.set_target_ip(req.sender_ip());
            }
            Some((
                Service::Arp,
                PacketBuilder::ethernet(req.sender_mac(), mac, EtherType::Arp, &reply),
            ))
        }
        EtherType::Ipv4 => {
            // Unicast to our MAC (or broadcast ping) with our IP.
            if eth.dst() != mac && !eth.dst().is_broadcast() {
                return None;
            }
            let ipv4 = Ipv4Packet::new_checked(eth.payload()).ok()?;
            if ipv4.dst() != ip || ipv4.protocol() != IpProtocol::Icmp {
                return None;
            }
            let echo = IcmpPacket::new_checked(ipv4.payload()).ok()?;
            if echo.msg_type() != IcmpType::EchoRequest || !echo.verify_checksum() {
                return None;
            }
            // Build the reply: same ident/seq/payload, type 0.
            let mut reply_icmp = vec![0u8; icmp::HEADER_LEN + echo.payload().len()];
            {
                let mut r = IcmpPacket::new_unchecked(&mut reply_icmp);
                r.set_msg_type(IcmpType::EchoReply);
                r.set_code(0);
                r.set_echo_ident(echo.echo_ident());
                r.set_echo_seq(echo.echo_seq());
            }
            reply_icmp[icmp::HEADER_LEN..].copy_from_slice(echo.payload());
            IcmpPacket::new_unchecked(&mut reply_icmp).fill_checksum();
            let reply_ip = PacketBuilder::ipv4(ip, ipv4.src(), IpProtocol::Icmp, &reply_icmp);
            Some((
                Service::Ping,
                PacketBuilder::ethernet(eth.src(), mac, EtherType::Ipv4, &reply_ip),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OUR_MAC: MacAddr = MacAddr([0x02, 0xf5, 0x0f, 0, 0, 1]);
    const OUR_IP: u32 = 0x0a00_0164;
    const PEER_MAC: MacAddr = MacAddr([0x02, 0xee, 0, 0, 0, 9]);
    const PEER_IP: u32 = 0x0a00_0101;

    fn arp_request(target_ip: u32) -> Vec<u8> {
        let mut body = vec![0u8; arp::PACKET_LEN];
        let mut a = ArpPacket::new_unchecked(&mut body);
        a.init_ethernet_ipv4();
        a.set_operation(ArpOperation::Request);
        a.set_sender_mac(PEER_MAC);
        a.set_sender_ip(PEER_IP);
        a.set_target_mac(MacAddr::ZERO);
        a.set_target_ip(target_ip);
        PacketBuilder::ethernet(MacAddr::BROADCAST, PEER_MAC, EtherType::Arp, &body)
    }

    fn ping_request(dst_ip: u32, payload: &[u8]) -> Vec<u8> {
        let mut icmp_bytes = vec![0u8; icmp::HEADER_LEN + payload.len()];
        {
            let mut p = IcmpPacket::new_unchecked(&mut icmp_bytes);
            p.set_msg_type(IcmpType::EchoRequest);
            p.set_echo_ident(0x77);
            p.set_echo_seq(3);
        }
        icmp_bytes[icmp::HEADER_LEN..].copy_from_slice(payload);
        IcmpPacket::new_unchecked(&mut icmp_bytes).fill_checksum();
        let ip = PacketBuilder::ipv4(PEER_IP, dst_ip, IpProtocol::Icmp, &icmp_bytes);
        PacketBuilder::ethernet(OUR_MAC, PEER_MAC, EtherType::Ipv4, &ip)
    }

    #[test]
    fn answers_arp_for_our_ip() {
        let (svc, reply) = respond(&arp_request(OUR_IP), OUR_MAC, OUR_IP).unwrap();
        assert_eq!(svc, Service::Arp);
        let eth = EthernetFrame::new_checked(&reply[..]).unwrap();
        assert_eq!(eth.dst(), PEER_MAC);
        assert_eq!(eth.src(), OUR_MAC);
        let a = ArpPacket::new_checked(eth.payload()).unwrap();
        assert_eq!(a.operation(), ArpOperation::Reply);
        assert_eq!(a.sender_mac(), OUR_MAC);
        assert_eq!(a.sender_ip(), OUR_IP);
        assert_eq!(a.target_ip(), PEER_IP);
    }

    #[test]
    fn ignores_arp_for_other_hosts() {
        assert!(respond(&arp_request(0x0a00_01ff), OUR_MAC, OUR_IP).is_none());
    }

    #[test]
    fn answers_ping_with_payload_echo() {
        let payload = b"flexsfp-alive";
        let (svc, reply) = respond(&ping_request(OUR_IP, payload), OUR_MAC, OUR_IP).unwrap();
        assert_eq!(svc, Service::Ping);
        let eth = EthernetFrame::new_checked(&reply[..]).unwrap();
        assert_eq!(eth.dst(), PEER_MAC);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.src(), OUR_IP);
        assert_eq!(ip.dst(), PEER_IP);
        assert!(ip.verify_checksum());
        let echo = IcmpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(echo.msg_type(), IcmpType::EchoReply);
        assert_eq!(echo.echo_ident(), 0x77);
        assert_eq!(echo.echo_seq(), 3);
        assert_eq!(echo.payload(), payload);
        assert!(echo.verify_checksum());
    }

    #[test]
    fn ignores_ping_for_other_ips_and_non_echo() {
        assert!(respond(&ping_request(0x0a00_01ff, b"x"), OUR_MAC, OUR_IP).is_none());
        // Corrupted checksum is ignored (don't answer broken probes):
        // flip the ICMP payload byte at eth(14)+ip(20)+icmp(8).
        let mut broken = ping_request(OUR_IP, b"x");
        broken[42] ^= 0xff;
        assert!(respond(&broken, OUR_MAC, OUR_IP).is_none());
    }

    #[test]
    fn ignores_foreign_unicast_mac() {
        let mut req = ping_request(OUR_IP, b"x");
        // Addressed at L2 to someone else: a bump-in-the-wire must not
        // answer traffic merely passing through.
        EthernetFrame::new_unchecked(&mut req[..]).set_dst(MacAddr([0x02, 0x12, 0, 0, 0, 1]));
        assert!(respond(&req, OUR_MAC, OUR_IP).is_none());
    }

    #[test]
    fn ignores_non_ip_non_arp() {
        let frame = PacketBuilder::ethernet(OUR_MAC, PEER_MAC, EtherType::Other(0x1234), b"??");
        assert!(respond(&frame, OUR_MAC, OUR_IP).is_none());
    }
}
