//! The embedded control plane.
//!
//! The Mi-V softcore's jobs (§4.1–4.2, §5.1): startup configuration of
//! the transceivers / laser driver / limiting amplifier and the
//! application tables; a network-accessible control interface for
//! table/counter access; and the authenticated OTA update path.
//!
//! Control packets are ordinary UDP datagrams addressed to the module's
//! management MAC/IP on [`CONTROL_PORT`]; the payload is
//! `"FSCP" | tag[8] | request-JSON` where `tag` is SipHash-2-4 over the
//! JSON under the fleet key. Responses use the same framing. The arbiter
//! (in [`crate::module`]) routes such frames here from either the edge
//! interface or the out-of-band management port without disturbing the
//! dataplane.

use crate::auth::{self, AuthKey};
use crate::reprogram::{UpdateError, UpdateFsm, UpdateState};
use flexsfp_fabric::flash::SpiFlash;
use flexsfp_fabric::i2c::DomReading;
use flexsfp_obs::json::{FromJson, ToJson, Value};
use flexsfp_ppe::{PacketProcessor, TableOp, TableOpResult};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::{EthernetFrame, Ipv4Packet, MacAddr, UdpDatagram};

/// UDP port the control plane listens on.
pub const CONTROL_PORT: u16 = 5577;
/// Control payload magic.
pub const MAGIC: &[u8; 4] = b"FSCP";

/// Serializable mirror of [`TableOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CtlTableOp {
    /// Insert or update.
    Insert {
        /// Table id.
        table: u8,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Delete an entry.
    Delete {
        /// Table id.
        table: u8,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Read an entry.
    Read {
        /// Table id.
        table: u8,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Read a counter.
    ReadCounter {
        /// Counter index.
        index: u32,
    },
    /// Clear a table.
    Clear {
        /// Table id.
        table: u8,
    },
}

impl CtlTableOp {
    fn to_table_op(&self) -> TableOp {
        match self.clone() {
            CtlTableOp::Insert { table, key, value } => TableOp::Insert { table, key, value },
            CtlTableOp::Delete { table, key } => TableOp::Delete { table, key },
            CtlTableOp::Read { table, key } => TableOp::Read { table, key },
            CtlTableOp::ReadCounter { index } => TableOp::ReadCounter { index },
            CtlTableOp::Clear { table } => TableOp::Clear { table },
        }
    }
}

/// Serializable mirror of [`TableOpResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CtlTableResult {
    /// Operation applied.
    Ok,
    /// Read value.
    Value(Vec<u8>),
    /// Counter value.
    Counter {
        /// Packets.
        packets: u64,
        /// Bytes.
        bytes: u64,
    },
    /// Key absent.
    NotFound,
    /// Table/bucket full.
    TableFull,
    /// Bad key/value encoding.
    BadEncoding,
    /// Unsupported by the running application.
    Unsupported,
}

impl From<TableOpResult> for CtlTableResult {
    fn from(r: TableOpResult) -> Self {
        match r {
            TableOpResult::Ok => CtlTableResult::Ok,
            TableOpResult::Value(v) => CtlTableResult::Value(v),
            TableOpResult::Counter { packets, bytes } => CtlTableResult::Counter { packets, bytes },
            TableOpResult::NotFound => CtlTableResult::NotFound,
            TableOpResult::TableFull => CtlTableResult::TableFull,
            TableOpResult::BadEncoding => CtlTableResult::BadEncoding,
            TableOpResult::Unsupported => CtlTableResult::Unsupported,
        }
    }
}

/// A control request.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ControlRequest {
    /// Liveness probe.
    Ping {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Module identity and status.
    GetInfo,
    /// Table/counter operation.
    Table(CtlTableOp),
    /// Read digital optical monitoring values.
    ReadDom,
    /// Read a full telemetry snapshot (counters, latency histogram,
    /// DOM, laser health, event-ring drain). Only honoured on the
    /// out-of-band management port — the module answers it before the
    /// generic handler, which lacks module-level access.
    ReadTelemetry,
    /// Drain the flight recorder's sampled-packet postcards. Like
    /// `ReadTelemetry`, only honoured out-of-band: the ring lives in
    /// the architecture shell, not the control plane.
    ReadFlightRecords,
    /// Begin an OTA update.
    BeginUpdate {
        /// Target flash slot (1..).
        slot: usize,
        /// Total image bytes.
        total_len: usize,
        /// CRC-32 of the image.
        crc32: u32,
    },
    /// One update chunk.
    UpdateChunk {
        /// Sequence number from 0.
        seq: u32,
        /// Chunk bytes.
        data: Vec<u8>,
    },
    /// Verify and write to flash.
    CommitUpdate,
    /// Reboot into `slot`.
    Activate {
        /// Flash slot to boot.
        slot: usize,
    },
    /// Abort an in-progress update.
    AbortUpdate,
    /// Query update FSM progress (lossy-channel resynchronisation: a
    /// host whose ack was lost asks where to resume instead of
    /// restarting the transfer).
    QueryUpdate,
}

/// A control response.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ControlResponse {
    /// Ping echo.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Identity/status report.
    Info {
        /// Module identifier (serial).
        module_id: String,
        /// Running application name.
        app: String,
        /// Application version.
        app_version: u32,
        /// Boot count.
        boots: u32,
        /// Update FSM state name.
        update_state: String,
    },
    /// Table operation result.
    Table(CtlTableResult),
    /// DOM readings.
    Dom {
        /// Temperature, °C.
        temperature_c: f64,
        /// Supply volts.
        vcc_v: f64,
        /// Laser bias, mA.
        tx_bias_ma: f64,
        /// TX power, mW.
        tx_power_mw: f64,
        /// RX power, mW.
        rx_power_mw: f64,
    },
    /// Full telemetry snapshot (boxed: it dwarfs the other variants).
    Telemetry(Box<flexsfp_obs::TelemetrySnapshot>),
    /// Drained flight-recorder postcards, oldest first.
    FlightRecords(Vec<flexsfp_obs::FlightRecord>),
    /// Update FSM progress report (answer to `QueryUpdate`). For
    /// `"idle"` and `"staged"` the transfer fields are zero (`slot` is
    /// meaningful for `"staged"`).
    UpdateStatus {
        /// FSM state: `"idle"`, `"receiving"` or `"staged"`.
        state: String,
        /// Target flash slot of the in-progress/staged update.
        slot: usize,
        /// Declared total image length.
        total_len: usize,
        /// Declared image CRC-32.
        crc32: u32,
        /// Next chunk sequence number the FSM expects.
        next_seq: u32,
        /// Bytes received so far.
        received: usize,
    },
    /// Generic success.
    Ack,
    /// Failure with reason.
    Error(String),
}

// Hand-written JSON codecs for the control messages, byte-compatible
// with serde's externally tagged enum encoding (unit variant → string,
// data variant → single-key object) so captures from serde-built peers
// still decode.

impl ToJson for CtlTableOp {
    fn to_json(&self) -> Value {
        match self {
            CtlTableOp::Insert { table, key, value } => flexsfp_obs::json!({
                "Insert": {"table": *table, "key": key.to_json(), "value": value.to_json()}
            }),
            CtlTableOp::Delete { table, key } => {
                flexsfp_obs::json!({"Delete": {"table": *table, "key": key.to_json()}})
            }
            CtlTableOp::Read { table, key } => {
                flexsfp_obs::json!({"Read": {"table": *table, "key": key.to_json()}})
            }
            CtlTableOp::ReadCounter { index } => {
                flexsfp_obs::json!({"ReadCounter": {"index": *index}})
            }
            CtlTableOp::Clear { table } => flexsfp_obs::json!({"Clear": {"table": *table}}),
        }
    }
}

impl FromJson for CtlTableOp {
    fn from_json(v: &Value) -> Option<CtlTableOp> {
        let (tag, body) = single_variant(v)?;
        match tag {
            "Insert" => Some(CtlTableOp::Insert {
                table: u8::from_json(&body["table"])?,
                key: Vec::<u8>::from_json(&body["key"])?,
                value: Vec::<u8>::from_json(&body["value"])?,
            }),
            "Delete" => Some(CtlTableOp::Delete {
                table: u8::from_json(&body["table"])?,
                key: Vec::<u8>::from_json(&body["key"])?,
            }),
            "Read" => Some(CtlTableOp::Read {
                table: u8::from_json(&body["table"])?,
                key: Vec::<u8>::from_json(&body["key"])?,
            }),
            "ReadCounter" => Some(CtlTableOp::ReadCounter {
                index: u32::from_json(&body["index"])?,
            }),
            "Clear" => Some(CtlTableOp::Clear {
                table: u8::from_json(&body["table"])?,
            }),
            _ => None,
        }
    }
}

impl ToJson for CtlTableResult {
    fn to_json(&self) -> Value {
        match self {
            CtlTableResult::Ok => Value::Str("Ok".into()),
            CtlTableResult::NotFound => Value::Str("NotFound".into()),
            CtlTableResult::TableFull => Value::Str("TableFull".into()),
            CtlTableResult::BadEncoding => Value::Str("BadEncoding".into()),
            CtlTableResult::Unsupported => Value::Str("Unsupported".into()),
            CtlTableResult::Value(v) => flexsfp_obs::json!({"Value": v.to_json()}),
            CtlTableResult::Counter { packets, bytes } => {
                flexsfp_obs::json!({"Counter": {"packets": *packets, "bytes": *bytes}})
            }
        }
    }
}

impl FromJson for CtlTableResult {
    fn from_json(v: &Value) -> Option<CtlTableResult> {
        if let Some(name) = v.as_str() {
            return match name {
                "Ok" => Some(CtlTableResult::Ok),
                "NotFound" => Some(CtlTableResult::NotFound),
                "TableFull" => Some(CtlTableResult::TableFull),
                "BadEncoding" => Some(CtlTableResult::BadEncoding),
                "Unsupported" => Some(CtlTableResult::Unsupported),
                _ => None,
            };
        }
        let (tag, body) = single_variant(v)?;
        match tag {
            "Value" => Some(CtlTableResult::Value(Vec::<u8>::from_json(body)?)),
            "Counter" => Some(CtlTableResult::Counter {
                packets: u64::from_json(&body["packets"])?,
                bytes: u64::from_json(&body["bytes"])?,
            }),
            _ => None,
        }
    }
}

impl ToJson for ControlRequest {
    fn to_json(&self) -> Value {
        match self {
            ControlRequest::GetInfo => Value::Str("GetInfo".into()),
            ControlRequest::ReadDom => Value::Str("ReadDom".into()),
            ControlRequest::ReadTelemetry => Value::Str("ReadTelemetry".into()),
            ControlRequest::ReadFlightRecords => Value::Str("ReadFlightRecords".into()),
            ControlRequest::CommitUpdate => Value::Str("CommitUpdate".into()),
            ControlRequest::AbortUpdate => Value::Str("AbortUpdate".into()),
            ControlRequest::QueryUpdate => Value::Str("QueryUpdate".into()),
            ControlRequest::Ping { nonce } => flexsfp_obs::json!({"Ping": {"nonce": *nonce}}),
            ControlRequest::Table(op) => flexsfp_obs::json!({"Table": op.to_json()}),
            ControlRequest::BeginUpdate {
                slot,
                total_len,
                crc32,
            } => flexsfp_obs::json!({
                "BeginUpdate": {"slot": *slot as u64, "total_len": *total_len as u64, "crc32": *crc32}
            }),
            ControlRequest::UpdateChunk { seq, data } => {
                flexsfp_obs::json!({"UpdateChunk": {"seq": *seq, "data": data.to_json()}})
            }
            ControlRequest::Activate { slot } => {
                flexsfp_obs::json!({"Activate": {"slot": *slot as u64}})
            }
        }
    }
}

impl FromJson for ControlRequest {
    fn from_json(v: &Value) -> Option<ControlRequest> {
        if let Some(name) = v.as_str() {
            return match name {
                "GetInfo" => Some(ControlRequest::GetInfo),
                "ReadDom" => Some(ControlRequest::ReadDom),
                "ReadTelemetry" => Some(ControlRequest::ReadTelemetry),
                "ReadFlightRecords" => Some(ControlRequest::ReadFlightRecords),
                "CommitUpdate" => Some(ControlRequest::CommitUpdate),
                "AbortUpdate" => Some(ControlRequest::AbortUpdate),
                "QueryUpdate" => Some(ControlRequest::QueryUpdate),
                _ => None,
            };
        }
        let (tag, body) = single_variant(v)?;
        match tag {
            "Ping" => Some(ControlRequest::Ping {
                nonce: u64::from_json(&body["nonce"])?,
            }),
            "Table" => Some(ControlRequest::Table(CtlTableOp::from_json(body)?)),
            "BeginUpdate" => Some(ControlRequest::BeginUpdate {
                slot: usize::from_json(&body["slot"])?,
                total_len: usize::from_json(&body["total_len"])?,
                crc32: u32::from_json(&body["crc32"])?,
            }),
            "UpdateChunk" => Some(ControlRequest::UpdateChunk {
                seq: u32::from_json(&body["seq"])?,
                data: Vec::<u8>::from_json(&body["data"])?,
            }),
            "Activate" => Some(ControlRequest::Activate {
                slot: usize::from_json(&body["slot"])?,
            }),
            _ => None,
        }
    }
}

impl ToJson for ControlResponse {
    fn to_json(&self) -> Value {
        match self {
            ControlResponse::Ack => Value::Str("Ack".into()),
            ControlResponse::Pong { nonce } => flexsfp_obs::json!({"Pong": {"nonce": *nonce}}),
            ControlResponse::Info {
                module_id,
                app,
                app_version,
                boots,
                update_state,
            } => flexsfp_obs::json!({
                "Info": {
                    "module_id": module_id.as_str(),
                    "app": app.as_str(),
                    "app_version": *app_version,
                    "boots": *boots,
                    "update_state": update_state.as_str(),
                }
            }),
            ControlResponse::Table(r) => flexsfp_obs::json!({"Table": r.to_json()}),
            ControlResponse::Dom {
                temperature_c,
                vcc_v,
                tx_bias_ma,
                tx_power_mw,
                rx_power_mw,
            } => flexsfp_obs::json!({
                "Dom": {
                    "temperature_c": *temperature_c,
                    "vcc_v": *vcc_v,
                    "tx_bias_ma": *tx_bias_ma,
                    "tx_power_mw": *tx_power_mw,
                    "rx_power_mw": *rx_power_mw,
                }
            }),
            ControlResponse::Telemetry(snap) => {
                flexsfp_obs::json!({"Telemetry": snap.to_json()})
            }
            ControlResponse::FlightRecords(records) => {
                flexsfp_obs::json!({"FlightRecords": records.to_json()})
            }
            ControlResponse::UpdateStatus {
                state,
                slot,
                total_len,
                crc32,
                next_seq,
                received,
            } => flexsfp_obs::json!({
                "UpdateStatus": {
                    "state": state.as_str(),
                    "slot": *slot as u64,
                    "total_len": *total_len as u64,
                    "crc32": *crc32,
                    "next_seq": *next_seq,
                    "received": *received as u64,
                }
            }),
            ControlResponse::Error(msg) => flexsfp_obs::json!({"Error": msg.as_str()}),
        }
    }
}

impl FromJson for ControlResponse {
    fn from_json(v: &Value) -> Option<ControlResponse> {
        if let Some(name) = v.as_str() {
            return match name {
                "Ack" => Some(ControlResponse::Ack),
                _ => None,
            };
        }
        let (tag, body) = single_variant(v)?;
        match tag {
            "Pong" => Some(ControlResponse::Pong {
                nonce: u64::from_json(&body["nonce"])?,
            }),
            "Info" => Some(ControlResponse::Info {
                module_id: String::from_json(&body["module_id"])?,
                app: String::from_json(&body["app"])?,
                app_version: u32::from_json(&body["app_version"])?,
                boots: u32::from_json(&body["boots"])?,
                update_state: String::from_json(&body["update_state"])?,
            }),
            "Table" => Some(ControlResponse::Table(CtlTableResult::from_json(body)?)),
            "Dom" => Some(ControlResponse::Dom {
                temperature_c: f64::from_json(&body["temperature_c"])?,
                vcc_v: f64::from_json(&body["vcc_v"])?,
                tx_bias_ma: f64::from_json(&body["tx_bias_ma"])?,
                tx_power_mw: f64::from_json(&body["tx_power_mw"])?,
                rx_power_mw: f64::from_json(&body["rx_power_mw"])?,
            }),
            "Telemetry" => Some(ControlResponse::Telemetry(Box::new(
                flexsfp_obs::TelemetrySnapshot::from_json(body)?,
            ))),
            "FlightRecords" => Some(ControlResponse::FlightRecords(Vec::<
                flexsfp_obs::FlightRecord,
            >::from_json(
                body
            )?)),
            "UpdateStatus" => Some(ControlResponse::UpdateStatus {
                state: String::from_json(&body["state"])?,
                slot: usize::from_json(&body["slot"])?,
                total_len: usize::from_json(&body["total_len"])?,
                crc32: u32::from_json(&body["crc32"])?,
                next_seq: u32::from_json(&body["next_seq"])?,
                received: usize::from_json(&body["received"])?,
            }),
            "Error" => Some(ControlResponse::Error(String::from_json(body)?)),
            _ => None,
        }
    }
}

/// Split an externally tagged data variant: exactly one key, its value.
fn single_variant(v: &Value) -> Option<(&str, &Value)> {
    let object = v.as_object()?;
    if object.len() != 1 {
        return None;
    }
    let (tag, body) = object.iter().next()?;
    Some((tag.as_str(), body))
}

/// Authentication/framing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Well-formed, authenticated requests handled.
    pub handled: u64,
    /// Frames rejected for bad framing or failed authentication.
    pub rejected: u64,
}

/// Everything a request handler may touch — borrowed from the module to
/// keep the control plane itself free of ownership cycles.
pub struct ControlContext<'a> {
    /// The running application.
    pub app: &'a mut dyn PacketProcessor,
    /// The SPI flash.
    pub flash: &'a mut SpiFlash,
    /// Latest DOM reading.
    pub dom: DomReading,
    /// Module serial.
    pub module_id: &'a str,
    /// Running app version.
    pub app_version: u32,
    /// Boot count.
    pub boots: u32,
}

/// The embedded control plane.
#[derive(Debug)]
pub struct ControlPlane {
    /// Management MAC the control plane answers on.
    pub mac: MacAddr,
    /// Management IPv4 address.
    pub ip: u32,
    key: AuthKey,
    fsm: UpdateFsm,
    stats: ControlStats,
    /// Set when an `Activate` was accepted; the module consumes it and
    /// reboots from the slot.
    pub pending_activation: Option<usize>,
    update_aborts: u64,
    update_errors: u64,
    status_queries: u64,
}

impl ControlPlane {
    /// A control plane listening on `mac`/`ip` authenticated by `key`.
    pub fn new(mac: MacAddr, ip: u32, key: AuthKey) -> ControlPlane {
        ControlPlane {
            mac,
            ip,
            key,
            fsm: UpdateFsm::new(),
            stats: ControlStats::default(),
            pending_activation: None,
            update_aborts: 0,
            update_errors: 0,
            status_queries: 0,
        }
    }

    /// Statistics.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Update FSM state (for Info reports and tests).
    pub fn update_state(&self) -> &UpdateState {
        self.fsm.state()
    }

    /// Lifetime control-plane resilience counters for telemetry export.
    pub fn ctrl_counters(&self) -> flexsfp_obs::CtrlCounters {
        flexsfp_obs::CtrlCounters {
            dup_chunk_acks: self.fsm.dup_acks(),
            update_aborts: self.update_aborts,
            update_errors: self.update_errors,
            status_queries: self.status_queries,
        }
    }

    /// Tear down any in-progress update without counting it as a
    /// host-requested abort — called when the module reboots (the soft
    /// FSM does not survive a restart of the softcore).
    pub fn reset_update(&mut self) {
        self.fsm.abort();
    }

    /// True if `frame` is a control frame addressed to this module:
    /// unicast to our MAC, IPv4 to our IP, UDP to [`CONTROL_PORT`].
    pub fn classify(&self, frame: &[u8]) -> bool {
        let Ok(eth) = EthernetFrame::new_checked(frame) else {
            return false;
        };
        if eth.dst() != self.mac {
            return false;
        }
        let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
            return false;
        };
        if ip.dst() != self.ip {
            return false;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return false;
        };
        udp.dst_port() == CONTROL_PORT
    }

    /// Cheap negative filter over a pre-parsed microflow key: `false`
    /// proves [`classify`](Self::classify) would return `false`, so
    /// the full parse can be skipped. Sound because a key only
    /// extracts for canonical IPv4 frames, and for an *untagged* one
    /// the key's destination IP is the same bytes `classify` reads —
    /// so a mismatch rules the frame out. Tagged frames (where
    /// `classify`'s raw-offset parse could behave differently) always
    /// return `true` and take the full parse.
    pub fn may_classify(&self, key: &flexsfp_ppe::FlowKey) -> bool {
        key.vlan_count() != 0 || key.dst_ip() == self.ip
    }

    /// Handle a classified control frame, returning the response frame
    /// (swapped addressing) when one is due.
    pub fn handle_frame(&mut self, frame: &[u8], ctx: &mut ControlContext<'_>) -> Option<Vec<u8>> {
        let eth = EthernetFrame::new_checked(frame).ok()?;
        let ip = Ipv4Packet::new_checked(eth.payload()).ok()?;
        let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
        let request = match self.decode(udp.payload()) {
            Some(r) => r,
            None => {
                self.stats.rejected += 1;
                return None;
            }
        };
        self.stats.handled += 1;
        let response = self.handle(request, ctx);
        let payload = self.encode(&response);
        Some(PacketBuilder::eth_ipv4_udp(
            eth.src(),
            self.mac,
            self.ip,
            ip.src(),
            CONTROL_PORT,
            udp.src_port(),
            &payload,
        ))
    }

    /// Decode and authenticate a control payload.
    pub fn decode(&self, payload: &[u8]) -> Option<ControlRequest> {
        if payload.len() < 12 || &payload[..4] != MAGIC {
            return None;
        }
        let tag: [u8; 8] = payload[4..12].try_into().unwrap();
        let body = &payload[12..];
        if !auth::verify(&self.key, body, &tag) {
            return None;
        }
        ControlRequest::from_json(&Value::parse(std::str::from_utf8(body).ok()?).ok()?)
    }

    /// Encode (and tag) a response payload.
    pub fn encode<T: ToJson>(&self, msg: &T) -> Vec<u8> {
        let body = msg.to_json().to_string().into_bytes();
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&auth::tag(&self.key, &body));
        out.extend_from_slice(&body);
        out
    }

    /// Build an authenticated request payload (host-side helper shares
    /// the same key material via `flexsfp-host`).
    pub fn encode_request(key: &AuthKey, req: &ControlRequest) -> Vec<u8> {
        let body = req.to_json().to_string().into_bytes();
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&auth::tag(key, &body));
        out.extend_from_slice(&body);
        out
    }

    /// Decode a response payload under `key` (host-side helper).
    pub fn decode_response(key: &AuthKey, payload: &[u8]) -> Option<ControlResponse> {
        if payload.len() < 12 || &payload[..4] != MAGIC {
            return None;
        }
        let tag: [u8; 8] = payload[4..12].try_into().unwrap();
        let body = &payload[12..];
        if !auth::verify(key, body, &tag) {
            return None;
        }
        ControlResponse::from_json(&Value::parse(std::str::from_utf8(body).ok()?).ok()?)
    }

    /// Execute one request.
    pub fn handle(&mut self, req: ControlRequest, ctx: &mut ControlContext<'_>) -> ControlResponse {
        match req {
            ControlRequest::Ping { nonce } => ControlResponse::Pong { nonce },
            ControlRequest::GetInfo => ControlResponse::Info {
                module_id: ctx.module_id.into(),
                app: ctx.app.name().into(),
                app_version: ctx.app_version,
                boots: ctx.boots,
                update_state: format!("{:?}", self.fsm.state()),
            },
            ControlRequest::Table(op) => {
                ControlResponse::Table(ctx.app.control_op(&op.to_table_op()).into())
            }
            ControlRequest::ReadTelemetry => {
                // The snapshot needs module-level state (transceivers,
                // event ring, laser model); FlexSfp::handle_oob
                // intercepts this request before delegating here.
                ControlResponse::Error("telemetry is only available out-of-band".into())
            }
            ControlRequest::ReadFlightRecords => {
                // Same module-level interception as telemetry: the
                // flight ring belongs to the shell.
                ControlResponse::Error("flight records are only available out-of-band".into())
            }
            ControlRequest::ReadDom => ControlResponse::Dom {
                temperature_c: ctx.dom.temperature_c,
                vcc_v: ctx.dom.vcc_v,
                tx_bias_ma: ctx.dom.tx_bias_ma,
                tx_power_mw: ctx.dom.tx_power_mw,
                rx_power_mw: ctx.dom.rx_power_mw,
            },
            ControlRequest::BeginUpdate {
                slot,
                total_len,
                crc32,
            } => {
                let r = self.fsm_begin(slot, total_len, crc32);
                self.fsm_result(r)
            }
            ControlRequest::UpdateChunk { seq, data } => {
                let r = self.fsm.chunk(seq, &data);
                self.fsm_result(r)
            }
            ControlRequest::CommitUpdate => {
                let r = self.fsm.commit(ctx.flash).map(|_| ());
                self.fsm_result(r)
            }
            ControlRequest::Activate { slot } => {
                // Activation is legal for a staged slot or any
                // previously-written slot (rollback), including golden 0.
                if slot >= flexsfp_fabric::flash::SLOTS {
                    return ControlResponse::Error("bad slot".into());
                }
                self.fsm.activated();
                self.pending_activation = Some(slot);
                ControlResponse::Ack
            }
            ControlRequest::AbortUpdate => {
                if !matches!(self.fsm.state(), UpdateState::Idle) {
                    self.update_aborts += 1;
                }
                self.fsm.abort();
                ControlResponse::Ack
            }
            ControlRequest::QueryUpdate => {
                self.status_queries += 1;
                match *self.fsm.state() {
                    UpdateState::Idle => ControlResponse::UpdateStatus {
                        state: "idle".into(),
                        slot: 0,
                        total_len: 0,
                        crc32: 0,
                        next_seq: 0,
                        received: 0,
                    },
                    UpdateState::Receiving {
                        slot,
                        total_len,
                        expected_crc,
                        next_seq,
                        received,
                    } => ControlResponse::UpdateStatus {
                        state: "receiving".into(),
                        slot,
                        total_len,
                        crc32: expected_crc,
                        next_seq,
                        received,
                    },
                    UpdateState::Staged { slot } => ControlResponse::UpdateStatus {
                        state: "staged".into(),
                        slot,
                        total_len: 0,
                        crc32: 0,
                        next_seq: 0,
                        received: 0,
                    },
                }
            }
        }
    }

    fn fsm_begin(&mut self, slot: usize, total_len: usize, crc: u32) -> Result<(), UpdateError> {
        self.fsm.begin(slot, total_len, crc)
    }

    fn fsm_result(&mut self, r: Result<(), UpdateError>) -> ControlResponse {
        match r {
            Ok(()) => ControlResponse::Ack,
            Err(e) => {
                self.update_errors += 1;
                ControlResponse::Error(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_fabric::hash::crc32;
    use flexsfp_ppe::engine::PassThrough;

    const MGMT_MAC: MacAddr = MacAddr([0x02, 0xf5, 0x0f, 0x00, 0x00, 0x01]);
    const MGMT_IP: u32 = 0x0a00_0164; // 10.0.1.100
    const HOST_IP: u32 = 0x0a00_0101;

    fn cp() -> ControlPlane {
        ControlPlane::new(MGMT_MAC, MGMT_IP, AuthKey::from_passphrase("test"))
    }

    fn ctx_parts() -> (PassThrough, SpiFlash) {
        (PassThrough, SpiFlash::new())
    }

    fn make_ctx<'a>(app: &'a mut PassThrough, flash: &'a mut SpiFlash) -> ControlContext<'a> {
        ControlContext {
            app,
            flash,
            dom: DomReading {
                temperature_c: 40.0,
                vcc_v: 3.3,
                tx_bias_ma: 6.0,
                tx_power_mw: 0.6,
                rx_power_mw: 0.5,
            },
            module_id: "S000042",
            app_version: 1,
            boots: 3,
        }
    }

    fn control_frame(cp: &ControlPlane, req: &ControlRequest) -> Vec<u8> {
        let payload = ControlPlane::encode_request(&AuthKey::from_passphrase("test"), req);
        let _ = cp;
        PacketBuilder::eth_ipv4_udp(
            MGMT_MAC,
            MacAddr([0xee; 6]),
            HOST_IP,
            MGMT_IP,
            40_000,
            CONTROL_PORT,
            &payload,
        )
    }

    #[test]
    fn classify_accepts_only_our_control_frames() {
        let cp = cp();
        let good = control_frame(&cp, &ControlRequest::Ping { nonce: 1 });
        assert!(cp.classify(&good));
        // Wrong MAC.
        let mut bad = good.clone();
        bad[0] ^= 1;
        assert!(!cp.classify(&bad));
        // Wrong port.
        let other = PacketBuilder::eth_ipv4_udp(
            MGMT_MAC,
            MacAddr([0xee; 6]),
            HOST_IP,
            MGMT_IP,
            40_000,
            53,
            b"dns",
        );
        assert!(!cp.classify(&other));
        // Non-IP traffic.
        assert!(!cp.classify(&[0u8; 60]));
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        let frame = control_frame(&cp, &ControlRequest::Ping { nonce: 77 });
        let resp_frame = cp.handle_frame(&frame, &mut ctx).unwrap();
        // Response goes back to the host.
        let eth = EthernetFrame::new_checked(&resp_frame[..]).unwrap();
        assert_eq!(eth.dst(), MacAddr([0xee; 6]));
        assert_eq!(eth.src(), MGMT_MAC);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.src(), MGMT_IP);
        assert_eq!(ip.dst(), HOST_IP);
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        let resp = ControlPlane::decode_response(&AuthKey::from_passphrase("test"), udp.payload())
            .unwrap();
        assert_eq!(resp, ControlResponse::Pong { nonce: 77 });
        assert_eq!(cp.stats().handled, 1);
    }

    #[test]
    fn bad_auth_rejected_silently() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        // Request signed with the wrong key.
        let payload = ControlPlane::encode_request(
            &AuthKey::from_passphrase("attacker"),
            &ControlRequest::Activate { slot: 1 },
        );
        let frame = PacketBuilder::eth_ipv4_udp(
            MGMT_MAC,
            MacAddr([0xee; 6]),
            HOST_IP,
            MGMT_IP,
            40_000,
            CONTROL_PORT,
            &payload,
        );
        assert!(cp.handle_frame(&frame, &mut ctx).is_none());
        assert_eq!(cp.stats().rejected, 1);
        assert_eq!(cp.pending_activation, None);
    }

    #[test]
    fn info_reports_identity() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        match cp.handle(ControlRequest::GetInfo, &mut ctx) {
            ControlResponse::Info {
                module_id,
                app,
                boots,
                ..
            } => {
                assert_eq!(module_id, "S000042");
                assert_eq!(app, "passthrough");
                assert_eq!(boots, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dom_read() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        match cp.handle(ControlRequest::ReadDom, &mut ctx) {
            ControlResponse::Dom { temperature_c, .. } => assert_eq!(temperature_c, 40.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_op_on_fixed_function_app_is_unsupported() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        let resp = cp.handle(
            ControlRequest::Table(CtlTableOp::ReadCounter { index: 0 }),
            &mut ctx,
        );
        assert_eq!(resp, ControlResponse::Table(CtlTableResult::Unsupported));
    }

    #[test]
    fn ota_update_over_control_protocol() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let image: Vec<u8> = (0..2500u32).map(|i| (i % 253) as u8).collect();
        let crc = crc32(&image);
        {
            let mut ctx = make_ctx(&mut app, &mut flash);
            assert_eq!(
                cp.handle(
                    ControlRequest::BeginUpdate {
                        slot: 2,
                        total_len: image.len(),
                        crc32: crc
                    },
                    &mut ctx
                ),
                ControlResponse::Ack
            );
            for (seq, chunk) in image.chunks(crate::reprogram::MAX_CHUNK).enumerate() {
                assert_eq!(
                    cp.handle(
                        ControlRequest::UpdateChunk {
                            seq: seq as u32,
                            data: chunk.to_vec()
                        },
                        &mut ctx
                    ),
                    ControlResponse::Ack
                );
            }
            assert_eq!(
                cp.handle(ControlRequest::CommitUpdate, &mut ctx),
                ControlResponse::Ack
            );
            assert_eq!(
                cp.handle(ControlRequest::Activate { slot: 2 }, &mut ctx),
                ControlResponse::Ack
            );
        }
        assert_eq!(cp.pending_activation, Some(2));
        assert_eq!(flash.read_slot(2, image.len()).unwrap(), &image[..]);
    }

    #[test]
    fn query_update_reports_progress_and_counters_accumulate() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        // Idle before anything starts.
        match cp.handle(ControlRequest::QueryUpdate, &mut ctx) {
            ControlResponse::UpdateStatus { state, .. } => assert_eq!(state, "idle"),
            other => panic!("unexpected {other:?}"),
        }
        let image: Vec<u8> = (0..2500u32).map(|i| (i % 253) as u8).collect();
        let crc = crc32(&image);
        cp.handle(
            ControlRequest::BeginUpdate {
                slot: 2,
                total_len: image.len(),
                crc32: crc,
            },
            &mut ctx,
        );
        cp.handle(
            ControlRequest::UpdateChunk {
                seq: 0,
                data: image[..1024].to_vec(),
            },
            &mut ctx,
        );
        // Mid-transfer the status carries enough to resume: same slot,
        // length and CRC, plus the next expected sequence number.
        match cp.handle(ControlRequest::QueryUpdate, &mut ctx) {
            ControlResponse::UpdateStatus {
                state,
                slot,
                total_len,
                crc32,
                next_seq,
                received,
            } => {
                assert_eq!(state, "receiving");
                assert_eq!(slot, 2);
                assert_eq!(total_len, image.len());
                assert_eq!(crc32, crc);
                assert_eq!(next_seq, 1);
                assert_eq!(received, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A duplicate of the last chunk is an idempotent Ack…
        assert_eq!(
            cp.handle(
                ControlRequest::UpdateChunk {
                    seq: 0,
                    data: image[..1024].to_vec(),
                },
                &mut ctx,
            ),
            ControlResponse::Ack
        );
        // …and a bad one is a counted error.
        match cp.handle(
            ControlRequest::UpdateChunk {
                seq: 7,
                data: image[..1024].to_vec(),
            },
            &mut ctx,
        ) {
            ControlResponse::Error(e) => assert!(e.contains("BadSequence")),
            other => panic!("unexpected {other:?}"),
        }
        // Abort tears down and counts.
        assert_eq!(
            cp.handle(ControlRequest::AbortUpdate, &mut ctx),
            ControlResponse::Ack
        );
        match cp.handle(ControlRequest::QueryUpdate, &mut ctx) {
            ControlResponse::UpdateStatus { state, .. } => assert_eq!(state, "idle"),
            other => panic!("unexpected {other:?}"),
        }
        let ctrl = cp.ctrl_counters();
        assert_eq!(ctrl.dup_chunk_acks, 1);
        assert_eq!(ctrl.update_aborts, 1);
        assert_eq!(ctrl.update_errors, 1);
        assert_eq!(ctrl.status_queries, 3);
        // An abort with nothing in progress is not counted.
        cp.handle(ControlRequest::AbortUpdate, &mut ctx);
        assert_eq!(cp.ctrl_counters().update_aborts, 1);
    }

    #[test]
    fn new_control_messages_round_trip_through_codec() {
        let key = AuthKey::from_passphrase("test");
        let req = ControlRequest::QueryUpdate;
        let payload = ControlPlane::encode_request(&key, &req);
        let cp = cp();
        assert_eq!(cp.decode(&payload), Some(req));
        let resp = ControlResponse::UpdateStatus {
            state: "receiving".into(),
            slot: 3,
            total_len: 99_000,
            crc32: 0xdead_beef,
            next_seq: 17,
            received: 17_408,
        };
        let encoded = cp.encode(&resp);
        assert_eq!(ControlPlane::decode_response(&key, &encoded), Some(resp));
    }

    #[test]
    fn activation_of_invalid_slot_errors() {
        let mut cp = cp();
        let (mut app, mut flash) = ctx_parts();
        let mut ctx = make_ctx(&mut app, &mut flash);
        match cp.handle(ControlRequest::Activate { slot: 99 }, &mut ctx) {
            ControlResponse::Error(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cp.pending_activation, None);
    }
}
