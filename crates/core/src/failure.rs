//! VCSEL wear-out and fault diagnosis.
//!
//! §5.3 (Failure Recovery): VCSELs wear out faster than the electronics,
//! with "time-to-failure following a lognormal distribution and gradual
//! optical power degradation as the primary failure" (citing the IEEE
//! 802.3 OMEGA reliability analysis). The FlexSFP's internal visibility
//! lets it distinguish laser degradation from driver-circuit failure and
//! schedule component-level replacement. This module models both the
//! wear-out process and the diagnosis logic.

use flexsfp_fabric::i2c::DomReading;
use flexsfp_fabric::serdes::OpticalHealth;

/// Lognormal time-to-failure model for a VCSEL population.
#[derive(Debug, Clone, Copy)]
pub struct VcselModel {
    /// Median time to failure in hours (the lognormal's exp(μ)).
    pub median_ttf_hours: f64,
    /// Shape parameter σ of ln(TTF).
    pub sigma: f64,
    /// Healthy beginning-of-life optical power, dBm.
    pub initial_power_dbm: f64,
    /// Healthy beginning-of-life bias current, mA.
    pub initial_bias_ma: f64,
}

impl Default for VcselModel {
    fn default() -> Self {
        // Representative of the OMEGA data for datacom VCSELs at
        // moderate case temperature.
        VcselModel {
            median_ttf_hours: 250_000.0,
            sigma: 0.6,
            initial_power_dbm: -2.0,
            initial_bias_ma: 6.0,
        }
    }
}

impl VcselModel {
    /// Sample a device's TTF (hours) from the lognormal using a standard
    /// normal variate `z` supplied by the caller (keeps this crate
    /// rand-free; callers draw `z` from a seeded RNG).
    pub fn sample_ttf_hours(&self, z: f64) -> f64 {
        self.median_ttf_hours * (self.sigma * z).exp()
    }

    /// Cap on the consumed-life fraction used by [`VcselModel::health_at`].
    /// At 4× TTF the power drop is 48 dB — far past any failure
    /// threshold — so capping there keeps every output finite without
    /// changing values anywhere in the physically meaningful range.
    pub const LIFE_CAP: f64 = 4.0;

    /// Optical state at `age_hours` for a device with the given `ttf`.
    ///
    /// Degradation is gradual: power declines slowly through life,
    /// crossing −3 dB of its initial value at TTF (the conventional
    /// failure criterion), while bias current rises as the drive loop
    /// compensates. Degenerate inputs (`ttf_hours <= 0`, NaN, 0/0) are
    /// clamped so the DOM readout is always finite: a non-positive TTF
    /// means the device is past end of life the moment it has any age.
    pub fn health_at(&self, age_hours: f64, ttf_hours: f64) -> OpticalHealth {
        let life = if !ttf_hours.is_finite() || ttf_hours <= 0.0 {
            if ttf_hours.is_sign_positive() && ttf_hours.is_infinite() {
                0.0 // infinite TTF: never wears out
            } else if age_hours > 0.0 {
                Self::LIFE_CAP
            } else {
                0.0
            }
        } else {
            let ratio = age_hours / ttf_hours;
            if ratio.is_finite() {
                ratio.clamp(0.0, Self::LIFE_CAP)
            } else if ratio > 0.0 {
                Self::LIFE_CAP // infinite age on a finite TTF
            } else {
                0.0 // NaN age: treat as beginning of life
            }
        };
        // Power drop in dB: ~quadratic-in-life wear, 3 dB at end of life,
        // accelerating beyond.
        let drop_db = 3.0 * life * life;
        // Bias compensation: up to +40% at end of life.
        let bias = self.initial_bias_ma * (1.0 + 0.4 * life.min(2.0));
        OpticalHealth {
            tx_power_dbm: self.initial_power_dbm - drop_db,
            bias_ma: bias,
        }
    }

    /// True once the device has crossed the −3 dB failure criterion.
    pub fn is_failed(&self, health: &OpticalHealth) -> bool {
        health.tx_power_dbm <= self.initial_power_dbm - 3.0
    }
}

/// Diagnosis of an optical-path fault from DOM readings — the targeted-
/// repair insight of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDiagnosis {
    /// Everything nominal.
    Healthy,
    /// Laser wearing out: power down, bias compensating upward.
    /// Replace the TOSA (laser sub-assembly).
    LaserDegradation,
    /// Laser at end of life: power below the failure criterion.
    LaserFailed,
    /// Driver circuit fault: no bias current at all, so no light.
    /// Replace/repair the driver, not the laser.
    DriverFault,
    /// Receive path problem: our laser is fine but no light arrives
    /// (fiber break or far-end fault).
    RxLoss,
}

/// Diagnostic thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DiagnosisThresholds {
    /// Power drop (dB) below initial considered "degrading".
    pub degrade_db: f64,
    /// Power drop (dB) considered "failed".
    pub fail_db: f64,
    /// Bias (mA) below which the driver is considered dead.
    pub min_bias_ma: f64,
    /// Bias rise ratio considered "compensating".
    pub bias_rise: f64,
    /// RX power (mW) below which the receive path is dark.
    pub rx_dark_mw: f64,
}

impl Default for DiagnosisThresholds {
    fn default() -> Self {
        DiagnosisThresholds {
            degrade_db: 1.0,
            fail_db: 3.0,
            min_bias_ma: 0.5,
            bias_rise: 1.1,
            rx_dark_mw: 0.01,
        }
    }
}

/// Diagnose from a DOM reading against the device's beginning-of-life
/// baseline.
pub fn diagnose(
    dom: &DomReading,
    model: &VcselModel,
    thresholds: &DiagnosisThresholds,
) -> FaultDiagnosis {
    let tx_dbm = dom.tx_power_dbm();
    let drop_db = model.initial_power_dbm - tx_dbm;
    // Driver dead: no bias at all (the laser cannot lase without bias,
    // so power is also gone — bias is the distinguishing signal).
    if dom.tx_bias_ma < thresholds.min_bias_ma {
        return FaultDiagnosis::DriverFault;
    }
    if drop_db >= thresholds.fail_db {
        return FaultDiagnosis::LaserFailed;
    }
    if drop_db >= thresholds.degrade_db
        && dom.tx_bias_ma >= model.initial_bias_ma * thresholds.bias_rise
    {
        return FaultDiagnosis::LaserDegradation;
    }
    if dom.rx_power_mw < thresholds.rx_dark_mw {
        return FaultDiagnosis::RxLoss;
    }
    FaultDiagnosis::Healthy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(tx_power_mw: f64, bias_ma: f64, rx_mw: f64) -> DomReading {
        DomReading {
            temperature_c: 40.0,
            vcc_v: 3.3,
            tx_bias_ma: bias_ma,
            tx_power_mw,
            rx_power_mw: rx_mw,
        }
    }

    #[test]
    fn lognormal_median_and_spread() {
        let m = VcselModel::default();
        assert!((m.sample_ttf_hours(0.0) - 250_000.0).abs() < 1.0);
        // ±1σ spread.
        assert!(m.sample_ttf_hours(1.0) > 400_000.0);
        assert!(m.sample_ttf_hours(-1.0) < 150_000.0);
        // Monotone in z.
        assert!(m.sample_ttf_hours(2.0) > m.sample_ttf_hours(1.0));
    }

    #[test]
    fn degradation_is_gradual_and_hits_3db_at_ttf() {
        let m = VcselModel::default();
        let ttf = 100_000.0;
        let young = m.health_at(10_000.0, ttf);
        let mid = m.health_at(50_000.0, ttf);
        let old = m.health_at(100_000.0, ttf);
        assert!(young.tx_power_dbm > mid.tx_power_dbm);
        assert!(mid.tx_power_dbm > old.tx_power_dbm);
        assert!((old.tx_power_dbm - (m.initial_power_dbm - 3.0)).abs() < 1e-9);
        assert!(m.is_failed(&old));
        assert!(!m.is_failed(&mid));
        // Bias rises with age.
        assert!(old.bias_ma > young.bias_ma);
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let m = VcselModel::default();
        // ttf == 0 with positive age used to divide to +inf life and
        // emit -inf power; now it reads as "past end of life".
        let h = m.health_at(1_000.0, 0.0);
        assert!(h.tx_power_dbm.is_finite() && h.bias_ma.is_finite());
        assert!(m.is_failed(&h));
        // 0/0 used to be NaN; a zero-age device on a zero TTF reads as
        // beginning of life.
        let h = m.health_at(0.0, 0.0);
        assert!(h.tx_power_dbm.is_finite() && h.bias_ma.is_finite());
        assert_eq!(h.tx_power_dbm, m.initial_power_dbm);
        assert_eq!(h.bias_ma, m.initial_bias_ma);
        // Negative TTF is nonsense input, not a license for -inf.
        let h = m.health_at(5_000.0, -1.0);
        assert!(h.tx_power_dbm.is_finite() && h.bias_ma.is_finite());
        assert!(m.is_failed(&h));
        // NaN age reads as beginning of life, not NaN power.
        let h = m.health_at(f64::NAN, 100_000.0);
        assert!(h.tx_power_dbm.is_finite() && h.bias_ma.is_finite());
        // Infinite TTF never wears out; infinite age on a finite TTF is
        // worn out, both finite.
        let h = m.health_at(1.0e12, f64::INFINITY);
        assert_eq!(h.tx_power_dbm, m.initial_power_dbm);
        let h = m.health_at(f64::INFINITY, 100_000.0);
        assert!(h.tx_power_dbm.is_finite());
        assert!(m.is_failed(&h));
        // Deep into wear-out the drop is capped, never -inf.
        let h = m.health_at(1.0e9, 1.0);
        assert!(h.tx_power_dbm >= m.initial_power_dbm - 3.0 * VcselModel::LIFE_CAP.powi(2));
    }

    #[test]
    fn clamp_does_not_change_normal_range() {
        let m = VcselModel::default();
        let ttf = 100_000.0;
        for age in [0.0, 10_000.0, 50_000.0, 100_000.0, 200_000.0] {
            let h = m.health_at(age, ttf);
            let life = age / ttf;
            assert!((h.tx_power_dbm - (m.initial_power_dbm - 3.0 * life * life)).abs() < 1e-12);
        }
    }

    #[test]
    fn diagnosis_healthy() {
        let m = VcselModel::default();
        // -2 dBm ≈ 0.631 mW, nominal bias, light arriving.
        let d = dom(0.631, 6.0, 0.4);
        assert_eq!(
            diagnose(&d, &m, &DiagnosisThresholds::default()),
            FaultDiagnosis::Healthy
        );
    }

    #[test]
    fn diagnosis_laser_degradation() {
        let m = VcselModel::default();
        // -3.5 dBm (1.5 dB down) with bias up 25%.
        let d = dom(0.447, 7.5, 0.4);
        assert_eq!(
            diagnose(&d, &m, &DiagnosisThresholds::default()),
            FaultDiagnosis::LaserDegradation
        );
    }

    #[test]
    fn diagnosis_laser_failed() {
        let m = VcselModel::default();
        // -5.5 dBm (3.5 dB down), bias high.
        let d = dom(0.282, 8.4, 0.4);
        assert_eq!(
            diagnose(&d, &m, &DiagnosisThresholds::default()),
            FaultDiagnosis::LaserFailed
        );
    }

    #[test]
    fn diagnosis_driver_fault_not_laser() {
        let m = VcselModel::default();
        // No bias at all: even with zero power this is the driver.
        let d = dom(0.0001, 0.0, 0.4);
        assert_eq!(
            diagnose(&d, &m, &DiagnosisThresholds::default()),
            FaultDiagnosis::DriverFault
        );
    }

    #[test]
    fn diagnosis_rx_loss() {
        let m = VcselModel::default();
        // Our TX fine, nothing arriving: fiber break / far end.
        let d = dom(0.631, 6.0, 0.0);
        assert_eq!(
            diagnose(&d, &m, &DiagnosisThresholds::default()),
            FaultDiagnosis::RxLoss
        );
    }

    #[test]
    fn wearout_sequence_transitions_through_diagnoses() {
        // Drive the model through life and check the diagnosis follows:
        // healthy -> degrading -> failed.
        let m = VcselModel::default();
        let ttf = 200_000.0;
        let th = DiagnosisThresholds::default();
        let mut seen = Vec::new();
        for age in [
            0.0, 40_000.0, 80_000.0, 120_000.0, 160_000.0, 200_000.0, 240_000.0,
        ] {
            let h = m.health_at(age, ttf);
            let d = dom(10f64.powf(h.tx_power_dbm / 10.0), h.bias_ma, 0.4);
            seen.push(diagnose(&d, &m, &th));
        }
        assert_eq!(seen.first(), Some(&FaultDiagnosis::Healthy));
        assert!(seen.contains(&FaultDiagnosis::LaserDegradation));
        assert_eq!(seen.last(), Some(&FaultDiagnosis::LaserFailed));
        // The sequence is monotone: once failed, stays failed.
        let first_fail = seen.iter().position(|d| *d == FaultDiagnosis::LaserFailed);
        if let Some(i) = first_fail {
            assert!(seen[i..].iter().all(|d| *d == FaultDiagnosis::LaserFailed));
        }
    }
}
