//! The crossbar against a model bridge.
//!
//! The model is the simplest possible MAC-learning bridge: a `BTreeMap`
//! MAC table and unbounded, instant queues. When no crosspoint
//! overflows, the crossbar must deliver exactly the same multiset of
//! (port, frame) pairs for *any* injection sequence — timing,
//! arbitration order and queueing may differ, the delivered frames may
//! not. The sequences are seeded and randomized (the workspace's
//! hermetic default build has no property-testing dependency, so this
//! is the same exploration driven by `flexsfp_traffic::Xoshiro256`).
//!
//! A second, fully deterministic test overdrives one output through a
//! depth-2 matrix and pins the exact per-crosspoint drop counts.

use flexsfp_host::crossbar::CrossbarSwitch;
use flexsfp_traffic::Xoshiro256;
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;
use std::collections::BTreeMap;

/// The reference bridge: same learning/flood/hairpin semantics as the
/// switches, no queues, no modules, no loss.
struct ModelBridge {
    ports: usize,
    table: BTreeMap<MacAddr, usize>,
}

impl ModelBridge {
    fn new(ports: usize) -> ModelBridge {
        ModelBridge {
            ports,
            table: BTreeMap::new(),
        }
    }

    fn inject(&mut self, port: usize, frame: &[u8]) -> Vec<(usize, Vec<u8>)> {
        if frame.len() < 14 {
            return Vec::new(); // malformed: no delivery
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        let (dst, src) = (MacAddr(dst), MacAddr(src));
        if src.is_unicast() {
            self.table.insert(src, port);
        }
        match self.table.get(&dst) {
            Some(&p) if p != port => vec![(p, frame.to_vec())],
            Some(_) => Vec::new(),
            None => (0..self.ports)
                .filter(|&p| p != port)
                .map(|p| (p, frame.to_vec()))
                .collect(),
        }
    }
}

fn mac(i: u64) -> MacAddr {
    MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, i as u8])
}

fn test_frame(dst: MacAddr, src: MacAddr, dport: u16) -> Vec<u8> {
    PacketBuilder::eth_ipv4_udp(dst, src, 0xc0a80001, 0xc0a80002, 777, dport, b"model")
}

/// Sorted multiset of (port, frame) for order-insensitive comparison.
fn multiset(mut deliveries: Vec<(usize, Vec<u8>)>) -> Vec<(usize, Vec<u8>)> {
    deliveries.sort();
    deliveries
}

#[test]
fn crossbar_matches_model_bridge_for_random_sequences() {
    const PORTS: usize = 8;
    const MACS: u64 = 6;
    const INJECTIONS: usize = 400;
    for seed in 1..=5u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut model = ModelBridge::new(PORTS);
        // Depth far beyond anything the sequence can queue: loss-free.
        let mut xbar = CrossbarSwitch::new(PORTS, 4_096);
        let mut expected = Vec::new();
        let mut actual = Vec::new();
        for step in 0..INJECTIONS {
            let port = rng.range_usize(0, PORTS);
            let t_ns = step as u64 * 1_000;
            let frame = if step % 37 == 36 {
                vec![0xde, 0xad, 0xbe] // a runt: both must swallow it
            } else {
                let src = mac(rng.range_u64(0, MACS));
                let dst = mac(rng.range_u64(0, MACS));
                test_frame(dst, src, 1_000 + step as u16)
            };
            expected.extend(model.inject(port, &frame));
            actual.extend(
                xbar.inject(port, frame, t_ns)
                    .into_iter()
                    .map(|d| (d.port, d.frame)),
            );
        }
        actual.extend(xbar.drain().into_iter().map(|d| (d.port, d.frame)));

        let s = xbar.stats();
        assert_eq!(s.crosspoint_dropped, 0, "seed {seed}: queue overflowed");
        assert_eq!(s.queued, 0, "seed {seed}: drain left frames behind");
        assert!(s.conserved(), "seed {seed}: {s:?}");
        assert_eq!(
            multiset(actual),
            multiset(expected),
            "seed {seed}: delivery multiset diverged from the model bridge"
        );
    }
}

#[test]
fn overdriven_output_pins_per_crosspoint_drop_counts() {
    // 4 ports, 2 slots per crosspoint. Learn a destination on port 3,
    // then have inputs 0, 1 and 2 each fire 5 frames at one instant.
    let mut sw = CrossbarSwitch::new(4, 2);
    let dst = mac(9);
    sw.inject(3, test_frame(mac(0), dst, 80), 0);
    sw.drain();

    let t0 = 1_000_000;
    for k in 0..5u16 {
        for input in 0..3usize {
            sw.inject(input, test_frame(dst, mac(input as u64), 2_000 + k), t0);
        }
    }
    let out = sw.drain();

    // The very first frame (input 0) is granted while the port is
    // idle; every later frame parks. Each crosspoint holds 2, so
    // input 0 drops 5−1−2 = 2 and inputs 1 and 2 drop 5−2 = 3 each.
    let t = sw.telemetry();
    let drops_of = |input: u64| {
        t.crosspoints
            .iter()
            .find(|c| c.input == input && c.output == 3)
            .map_or(0, |c| c.dropped)
    };
    assert_eq!(drops_of(0), 2);
    assert_eq!(drops_of(1), 3);
    assert_eq!(drops_of(2), 3);

    let s = sw.stats();
    assert_eq!(s.crosspoint_dropped, 8);
    // 1 granted at injection + 6 drained here; the flood that learned
    // the destination delivered 3 more earlier.
    assert_eq!(out.len(), 6);
    assert_eq!(s.sw.delivered, 3 + 7);
    assert_eq!(s.queued, 0);
    assert!(s.conserved(), "{s:?}");

    // Round-robin arbitration drains the three crosspoints fairly:
    // consecutive grants cycle input 1, 2, 0, 1, 2, 0 (the pointer
    // moved past input 0 when the burst's first frame was granted).
    assert!(sw.queue_latency().p999() > 0);
}
