//! Host-side fleet metrics collector.
//!
//! The exporter half of the telemetry pipeline (§4.1/§5.3): modules
//! serialize [`TelemetrySnapshot`]s over their management channel; the
//! collector keeps the latest snapshot per module, accumulates the
//! traced dataplane events, merges the per-module latency histograms
//! into a fleet-wide distribution, and renders everything as
//! Prometheus text exposition or JSON.
//!
//! Snapshots carry *lifetime* counters and histograms, so a fresh
//! snapshot **replaces** the stored one for that module — merging two
//! snapshots of the same module would double-count. Only the
//! cross-module fleet histogram is produced by merging.

use flexsfp_obs::{DataplaneEvent, LatencyHistogram, PromText, TelemetrySnapshot, ToJson, Value};
use std::collections::BTreeMap;

/// Traced events retained per module on the host (ring rings drain into
/// this bounded log; oldest entries are discarded first).
pub const EVENT_LOG_CAPACITY: usize = 1024;

/// Per-module state held by the collector.
#[derive(Debug, Clone)]
struct ModuleRecord {
    /// Latest lifetime snapshot (replaced wholesale on each scrape).
    snapshot: TelemetrySnapshot,
    /// Accumulated event trace across scrapes, capped at
    /// [`EVENT_LOG_CAPACITY`] most-recent entries.
    events: Vec<DataplaneEvent>,
}

/// Aggregates telemetry from a fleet of modules and renders metrics.
#[derive(Debug, Clone, Default)]
pub struct FleetCollector {
    modules: BTreeMap<String, ModuleRecord>,
}

impl FleetCollector {
    /// An empty collector.
    pub fn new() -> FleetCollector {
        FleetCollector::default()
    }

    /// Number of modules seen so far.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True before any snapshot has been ingested.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Ingest one snapshot, replacing the module's previous one. The
    /// snapshot's drained events are appended to the module's host-side
    /// event log.
    pub fn ingest(&mut self, snapshot: TelemetrySnapshot) {
        let id = snapshot.module_id.clone();
        match self.modules.get_mut(&id) {
            Some(rec) => {
                rec.events.extend(snapshot.events.iter().cloned());
                if rec.events.len() > EVENT_LOG_CAPACITY {
                    let excess = rec.events.len() - EVENT_LOG_CAPACITY;
                    rec.events.drain(..excess);
                }
                rec.snapshot = snapshot;
            }
            None => {
                let mut events = snapshot.events.clone();
                if events.len() > EVENT_LOG_CAPACITY {
                    let excess = events.len() - EVENT_LOG_CAPACITY;
                    events.drain(..excess);
                }
                self.modules.insert(id, ModuleRecord { snapshot, events });
            }
        }
    }

    /// Ingest a whole sweep (e.g. `FleetManager::telemetry_snapshots`).
    pub fn ingest_all(&mut self, snapshots: impl IntoIterator<Item = TelemetrySnapshot>) {
        for s in snapshots {
            self.ingest(s);
        }
    }

    /// Latest snapshot for one module, if it has reported.
    pub fn module(&self, module_id: &str) -> Option<&TelemetrySnapshot> {
        self.modules.get(module_id).map(|r| &r.snapshot)
    }

    /// Accumulated event trace for one module (most recent
    /// [`EVENT_LOG_CAPACITY`] entries).
    pub fn recent_events(&self, module_id: &str) -> Option<&[DataplaneEvent]> {
        self.modules.get(module_id).map(|r| r.events.as_slice())
    }

    /// Fleet-wide latency distribution: the per-module lifetime
    /// histograms merged into one (mergeability is the point of the
    /// log-linear design — no raw samples cross the wire).
    pub fn fleet_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for rec in self.modules.values() {
            merged.merge(&rec.snapshot.latency);
        }
        merged
    }

    /// Total drops across the fleet, all reasons.
    pub fn fleet_drops(&self) -> u64 {
        self.modules
            .values()
            .map(|r| r.snapshot.drops.total())
            .sum()
    }

    /// Render the fleet as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut p = PromText::new();

        p.header("flexsfp_modules", "Modules reporting telemetry.", "gauge");
        p.sample("flexsfp_modules", &[], self.modules.len() as f64);

        p.header(
            "flexsfp_app_info",
            "Running packet-processing application (value is always 1).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            let s = &rec.snapshot;
            let version = s.app_version.to_string();
            p.sample(
                "flexsfp_app_info",
                &[("module", id), ("app", &s.app), ("version", &version)],
                1.0,
            );
        }

        p.header(
            "flexsfp_boots_total",
            "Lifetime module boot count.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_boots_total",
                &[("module", id)],
                f64::from(rec.snapshot.boots),
            );
        }

        p.header(
            "flexsfp_frames_total",
            "Frames per module, port (edge/optical) and direction (rx/tx).",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_frames_total", |c| c.frames as f64);
        p.header(
            "flexsfp_bytes_total",
            "Bytes per module, port (edge/optical) and direction (rx/tx).",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_bytes_total", |c| c.bytes as f64);
        p.header(
            "flexsfp_errors_total",
            "Errored frames per module, port and direction.",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_errors_total", |c| c.errors as f64);

        p.header(
            "flexsfp_drops_total",
            "Packets dropped, by module and reason.",
            "counter",
        );
        for (id, rec) in &self.modules {
            let d = &rec.snapshot.drops;
            for (reason, n) in [
                ("fifo_overflow", d.fifo_overflow),
                ("app", d.app),
                ("link", d.link),
                ("unsorted", d.unsorted),
            ] {
                p.sample(
                    "flexsfp_drops_total",
                    &[("module", id), ("reason", reason)],
                    n as f64,
                );
            }
        }

        p.header(
            "flexsfp_flow_cache_total",
            "Microflow action cache lookups, by module and outcome.",
            "counter",
        );
        for (id, rec) in &self.modules {
            let c = &rec.snapshot.cache;
            for (outcome, n) in [
                ("hit", c.hits),
                ("miss", c.misses),
                ("eviction", c.evictions),
                ("invalidation", c.invalidations),
            ] {
                p.sample(
                    "flexsfp_flow_cache_total",
                    &[("module", id), ("outcome", outcome)],
                    n as f64,
                );
            }
        }
        p.header(
            "flexsfp_flow_cache_hit_ratio",
            "Microflow cache hit ratio over the module lifetime (0 when the cache is unused).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_flow_cache_hit_ratio",
                &[("module", id)],
                rec.snapshot.cache.hit_rate(),
            );
        }

        p.header(
            "flexsfp_latency_ns",
            "Per-module lifetime forwarding latency, nanoseconds.",
            "summary",
        );
        for (id, rec) in &self.modules {
            Self::summary_samples(
                &mut p,
                "flexsfp_latency_ns",
                Some(id),
                &rec.snapshot.latency,
            );
        }

        p.header(
            "flexsfp_fleet_latency_ns",
            "Fleet-wide forwarding latency (per-module histograms merged).",
            "summary",
        );
        Self::summary_samples(
            &mut p,
            "flexsfp_fleet_latency_ns",
            None,
            &self.fleet_latency(),
        );

        p.header(
            "flexsfp_laser_healthy",
            "1 when the laser is diagnosed healthy, else 0.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_laser_healthy",
                &[("module", id)],
                if rec.snapshot.laser_healthy { 1.0 } else { 0.0 },
            );
        }
        p.header(
            "flexsfp_laser_fault_info",
            "Current laser fault diagnosis label (value is always 1).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_laser_fault_info",
                &[("module", id), ("fault", &rec.snapshot.laser_fault)],
                1.0,
            );
        }

        for (name, help, get) in [
            (
                "flexsfp_tx_power_dbm",
                "DOM transmit optical power, dBm.",
                (|s: &TelemetrySnapshot| s.dom.tx_power_dbm) as fn(&TelemetrySnapshot) -> f64,
            ),
            (
                "flexsfp_rx_power_dbm",
                "DOM receive optical power, dBm.",
                |s| s.dom.rx_power_dbm,
            ),
            ("flexsfp_bias_ma", "DOM laser bias current, mA.", |s| {
                s.dom.bias_ma
            }),
            (
                "flexsfp_temperature_c",
                "Module case temperature, °C.",
                |s| s.dom.temp_c,
            ),
        ] {
            p.header(name, help, "gauge");
            for (id, rec) in &self.modules {
                p.sample(name, &[("module", id)], get(&rec.snapshot));
            }
        }

        p.header(
            "flexsfp_trace_events_overwritten_total",
            "Trace events lost to ring overwrite before they could be drained.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_trace_events_overwritten_total",
                &[("module", id)],
                rec.snapshot.events_overwritten as f64,
            );
        }
        p.header(
            "flexsfp_trace_events_drained_total",
            "Trace events successfully drained over all scrapes.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_trace_events_drained_total",
                &[("module", id)],
                rec.snapshot.events_drained as f64,
            );
        }

        p.into_string()
    }

    /// Latest snapshots (and accumulated event logs) as a JSON document,
    /// keyed by module id.
    pub fn to_json(&self) -> String {
        let doc: BTreeMap<String, Value> = self
            .modules
            .iter()
            .map(|(id, rec)| {
                (
                    id.clone(),
                    flexsfp_obs::json!({
                        "snapshot": rec.snapshot.to_json(),
                        "recent_events": rec.events.to_json(),
                    }),
                )
            })
            .collect();
        Value::Object(doc).to_string_pretty()
    }

    fn port_samples(
        &self,
        p: &mut PromText,
        name: &str,
        get: impl Fn(&flexsfp_obs::PortCounters) -> f64,
    ) {
        for (id, rec) in &self.modules {
            let s = &rec.snapshot;
            for (port, dir, c) in [
                ("edge", "rx", &s.edge_rx),
                ("edge", "tx", &s.edge_tx),
                ("optical", "rx", &s.optical_rx),
                ("optical", "tx", &s.optical_tx),
            ] {
                p.sample(
                    name,
                    &[("module", id), ("port", port), ("direction", dir)],
                    get(c),
                );
            }
        }
    }

    fn summary_samples(p: &mut PromText, name: &str, module: Option<&str>, h: &LatencyHistogram) {
        for (q, v) in [
            ("0.5", h.p50()),
            ("0.9", h.p90()),
            ("0.99", h.p99()),
            ("0.999", h.p999()),
        ] {
            match module {
                Some(id) => p.sample(name, &[("module", id), ("quantile", q)], v as f64),
                None => p.sample(name, &[("quantile", q)], v as f64),
            };
        }
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        match module {
            Some(id) => {
                p.sample(&sum_name, &[("module", id)], h.sum());
                p.sample(&count_name, &[("module", id)], h.count() as f64);
            }
            None => {
                p.sample(&sum_name, &[], h.sum());
                p.sample(&count_name, &[], h.count() as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetManager;
    use flexsfp_core::auth::AuthKey;
    use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
    use flexsfp_ppe::Direction;

    fn fleet(n: usize) -> FleetManager {
        let modules = (0..n)
            .map(|i| {
                let cfg = ModuleConfig {
                    id: format!("FSFP-{i:04}"),
                    ..ModuleConfig::default()
                };
                FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
            })
            .collect();
        FleetManager::new(modules, AuthKey::DEFAULT)
    }

    fn packets(n: u16) -> Vec<SimPacket> {
        (0..n)
            .map(|i| SimPacket {
                arrival_ns: u64::from(i) * 2_000,
                direction: Direction::EdgeToOptical,
                frame: flexsfp_wire::builder::PacketBuilder::eth_ipv4_udp(
                    flexsfp_wire::MacAddr([2; 6]),
                    flexsfp_wire::MacAddr([4; 6]),
                    0xc0a80001,
                    0x08080808,
                    5_000 + i,
                    443,
                    b"payload",
                ),
            })
            .collect()
    }

    #[test]
    fn four_module_fleet_scrape_renders_prometheus() {
        let f = fleet(4);
        for i in 0..4 {
            f.with_module(i, |m| {
                m.run(packets(10 + 5 * i as u16));
            });
        }
        let mut c = FleetCollector::new();
        c.ingest_all(f.telemetry_snapshots().unwrap());
        assert_eq!(c.len(), 4);

        let text = c.render_prometheus();
        // Per-module packet counters, all four modules present.
        for (i, frames) in [(0, 10), (1, 15), (2, 20), (3, 25)] {
            let line = format!(
                "flexsfp_frames_total{{module=\"FSFP-{i:04}\",port=\"edge\",direction=\"rx\"}} {frames}\n"
            );
            assert!(text.contains(&line), "missing {line:?} in:\n{text}");
        }
        // Byte counters are present and nonzero.
        assert!(text.contains(
            "flexsfp_bytes_total{module=\"FSFP-0000\",port=\"optical\",direction=\"tx\"}"
        ));
        // p99 latency per module and fleet-wide.
        assert!(text.contains("flexsfp_latency_ns{module=\"FSFP-0002\",quantile=\"0.99\"}"));
        assert!(text.contains("flexsfp_fleet_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("flexsfp_fleet_latency_ns_count 70\n"));
        // Laser health gauges.
        assert!(text.contains("flexsfp_laser_healthy{module=\"FSFP-0003\"} 1\n"));
        assert!(
            text.contains("flexsfp_laser_fault_info{module=\"FSFP-0001\",fault=\"healthy\"} 1\n")
        );
        // Every sample line is well-formed: `name{...} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (lhs, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(!lhs.is_empty());
        }

        // The fleet histogram equals the merge of the stored ones.
        assert_eq!(c.fleet_latency().count(), 70);
        assert_eq!(c.fleet_drops(), 0);
    }

    #[test]
    fn reingest_replaces_rather_than_double_counts() {
        let f = fleet(1);
        f.with_module(0, |m| {
            m.run(packets(10));
        });
        let mut c = FleetCollector::new();
        c.ingest_all(f.telemetry_snapshots().unwrap());
        assert_eq!(c.module("FSFP-0000").unwrap().latency.count(), 10);

        // More traffic, second scrape: lifetime count grows to 25 — it
        // must not become 35 by summing the two snapshots.
        f.with_module(0, |m| {
            m.run(packets(15));
        });
        c.ingest_all(f.telemetry_snapshots().unwrap());
        assert_eq!(c.len(), 1);
        assert_eq!(c.module("FSFP-0000").unwrap().latency.count(), 25);
        assert_eq!(c.fleet_latency().count(), 25);
        assert_eq!(c.module("FSFP-0000").unwrap().seq, 2);
    }

    #[test]
    fn event_log_accumulates_across_scrapes_and_stays_bounded() {
        use flexsfp_ppe::engine::DropAll;
        let cfg = ModuleConfig {
            id: "FSFP-0000".into(),
            ..ModuleConfig::default()
        };
        let f = FleetManager::new(vec![FlexSfp::new(cfg, Box::new(DropAll))], AuthKey::DEFAULT);
        let mut c = FleetCollector::new();
        // Each run drops every packet, tracing one event per drop.
        for _ in 0..3 {
            f.with_module(0, |m| {
                m.run(packets(20));
            });
            c.ingest_all(f.telemetry_snapshots().unwrap());
        }
        // 60 events accumulated on the host even though each scrape
        // only carried that round's 20.
        assert_eq!(c.recent_events("FSFP-0000").unwrap().len(), 60);
        assert_eq!(c.module("FSFP-0000").unwrap().events.len(), 20);
        assert_eq!(c.module("FSFP-0000").unwrap().drops.app, 60);
    }

    #[test]
    fn flow_cache_metrics_rendered() {
        use flexsfp_apps::nat::StaticNat;
        use flexsfp_ppe::PacketProcessor;
        let cfg = ModuleConfig {
            id: "FSFP-0000".into(),
            ..ModuleConfig::default()
        };
        let mut nat = StaticNat::new();
        nat.add_mapping(0xc0a80001, 0x65400001).unwrap();
        nat.set_flow_cache(true);
        let f = FleetManager::new(vec![FlexSfp::new(cfg, Box::new(nat))], AuthKey::DEFAULT);
        f.with_module(0, |m| {
            m.run(packets(4));
        });
        let mut c = FleetCollector::new();
        c.ingest_all(f.telemetry_snapshots().unwrap());
        let snap = c.module("FSFP-0000").unwrap();
        // 4 packets of distinct flows (varying sport): all misses.
        assert_eq!(snap.cache.misses, 4);
        let text = c.render_prometheus();
        assert!(
            text.contains("flexsfp_flow_cache_total{module=\"FSFP-0000\",outcome=\"miss\"} 4\n"),
            "missing cache counter in:\n{text}"
        );
        assert!(text.contains("flexsfp_flow_cache_hit_ratio{module=\"FSFP-0000\"} 0\n"));
    }

    #[test]
    fn json_export_parses_and_carries_all_modules() {
        let f = fleet(2);
        for i in 0..2 {
            f.with_module(i, |m| {
                m.run(packets(5));
            });
        }
        let mut c = FleetCollector::new();
        c.ingest_all(f.telemetry_snapshots().unwrap());
        let doc = Value::parse(&c.to_json()).unwrap();
        let obj = doc.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(
            doc["FSFP-0001"]["snapshot"]["app"],
            Value::from("passthrough")
        );
        assert_eq!(
            doc["FSFP-0000"]["snapshot"]["edge_rx"]["frames"],
            Value::from(5u64)
        );
    }

    #[test]
    fn empty_collector_renders_valid_document() {
        let c = FleetCollector::new();
        let text = c.render_prometheus();
        assert!(text.contains("flexsfp_modules 0\n"));
        assert!(text.contains("flexsfp_fleet_latency_ns_count 0\n"));
        assert_eq!(c.to_json(), "{}");
    }
}
