//! Host-side fleet metrics collector.
//!
//! The exporter half of the telemetry pipeline (§4.1/§5.3): modules
//! serialize [`TelemetrySnapshot`]s over their management channel; the
//! collector keeps the latest snapshot per module, accumulates the
//! traced dataplane events, merges the per-module latency histograms
//! into a fleet-wide distribution, and renders everything as
//! Prometheus text exposition or JSON.
//!
//! Snapshots carry *lifetime* counters and histograms, so a fresh
//! snapshot **replaces** the stored one for that module — merging two
//! snapshots of the same module would double-count. Only the
//! cross-module fleet histogram is produced by merging.

use crate::chaos::ImpairStats;
use crate::mgmt::{MgmtError, TransportStats};
use flexsfp_obs::{
    DataplaneEvent, LatencyHistogram, PromText, SloReport, SloSpec, TelemetrySnapshot, ToJson,
    Value, WindowBucket, WindowedSeries, XbarTelemetry,
};
use std::collections::BTreeMap;

/// Git revision baked in at build time (`git describe`, or `unknown`
/// outside a checkout) — exported through `flexsfp_build_info`.
pub const GIT_DESCRIBE: &str = env!("FLEXSFP_GIT_DESCRIBE");

/// Traced events retained per module on the host (ring rings drain into
/// this bounded log; oldest entries are discarded first).
pub const EVENT_LOG_CAPACITY: usize = 1024;

/// Per-module state held by the collector.
#[derive(Debug, Clone)]
struct ModuleRecord {
    /// Latest lifetime snapshot (replaced wholesale on each scrape).
    snapshot: TelemetrySnapshot,
    /// Accumulated event trace across scrapes, capped at
    /// [`EVENT_LOG_CAPACITY`] most-recent entries.
    events: Vec<DataplaneEvent>,
}

/// Aggregates telemetry from a fleet of modules and renders metrics.
#[derive(Debug, Clone, Default)]
pub struct FleetCollector {
    modules: BTreeMap<String, ModuleRecord>,
    /// Sweep entries that failed to scrape (unreachable modules).
    scrape_failures: u64,
    /// Host-side control-transport counters, when provided.
    transport: Option<TransportStats>,
    /// Per-module channel impairment accounting, when provided.
    channels: BTreeMap<String, ImpairStats>,
    /// Fleet SLO spec; when set, `flexsfp_slo_*` families are rendered
    /// from each module's windowed series.
    slo: Option<SloSpec>,
    /// Per-switch crossbar telemetry, when a rack fabric reports.
    xbars: BTreeMap<String, XbarTelemetry>,
}

impl FleetCollector {
    /// An empty collector.
    pub fn new() -> FleetCollector {
        FleetCollector::default()
    }

    /// Number of modules seen so far.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True before any snapshot has been ingested.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Ingest one snapshot, replacing the module's previous one. The
    /// snapshot's drained events are appended to the module's host-side
    /// event log.
    pub fn ingest(&mut self, snapshot: TelemetrySnapshot) {
        let id = snapshot.module_id.clone();
        match self.modules.get_mut(&id) {
            Some(rec) => {
                rec.events.extend(snapshot.events.iter().cloned());
                if rec.events.len() > EVENT_LOG_CAPACITY {
                    let excess = rec.events.len() - EVENT_LOG_CAPACITY;
                    rec.events.drain(..excess);
                }
                rec.snapshot = snapshot;
            }
            None => {
                let mut events = snapshot.events.clone();
                if events.len() > EVENT_LOG_CAPACITY {
                    let excess = events.len() - EVENT_LOG_CAPACITY;
                    events.drain(..excess);
                }
                self.modules.insert(id, ModuleRecord { snapshot, events });
            }
        }
    }

    /// Ingest a whole sweep (e.g. `FleetManager::telemetry_snapshots`).
    pub fn ingest_all(&mut self, snapshots: impl IntoIterator<Item = TelemetrySnapshot>) {
        for s in snapshots {
            self.ingest(s);
        }
    }

    /// Ingest a per-module sweep where unreachable modules reported an
    /// error. `Ok` snapshots are ingested; `Err` entries increment the
    /// exported scrape-failure counter. Returns the number ingested.
    pub fn ingest_sweep(
        &mut self,
        sweep: impl IntoIterator<Item = Result<TelemetrySnapshot, MgmtError>>,
    ) -> usize {
        let mut ok = 0;
        for entry in sweep {
            match entry {
                Ok(s) => {
                    self.ingest(s);
                    ok += 1;
                }
                Err(_) => self.scrape_failures += 1,
            }
        }
        ok
    }

    /// Lifetime count of failed scrape entries seen by
    /// [`ingest_sweep`](Self::ingest_sweep).
    pub fn scrape_failures(&self) -> u64 {
        self.scrape_failures
    }

    /// Record the management client's transport-layer counters (from
    /// [`ManagementClient::transport_stats`](crate::ManagementClient::transport_stats))
    /// for export.
    pub fn set_transport_stats(&mut self, stats: TransportStats) {
        self.transport = Some(stats);
    }

    /// Record one module's channel impairment accounting (from
    /// [`ImpairedPort::stats`](crate::chaos::ImpairedPort::stats)) for export.
    pub fn set_channel_stats(&mut self, module_id: &str, stats: ImpairStats) {
        self.channels.insert(module_id.to_string(), stats);
    }

    /// Record one crossbar switch's fabric telemetry (from
    /// [`CrossbarSwitch::telemetry`](crate::CrossbarSwitch::telemetry))
    /// for export as the `flexsfp_xbar_*` family. Snapshots carry
    /// lifetime counters, so a fresh one replaces the stored one.
    pub fn set_xbar_stats(&mut self, switch_id: &str, telemetry: XbarTelemetry) {
        self.xbars.insert(switch_id.to_string(), telemetry);
    }

    /// Latest crossbar telemetry for one switch, if it has reported.
    pub fn xbar(&self, switch_id: &str) -> Option<&XbarTelemetry> {
        self.xbars.get(switch_id)
    }

    /// Set (or replace) the fleet SLO spec. Subsequent renders include
    /// per-module `flexsfp_slo_*` families evaluated against each
    /// module's windowed time-series.
    pub fn set_slo_spec(&mut self, spec: SloSpec) {
        self.slo = Some(spec);
    }

    /// Evaluate the configured SLO spec against every module's latest
    /// windowed series. Empty when no spec is set.
    pub fn slo_reports(&self) -> BTreeMap<String, SloReport> {
        let Some(spec) = self.slo else {
            return BTreeMap::new();
        };
        self.modules
            .iter()
            .map(|(id, rec)| {
                (
                    id.clone(),
                    flexsfp_obs::slo::evaluate(&spec, &rec.snapshot.windows),
                )
            })
            .collect()
    }

    /// Fleet-wide windowed series: every module's series merged bucket
    /// by bucket (mergeability is the point of the rotating design).
    pub fn fleet_windows(&self) -> WindowedSeries {
        let mut iter = self.modules.values();
        let Some(first) = iter.next() else {
            return WindowedSeries::default();
        };
        let mut merged = first.snapshot.windows.clone();
        for rec in iter {
            merged.merge(&rec.snapshot.windows);
        }
        merged
    }

    /// Latest snapshot for one module, if it has reported.
    pub fn module(&self, module_id: &str) -> Option<&TelemetrySnapshot> {
        self.modules.get(module_id).map(|r| &r.snapshot)
    }

    /// Accumulated event trace for one module (most recent
    /// [`EVENT_LOG_CAPACITY`] entries).
    pub fn recent_events(&self, module_id: &str) -> Option<&[DataplaneEvent]> {
        self.modules.get(module_id).map(|r| r.events.as_slice())
    }

    /// Fleet-wide latency distribution: the per-module lifetime
    /// histograms merged into one (mergeability is the point of the
    /// log-linear design — no raw samples cross the wire).
    pub fn fleet_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for rec in self.modules.values() {
            merged.merge(&rec.snapshot.latency);
        }
        merged
    }

    /// Total drops across the fleet, all reasons.
    pub fn fleet_drops(&self) -> u64 {
        self.modules
            .values()
            .map(|r| r.snapshot.drops.total())
            .sum()
    }

    /// Render the fleet as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut p = PromText::new();

        p.header(
            "flexsfp_build_info",
            "Collector build identity (value is always 1).",
            "gauge",
        );
        p.sample(
            "flexsfp_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("git", GIT_DESCRIBE),
            ],
            1.0,
        );

        p.header("flexsfp_modules", "Modules reporting telemetry.", "gauge");
        p.sample("flexsfp_modules", &[], self.modules.len() as f64);

        p.header(
            "flexsfp_app_info",
            "Running packet-processing application (value is always 1).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            let s = &rec.snapshot;
            let version = s.app_version.to_string();
            p.sample(
                "flexsfp_app_info",
                &[("module", id), ("app", &s.app), ("version", &version)],
                1.0,
            );
        }

        p.header(
            "flexsfp_boots_total",
            "Lifetime module boot count.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_boots_total",
                &[("module", id)],
                f64::from(rec.snapshot.boots),
            );
        }

        p.header(
            "flexsfp_frames_total",
            "Frames per module, port (edge/optical) and direction (rx/tx).",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_frames_total", |c| c.frames as f64);
        p.header(
            "flexsfp_bytes_total",
            "Bytes per module, port (edge/optical) and direction (rx/tx).",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_bytes_total", |c| c.bytes as f64);
        p.header(
            "flexsfp_errors_total",
            "Errored frames per module, port and direction.",
            "counter",
        );
        self.port_samples(&mut p, "flexsfp_errors_total", |c| c.errors as f64);

        p.header(
            "flexsfp_drops_total",
            "Packets dropped, by module and reason.",
            "counter",
        );
        for (id, rec) in &self.modules {
            let d = &rec.snapshot.drops;
            for (reason, n) in [
                ("fifo_overflow", d.fifo_overflow),
                ("app", d.app),
                ("link", d.link),
                ("unsorted", d.unsorted),
            ] {
                p.sample(
                    "flexsfp_drops_total",
                    &[("module", id), ("reason", reason)],
                    n as f64,
                );
            }
        }

        p.header(
            "flexsfp_flow_cache_total",
            "Microflow action cache lookups, by module and outcome.",
            "counter",
        );
        for (id, rec) in &self.modules {
            let c = &rec.snapshot.cache;
            for (outcome, n) in [
                ("hit", c.hits),
                ("miss", c.misses),
                ("eviction", c.evictions),
                ("invalidation", c.invalidations),
            ] {
                p.sample(
                    "flexsfp_flow_cache_total",
                    &[("module", id), ("outcome", outcome)],
                    n as f64,
                );
            }
        }
        p.header(
            "flexsfp_flow_cache_hit_ratio",
            "Microflow cache hit ratio over the module lifetime (0 when the cache is unused).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_flow_cache_hit_ratio",
                &[("module", id)],
                rec.snapshot.cache.hit_rate(),
            );
        }

        p.header(
            "flexsfp_table_lookups_total",
            "Exact-match table lookups, by module and outcome.",
            "counter",
        );
        for (id, rec) in &self.modules {
            let t = &rec.snapshot.table;
            for (outcome, n) in [("hit", t.hits), ("miss", t.misses)] {
                p.sample(
                    "flexsfp_table_lookups_total",
                    &[("module", id), ("outcome", outcome)],
                    n as f64,
                );
            }
        }
        p.header(
            "flexsfp_table_insert_failures_total",
            "Exact-match table inserts rejected with a full bucket.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_table_insert_failures_total",
                &[("module", id)],
                rec.snapshot.table.insert_failures as f64,
            );
        }
        p.header(
            "flexsfp_table_entries",
            "Occupied exact-match table entries (0 when the app has no table).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_table_entries",
                &[("module", id)],
                rec.snapshot.table.occupied as f64,
            );
        }
        p.header(
            "flexsfp_table_capacity",
            "Total exact-match table entry slots (buckets x ways).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_table_capacity",
                &[("module", id)],
                rec.snapshot.table.capacity as f64,
            );
        }
        p.header(
            "flexsfp_table_load_factor",
            "Exact-match table occupancy as a fraction of capacity.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_table_load_factor",
                &[("module", id)],
                rec.snapshot.table.load_factor(),
            );
        }

        p.header(
            "flexsfp_latency_ns",
            "Per-module lifetime forwarding latency, nanoseconds.",
            "summary",
        );
        for (id, rec) in &self.modules {
            Self::summary_samples(
                &mut p,
                "flexsfp_latency_ns",
                Some(id),
                &rec.snapshot.latency,
            );
        }

        p.header(
            "flexsfp_fleet_latency_ns",
            "Fleet-wide forwarding latency (per-module histograms merged).",
            "summary",
        );
        Self::summary_samples(
            &mut p,
            "flexsfp_fleet_latency_ns",
            None,
            &self.fleet_latency(),
        );

        p.header(
            "flexsfp_laser_healthy",
            "1 when the laser is diagnosed healthy, else 0.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_laser_healthy",
                &[("module", id)],
                if rec.snapshot.laser_healthy { 1.0 } else { 0.0 },
            );
        }
        p.header(
            "flexsfp_laser_fault_info",
            "Current laser fault diagnosis label (value is always 1).",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_laser_fault_info",
                &[("module", id), ("fault", &rec.snapshot.laser_fault)],
                1.0,
            );
        }

        for (name, help, get) in [
            (
                "flexsfp_tx_power_dbm",
                "DOM transmit optical power, dBm.",
                (|s: &TelemetrySnapshot| s.dom.tx_power_dbm) as fn(&TelemetrySnapshot) -> f64,
            ),
            (
                "flexsfp_rx_power_dbm",
                "DOM receive optical power, dBm.",
                |s| s.dom.rx_power_dbm,
            ),
            ("flexsfp_bias_ma", "DOM laser bias current, mA.", |s| {
                s.dom.bias_ma
            }),
            (
                "flexsfp_temperature_c",
                "Module case temperature, °C.",
                |s| s.dom.temp_c,
            ),
        ] {
            p.header(name, help, "gauge");
            for (id, rec) in &self.modules {
                p.sample(name, &[("module", id)], get(&rec.snapshot));
            }
        }

        p.header(
            "flexsfp_trace_events_overwritten_total",
            "Trace events lost to ring overwrite before they could be drained.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_trace_events_overwritten_total",
                &[("module", id)],
                rec.snapshot.events_overwritten as f64,
            );
        }
        p.header(
            "flexsfp_trace_events_drained_total",
            "Trace events successfully drained over all scrapes.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_trace_events_drained_total",
                &[("module", id)],
                rec.snapshot.events_drained as f64,
            );
        }
        // The same counters under the shorter canonical names; the
        // `flexsfp_trace_events_*` spellings above stay for existing
        // dashboards.
        p.header(
            "flexsfp_events_overwritten_total",
            "Dataplane events lost to ring overwrite before draining.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_events_overwritten_total",
                &[("module", id)],
                rec.snapshot.events_overwritten as f64,
            );
        }
        p.header(
            "flexsfp_events_drained_total",
            "Dataplane events drained over all scrapes.",
            "counter",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_events_drained_total",
                &[("module", id)],
                rec.snapshot.events_drained as f64,
            );
        }

        // Windowed (recent) views, computed over the live ring only —
        // the lifetime histogram above cannot show a regression that
        // started a minute ago; these can.
        p.header(
            "flexsfp_window_latency_p999_ns",
            "p99.9 forwarding latency over the retained windows, nanoseconds.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            let recent = Self::recent(&rec.snapshot.windows);
            p.sample(
                "flexsfp_window_latency_p999_ns",
                &[("module", id)],
                recent.latency.p999() as f64,
            );
        }
        p.header(
            "flexsfp_window_forwarded_pps",
            "Forwarding rate over the retained windows, packets per second.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            p.sample(
                "flexsfp_window_forwarded_pps",
                &[("module", id)],
                Self::window_rate(&rec.snapshot.windows),
            );
        }
        p.header(
            "flexsfp_window_unexplained_drop_ratio",
            "Unexplained drops / packets over the retained windows.",
            "gauge",
        );
        for (id, rec) in &self.modules {
            let recent = Self::recent(&rec.snapshot.windows);
            p.sample(
                "flexsfp_window_unexplained_drop_ratio",
                &[("module", id)],
                recent.unexplained_drop_rate(),
            );
        }
        p.header(
            "flexsfp_fleet_window_latency_p999_ns",
            "Fleet-wide p99.9 over the retained windows (bucket-merged).",
            "gauge",
        );
        p.sample(
            "flexsfp_fleet_window_latency_p999_ns",
            &[],
            Self::recent(&self.fleet_windows()).latency.p999() as f64,
        );

        // SLO verdicts, when a spec is configured.
        if let Some(spec) = self.slo {
            p.header(
                "flexsfp_slo_healthy",
                "1 when the module meets the fleet SLO spec over its windows.",
                "gauge",
            );
            let reports = self.slo_reports();
            for (id, report) in &reports {
                p.sample(
                    "flexsfp_slo_healthy",
                    &[("module", id)],
                    if report.healthy { 1.0 } else { 0.0 },
                );
            }
            p.header(
                "flexsfp_slo_breached_windows",
                "Windows breaching the SLO spec in the latest evaluation.",
                "gauge",
            );
            for (id, report) in &reports {
                p.sample(
                    "flexsfp_slo_breached_windows",
                    &[("module", id)],
                    report.breaches.len() as f64,
                );
            }
            p.header(
                "flexsfp_slo_windows_evaluated",
                "Non-empty windows evaluated against the SLO spec.",
                "gauge",
            );
            for (id, report) in &reports {
                p.sample(
                    "flexsfp_slo_windows_evaluated",
                    &[("module", id)],
                    report.windows_evaluated as f64,
                );
            }
            for (name, help, v) in [
                (
                    "flexsfp_slo_p999_latency_bound_ns",
                    "Configured p99.9 latency bound, nanoseconds.",
                    spec.p999_latency_ns as f64,
                ),
                (
                    "flexsfp_slo_max_unexplained_drop_rate",
                    "Configured unexplained-drop ceiling (fraction of packets).",
                    spec.max_unexplained_drop_rate,
                ),
                (
                    "flexsfp_slo_min_cache_hit_rate",
                    "Configured flow-cache hit-rate floor.",
                    spec.min_cache_hit_rate,
                ),
            ] {
                p.header(name, help, "gauge");
                p.sample(name, &[], v);
            }
        }

        // Control-channel resilience counters (§5.3): the module-side
        // update FSM view…
        for (name, help, get) in [
            (
                "flexsfp_ctrl_dup_chunk_acks_total",
                "Retransmitted update chunks acknowledged idempotently.",
                (|s: &TelemetrySnapshot| s.ctrl.dup_chunk_acks) as fn(&TelemetrySnapshot) -> u64,
            ),
            (
                "flexsfp_ctrl_update_aborts_total",
                "In-progress updates torn down by AbortUpdate.",
                |s| s.ctrl.update_aborts,
            ),
            (
                "flexsfp_ctrl_update_errors_total",
                "Update protocol requests rejected by the FSM.",
                |s| s.ctrl.update_errors,
            ),
            (
                "flexsfp_ctrl_status_queries_total",
                "QueryUpdate progress probes answered.",
                |s| s.ctrl.status_queries,
            ),
        ] {
            p.header(name, help, "counter");
            for (id, rec) in &self.modules {
                p.sample(name, &[("module", id)], get(&rec.snapshot) as f64);
            }
        }

        // …the host-side transport view…
        if let Some(t) = self.transport {
            for (name, help, v) in [
                (
                    "flexsfp_ctrl_retries_total",
                    "Control requests retransmitted after a timeout.",
                    t.retries,
                ),
                (
                    "flexsfp_ctrl_timeouts_total",
                    "Control exchanges that got no response.",
                    t.timeouts,
                ),
                (
                    "flexsfp_ctrl_aborts_sent_total",
                    "AbortUpdate teardowns sent by the client.",
                    t.aborts_sent,
                ),
                (
                    "flexsfp_ctrl_resyncs_total",
                    "Deploy resynchronisations via QueryUpdate.",
                    t.resyncs,
                ),
                (
                    "flexsfp_ctrl_backoff_ns_total",
                    "Cumulative virtual retry backoff, nanoseconds.",
                    t.backoff_ns,
                ),
            ] {
                p.header(name, help, "counter");
                p.sample(name, &[], v as f64);
            }
        }

        // …and the cable's own fault accounting, when fault injection
        // (or an equivalently instrumented channel) is in the path.
        if !self.channels.is_empty() {
            p.header(
                "flexsfp_ctrl_link_faults_total",
                "Control-channel faults by module and kind.",
                "counter",
            );
            for (id, s) in &self.channels {
                for (kind, n) in [
                    ("drop", s.request_drops + s.response_drops),
                    ("duplicate", s.duplicates),
                    ("corruption", s.corruptions),
                    ("flap", s.flaps),
                ] {
                    p.sample(
                        "flexsfp_ctrl_link_faults_total",
                        &[("module", id), ("kind", kind)],
                        n as f64,
                    );
                }
            }
        }

        // The crossbar fabric, when a rack switch reports: aggregate
        // geometry and flow, per-output arbitration, and the sparse
        // per-crosspoint queue detail.
        if !self.xbars.is_empty() {
            for (name, help, kind, get) in [
                (
                    "flexsfp_xbar_ports",
                    "Crossbar port count (the matrix is square).",
                    "gauge",
                    (|x: &XbarTelemetry| x.ports) as fn(&XbarTelemetry) -> u64,
                ),
                (
                    "flexsfp_xbar_depth",
                    "Slots per crosspoint queue.",
                    "gauge",
                    |x| x.depth,
                ),
                (
                    "flexsfp_xbar_enqueued_total",
                    "Frames accepted into crosspoint queues.",
                    "counter",
                    |x| x.enqueued,
                ),
                (
                    "flexsfp_xbar_granted_total",
                    "Frames granted by output arbitration.",
                    "counter",
                    |x| x.granted,
                ),
                (
                    "flexsfp_xbar_dropped_total",
                    "Frames rejected on a full crosspoint queue.",
                    "counter",
                    |x| x.dropped,
                ),
                (
                    "flexsfp_xbar_queued",
                    "Frames currently parked in crosspoint queues.",
                    "gauge",
                    |x| x.queued(),
                ),
                (
                    "flexsfp_xbar_depth_high_water",
                    "Deepest occupancy any crosspoint ever reached.",
                    "gauge",
                    |x| x.high_water,
                ),
            ] {
                p.header(name, help, kind);
                for (id, x) in &self.xbars {
                    p.sample(name, &[("switch", id)], get(x) as f64);
                }
            }
            p.header(
                "flexsfp_xbar_output_grants_total",
                "Arbitration grants issued, by switch and output port.",
                "counter",
            );
            for (id, x) in &self.xbars {
                for (output, n) in x.output_grants.iter().enumerate() {
                    let output = output.to_string();
                    p.sample(
                        "flexsfp_xbar_output_grants_total",
                        &[("switch", id), ("output", &output)],
                        *n as f64,
                    );
                }
            }
            for (name, help, kind, get) in [
                (
                    "flexsfp_xbar_crosspoint_enqueued_total",
                    "Frames accepted, by switch and crosspoint (sparse).",
                    "counter",
                    (|c: &flexsfp_obs::CrosspointCounters| c.enqueued)
                        as fn(&flexsfp_obs::CrosspointCounters) -> u64,
                ),
                (
                    "flexsfp_xbar_crosspoint_dropped_total",
                    "Frames rejected on a full queue, by switch and crosspoint (sparse).",
                    "counter",
                    |c| c.dropped,
                ),
                (
                    "flexsfp_xbar_crosspoint_high_water",
                    "Deepest queue occupancy, by switch and crosspoint (sparse).",
                    "gauge",
                    |c| c.high_water,
                ),
            ] {
                p.header(name, help, kind);
                for (id, x) in &self.xbars {
                    for c in &x.crosspoints {
                        let input = c.input.to_string();
                        let output = c.output.to_string();
                        p.sample(
                            name,
                            &[("switch", id), ("input", &input), ("output", &output)],
                            get(c) as f64,
                        );
                    }
                }
            }
        }

        p.header(
            "flexsfp_scrape_failures_total",
            "Sweep entries that failed to scrape (module unreachable).",
            "counter",
        );
        p.sample(
            "flexsfp_scrape_failures_total",
            &[],
            self.scrape_failures as f64,
        );

        p.into_string()
    }

    /// Latest snapshots (and accumulated event logs) as a JSON document,
    /// keyed by module id.
    pub fn to_json(&self) -> String {
        let doc: BTreeMap<String, Value> = self
            .modules
            .iter()
            .map(|(id, rec)| {
                (
                    id.clone(),
                    flexsfp_obs::json!({
                        "snapshot": rec.snapshot.to_json(),
                        "recent_events": rec.events.to_json(),
                    }),
                )
            })
            .collect();
        Value::Object(doc).to_string_pretty()
    }

    /// Merge of the live (in-ring) windows only — the "recent" view the
    /// window gauges are computed from (the evicted catch-all belongs
    /// to the lifetime figures).
    fn recent(series: &WindowedSeries) -> WindowBucket {
        let mut acc = WindowBucket::default();
        for w in series.windows() {
            acc.merge(w);
        }
        acc
    }

    /// Forwarding rate over the retained windows, packets per second.
    fn window_rate(series: &WindowedSeries) -> f64 {
        let live = series.windows();
        if live.is_empty() {
            return 0.0;
        }
        let span_ns = live.len() as f64 * series.width_ns() as f64;
        Self::recent(series).forwarded as f64 * 1e9 / span_ns
    }

    fn port_samples(
        &self,
        p: &mut PromText,
        name: &str,
        get: impl Fn(&flexsfp_obs::PortCounters) -> f64,
    ) {
        for (id, rec) in &self.modules {
            let s = &rec.snapshot;
            for (port, dir, c) in [
                ("edge", "rx", &s.edge_rx),
                ("edge", "tx", &s.edge_tx),
                ("optical", "rx", &s.optical_rx),
                ("optical", "tx", &s.optical_tx),
            ] {
                p.sample(
                    name,
                    &[("module", id), ("port", port), ("direction", dir)],
                    get(c),
                );
            }
        }
    }

    fn summary_samples(p: &mut PromText, name: &str, module: Option<&str>, h: &LatencyHistogram) {
        for (q, v) in [
            ("0.5", h.p50()),
            ("0.9", h.p90()),
            ("0.99", h.p99()),
            ("0.999", h.p999()),
        ] {
            match module {
                Some(id) => p.sample(name, &[("module", id), ("quantile", q)], v as f64),
                None => p.sample(name, &[("quantile", q)], v as f64),
            };
        }
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        match module {
            Some(id) => {
                p.sample(&sum_name, &[("module", id)], h.sum());
                p.sample(&count_name, &[("module", id)], h.count() as f64);
            }
            None => {
                p.sample(&sum_name, &[], h.sum());
                p.sample(&count_name, &[], h.count() as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetManager;
    use flexsfp_core::auth::AuthKey;
    use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
    use flexsfp_ppe::Direction;

    fn fleet(n: usize) -> FleetManager {
        let modules = (0..n)
            .map(|i| {
                let cfg = ModuleConfig {
                    id: format!("FSFP-{i:04}"),
                    ..ModuleConfig::default()
                };
                FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
            })
            .collect();
        FleetManager::new(modules, AuthKey::DEFAULT)
    }

    fn packets(n: u16) -> Vec<SimPacket> {
        (0..n)
            .map(|i| SimPacket {
                arrival_ns: u64::from(i) * 2_000,
                direction: Direction::EdgeToOptical,
                frame: flexsfp_wire::builder::PacketBuilder::eth_ipv4_udp(
                    flexsfp_wire::MacAddr([2; 6]),
                    flexsfp_wire::MacAddr([4; 6]),
                    0xc0a80001,
                    0x08080808,
                    5_000 + i,
                    443,
                    b"payload",
                ),
            })
            .collect()
    }

    #[test]
    fn four_module_fleet_scrape_renders_prometheus() {
        let f = fleet(4);
        for i in 0..4 {
            f.with_module(i, |m| {
                m.run(packets(10 + 5 * i as u16));
            });
        }
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        assert_eq!(c.len(), 4);

        let text = c.render_prometheus();
        // Per-module packet counters, all four modules present.
        for (i, frames) in [(0, 10), (1, 15), (2, 20), (3, 25)] {
            let line = format!(
                "flexsfp_frames_total{{module=\"FSFP-{i:04}\",port=\"edge\",direction=\"rx\"}} {frames}\n"
            );
            assert!(text.contains(&line), "missing {line:?} in:\n{text}");
        }
        // Byte counters are present and nonzero.
        assert!(text.contains(
            "flexsfp_bytes_total{module=\"FSFP-0000\",port=\"optical\",direction=\"tx\"}"
        ));
        // p99 latency per module and fleet-wide.
        assert!(text.contains("flexsfp_latency_ns{module=\"FSFP-0002\",quantile=\"0.99\"}"));
        assert!(text.contains("flexsfp_fleet_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("flexsfp_fleet_latency_ns_count 70\n"));
        // Laser health gauges.
        assert!(text.contains("flexsfp_laser_healthy{module=\"FSFP-0003\"} 1\n"));
        assert!(
            text.contains("flexsfp_laser_fault_info{module=\"FSFP-0001\",fault=\"healthy\"} 1\n")
        );
        // Every sample line is well-formed: `name{...} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (lhs, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(!lhs.is_empty());
        }

        // The fleet histogram equals the merge of the stored ones.
        assert_eq!(c.fleet_latency().count(), 70);
        assert_eq!(c.fleet_drops(), 0);
    }

    #[test]
    fn reingest_replaces_rather_than_double_counts() {
        let f = fleet(1);
        f.with_module(0, |m| {
            m.run(packets(10));
        });
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        assert_eq!(c.module("FSFP-0000").unwrap().latency.count(), 10);

        // More traffic, second scrape: lifetime count grows to 25 — it
        // must not become 35 by summing the two snapshots.
        f.with_module(0, |m| {
            m.run(packets(15));
        });
        c.ingest_sweep(f.telemetry_snapshots());
        assert_eq!(c.len(), 1);
        assert_eq!(c.module("FSFP-0000").unwrap().latency.count(), 25);
        assert_eq!(c.fleet_latency().count(), 25);
        assert_eq!(c.module("FSFP-0000").unwrap().seq, 2);
    }

    #[test]
    fn event_log_accumulates_across_scrapes_and_stays_bounded() {
        use flexsfp_ppe::engine::DropAll;
        let cfg = ModuleConfig {
            id: "FSFP-0000".into(),
            ..ModuleConfig::default()
        };
        let f = FleetManager::new(vec![FlexSfp::new(cfg, Box::new(DropAll))], AuthKey::DEFAULT);
        let mut c = FleetCollector::new();
        // Each run drops every packet, tracing one event per drop.
        for _ in 0..3 {
            f.with_module(0, |m| {
                m.run(packets(20));
            });
            c.ingest_sweep(f.telemetry_snapshots());
        }
        // 60 events accumulated on the host even though each scrape
        // only carried that round's 20.
        assert_eq!(c.recent_events("FSFP-0000").unwrap().len(), 60);
        assert_eq!(c.module("FSFP-0000").unwrap().events.len(), 20);
        assert_eq!(c.module("FSFP-0000").unwrap().drops.app, 60);
    }

    #[test]
    fn flow_cache_metrics_rendered() {
        use flexsfp_apps::nat::StaticNat;
        use flexsfp_ppe::PacketProcessor;
        let cfg = ModuleConfig {
            id: "FSFP-0000".into(),
            ..ModuleConfig::default()
        };
        let mut nat = StaticNat::new();
        nat.add_mapping(0xc0a80001, 0x65400001).unwrap();
        nat.set_flow_cache(true);
        let f = FleetManager::new(vec![FlexSfp::new(cfg, Box::new(nat))], AuthKey::DEFAULT);
        f.with_module(0, |m| {
            m.run(packets(4));
        });
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        let snap = c.module("FSFP-0000").unwrap();
        // 4 packets of distinct flows (varying sport): all misses.
        assert_eq!(snap.cache.misses, 4);
        let text = c.render_prometheus();
        assert!(
            text.contains("flexsfp_flow_cache_total{module=\"FSFP-0000\",outcome=\"miss\"} 4\n"),
            "missing cache counter in:\n{text}"
        );
        assert!(text.contains("flexsfp_flow_cache_hit_ratio{module=\"FSFP-0000\"} 0\n"));
    }

    #[test]
    fn table_metrics_rendered() {
        use flexsfp_apps::nat::StaticNat;
        let cfg = ModuleConfig {
            id: "FSFP-0000".into(),
            ..ModuleConfig::default()
        };
        let mut nat = StaticNat::new();
        nat.add_mapping(0xc0a80001, 0x65400001).unwrap();
        let f = FleetManager::new(vec![FlexSfp::new(cfg, Box::new(nat))], AuthKey::DEFAULT);
        f.with_module(0, |m| {
            m.run(packets(4));
        });
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        let snap = c.module("FSFP-0000").unwrap();
        assert_eq!(snap.table.capacity, 32_768);
        assert_eq!(snap.table.occupied, 1);
        let text = c.render_prometheus();
        assert!(
            text.contains("flexsfp_table_capacity{module=\"FSFP-0000\"} 32768\n"),
            "missing table capacity in:\n{text}"
        );
        assert!(text.contains("flexsfp_table_entries{module=\"FSFP-0000\"} 1\n"));
        assert!(text.contains("flexsfp_table_insert_failures_total{module=\"FSFP-0000\"} 0\n"));
        assert!(text.contains("flexsfp_table_lookups_total{module=\"FSFP-0000\",outcome="));
        assert!(text.contains("flexsfp_table_load_factor{module=\"FSFP-0000\"} "));
    }

    #[test]
    fn window_slo_and_build_info_metrics_rendered() {
        let f = fleet(2);
        for i in 0..2 {
            f.with_module(i, |m| {
                m.run(packets(50));
            });
        }
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        c.set_slo_spec(SloSpec::generous());
        let text = c.render_prometheus();
        assert!(text.contains("flexsfp_build_info{version=\""), "{text}");
        assert!(text.contains("flexsfp_events_overwritten_total{module=\"FSFP-0000\"}"));
        assert!(text.contains("flexsfp_events_drained_total{module=\"FSFP-0001\"}"));
        assert!(text.contains("flexsfp_window_latency_p999_ns{module=\"FSFP-0000\"}"));
        assert!(text.contains("flexsfp_window_forwarded_pps{module=\"FSFP-0000\"}"));
        assert!(text.contains("flexsfp_fleet_window_latency_p999_ns "));
        assert!(text.contains("flexsfp_slo_healthy{module=\"FSFP-0000\"} 1\n"));
        assert!(text.contains("flexsfp_slo_p999_latency_bound_ns 100000\n"));
        assert!(c.slo_reports().values().all(|r| r.healthy));
        // Both modules' windows merge into the fleet series.
        assert_eq!(c.fleet_windows().lifetime().forwarded, 100);

        // A hostile spec breaches everywhere and flips the gauges.
        c.set_slo_spec(SloSpec {
            p999_latency_ns: 1,
            max_unexplained_drop_rate: 0.0,
            min_cache_hit_rate: 0.0,
        });
        let reports = c.slo_reports();
        assert!(reports.values().all(|r| !r.healthy));
        assert!(reports.values().all(|r| !r.breaches.is_empty()));
        let text = c.render_prometheus();
        assert!(text.contains("flexsfp_slo_healthy{module=\"FSFP-0000\"} 0\n"));
        // Without a spec no SLO families render at all.
        let plain = FleetCollector::new().render_prometheus();
        assert!(!plain.contains("flexsfp_slo_"));
        assert!(plain.contains("flexsfp_build_info{"));
    }

    #[test]
    fn json_export_parses_and_carries_all_modules() {
        let f = fleet(2);
        for i in 0..2 {
            f.with_module(i, |m| {
                m.run(packets(5));
            });
        }
        let mut c = FleetCollector::new();
        c.ingest_sweep(f.telemetry_snapshots());
        let doc = Value::parse(&c.to_json()).unwrap();
        let obj = doc.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(
            doc["FSFP-0001"]["snapshot"]["app"],
            Value::from("passthrough")
        );
        assert_eq!(
            doc["FSFP-0000"]["snapshot"]["edge_rx"]["frames"],
            Value::from(5u64)
        );
    }

    #[test]
    fn empty_collector_renders_valid_document() {
        let c = FleetCollector::new();
        let text = c.render_prometheus();
        assert!(text.contains("flexsfp_modules 0\n"));
        assert!(text.contains("flexsfp_fleet_latency_ns_count 0\n"));
        assert!(text.contains("flexsfp_scrape_failures_total 0\n"));
        assert_eq!(c.to_json(), "{}");
    }

    #[test]
    fn xbar_family_renders_per_crosspoint_detail() {
        use crate::crossbar::CrossbarSwitch;
        use flexsfp_wire::builder::PacketBuilder;
        use flexsfp_wire::MacAddr;

        let mut sw = CrossbarSwitch::new(4, 2);
        let a = MacAddr([0xa; 6]);
        let b = MacAddr([0xc; 6]);
        let frame =
            |dst, src| PacketBuilder::eth_ipv4_udp(dst, src, 0xc0a80001, 0xc0a80002, 9, 80, b"x");
        sw.insert_flexsfp(0, FlexSfp::passthrough());
        sw.inject(1, frame(a, b), 0);
        sw.drain();
        // Burst into the depth-2 crosspoint (0 → 1): overflows counted.
        for _ in 0..6 {
            sw.inject(0, frame(b, a), 1_000_000);
        }
        sw.drain();

        let mut c = FleetCollector::new();
        c.ingest_all(sw.module_snapshots());
        c.set_xbar_stats("tor0", sw.telemetry());
        assert_eq!(c.xbar("tor0").unwrap().dropped, 3);

        let text = c.render_prometheus();
        assert!(
            text.contains("flexsfp_xbar_ports{switch=\"tor0\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("flexsfp_xbar_depth{switch=\"tor0\"} 2\n"));
        assert!(text.contains("flexsfp_xbar_dropped_total{switch=\"tor0\"} 3\n"));
        assert!(text.contains(
            "flexsfp_xbar_crosspoint_dropped_total{switch=\"tor0\",input=\"0\",output=\"1\"} 3\n"
        ));
        assert!(text.contains(
            "flexsfp_xbar_crosspoint_high_water{switch=\"tor0\",input=\"0\",output=\"1\"} 2\n"
        ));
        assert!(text.contains("flexsfp_xbar_output_grants_total{switch=\"tor0\",output=\"1\"} "));
        // The cage module's ordinary snapshot rides the same collector.
        assert_eq!(c.len(), 1);
        // Without any xbar report the family is absent entirely.
        let plain = FleetCollector::new().render_prometheus();
        assert!(!plain.contains("flexsfp_xbar_"));
    }

    #[test]
    fn ctrl_counters_surface_in_prometheus() {
        use crate::chaos::{FaultPlan, ImpairedPort};
        use crate::mgmt::ManagementClient;

        // One healthy module, one whose channel is dead: the sweep
        // yields 1 snapshot + 1 scrape failure.
        let ports: Vec<ImpairedPort<FlexSfp>> = vec![
            ImpairedPort::new(
                {
                    let cfg = ModuleConfig {
                        id: "FSFP-0000".into(),
                        ..ModuleConfig::default()
                    };
                    FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
                },
                FaultPlan::ideal(1),
            ),
            ImpairedPort::new(
                {
                    let cfg = ModuleConfig {
                        id: "FSFP-0001".into(),
                        ..ModuleConfig::default()
                    };
                    FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
                },
                FaultPlan::ideal(1).with_drop(1.0),
            ),
        ];
        let f = FleetManager::with_client(ports, ManagementClient::new(AuthKey::DEFAULT));
        let mut c = FleetCollector::new();
        assert_eq!(c.ingest_sweep(f.telemetry_snapshots()), 1);
        assert_eq!(c.scrape_failures(), 1);
        c.set_transport_stats(f.client().transport_stats());
        f.with_module(0, |p| {
            c.set_channel_stats("FSFP-0000", p.stats());
        });

        let text = c.render_prometheus();
        // Module-side FSM counters.
        assert!(text.contains("flexsfp_ctrl_dup_chunk_acks_total{module=\"FSFP-0000\"} 0\n"));
        assert!(text.contains("flexsfp_ctrl_update_aborts_total{module=\"FSFP-0000\"} 0\n"));
        // Host transport counters: the dead module burned retries.
        assert!(text.contains("flexsfp_ctrl_retries_total"));
        assert!(text.contains("flexsfp_ctrl_timeouts_total"));
        assert!(text.contains("flexsfp_ctrl_backoff_ns_total"));
        // Channel fault accounting.
        assert!(
            text.contains("flexsfp_ctrl_link_faults_total{module=\"FSFP-0000\",kind=\"drop\"} 0\n")
        );
        assert!(text.contains("flexsfp_scrape_failures_total 1\n"));
    }
}
