//! The §2.1 retrofit scenario: a legacy L2 switch with FlexSFP cages.
//!
//! The switch itself is a fixed-function MAC-learning bridge — it cannot
//! filter, tag or observe. Each port's SFP cage may hold a FlexSFP;
//! frames entering a port traverse that module optical→edge (toward the
//! switch ASIC) and frames leaving traverse edge→optical, so the module
//! is a per-port bump-in-the-wire exactly as the paper describes:
//! "each port becomes a programmable enforcement point … without any
//! modification to the chassis or switch OS".
//!
//! Frame accounting is exact: every frame the switch receives — plus
//! every copy created by flooding or by a duplicating module — ends in
//! exactly one counted fate, and [`SwitchStats::conserved`] checks the
//! identity. The rack-scale [`CrossbarSwitch`](crate::CrossbarSwitch)
//! inherits the same pipeline (and the same identity) with crosspoint
//! queues in place of the instant ASIC.

use crate::cage::{through_cage, Cage, ModulePass};
use flexsfp_core::module::FlexSfp;
use flexsfp_ppe::Direction;
use flexsfp_wire::{EthernetFrame, MacAddr};
use std::collections::HashMap;

/// One delivered frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Egress port.
    pub port: usize,
    /// The frame as it leaves the port (after any module processing).
    pub frame: Vec<u8>,
}

/// Per-switch statistics.
///
/// The counters split into *sources* (frames entering the pipeline:
/// received from the wire, copies created by flooding, copies created
/// by modules) and *sinks* (final fates: delivered, dropped, diverted,
/// filtered, absorbed). [`conserved`](Self::conserved) asserts the two
/// balance — the switch cannot leak a frame without the identity
/// breaking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames received across all ports.
    pub received: u64,
    /// Frames flooded (unknown destination).
    pub flooded: u64,
    /// Extra copies created by flooding (fanout − 1 per flooded frame).
    pub flood_copies: u64,
    /// Extra copies created by modules (mirror outputs, control-plane
    /// replies emitted next to a diverted request).
    pub module_copies: u64,
    /// Frames dropped by port modules, folded from each module's own
    /// per-run [`DropStats`](flexsfp_core::module::DropStats) — app
    /// verdicts, FIFO overflow and parse errors alike.
    pub dropped_by_modules: u64,
    /// Module outputs that emerged on the unexpected interface
    /// (reflected back instead of passing through).
    pub diverted_by_modules: u64,
    /// Frames diverted to a module's control plane.
    pub to_control: u64,
    /// Frames consumed by a module with no other accounted fate (e.g.
    /// a control exchange that produced no reply).
    pub absorbed_by_modules: u64,
    /// Frames that failed Ethernet validation after the ingress cage.
    pub dropped_malformed: u64,
    /// Frames filtered because the destination sat on the ingress port
    /// (or the flood fanout was empty).
    pub filtered_hairpin: u64,
    /// Frames delivered out of ports.
    pub delivered: u64,
}

impl SwitchStats {
    /// Frames that entered the pipeline: received plus every created
    /// copy.
    pub fn sources(&self) -> u64 {
        self.received + self.flood_copies + self.module_copies
    }

    /// Frames that reached a final counted fate.
    pub fn sinks(&self) -> u64 {
        self.delivered
            + self.dropped_by_modules
            + self.diverted_by_modules
            + self.to_control
            + self.absorbed_by_modules
            + self.dropped_malformed
            + self.filtered_hairpin
    }

    /// The conservation identity: every source frame has exactly one
    /// sink.
    pub fn conserved(&self) -> bool {
        self.sources() == self.sinks()
    }

    /// Fold a cage pass into the counters (everything except the
    /// matched outputs, whose fate the caller decides).
    pub(crate) fn absorb_pass(&mut self, pass: &ModulePass) {
        self.dropped_by_modules += pass.dropped;
        self.diverted_by_modules += pass.diverted;
        self.to_control += pass.to_control;
        self.module_copies += pass.gains();
        self.absorbed_by_modules += pass.absorbed();
    }
}

/// The legacy switch.
pub struct LegacySwitch {
    cages: Vec<Cage>,
    mac_table: HashMap<MacAddr, usize>,
    /// Statistics.
    pub stats: SwitchStats,
    time_ns: u64,
}

impl LegacySwitch {
    /// A switch with `ports` ports, all holding standard SFPs.
    pub fn new(ports: usize) -> LegacySwitch {
        LegacySwitch {
            cages: (0..ports).map(|_| Cage::StandardSfp).collect(),
            mac_table: HashMap::new(),
            stats: SwitchStats::default(),
            time_ns: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.cages.len()
    }

    /// Swap the SFP in `port` for a FlexSFP — the drop-in upgrade.
    pub fn insert_flexsfp(&mut self, port: usize, module: FlexSfp) {
        self.cages[port] = Cage::FlexSfp(Box::new(module));
    }

    /// Revert `port` to a standard SFP.
    pub fn remove_flexsfp(&mut self, port: usize) -> Option<FlexSfp> {
        match std::mem::replace(&mut self.cages[port], Cage::StandardSfp) {
            Cage::FlexSfp(m) => Some(*m),
            Cage::StandardSfp => None,
        }
    }

    /// Access the module in `port`, if any (for management via the OOB
    /// path).
    pub fn module_mut(&mut self, port: usize) -> Option<&mut FlexSfp> {
        self.cages[port].module_mut()
    }

    /// Learned MAC table size.
    pub fn learned(&self) -> usize {
        self.mac_table.len()
    }

    /// Offer a frame arriving from the wire on `port` at `t_ns`.
    /// Returns the deliveries out of other ports.
    pub fn inject(&mut self, port: usize, frame: Vec<u8>, t_ns: u64) -> Vec<Delivery> {
        assert!(port < self.cages.len(), "no such port");
        self.time_ns = self.time_ns.max(t_ns);
        self.stats.received += 1;
        // Ingress: wire → module (optical side faces the wire) → ASIC.
        let pass = through_cage(&mut self.cages[port], frame, Direction::OpticalToEdge, t_ns);
        self.stats.absorb_pass(&pass);
        let mut out = Vec::new();
        for frame in pass.matched {
            self.bridge(port, frame, t_ns, &mut out);
        }
        out
    }

    /// The ASIC half: validate, learn, pick egress ports, run each copy
    /// through its egress cage.
    fn bridge(&mut self, port: usize, frame: Vec<u8>, t_ns: u64, out: &mut Vec<Delivery>) {
        let Ok(eth) = EthernetFrame::new_checked(&frame[..]) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        // Learn the source.
        let src = eth.src();
        if src.is_unicast() {
            self.mac_table.insert(src, port);
        }
        // Decide egress ports.
        let dst = eth.dst();
        let egress_ports: Vec<usize> = match self.mac_table.get(&dst) {
            Some(&p) if p != port => vec![p],
            Some(_) => Vec::new(), // destination is on the ingress port
            None => {
                self.stats.flooded += 1;
                (0..self.cages.len()).filter(|&p| p != port).collect()
            }
        };
        if egress_ports.is_empty() {
            self.stats.filtered_hairpin += 1;
            return;
        }
        self.stats.flood_copies += egress_ports.len() as u64 - 1;
        // Egress: ASIC → module (edge side faces the ASIC) → wire. The
        // last port takes the frame by move, so unicast never clones.
        let last = egress_ports.len();
        let mut frame = frame;
        for (i, p) in egress_ports.into_iter().enumerate() {
            let egress_frame = if i + 1 == last {
                std::mem::take(&mut frame)
            } else {
                frame.clone()
            };
            let pass = through_cage(
                &mut self.cages[p],
                egress_frame,
                Direction::EdgeToOptical,
                t_ns,
            );
            self.stats.absorb_pass(&pass);
            for f in pass.matched {
                self.stats.delivered += 1;
                out.push(Delivery { port: p, frame: f });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_apps::{AclAction, AclFirewall, AclRule, VlanTagger};
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_ppe::Direction as Dir;
    use flexsfp_wire::builder::PacketBuilder;

    const HOST_A: MacAddr = MacAddr([0xa; 6]); // even first octet: unicast
    const HOST_B: MacAddr = MacAddr([0xc; 6]);

    fn frame(dst: MacAddr, src: MacAddr, dport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(dst, src, 0xc0a80001, 0xc0a80002, 999, dport, b"data")
    }

    #[test]
    fn learning_and_unicast_forwarding() {
        let mut sw = LegacySwitch::new(4);
        // A (port 0) talks first: flooded, A learned.
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        assert_eq!(out.len(), 3); // flooded to 1,2,3
        assert_eq!(sw.learned(), 1);
        // B replies from port 2: unicast straight to port 0.
        let out = sw.inject(2, frame(HOST_A, HOST_B, 80), 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 0);
        assert_eq!(sw.learned(), 2);
        // Now A→B is unicast to port 2.
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 2);
        assert_eq!(sw.stats.flooded, 1);
        // The flood created two extra copies; every frame is accounted.
        assert_eq!(sw.stats.flood_copies, 2);
        assert_eq!(sw.stats.delivered, 5);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn same_port_destination_filtered() {
        let mut sw = LegacySwitch::new(2);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0); // learn A@0
        sw.inject(0, frame(HOST_A, HOST_B, 80), 1); // learn B@0 too
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 2);
        assert!(out.is_empty());
        // Hairpin frames are counted, not leaked.
        assert_eq!(sw.stats.filtered_hairpin, 2);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn malformed_frames_are_counted_not_leaked() {
        let mut sw = LegacySwitch::new(2);
        let out = sw.inject(0, vec![0xde, 0xad], 0); // far too short
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped_malformed, 1);
        assert_eq!(sw.stats.received, 1);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn retrofit_firewall_blocks_at_the_port() {
        let mut sw = LegacySwitch::new(2);
        // Learn both hosts with permitted traffic first.
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1);
        // Insert a FlexSFP firewall into port 0 that denies UDP/53
        // arriving from the wire.
        let mut fw = AclFirewall::new(16);
        fw.screen_direction = Some(Dir::OpticalToEdge);
        fw.add_rule(AclRule {
            src: None,
            dst: None,
            protocol: Some(17),
            src_port: None,
            dst_port: Some(53),
            priority: 1,
            action: AclAction::Deny,
        });
        // The PPE must sit on the wire-facing (optical→edge) path —
        // the paper's One-Way-Filter supports either placement (§4.1).
        let cfg = ModuleConfig {
            shell: flexsfp_core::ShellKind::OneWayFilter {
                ppe_direction: Dir::OpticalToEdge,
            },
            ..ModuleConfig::default()
        };
        sw.insert_flexsfp(0, FlexSfp::new(cfg, Box::new(fw)));
        // DNS from A is dropped in the cage, before the ASIC sees it.
        let out = sw.inject(0, frame(HOST_B, HOST_A, 53), 100);
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped_by_modules, 1);
        // Web traffic still flows.
        let out = sw.inject(0, frame(HOST_B, HOST_A, 443), 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 1);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn retrofit_vlan_tagger_tags_egress() {
        let mut sw = LegacySwitch::new(2);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1);
        // Port 1's uplink gets a VLAN tagger: frames leaving port 1
        // carry VID 200.
        let mut tagger = VlanTagger::new(200);
        tagger.drop_tagged_ingress = false;
        sw.insert_flexsfp(1, FlexSfp::new(ModuleConfig::default(), Box::new(tagger)));
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 100);
        assert_eq!(out.len(), 1);
        let parsed = flexsfp_ppe::Parser::default().parse(&out[0].frame).unwrap();
        assert_eq!(parsed.vlans, vec![200]);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn module_removal_restores_transparency() {
        let mut sw = LegacySwitch::new(2);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1);
        let mut fw = AclFirewall::new(4);
        fw.default_action = AclAction::Deny;
        sw.insert_flexsfp(0, FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(fw)));
        assert!(sw.inject(0, frame(HOST_B, HOST_A, 80), 2).is_empty());
        let removed = sw.remove_flexsfp(0);
        assert!(removed.is_some());
        assert_eq!(sw.inject(0, frame(HOST_B, HOST_A, 80), 3).len(), 1);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn control_diversion_counts_to_control() {
        use flexsfp_ppe::{PacketProcessor, ProcessContext, Verdict};

        /// Punts every frame to the embedded control plane.
        struct Punt;
        impl PacketProcessor for Punt {
            fn name(&self) -> &str {
                "punt"
            }
            fn process(&mut self, _ctx: &ProcessContext, _packet: &mut Vec<u8>) -> Verdict {
                Verdict::ToControlPlane
            }
        }

        let mut sw = LegacySwitch::new(2);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1);
        sw.insert_flexsfp(0, FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(Punt)));
        // Every frame entering port 0 is consumed by the module's
        // control plane: counted, not leaked, and not a module "drop".
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 100);
        assert!(out.is_empty());
        assert_eq!(sw.stats.to_control, 1);
        assert_eq!(sw.stats.dropped_by_modules, 0);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn reflecting_module_counts_diverted_frames() {
        use flexsfp_ppe::{PacketProcessor, ProcessContext, Verdict};

        /// Bounces every frame back out the interface it came from.
        struct Reflector;
        impl PacketProcessor for Reflector {
            fn name(&self) -> &str {
                "reflector"
            }
            fn process(&mut self, _ctx: &ProcessContext, _packet: &mut Vec<u8>) -> Verdict {
                Verdict::Reflect
            }
        }

        let mut sw = LegacySwitch::new(2);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1);
        sw.insert_flexsfp(
            1,
            FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(Reflector)),
        );
        // A→B hits port 1's egress module, which reflects it back
        // toward the ASIC: nothing is delivered, and the frame is
        // counted as diverted rather than vanishing.
        let out = sw.inject(0, frame(HOST_B, HOST_A, 80), 100);
        assert!(out.is_empty());
        assert_eq!(sw.stats.diverted_by_modules, 1);
        assert_eq!(sw.stats.dropped_by_modules, 0);
        assert!(sw.stats.conserved(), "{:?}", sw.stats);
    }

    #[test]
    fn per_port_management_through_switch() {
        use crate::mgmt::ManagementClient;
        use flexsfp_core::auth::AuthKey;
        let mut sw = LegacySwitch::new(2);
        sw.insert_flexsfp(0, FlexSfp::passthrough());
        let client = ManagementClient::new(AuthKey::DEFAULT);
        let m = sw.module_mut(0).unwrap();
        let info = client.info(m).unwrap();
        assert_eq!(info.app, "passthrough");
        assert!(sw.module_mut(1).is_none());
    }
}
