//! The Thunderbolt 10 G NIC of the §5 power testbed.
//!
//! The paper's measurement rig is a single-port Thunderbolt NIC
//! (QNA-T310G1S-like) whose current draw is measured with (a) an empty
//! cage, (b) a standard SFP+ and (c) the FlexSFP, under line-rate
//! rx+tx stress. The NIC model contributes a constant baseline and
//! hosts whatever module sits in its cage.

use flexsfp_core::module::FlexSfp;
use flexsfp_fabric::power::PowerModel;
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_fabric::ClockDomain;

/// What occupies the NIC's cage.
pub enum CageState {
    /// Nothing inserted.
    Empty,
    /// A standard fixed-function SFP+.
    StandardSfp,
    /// A FlexSFP module.
    FlexSfp(Box<FlexSfp>),
}

/// The host NIC.
pub struct HostNic {
    /// Baseline power of the NIC electronics with an empty cage, W.
    /// Calibrated to the paper's measured 3.800 W.
    pub baseline_w: f64,
    /// Cage contents.
    pub cage: CageState,
}

impl Default for HostNic {
    fn default() -> Self {
        Self::new()
    }
}

impl HostNic {
    /// The testbed NIC with an empty cage.
    pub fn new() -> HostNic {
        HostNic {
            baseline_w: 3.800,
            cage: CageState::Empty,
        }
    }

    /// Insert a standard SFP+.
    pub fn insert_standard_sfp(&mut self) {
        self.cage = CageState::StandardSfp;
    }

    /// Insert a FlexSFP.
    pub fn insert_flexsfp(&mut self, module: FlexSfp) {
        self.cage = CageState::FlexSfp(Box::new(module));
    }

    /// Empty the cage.
    pub fn eject(&mut self) {
        self.cage = CageState::Empty;
    }

    /// Total measured power at `line_utilization` of bidirectional
    /// line-rate traffic (activity tracks utilization for the module's
    /// fabric).
    pub fn measure_power_w(&self, line_utilization: f64) -> f64 {
        let module_w = match &self.cage {
            CageState::Empty => 0.0,
            CageState::StandardSfp => PowerModel::standard_sfp()
                .power(
                    &ResourceManifest::ZERO,
                    ClockDomain::XGMII_10G,
                    0,
                    line_utilization,
                    0.0,
                )
                .total_w(),
            CageState::FlexSfp(m) => m.power(line_utilization, line_utilization).total_w(),
        };
        self.baseline_w + module_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cage_is_baseline() {
        let nic = HostNic::new();
        assert!((nic.measure_power_w(1.0) - 3.800).abs() < 1e-9);
        assert!((nic.measure_power_w(0.0) - 3.800).abs() < 1e-9);
    }

    #[test]
    fn standard_sfp_stress_point() {
        let mut nic = HostNic::new();
        nic.insert_standard_sfp();
        let w = nic.measure_power_w(1.0);
        assert!((w - 4.693).abs() < 0.01, "{w}");
    }

    #[test]
    fn flexsfp_stress_point() {
        let mut nic = HostNic::new();
        nic.insert_flexsfp(nat_module());
        let w = nic.measure_power_w(1.0);
        assert!((w - 5.320).abs() < 0.02, "{w}");
    }

    #[test]
    fn eject_restores_baseline() {
        let mut nic = HostNic::new();
        nic.insert_standard_sfp();
        nic.eject();
        assert!((nic.measure_power_w(1.0) - 3.800).abs() < 1e-9);
    }

    fn nat_module() -> FlexSfp {
        // The §5 measurement ran the NAT design.
        FlexSfp::new(
            flexsfp_core::module::ModuleConfig::default(),
            Box::new(flexsfp_apps::StaticNat::new()),
        )
    }
}
