//! The fiber link between two modules' optical sides.
//!
//! A link carries the optical-egress output of one module to the optical
//! ingress of its peer with propagation delay (≈ 5 ns/m in fiber) and a
//! fixed insertion loss used by the receiver's link-budget check.

use flexsfp_core::module::{Interface, OutputPacket, SimPacket};
use flexsfp_ppe::Direction;

/// A point-to-point fiber span.
#[derive(Debug, Clone, Copy)]
pub struct FiberLink {
    /// Length in metres.
    pub length_m: f64,
    /// Total loss (fiber + connectors), dB.
    pub loss_db: f64,
}

/// Propagation speed in fiber: ~4.9 ns per metre.
pub const NS_PER_METER: f64 = 4.9;

impl FiberLink {
    /// A span of `length_m` metres with typical multimode loss.
    pub fn new(length_m: f64) -> FiberLink {
        FiberLink {
            length_m,
            // 3.5 dB/km @ 850 nm + 2 × 0.3 dB connectors.
            loss_db: 3.5 * length_m / 1000.0 + 0.6,
        }
    }

    /// One-way propagation delay, ns.
    pub fn delay_ns(&self) -> f64 {
        self.length_m * NS_PER_METER
    }

    /// Convert one module's optical egress into the peer's optical
    /// ingress trace (arrival-sorted, delay applied). Frames are cloned;
    /// use [`carry_owned`](Self::carry_owned) when the outputs are no
    /// longer needed.
    pub fn carry(&self, outputs: &[OutputPacket]) -> Vec<SimPacket> {
        self.carry_owned(outputs.iter().cloned())
    }

    /// Like [`carry`](Self::carry), but consume the outputs and move each
    /// frame into the peer's ingress trace without copying — the
    /// zero-clone path for chained fleet runs.
    pub fn carry_owned<I>(&self, outputs: I) -> Vec<SimPacket>
    where
        I: IntoIterator<Item = OutputPacket>,
    {
        let mut pkts: Vec<SimPacket> = outputs
            .into_iter()
            .filter(|o| o.egress == Interface::Optical)
            .map(|o| SimPacket {
                arrival_ns: o.departure_ns + self.delay_ns() as u64,
                direction: Direction::OpticalToEdge,
                frame: o.frame,
            })
            .collect();
        pkts.sort_by_key(|p| p.arrival_ns);
        pkts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_core::module::FlexSfp;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    fn frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            0x0a000001,
            1,
            2,
            b"x",
        )
    }

    #[test]
    fn delay_scales_with_length() {
        assert!((FiberLink::new(100.0).delay_ns() - 490.0).abs() < 1e-9);
        assert!(FiberLink::new(2000.0).loss_db > FiberLink::new(10.0).loss_db);
    }

    #[test]
    fn end_to_end_two_modules() {
        // A sends edge→optical; the link carries it to B's optical
        // ingress; B forwards it to its edge.
        let mut a = FlexSfp::passthrough();
        let mut b = FlexSfp::passthrough();
        let link = FiberLink::new(300.0);
        let report_a = a.run(vec![SimPacket {
            arrival_ns: 0,
            direction: Direction::EdgeToOptical,
            frame: frame(),
        }]);
        assert_eq!(report_a.forwarded.1, 1);
        let over_fiber = link.carry(&report_a.outputs);
        assert_eq!(over_fiber.len(), 1);
        assert!(over_fiber[0].arrival_ns >= 1470); // ≥ 300 m of fiber
        let report_b = b.run(over_fiber);
        assert_eq!(report_b.forwarded.0, 1);
        assert_eq!(report_b.outputs[0].frame, frame());
    }

    #[test]
    fn carry_owned_moves_frames() {
        let mut a = FlexSfp::passthrough();
        let report = a.run(vec![SimPacket {
            arrival_ns: 0,
            direction: Direction::EdgeToOptical,
            frame: frame(),
        }]);
        let by_ref = FiberLink::new(300.0).carry(&report.outputs);
        let owned = FiberLink::new(300.0).carry_owned(report.outputs);
        assert_eq!(by_ref.len(), owned.len());
        assert_eq!(by_ref[0].arrival_ns, owned[0].arrival_ns);
        assert_eq!(by_ref[0].frame, owned[0].frame);
    }

    #[test]
    fn carry_filters_edge_outputs() {
        let mut a = FlexSfp::passthrough();
        // Optical→edge traffic leaves on the edge side; the fiber must
        // not loop it back.
        let report = a.run(vec![SimPacket {
            arrival_ns: 0,
            direction: Direction::OpticalToEdge,
            frame: frame(),
        }]);
        assert_eq!(report.forwarded.0, 1);
        assert!(FiberLink::new(1.0).carry(&report.outputs).is_empty());
    }
}
