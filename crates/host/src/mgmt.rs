//! The typed management client.
//!
//! Wraps the authenticated control protocol in ergonomic calls. The
//! client is transport-agnostic: anything implementing [`ModulePort`]
//! (the module's out-of-band management port, or an in-band tunnel that
//! forwards control frames) can carry it.

use flexsfp_core::auth::AuthKey;
use flexsfp_core::control::{
    ControlPlane, ControlRequest, ControlResponse, CtlTableOp, CtlTableResult,
};
use flexsfp_core::module::FlexSfp;
use flexsfp_core::reprogram::MAX_CHUNK;
use flexsfp_fabric::hash::crc32;
use flexsfp_obs::{DomSnapshot, FlightRecord, TelemetrySnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transport that delivers one control payload and returns the
/// response payload.
pub trait ModulePort {
    /// Deliver `payload`, returning the module's response.
    fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>>;
}

impl ModulePort for FlexSfp {
    fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self.handle_oob(payload)
    }
}

/// Errors surfaced by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum MgmtError {
    /// No response / authentication failed at the module.
    NoResponse,
    /// The module answered with an error string.
    Module(String),
    /// The response type did not match the request.
    Unexpected,
}

impl core::fmt::Display for MgmtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MgmtError::NoResponse => write!(f, "no response from module"),
            MgmtError::Module(e) => write!(f, "module error: {e}"),
            MgmtError::Unexpected => write!(f, "unexpected response type"),
        }
    }
}

impl std::error::Error for MgmtError {}

/// Module identity snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// Module serial.
    pub module_id: String,
    /// Running application.
    pub app: String,
    /// Application version.
    pub app_version: u32,
    /// Boot count.
    pub boots: u32,
}

/// Per-call retry/backoff policy for a lossy control channel.
///
/// Backoff is *virtual*: the simulated transport has no wall clock, so
/// waits are accounted in [`TransportStats::backoff_ns`] instead of
/// slept, keeping the test suite fast while the accounting stays
/// faithful to what a real deployer would have waited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per call, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff ceiling for the exponential doubling, nanoseconds.
    pub max_backoff_ns: u64,
    /// Status-query resynchronisations allowed within one `deploy`
    /// before it gives up (bounds the worst case on a dead channel).
    pub max_resyncs: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: 50_000,
            max_backoff_ns: 1_600_000,
            max_resyncs: 32,
        }
    }
}

/// Snapshot of the client's lifetime transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Calls re-sent after a lost exchange.
    pub retries: u64,
    /// Exchanges that produced no decodable response.
    pub timeouts: u64,
    /// `AbortUpdate` teardowns initiated by this client.
    pub aborts_sent: u64,
    /// `QueryUpdate` resynchronisations during deploys.
    pub resyncs: u64,
    /// Total virtual backoff accounted, nanoseconds.
    pub backoff_ns: u64,
}

#[derive(Debug, Default)]
struct TransportCounters {
    retries: AtomicU64,
    timeouts: AtomicU64,
    aborts_sent: AtomicU64,
    resyncs: AtomicU64,
    backoff_ns: AtomicU64,
}

/// Update FSM phase as reported by a `QueryUpdate` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePhase {
    /// No update in progress.
    Idle,
    /// Mid-transfer.
    Receiving,
    /// Committed, awaiting activation.
    Staged,
}

/// Update FSM progress as reported by a `QueryUpdate` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStatus {
    /// FSM phase.
    pub phase: UpdatePhase,
    /// Target slot of the in-progress/staged update.
    pub slot: usize,
    /// Declared total image length.
    pub total_len: usize,
    /// Declared image CRC-32.
    pub crc32: u32,
    /// Next chunk sequence number the module expects.
    pub next_seq: u32,
    /// Bytes received so far.
    pub received: usize,
}

/// Where a resumable deploy stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Progress {
    /// Next chunk to send (== chunk count means "ready to commit").
    Sending(u32),
    /// Image committed; activation pending.
    Staged,
}

/// The management client.
#[derive(Debug, Clone)]
pub struct ManagementClient {
    key: AuthKey,
    policy: RetryPolicy,
    counters: Arc<TransportCounters>,
}

impl ManagementClient {
    /// A client authenticated with `key` under the default
    /// [`RetryPolicy`].
    pub fn new(key: AuthKey) -> ManagementClient {
        Self::with_policy(key, RetryPolicy::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_policy(key: AuthKey, policy: RetryPolicy) -> ManagementClient {
        ManagementClient {
            key,
            policy,
            counters: Arc::new(TransportCounters::default()),
        }
    }

    /// The active retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Lifetime transport counters (shared across clones of this
    /// client, so a fleet sweep's workers aggregate into one place).
    pub fn transport_stats(&self) -> TransportStats {
        TransportStats {
            retries: self.counters.retries.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            aborts_sent: self.counters.aborts_sent.load(Ordering::Relaxed),
            resyncs: self.counters.resyncs.load(Ordering::Relaxed),
            backoff_ns: self.counters.backoff_ns.load(Ordering::Relaxed),
        }
    }

    fn call<P: ModulePort>(
        &self,
        port: &mut P,
        req: &ControlRequest,
    ) -> Result<ControlResponse, MgmtError> {
        let payload = ControlPlane::encode_request(&self.key, req);
        let resp = port.request(&payload).ok_or(MgmtError::NoResponse)?;
        ControlPlane::decode_response(&self.key, &resp).ok_or(MgmtError::NoResponse)
    }

    /// One call with bounded-exponential-backoff retry on lost
    /// exchanges. Module-level errors are NOT retried — the channel
    /// delivered them fine; retrying would just repeat the refusal.
    fn call_retry<P: ModulePort>(
        &self,
        port: &mut P,
        req: &ControlRequest,
    ) -> Result<ControlResponse, MgmtError> {
        let mut backoff = self.policy.base_backoff_ns;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .backoff_ns
                    .fetch_add(backoff, Ordering::Relaxed);
                backoff = backoff.saturating_mul(2).min(self.policy.max_backoff_ns);
            }
            match self.call(port, req) {
                Err(MgmtError::NoResponse) => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
        Err(MgmtError::NoResponse)
    }

    fn expect_ack(&self, resp: ControlResponse) -> Result<(), MgmtError> {
        match resp {
            ControlResponse::Ack => Ok(()),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Liveness probe.
    pub fn ping<P: ModulePort>(&self, port: &mut P, nonce: u64) -> Result<(), MgmtError> {
        match self.call_retry(port, &ControlRequest::Ping { nonce })? {
            ControlResponse::Pong { nonce: n } if n == nonce => Ok(()),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Identity/status.
    pub fn info<P: ModulePort>(&self, port: &mut P) -> Result<ModuleInfo, MgmtError> {
        match self.call_retry(port, &ControlRequest::GetInfo)? {
            ControlResponse::Info {
                module_id,
                app,
                app_version,
                boots,
                ..
            } => Ok(ModuleInfo {
                module_id,
                app,
                app_version,
                boots,
            }),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// DOM reading in SFF-8472 units (powers in dBm, bias in mA).
    pub fn read_dom<P: ModulePort>(&self, port: &mut P) -> Result<DomSnapshot, MgmtError> {
        match self.call_retry(port, &ControlRequest::ReadDom)? {
            ControlResponse::Dom {
                temperature_c,
                tx_power_mw,
                tx_bias_ma,
                rx_power_mw,
                ..
            } => Ok(DomSnapshot::from_milliwatts(
                tx_power_mw,
                rx_power_mw,
                tx_bias_ma,
                temperature_c,
            )),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Pull the module's full telemetry snapshot: counters, drop
    /// breakdown, the lifetime latency histogram, DOM and the traced
    /// dataplane events since the previous pull.
    pub fn read_telemetry<P: ModulePort>(
        &self,
        port: &mut P,
    ) -> Result<TelemetrySnapshot, MgmtError> {
        match self.call_retry(port, &ControlRequest::ReadTelemetry)? {
            ControlResponse::Telemetry(snap) => Ok(*snap),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Drain the module's flight recorder: the sampled-packet
    /// postcards accumulated since the previous drain, oldest first.
    /// Empty when the recorder is disarmed.
    pub fn read_flight_records<P: ModulePort>(
        &self,
        port: &mut P,
    ) -> Result<Vec<FlightRecord>, MgmtError> {
        match self.call_retry(port, &ControlRequest::ReadFlightRecords)? {
            ControlResponse::FlightRecords(records) => Ok(records),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Execute a table operation.
    pub fn table_op<P: ModulePort>(
        &self,
        port: &mut P,
        op: CtlTableOp,
    ) -> Result<CtlTableResult, MgmtError> {
        match self.call_retry(port, &ControlRequest::Table(op))? {
            ControlResponse::Table(r) => Ok(r),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Read a counter as `(packets, bytes)`.
    pub fn read_counter<P: ModulePort>(
        &self,
        port: &mut P,
        index: u32,
    ) -> Result<(u64, u64), MgmtError> {
        match self.table_op(port, CtlTableOp::ReadCounter { index })? {
            CtlTableResult::Counter { packets, bytes } => Ok((packets, bytes)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Drain NetFlow-like export records from a telemetry module
    /// (repeatedly reads table 2 until the module reports no more).
    pub fn collect_flows<P: ModulePort>(
        &self,
        port: &mut P,
    ) -> Result<Vec<flexsfp_apps::telemetry::ExportRecord>, MgmtError> {
        let mut all = Vec::new();
        loop {
            let value = match self.table_op(
                port,
                CtlTableOp::Read {
                    table: 2,
                    key: vec![],
                },
            )? {
                CtlTableResult::Value(v) => v,
                CtlTableResult::Unsupported => return Err(MgmtError::Unexpected),
                _ => return Err(MgmtError::Unexpected),
            };
            let batch =
                flexsfp_apps::telemetry::parse_export(&value).ok_or(MgmtError::Unexpected)?;
            if batch.is_empty() {
                return Ok(all);
            }
            all.extend(batch);
        }
    }

    /// Query the module's update FSM progress.
    pub fn update_status<P: ModulePort>(&self, port: &mut P) -> Result<UpdateStatus, MgmtError> {
        match self.call_retry(port, &ControlRequest::QueryUpdate)? {
            ControlResponse::UpdateStatus {
                state,
                slot,
                total_len,
                crc32,
                next_seq,
                received,
            } => {
                let phase = match state.as_str() {
                    "idle" => UpdatePhase::Idle,
                    "receiving" => UpdatePhase::Receiving,
                    "staged" => UpdatePhase::Staged,
                    _ => return Err(MgmtError::Unexpected),
                };
                Ok(UpdateStatus {
                    phase,
                    slot,
                    total_len,
                    crc32,
                    next_seq,
                    received,
                })
            }
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Tear down any in-progress update on the module.
    pub fn abort_update<P: ModulePort>(&self, port: &mut P) -> Result<(), MgmtError> {
        self.counters.aborts_sent.fetch_add(1, Ordering::Relaxed);
        self.expect_ack(self.call_retry(port, &ControlRequest::AbortUpdate)?)
    }

    /// Full OTA deployment: begin → chunks → commit → activate, hardened
    /// for a lossy channel. Every call retries per the [`RetryPolicy`];
    /// lost acks are recovered by querying the FSM (`QueryUpdate`) and
    /// resuming from the last accepted chunk rather than restarting the
    /// transfer. On any terminal failure the client sends `AbortUpdate`
    /// before returning, so the module is never left wedged mid-update.
    pub fn deploy<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        image: &[u8],
    ) -> Result<(), MgmtError> {
        let result = self.deploy_inner(port, slot, image);
        if result.is_err() {
            // Best-effort teardown: a wedged `Receiving` FSM would turn
            // every later `BeginUpdate` into `WrongState`.
            let _ = self.abort_update(port);
        }
        result
    }

    fn deploy_inner<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        image: &[u8],
    ) -> Result<(), MgmtError> {
        let crc = crc32(image);
        let total_len = image.len();
        let chunks: Vec<&[u8]> = image.chunks(MAX_CHUNK).collect();
        let mut progress = self.begin_or_resume(port, slot, total_len, crc)?;
        let mut resyncs = 0u32;
        while let Progress::Sending(seq) = progress {
            let sending = (seq as usize) < chunks.len();
            let outcome = if sending {
                self.call_retry(
                    port,
                    &ControlRequest::UpdateChunk {
                        seq,
                        data: chunks[seq as usize].to_vec(),
                    },
                )
            } else {
                self.call_retry(port, &ControlRequest::CommitUpdate)
            };
            progress = match outcome {
                Ok(ControlResponse::Ack) => {
                    if sending {
                        Progress::Sending(seq + 1)
                    } else {
                        Progress::Staged
                    }
                }
                // WrongState: a duplicated delivery already advanced the
                // FSM (e.g. the first copy of a Commit staged the image).
                // BadSequence: the transfer desynchronised. Both are
                // answerable by asking the FSM where it stands.
                Ok(ControlResponse::Error(e))
                    if e.contains("WrongState") || e.contains("BadSequence") =>
                {
                    self.resync(port, slot, total_len, crc, &mut resyncs)?
                }
                Ok(ControlResponse::Error(e)) => return Err(MgmtError::Module(e)),
                Ok(_) => return Err(MgmtError::Unexpected),
                Err(MgmtError::NoResponse) => {
                    self.resync(port, slot, total_len, crc, &mut resyncs)?
                }
                Err(e) => return Err(e),
            };
        }
        // Staged: activate. Activation reboots the module, so a blind
        // retransmit after a lost ack would double-boot it. Probe the
        // FSM between attempts instead: once it has left `Staged`, the
        // activation landed and only its ack was lost.
        let mut attempts = 0u32;
        loop {
            match self.call(port, &ControlRequest::Activate { slot }) {
                Ok(ControlResponse::Ack) => return Ok(()),
                Ok(ControlResponse::Error(e)) => return Err(MgmtError::Module(e)),
                Ok(_) => return Err(MgmtError::Unexpected),
                Err(MgmtError::NoResponse) => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    if !matches!(self.update_status(port)?.phase, UpdatePhase::Staged) {
                        return Ok(());
                    }
                    if attempts >= self.policy.max_attempts.max(1) {
                        return Err(MgmtError::NoResponse);
                    }
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Start an update, resuming an interrupted session when the module
    /// reports one that matches this image (same slot, length and CRC).
    fn begin_or_resume<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        total_len: usize,
        crc: u32,
    ) -> Result<Progress, MgmtError> {
        let begin = ControlRequest::BeginUpdate {
            slot,
            total_len,
            crc32: crc,
        };
        match self.call_retry(port, &begin) {
            Ok(ControlResponse::Ack) => Ok(Progress::Sending(0)),
            Ok(ControlResponse::Error(e)) if e.contains("WrongState") => {
                // Mid-update already: ours (duplicated Begin or a
                // previous attempt's lost ack) or a stale session from
                // a dead deployer. Resume if it matches; reset if not.
                // A `Staged` leftover is NOT trusted at begin time — it
                // could hold a different image for the same slot.
                if let Some(p) = self.session_progress(port, slot, total_len, crc, false)? {
                    return Ok(p);
                }
                self.abort_update(port)?;
                self.expect_ack(self.call_retry(port, &begin)?)?;
                Ok(Progress::Sending(0))
            }
            Ok(ControlResponse::Error(e)) => Err(MgmtError::Module(e)),
            Ok(_) => Err(MgmtError::Unexpected),
            Err(MgmtError::NoResponse) => {
                // The Begin may have been applied with its ack lost.
                match self.session_progress(port, slot, total_len, crc, false)? {
                    Some(p) => Ok(p),
                    None => Err(MgmtError::NoResponse),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Ask the FSM where it stands; `Some(progress)` when the in-module
    /// session belongs to this image.
    fn session_progress<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        total_len: usize,
        crc: u32,
        allow_staged: bool,
    ) -> Result<Option<Progress>, MgmtError> {
        self.counters.resyncs.fetch_add(1, Ordering::Relaxed);
        let st = self.update_status(port)?;
        Ok(match st.phase {
            UpdatePhase::Receiving
                if st.slot == slot && st.total_len == total_len && st.crc32 == crc =>
            {
                Some(Progress::Sending(st.next_seq))
            }
            UpdatePhase::Staged if allow_staged && st.slot == slot => Some(Progress::Staged),
            _ => None,
        })
    }

    fn resync<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        total_len: usize,
        crc: u32,
        resyncs: &mut u32,
    ) -> Result<Progress, MgmtError> {
        *resyncs += 1;
        if *resyncs > self.policy.max_resyncs {
            return Err(MgmtError::NoResponse);
        }
        match self.session_progress(port, slot, total_len, crc, true)? {
            Some(p) => Ok(p),
            // The FSM no longer carries our session (e.g. the module
            // rebooted mid-transfer): not recoverable by resending.
            None => Err(MgmtError::Module("update session lost".into())),
        }
    }

    /// Roll back to a previously written slot (e.g. golden 0).
    pub fn activate_slot<P: ModulePort>(&self, port: &mut P, slot: usize) -> Result<(), MgmtError> {
        self.expect_ack(self.call_retry(port, &ControlRequest::Activate { slot })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_core::Bitstream;
    use flexsfp_fabric::resources::ResourceManifest;

    fn module() -> FlexSfp {
        FlexSfp::passthrough()
    }

    fn client() -> ManagementClient {
        ManagementClient::new(AuthKey::DEFAULT)
    }

    #[test]
    fn ping_and_info() {
        let mut m = module();
        let c = client();
        c.ping(&mut m, 99).unwrap();
        let info = c.info(&mut m).unwrap();
        assert_eq!(info.app, "passthrough");
        assert_eq!(info.boots, 1);
        assert_eq!(info.module_id, "FSFP-PROTO-001");
    }

    #[test]
    fn wrong_key_gets_no_response() {
        let mut m = module();
        let c = ManagementClient::new(AuthKey::from_passphrase("wrong"));
        assert_eq!(c.ping(&mut m, 1), Err(MgmtError::NoResponse));
    }

    #[test]
    fn dom_readout() {
        let mut m = module();
        let dom = client().read_dom(&mut m).unwrap();
        assert!(dom.temp_c > 30.0 && dom.temp_c < 60.0);
        // A live laser emits well above the -40 dBm floor.
        assert!(dom.tx_power_dbm.is_finite() && dom.tx_power_dbm > -40.0);
        assert!(dom.bias_ma > 0.0);
    }

    #[test]
    fn telemetry_readout_via_client() {
        let mut m = module();
        let snap = client().read_telemetry(&mut m).unwrap();
        assert_eq!(snap.module_id, "FSFP-PROTO-001");
        assert_eq!(snap.app, "passthrough");
        assert_eq!(snap.seq, 1);
        assert!(snap.laser_healthy);
        // Telemetry is only served out-of-band; the wrong key gets nothing.
        let bad = ManagementClient::new(AuthKey::from_passphrase("wrong"));
        assert_eq!(bad.read_telemetry(&mut m), Err(MgmtError::NoResponse));
    }

    #[test]
    fn flight_records_read_via_client() {
        use flexsfp_core::module::SimPacket;
        use flexsfp_ppe::Direction;
        let mut m = module();
        let c = client();
        // Disarmed recorder: an empty drain, not an error.
        assert!(c.read_flight_records(&mut m).unwrap().is_empty());
        m.enable_flight_recorder(1, 3, 64);
        m.run_stream((0..10u64).map(|i| SimPacket {
            arrival_ns: i * 1_000,
            direction: Direction::EdgeToOptical,
            frame: vec![0u8; 64],
        }));
        let records = c.read_flight_records(&mut m).unwrap();
        assert_eq!(records.len(), 10);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        // The drain emptied the ring.
        assert!(c.read_flight_records(&mut m).unwrap().is_empty());
    }

    #[test]
    fn deploy_via_client_reboots_module() {
        let mut m = module();
        let c = client();
        let bs = Bitstream::new("passthrough", 5, ResourceManifest::ZERO, 156_250_000);
        c.deploy(&mut m, 1, &bs.to_bytes()).unwrap();
        assert_eq!(m.app_version(), 5);
        assert_eq!(m.boots(), 2);
        let info = c.info(&mut m).unwrap();
        assert_eq!(info.app_version, 5);
    }

    #[test]
    fn deploy_to_golden_slot_fails_cleanly() {
        let mut m = module();
        let c = client();
        let bs = Bitstream::new("passthrough", 5, ResourceManifest::ZERO, 1);
        match c.deploy(&mut m, 0, &bs.to_bytes()) {
            Err(MgmtError::Module(e)) => assert!(e.contains("BadSlot"), "{e}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.boots(), 1);
    }

    #[test]
    fn rollback_to_golden() {
        let mut m = module();
        let c = client();
        // Write a golden image at the factory.
        let golden = Bitstream::new("passthrough", 1, ResourceManifest::ZERO, 156_250_000);
        m.flash.write_slot(0, &golden.to_bytes()).unwrap();
        // Deploy v9, then roll back.
        let v9 = Bitstream::new("passthrough", 9, ResourceManifest::ZERO, 156_250_000);
        c.deploy(&mut m, 2, &v9.to_bytes()).unwrap();
        assert_eq!(m.app_version(), 9);
        c.activate_slot(&mut m, 0).unwrap();
        assert_eq!(m.app_version(), 1);
        assert_eq!(m.boots(), 3);
    }

    #[test]
    fn flow_collection_from_telemetry_module() {
        use flexsfp_apps::TelemetryProbe;
        use flexsfp_core::module::SimPacket;
        use flexsfp_ppe::Direction;
        let mut m = FlexSfp::new(
            ModuleConfig::default(),
            Box::new(TelemetryProbe::new(1024, 100_000, 1_000_000)),
        );
        // Push 80 distinct flows through the module.
        let packets: Vec<SimPacket> = (0..80u16)
            .map(|i| SimPacket {
                arrival_ns: u64::from(i) * 1_000,
                direction: Direction::EdgeToOptical,
                frame: flexsfp_wire::builder::PacketBuilder::eth_ipv4_udp(
                    flexsfp_wire::MacAddr([2; 6]),
                    flexsfp_wire::MacAddr([4; 6]),
                    0xc0a80001,
                    0x08080808,
                    10_000 + i,
                    443,
                    b"data",
                ),
            })
            .collect();
        m.run(packets);
        // The host collector drains them in 32-record slices.
        let flows = client().collect_flows(&mut m).unwrap();
        assert_eq!(flows.len(), 80);
        assert!(flows.iter().all(|f| f.record.packets == 1));
        // Second collection finds nothing (read-and-evict).
        assert!(client().collect_flows(&mut m).unwrap().is_empty());
        // A non-telemetry module reports Unexpected.
        let mut plain = FlexSfp::passthrough();
        assert!(client().collect_flows(&mut plain).is_err());
    }

    #[test]
    fn table_ops_against_nat() {
        use flexsfp_apps::StaticNat;
        let mut m = FlexSfp::new(ModuleConfig::default(), Box::new(StaticNat::new()));
        let c = client();
        let r = c
            .table_op(
                &mut m,
                CtlTableOp::Insert {
                    table: 0,
                    key: 0xc0a80001u32.to_be_bytes().to_vec(),
                    value: 0x65000001u32.to_be_bytes().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(r, CtlTableResult::Ok);
        let read = c
            .table_op(
                &mut m,
                CtlTableOp::Read {
                    table: 0,
                    key: 0xc0a80001u32.to_be_bytes().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(
            read,
            CtlTableResult::Value(0x65000001u32.to_be_bytes().to_vec())
        );
        let (packets, _bytes) = c.read_counter(&mut m, 0).unwrap();
        assert_eq!(packets, 0);
    }

    /// Drops every request whose (plaintext) control frame contains a
    /// byte pattern — e.g. all `UpdateChunk` messages — while letting
    /// small control traffic (begin/commit/abort/query) through.
    struct PatternDropPort {
        inner: FlexSfp,
        pattern: &'static [u8],
    }

    impl ModulePort for PatternDropPort {
        fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
            if payload
                .windows(self.pattern.len())
                .any(|w| w == self.pattern)
            {
                return None;
            }
            self.inner.request(payload)
        }
    }

    #[test]
    fn failed_deploy_aborts_wedged_fsm() {
        use flexsfp_core::reprogram::UpdateState;
        let mut port = PatternDropPort {
            inner: module(),
            pattern: b"UpdateChunk",
        };
        let c = ManagementClient::with_policy(
            AuthKey::DEFAULT,
            RetryPolicy {
                max_attempts: 2,
                max_resyncs: 3,
                ..RetryPolicy::default()
            },
        );
        let bs = Bitstream::new("passthrough", 5, ResourceManifest::ZERO, 156_250_000);
        let image = bs.to_bytes();
        // No chunk ever arrives: the deploy gives up after max_resyncs.
        assert_eq!(c.deploy(&mut port, 1, &image), Err(MgmtError::NoResponse));
        // But the failure path tore the session down — the module is
        // NOT left wedged in `Receiving`.
        assert_eq!(port.inner.control.update_state(), &UpdateState::Idle);
        let stats = c.transport_stats();
        assert!(stats.aborts_sent >= 1, "{stats:?}");
        assert!(stats.timeouts >= 1 && stats.retries >= 1, "{stats:?}");
        // And a clean re-deploy over a healthy channel succeeds.
        c.deploy(&mut port.inner, 1, &image).unwrap();
        assert_eq!(port.inner.app_version(), 5);
    }

    /// Delivers every request but swallows the response of one specific
    /// exchange (by call index): the module acts, the host never hears.
    struct LostAckPort {
        inner: FlexSfp,
        drop_response_at: usize,
        calls: usize,
    }

    impl ModulePort for LostAckPort {
        fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
            let idx = self.calls;
            self.calls += 1;
            let resp = self.inner.request(payload);
            if idx == self.drop_response_at {
                return None;
            }
            resp
        }
    }

    #[test]
    fn lost_chunk_ack_is_recovered_by_idempotent_retransmit() {
        // Call 0 = BeginUpdate, call 1 = first UpdateChunk. The module
        // applies chunk 0 but its ack is lost; the client retransmits
        // and the FSM acks the duplicate instead of erroring.
        let mut port = LostAckPort {
            inner: module(),
            drop_response_at: 1,
            calls: 0,
        };
        let c = client();
        let bs = Bitstream::new("passthrough", 6, ResourceManifest::ZERO, 156_250_000);
        c.deploy(&mut port, 1, &bs.to_bytes()).unwrap();
        assert_eq!(port.inner.app_version(), 6);
        assert_eq!(port.inner.control.ctrl_counters().dup_chunk_acks, 1);
        let stats = c.transport_stats();
        assert!(stats.retries >= 1 && stats.timeouts >= 1, "{stats:?}");
    }

    /// Blacks the channel out completely for a window of call indexes.
    struct BlackoutPort {
        inner: FlexSfp,
        blackout: std::ops::Range<usize>,
        calls: usize,
    }

    impl ModulePort for BlackoutPort {
        fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
            let idx = self.calls;
            self.calls += 1;
            if self.blackout.contains(&idx) {
                return None;
            }
            self.inner.request(payload)
        }
    }

    #[test]
    fn deploy_resumes_from_last_acked_chunk_after_blackout() {
        // A multi-chunk image: lut4=240 → ~3 KB payload → 3-4 chunks.
        let manifest = ResourceManifest {
            lut4: 240,
            ff: 100,
            usram: 2,
            lsram: 1,
        };
        let bs = Bitstream::new("passthrough", 7, manifest, 156_250_000);
        let image = bs.to_bytes();
        assert!(image.len() > MAX_CHUNK, "test needs a multi-chunk image");
        // Calls: 0=Begin, 1=chunk0, then the channel dies for all
        // max_attempts (5) tries of chunk1. The recovery QueryUpdate
        // lands after the window and reports next_seq=1, so the client
        // resumes mid-transfer instead of restarting or failing.
        let mut port = BlackoutPort {
            inner: module(),
            blackout: 2..7,
            calls: 0,
        };
        let c = client();
        c.deploy(&mut port, 2, &image).unwrap();
        assert_eq!(port.inner.app_version(), 7);
        let stats = c.transport_stats();
        assert!(stats.resyncs >= 1, "{stats:?}");
        // Byte-exact staged image in the slot.
        assert_eq!(
            port.inner.flash.read_slot(2, image.len()).unwrap(),
            &image[..]
        );
    }

    #[test]
    fn deploy_survives_lost_activate_ack() {
        // The Activate ack is the last message of a deploy; if it is
        // lost the module has already rebooted into the new image. The
        // client must notice (FSM reads Idle) and declare success, not
        // re-activate or fail.
        let bs = Bitstream::new("passthrough", 8, ResourceManifest::ZERO, 156_250_000);
        // Calls: 0=Begin, 1=chunk0, 2=Commit, 3=Activate.
        let mut port = LostAckPort {
            inner: module(),
            drop_response_at: 3,
            calls: 0,
        };
        let c = client();
        c.deploy(&mut port, 1, &bs.to_bytes()).unwrap();
        assert_eq!(port.inner.app_version(), 8);
        // Exactly one reboot: the retry did not double-activate.
        assert_eq!(port.inner.boots(), 2);
    }
}
