//! The typed management client.
//!
//! Wraps the authenticated control protocol in ergonomic calls. The
//! client is transport-agnostic: anything implementing [`ModulePort`]
//! (the module's out-of-band management port, or an in-band tunnel that
//! forwards control frames) can carry it.

use flexsfp_core::auth::AuthKey;
use flexsfp_core::control::{
    ControlPlane, ControlRequest, ControlResponse, CtlTableOp, CtlTableResult,
};
use flexsfp_core::module::FlexSfp;
use flexsfp_core::reprogram::MAX_CHUNK;
use flexsfp_fabric::hash::crc32;
use flexsfp_obs::{DomSnapshot, TelemetrySnapshot};

/// A transport that delivers one control payload and returns the
/// response payload.
pub trait ModulePort {
    /// Deliver `payload`, returning the module's response.
    fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>>;
}

impl ModulePort for FlexSfp {
    fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self.handle_oob(payload)
    }
}

/// Errors surfaced by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum MgmtError {
    /// No response / authentication failed at the module.
    NoResponse,
    /// The module answered with an error string.
    Module(String),
    /// The response type did not match the request.
    Unexpected,
}

impl core::fmt::Display for MgmtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MgmtError::NoResponse => write!(f, "no response from module"),
            MgmtError::Module(e) => write!(f, "module error: {e}"),
            MgmtError::Unexpected => write!(f, "unexpected response type"),
        }
    }
}

impl std::error::Error for MgmtError {}

/// Module identity snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// Module serial.
    pub module_id: String,
    /// Running application.
    pub app: String,
    /// Application version.
    pub app_version: u32,
    /// Boot count.
    pub boots: u32,
}

/// The management client.
#[derive(Debug, Clone)]
pub struct ManagementClient {
    key: AuthKey,
}

impl ManagementClient {
    /// A client authenticated with `key`.
    pub fn new(key: AuthKey) -> ManagementClient {
        ManagementClient { key }
    }

    fn call<P: ModulePort>(
        &self,
        port: &mut P,
        req: &ControlRequest,
    ) -> Result<ControlResponse, MgmtError> {
        let payload = ControlPlane::encode_request(&self.key, req);
        let resp = port.request(&payload).ok_or(MgmtError::NoResponse)?;
        ControlPlane::decode_response(&self.key, &resp).ok_or(MgmtError::NoResponse)
    }

    fn expect_ack(&self, resp: ControlResponse) -> Result<(), MgmtError> {
        match resp {
            ControlResponse::Ack => Ok(()),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Liveness probe.
    pub fn ping<P: ModulePort>(&self, port: &mut P, nonce: u64) -> Result<(), MgmtError> {
        match self.call(port, &ControlRequest::Ping { nonce })? {
            ControlResponse::Pong { nonce: n } if n == nonce => Ok(()),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Identity/status.
    pub fn info<P: ModulePort>(&self, port: &mut P) -> Result<ModuleInfo, MgmtError> {
        match self.call(port, &ControlRequest::GetInfo)? {
            ControlResponse::Info {
                module_id,
                app,
                app_version,
                boots,
                ..
            } => Ok(ModuleInfo {
                module_id,
                app,
                app_version,
                boots,
            }),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// DOM reading in SFF-8472 units (powers in dBm, bias in mA).
    pub fn read_dom<P: ModulePort>(&self, port: &mut P) -> Result<DomSnapshot, MgmtError> {
        match self.call(port, &ControlRequest::ReadDom)? {
            ControlResponse::Dom {
                temperature_c,
                tx_power_mw,
                tx_bias_ma,
                rx_power_mw,
                ..
            } => Ok(DomSnapshot::from_milliwatts(
                tx_power_mw,
                rx_power_mw,
                tx_bias_ma,
                temperature_c,
            )),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Pull the module's full telemetry snapshot: counters, drop
    /// breakdown, the lifetime latency histogram, DOM and the traced
    /// dataplane events since the previous pull.
    pub fn read_telemetry<P: ModulePort>(
        &self,
        port: &mut P,
    ) -> Result<TelemetrySnapshot, MgmtError> {
        match self.call(port, &ControlRequest::ReadTelemetry)? {
            ControlResponse::Telemetry(snap) => Ok(*snap),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Execute a table operation.
    pub fn table_op<P: ModulePort>(
        &self,
        port: &mut P,
        op: CtlTableOp,
    ) -> Result<CtlTableResult, MgmtError> {
        match self.call(port, &ControlRequest::Table(op))? {
            ControlResponse::Table(r) => Ok(r),
            ControlResponse::Error(e) => Err(MgmtError::Module(e)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Read a counter as `(packets, bytes)`.
    pub fn read_counter<P: ModulePort>(
        &self,
        port: &mut P,
        index: u32,
    ) -> Result<(u64, u64), MgmtError> {
        match self.table_op(port, CtlTableOp::ReadCounter { index })? {
            CtlTableResult::Counter { packets, bytes } => Ok((packets, bytes)),
            _ => Err(MgmtError::Unexpected),
        }
    }

    /// Drain NetFlow-like export records from a telemetry module
    /// (repeatedly reads table 2 until the module reports no more).
    pub fn collect_flows<P: ModulePort>(
        &self,
        port: &mut P,
    ) -> Result<Vec<flexsfp_apps::telemetry::ExportRecord>, MgmtError> {
        let mut all = Vec::new();
        loop {
            let value = match self.table_op(
                port,
                CtlTableOp::Read {
                    table: 2,
                    key: vec![],
                },
            )? {
                CtlTableResult::Value(v) => v,
                CtlTableResult::Unsupported => return Err(MgmtError::Unexpected),
                _ => return Err(MgmtError::Unexpected),
            };
            let batch =
                flexsfp_apps::telemetry::parse_export(&value).ok_or(MgmtError::Unexpected)?;
            if batch.is_empty() {
                return Ok(all);
            }
            all.extend(batch);
        }
    }

    /// Full OTA deployment: begin → chunks → commit → activate.
    pub fn deploy<P: ModulePort>(
        &self,
        port: &mut P,
        slot: usize,
        image: &[u8],
    ) -> Result<(), MgmtError> {
        let crc = crc32(image);
        self.expect_ack(self.call(
            port,
            &ControlRequest::BeginUpdate {
                slot,
                total_len: image.len(),
                crc32: crc,
            },
        )?)?;
        for (seq, chunk) in image.chunks(MAX_CHUNK).enumerate() {
            self.expect_ack(self.call(
                port,
                &ControlRequest::UpdateChunk {
                    seq: seq as u32,
                    data: chunk.to_vec(),
                },
            )?)?;
        }
        self.expect_ack(self.call(port, &ControlRequest::CommitUpdate)?)?;
        self.expect_ack(self.call(port, &ControlRequest::Activate { slot })?)
    }

    /// Roll back to a previously written slot (e.g. golden 0).
    pub fn activate_slot<P: ModulePort>(&self, port: &mut P, slot: usize) -> Result<(), MgmtError> {
        self.expect_ack(self.call(port, &ControlRequest::Activate { slot })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_core::Bitstream;
    use flexsfp_fabric::resources::ResourceManifest;

    fn module() -> FlexSfp {
        FlexSfp::passthrough()
    }

    fn client() -> ManagementClient {
        ManagementClient::new(AuthKey::DEFAULT)
    }

    #[test]
    fn ping_and_info() {
        let mut m = module();
        let c = client();
        c.ping(&mut m, 99).unwrap();
        let info = c.info(&mut m).unwrap();
        assert_eq!(info.app, "passthrough");
        assert_eq!(info.boots, 1);
        assert_eq!(info.module_id, "FSFP-PROTO-001");
    }

    #[test]
    fn wrong_key_gets_no_response() {
        let mut m = module();
        let c = ManagementClient::new(AuthKey::from_passphrase("wrong"));
        assert_eq!(c.ping(&mut m, 1), Err(MgmtError::NoResponse));
    }

    #[test]
    fn dom_readout() {
        let mut m = module();
        let dom = client().read_dom(&mut m).unwrap();
        assert!(dom.temp_c > 30.0 && dom.temp_c < 60.0);
        // A live laser emits well above the -40 dBm floor.
        assert!(dom.tx_power_dbm.is_finite() && dom.tx_power_dbm > -40.0);
        assert!(dom.bias_ma > 0.0);
    }

    #[test]
    fn telemetry_readout_via_client() {
        let mut m = module();
        let snap = client().read_telemetry(&mut m).unwrap();
        assert_eq!(snap.module_id, "FSFP-PROTO-001");
        assert_eq!(snap.app, "passthrough");
        assert_eq!(snap.seq, 1);
        assert!(snap.laser_healthy);
        // Telemetry is only served out-of-band; the wrong key gets nothing.
        let bad = ManagementClient::new(AuthKey::from_passphrase("wrong"));
        assert_eq!(bad.read_telemetry(&mut m), Err(MgmtError::NoResponse));
    }

    #[test]
    fn deploy_via_client_reboots_module() {
        let mut m = module();
        let c = client();
        let bs = Bitstream::new("passthrough", 5, ResourceManifest::ZERO, 156_250_000);
        c.deploy(&mut m, 1, &bs.to_bytes()).unwrap();
        assert_eq!(m.app_version(), 5);
        assert_eq!(m.boots(), 2);
        let info = c.info(&mut m).unwrap();
        assert_eq!(info.app_version, 5);
    }

    #[test]
    fn deploy_to_golden_slot_fails_cleanly() {
        let mut m = module();
        let c = client();
        let bs = Bitstream::new("passthrough", 5, ResourceManifest::ZERO, 1);
        match c.deploy(&mut m, 0, &bs.to_bytes()) {
            Err(MgmtError::Module(e)) => assert!(e.contains("BadSlot"), "{e}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.boots(), 1);
    }

    #[test]
    fn rollback_to_golden() {
        let mut m = module();
        let c = client();
        // Write a golden image at the factory.
        let golden = Bitstream::new("passthrough", 1, ResourceManifest::ZERO, 156_250_000);
        m.flash.write_slot(0, &golden.to_bytes()).unwrap();
        // Deploy v9, then roll back.
        let v9 = Bitstream::new("passthrough", 9, ResourceManifest::ZERO, 156_250_000);
        c.deploy(&mut m, 2, &v9.to_bytes()).unwrap();
        assert_eq!(m.app_version(), 9);
        c.activate_slot(&mut m, 0).unwrap();
        assert_eq!(m.app_version(), 1);
        assert_eq!(m.boots(), 3);
    }

    #[test]
    fn flow_collection_from_telemetry_module() {
        use flexsfp_apps::TelemetryProbe;
        use flexsfp_core::module::SimPacket;
        use flexsfp_ppe::Direction;
        let mut m = FlexSfp::new(
            ModuleConfig::default(),
            Box::new(TelemetryProbe::new(1024, 100_000, 1_000_000)),
        );
        // Push 80 distinct flows through the module.
        let packets: Vec<SimPacket> = (0..80u16)
            .map(|i| SimPacket {
                arrival_ns: u64::from(i) * 1_000,
                direction: Direction::EdgeToOptical,
                frame: flexsfp_wire::builder::PacketBuilder::eth_ipv4_udp(
                    flexsfp_wire::MacAddr([2; 6]),
                    flexsfp_wire::MacAddr([4; 6]),
                    0xc0a80001,
                    0x08080808,
                    10_000 + i,
                    443,
                    b"data",
                ),
            })
            .collect();
        m.run(packets);
        // The host collector drains them in 32-record slices.
        let flows = client().collect_flows(&mut m).unwrap();
        assert_eq!(flows.len(), 80);
        assert!(flows.iter().all(|f| f.record.packets == 1));
        // Second collection finds nothing (read-and-evict).
        assert!(client().collect_flows(&mut m).unwrap().is_empty());
        // A non-telemetry module reports Unexpected.
        let mut plain = FlexSfp::passthrough();
        assert!(client().collect_flows(&mut plain).is_err());
    }

    #[test]
    fn table_ops_against_nat() {
        use flexsfp_apps::StaticNat;
        let mut m = FlexSfp::new(ModuleConfig::default(), Box::new(StaticNat::new()));
        let c = client();
        let r = c
            .table_op(
                &mut m,
                CtlTableOp::Insert {
                    table: 0,
                    key: 0xc0a80001u32.to_be_bytes().to_vec(),
                    value: 0x65000001u32.to_be_bytes().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(r, CtlTableResult::Ok);
        let read = c
            .table_op(
                &mut m,
                CtlTableOp::Read {
                    table: 0,
                    key: 0xc0a80001u32.to_be_bytes().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(
            read,
            CtlTableResult::Value(0x65000001u32.to_be_bytes().to_vec())
        );
        let (packets, _bytes) = c.read_counter(&mut m, 0).unwrap();
        assert_eq!(packets, 0);
    }
}
