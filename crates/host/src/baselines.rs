//! Baseline packet-processing placements for the §6 comparison.
//!
//! The paper's open question: "Are programmable SFPs sufficient for
//! common tasks, and how do they compare to SmartNICs in latency,
//! throughput, and flexibility?" These models provide the two
//! comparison points the paper names — the SmartNIC fast path and the
//! host-CPU slow path — with latency characteristics drawn from the
//! systems literature the paper cites (SmartNIC PCIe round trips in the
//! low microseconds; kernel software paths in the tens of microseconds
//! with heavy scheduling tails).

use flexsfp_obs::LatencyHistogram;
use flexsfp_traffic::rng::Xoshiro256;

/// One processed packet's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathOutput {
    /// Departure time, ns.
    pub departure_ns: u64,
    /// Total added latency, ns.
    pub latency_ns: f64,
}

/// Latency aggregate with percentile support, backed by the shared
/// log-linear histogram (bounded memory even over million-packet runs;
/// quantiles within 1 %, mean/max exact).
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    hist: LatencyHistogram,
}

impl PathStats {
    /// Record one latency.
    pub fn record(&mut self, l: f64) {
        self.hist.record_f64(l);
    }

    /// Sample count.
    pub fn count(&self) -> usize {
        self.hist.count() as usize
    }

    /// Mean latency, ns (exact).
    pub fn mean_ns(&self) -> f64 {
        self.hist.mean()
    }

    /// The `q`-quantile (0..=1), ns (≤1 % relative error).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        self.hist.value_at_quantile(q) as f64
    }

    /// Maximum latency, ns (exact).
    pub fn max_ns(&self) -> f64 {
        self.hist.max() as f64
    }

    /// The underlying histogram, for merging or full-distribution dumps.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }
}

/// A generic processing placement: fixed path latency + a single server
/// with a per-packet service time + seeded jitter.
#[derive(Debug)]
pub struct ProcessingPath {
    /// Name for reports.
    pub name: &'static str,
    /// Fixed one-way path latency (bus/driver/PCIe...), ns.
    pub fixed_ns: f64,
    /// Per-packet service time, ns (1/throughput).
    pub service_ns: f64,
    /// Mean of the exponential jitter term, ns (0 = deterministic).
    pub jitter_mean_ns: f64,
    rng: Xoshiro256,
    server_free_ns: f64,
}

impl ProcessingPath {
    /// The FlexSFP in-cable path: SerDes in/out + a compact pipeline —
    /// parameters matching the module simulator's NAT configuration
    /// (8 beats @ 6.4 ns service, ~250 ns fixed transit, no jitter: the
    /// pipeline is clocked logic).
    pub fn flexsfp(seed: u64) -> ProcessingPath {
        ProcessingPath {
            name: "FlexSFP (in-cable)",
            fixed_ns: 264.0,
            service_ns: 51.2,
            jitter_mean_ns: 0.0,
            rng: Xoshiro256::seed_from_u64(seed),
            server_free_ns: 0.0,
        }
    }

    /// A SmartNIC fast path: wire → NIC pipeline → wire, including the
    /// on-board traversal; low-microsecond fixed cost, tight jitter.
    pub fn smartnic(seed: u64) -> ProcessingPath {
        ProcessingPath {
            name: "SmartNIC",
            fixed_ns: 4_500.0,
            service_ns: 45.0, // ~22 Mpps pipeline
            jitter_mean_ns: 300.0,
            rng: Xoshiro256::seed_from_u64(seed),
            server_free_ns: 0.0,
        }
    }

    /// The host-CPU slow path: NIC → PCIe → interrupt/NAPI → kernel
    /// path → PCIe → NIC; tens of microseconds with a heavy scheduler
    /// tail, and a ~1.3 Mpps single-core service limit.
    pub fn host_cpu(seed: u64) -> ProcessingPath {
        ProcessingPath {
            name: "Host CPU",
            fixed_ns: 25_000.0,
            service_ns: 770.0, // ~1.3 Mpps
            jitter_mean_ns: 15_000.0,
            rng: Xoshiro256::seed_from_u64(seed),
            server_free_ns: 0.0,
        }
    }

    /// Process one packet arriving at `arrival_ns`.
    pub fn process(&mut self, arrival_ns: u64) -> PathOutput {
        let start = self.server_free_ns.max(arrival_ns as f64);
        let finish = start + self.service_ns;
        self.server_free_ns = finish;
        let jitter = if self.jitter_mean_ns > 0.0 {
            self.rng.exp(self.jitter_mean_ns)
        } else {
            0.0
        };
        let departure = finish + self.fixed_ns + jitter;
        PathOutput {
            departure_ns: departure as u64,
            latency_ns: departure - arrival_ns as f64,
        }
    }

    /// Run a whole arrival sequence, returning the stats.
    pub fn run(&mut self, arrivals_ns: &[u64]) -> PathStats {
        let mut stats = PathStats::default();
        for &a in arrivals_ns {
            stats.record(self.process(a).latency_ns);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(n: usize, gap_ns: u64) -> Vec<u64> {
        (0..n as u64).map(|i| i * gap_ns).collect()
    }

    #[test]
    fn ordering_flexsfp_smartnic_host() {
        // At moderate load, the latency ordering the paper expects.
        let a = arrivals(5_000, 2_000); // 0.5 Mpps
        let flex = ProcessingPath::flexsfp(1).run(&a);
        let nic = ProcessingPath::smartnic(1).run(&a);
        let host = ProcessingPath::host_cpu(1).run(&a);
        assert!(flex.mean_ns() < 500.0, "{}", flex.mean_ns());
        assert!(nic.mean_ns() > 10.0 * flex.mean_ns());
        assert!(host.mean_ns() > 5.0 * nic.mean_ns());
    }

    #[test]
    fn host_cpu_has_heavy_tail() {
        let a = arrivals(10_000, 2_000);
        let host = ProcessingPath::host_cpu(7).run(&a);
        // p99 well above the mean: scheduling jitter dominates.
        assert!(host.quantile_ns(0.99) > 2.0 * host.mean_ns());
        // FlexSFP's tail is its mean: deterministic pipeline.
        let flex = ProcessingPath::flexsfp(7).run(&a);
        assert!((flex.quantile_ns(0.99) - flex.mean_ns()).abs() < 60.0);
    }

    #[test]
    fn host_cpu_saturates_before_line_rate() {
        // 5 Mpps offered: the 1.3 Mpps host path builds an unbounded
        // queue (latency grows with index); the FlexSFP doesn't blink.
        let a = arrivals(20_000, 200);
        let mut host = ProcessingPath::host_cpu(3);
        let first = host.process(a[0]).latency_ns;
        let mut last = 0.0;
        for &t in &a[1..] {
            last = host.process(t).latency_ns;
        }
        assert!(last > 20.0 * first, "no queue growth: {last} vs {first}");
        let flex = ProcessingPath::flexsfp(3).run(&a);
        assert!(flex.max_ns() < 1_000.0);
    }

    #[test]
    fn determinism() {
        let a = arrivals(1_000, 1_000);
        let s1 = ProcessingPath::host_cpu(42).run(&a);
        let s2 = ProcessingPath::host_cpu(42).run(&a);
        assert_eq!(s1.mean_ns(), s2.mean_ns());
        assert_eq!(s1.max_ns(), s2.max_ns());
    }

    #[test]
    fn quantile_edges() {
        let mut s = PathStats::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.quantile_ns(0.0), 1.0);
        assert_eq!(s.quantile_ns(1.0), 4.0);
        assert_eq!(s.count(), 4);
        assert_eq!(PathStats::default().quantile_ns(0.5), 0.0);
    }
}
