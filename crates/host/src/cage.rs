//! Shared SFP-cage plumbing for the bridging hosts.
//!
//! Both [`LegacySwitch`](crate::LegacySwitch) and
//! [`CrossbarSwitch`](crate::CrossbarSwitch) put an optional FlexSFP
//! bump-in-the-wire in every port. A frame crossing a cage has more
//! possible fates than "came out the far side or didn't": the module
//! may drop it (its own [`DropStats`](flexsfp_core::module::DropStats) says so),
//! reflect it back out the interface it came from, divert it to the
//! control plane, duplicate it (a mirror app), or absorb it into a
//! control-plane exchange. [`ModulePass`] captures every one of those
//! outcomes per pass so the switches can conserve frames exactly
//! instead of inferring "dropped" from a missing output.

use flexsfp_core::module::{FlexSfp, Interface, SimPacket};
use flexsfp_ppe::Direction;

/// What a port forwards through.
pub(crate) enum Cage {
    /// A plain fixed-function SFP: transparent.
    StandardSfp,
    /// A FlexSFP module.
    FlexSfp(Box<FlexSfp>),
}

impl Cage {
    /// The module in the cage, if any.
    pub(crate) fn module_mut(&mut self) -> Option<&mut FlexSfp> {
        match self {
            Cage::FlexSfp(m) => Some(m),
            Cage::StandardSfp => None,
        }
    }
}

/// The fully-accounted outcome of one frame offered to one cage.
///
/// Conservation per pass: the one offered frame plus any copies the
/// module created equals `matched.len() + diverted + dropped +
/// to_control + absorbed() - gains()` — rearranged, `gains()` counts
/// module-created copies (sources) and `absorbed()` counts frames the
/// module consumed without any other accounted fate (sinks).
pub(crate) struct ModulePass {
    /// Outputs that emerged on the expected egress interface, in
    /// departure order — all of them, not just the first.
    pub matched: Vec<Vec<u8>>,
    /// Outputs that emerged on the *other* interface (reflected back
    /// toward where the frame came from).
    pub diverted: u64,
    /// Frames the module itself dropped, from its own per-run
    /// [`DropStats`](flexsfp_core::module::DropStats) — app verdicts, FIFO
    /// overflow and parse errors alike, not inferred from absence.
    pub dropped: u64,
    /// Frames diverted to the module's control plane.
    pub to_control: u64,
}

impl ModulePass {
    /// Accounted fates of this pass (outputs + drops + control).
    fn outcomes(&self) -> u64 {
        self.matched.len() as u64 + self.diverted + self.dropped + self.to_control
    }

    /// Copies the module created beyond the one frame offered — a
    /// mirror app's extra output, or a control-plane reply emitted next
    /// to the diverted request.
    pub fn gains(&self) -> u64 {
        self.outcomes().saturating_sub(1)
    }

    /// Frames the module consumed without any accounted outcome (e.g.
    /// a control exchange that produced no reply).
    pub fn absorbed(&self) -> u64 {
        1u64.saturating_sub(self.outcomes())
    }
}

/// Pass one frame through `cage` in `direction` at `t_ns` and account
/// every outcome.
pub(crate) fn through_cage(
    cage: &mut Cage,
    frame: Vec<u8>,
    direction: Direction,
    t_ns: u64,
) -> ModulePass {
    match cage {
        Cage::StandardSfp => ModulePass {
            matched: vec![frame],
            diverted: 0,
            dropped: 0,
            to_control: 0,
        },
        Cage::FlexSfp(m) => {
            let report = m.run(vec![SimPacket {
                arrival_ns: t_ns,
                direction,
                frame,
            }]);
            let expect = Interface::egress_for(direction);
            let mut matched = Vec::new();
            let mut diverted = 0;
            for o in report.outputs {
                if o.egress == expect {
                    matched.push(o.frame);
                } else {
                    diverted += 1;
                }
            }
            ModulePass {
                matched,
                diverted,
                dropped: report.drops.total(),
                to_control: report.to_control,
            }
        }
    }
}
