//! # flexsfp-host
//!
//! Host-side tooling around FlexSFP modules:
//!
//! * [`mgmt`] — a typed management client speaking the authenticated
//!   control protocol (table ops, DOM reads, OTA deployment);
//! * [`link`] — the fiber link connecting two modules' optical sides;
//! * [`chaos`] — deterministic fault injection for the control channel
//!   and the fiber span: seeded drop/duplicate/corrupt/flap/jitter
//!   plans used by the resilience test suite;
//! * [`switch`] — the §2.1 retrofit scenario: a fixed-function legacy
//!   L2 switch whose SFP cages accept FlexSFPs, turning every port into
//!   a programmable enforcement point;
//! * [`crossbar`] — the rack-scale crosspoint-queued crossbar ToR: the
//!   same cage pipeline on a FlexCross-style fabric with per-crosspoint
//!   FIFOs, round-robin output arbitration, line-rate serialization and
//!   an exact per-copy conservation identity;
//! * [`nic`] — the Thunderbolt 10 G NIC of the §5 power testbed;
//! * [`testbed`] — the power-measurement experiment itself;
//! * [`fleet`] — orchestration across many modules: parallel rolling
//!   OTA deployment and fleet-wide health/diagnosis sweeps;
//! * [`collector`] — the fleet telemetry collector: ingests per-module
//!   [`flexsfp_obs::TelemetrySnapshot`]s, merges latency histograms
//!   fleet-wide and renders Prometheus text or JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod cage;
pub mod chaos;
pub mod collector;
pub mod crossbar;
pub mod fleet;
pub mod link;
pub mod mgmt;
pub mod nic;
pub mod switch;
pub mod testbed;

pub use baselines::ProcessingPath;
pub use chaos::{FaultPlan, ImpairStats, ImpairedPort, LinkChaosStats, LossyLink};
pub use collector::FleetCollector;
pub use crossbar::{CrossbarStats, CrossbarSwitch, TimedDelivery};
pub use fleet::FleetManager;
pub use link::FiberLink;
pub use mgmt::ManagementClient;
pub use nic::HostNic;
pub use switch::{Delivery, LegacySwitch, SwitchStats};
pub use testbed::PowerTestbed;
