//! The rack-scale crosspoint-queued crossbar switch (ROADMAP item 2).
//!
//! [`LegacySwitch`](crate::LegacySwitch) models the §2.1 retrofit: an
//! instant, zero-queue ASIC with a FlexSFP cage per port. A rack-scale
//! ToR cannot be instant — 47 access ports converging on one uplink
//! *queue*, and where there are queues there is loss and latency. This
//! module scales the same cage pipeline up onto a FlexCross-style
//! crosspoint-queued crossbar (see PAPERS.md): every (input, output)
//! pair owns a bounded FIFO from [`flexsfp_fabric::xbar`], each output
//! port arbitrates round-robin over its column (so one congested
//! output never head-of-line-blocks traffic toward another), and each
//! granted frame serializes onto the wire at 10G line rate.
//!
//! Accounting is exact, per copy: the [`SwitchStats`] conservation
//! identity of the legacy bridge extends with two crossbar terms —
//! frames dropped on a full crosspoint and frames still queued — and
//! [`CrossbarStats::conserved`] checks it. Queue-induced latency
//! (enqueue → grant) feeds a [`LatencyHistogram`] so the rack workload
//! can gate on p99.9; per-crosspoint depth/drop/arbitration counters
//! export as [`XbarTelemetry`] for the `flexsfp_xbar_*` Prometheus
//! family.

use crate::cage::{through_cage, Cage};
use crate::switch::SwitchStats;
use flexsfp_core::module::FlexSfp;
use flexsfp_fabric::xbar::CrosspointMatrix;
use flexsfp_obs::{CrosspointCounters, LatencyHistogram, TelemetrySnapshot, XbarTelemetry};
use flexsfp_ppe::Direction;
use flexsfp_wire::{EthernetFrame, MacAddr};
use std::collections::HashMap;

/// Port line rate, bits per nanosecond (10 Gb/s).
pub const LINE_RATE_BITS_PER_NS: u64 = 10;

/// Per-frame wire overhead: preamble + SFD + minimum inter-frame gap.
pub const FRAME_OVERHEAD_BYTES: u64 = 20;

/// Wire time of one frame at port line rate, ns.
pub fn serialize_ns(frame_len: usize) -> u64 {
    ((frame_len as u64 + FRAME_OVERHEAD_BYTES) * 8).div_ceil(LINE_RATE_BITS_PER_NS)
}

/// A frame parked in a crosspoint queue.
#[derive(Debug, Clone)]
struct QueuedFrame {
    frame: Vec<u8>,
    enqueue_ns: u64,
}

/// One frame leaving a port, stamped with its wire-departure time (the
/// instant serialization completes).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDelivery {
    /// Egress port.
    pub port: usize,
    /// The frame as it leaves the port (after any module processing).
    pub frame: Vec<u8>,
    /// Completion of serialization onto the egress wire, ns.
    pub departure_ns: u64,
}

/// Crossbar statistics: the bridge counters plus the two queue terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossbarStats {
    /// The shared bridge pipeline counters.
    pub sw: SwitchStats,
    /// Frames rejected on a full crosspoint queue.
    pub crosspoint_dropped: u64,
    /// Frames currently parked in crosspoint queues (drain to zero).
    pub queued: u64,
}

impl CrossbarStats {
    /// The conservation identity with the crossbar terms: every source
    /// frame is delivered, dropped, diverted, filtered, absorbed,
    /// crosspoint-dropped — or still sitting in a queue.
    pub fn conserved(&self) -> bool {
        self.sw.sources() == self.sw.sinks() + self.crosspoint_dropped + self.queued
    }
}

/// An N-port crosspoint-queued crossbar whose SFP cages accept FlexSFP
/// modules, exactly as the legacy switch's do.
pub struct CrossbarSwitch {
    cages: Vec<Cage>,
    mac_table: HashMap<MacAddr, usize>,
    matrix: CrosspointMatrix<QueuedFrame>,
    /// Per-output: the time the port finishes its current transmission.
    out_free_ns: Vec<u64>,
    stats: SwitchStats,
    crosspoint_dropped: u64,
    queue_latency: LatencyHistogram,
    time_ns: u64,
}

impl CrossbarSwitch {
    /// A crossbar with `ports` ports and `depth` slots per crosspoint,
    /// all cages holding standard SFPs.
    pub fn new(ports: usize, depth: usize) -> CrossbarSwitch {
        CrossbarSwitch {
            cages: (0..ports).map(|_| Cage::StandardSfp).collect(),
            mac_table: HashMap::new(),
            matrix: CrosspointMatrix::new(ports, depth),
            out_free_ns: vec![0; ports],
            stats: SwitchStats::default(),
            crosspoint_dropped: 0,
            queue_latency: LatencyHistogram::new(),
            time_ns: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.cages.len()
    }

    /// Swap the SFP in `port` for a FlexSFP — the drop-in upgrade.
    pub fn insert_flexsfp(&mut self, port: usize, module: FlexSfp) {
        self.cages[port] = Cage::FlexSfp(Box::new(module));
    }

    /// Revert `port` to a standard SFP.
    pub fn remove_flexsfp(&mut self, port: usize) -> Option<FlexSfp> {
        match std::mem::replace(&mut self.cages[port], Cage::StandardSfp) {
            Cage::FlexSfp(m) => Some(*m),
            Cage::StandardSfp => None,
        }
    }

    /// Access the module in `port`, if any (for management via the OOB
    /// path).
    pub fn module_mut(&mut self, port: usize) -> Option<&mut FlexSfp> {
        self.cages[port].module_mut()
    }

    /// Learned MAC table size.
    pub fn learned(&self) -> usize {
        self.mac_table.len()
    }

    /// Statistics snapshot, including the current queue occupancy.
    pub fn stats(&self) -> CrossbarStats {
        CrossbarStats {
            sw: self.stats,
            crosspoint_dropped: self.crosspoint_dropped,
            queued: self.matrix.occupancy() as u64,
        }
    }

    /// Queue-induced latency distribution (enqueue → arbitration
    /// grant), the figure the rack SLO gates on.
    pub fn queue_latency(&self) -> &LatencyHistogram {
        &self.queue_latency
    }

    /// Offer a frame arriving from the wire on `port` at `t_ns`, then
    /// service every output up to that instant. Injection times must be
    /// globally non-decreasing — the service model (and each cage's
    /// stream clock) advances with them.
    pub fn inject(&mut self, port: usize, frame: Vec<u8>, t_ns: u64) -> Vec<TimedDelivery> {
        assert!(port < self.cages.len(), "no such port");
        self.time_ns = self.time_ns.max(t_ns);
        self.stats.received += 1;
        // Ingress: wire → module (optical side faces the wire) → fabric.
        let pass = through_cage(&mut self.cages[port], frame, Direction::OpticalToEdge, t_ns);
        self.stats.absorb_pass(&pass);
        for frame in pass.matched {
            self.enqueue(port, frame, t_ns);
        }
        self.service(self.time_ns)
    }

    /// The bridge half: validate, learn, pick egress ports, park each
    /// copy in its crosspoint queue.
    fn enqueue(&mut self, port: usize, frame: Vec<u8>, t_ns: u64) {
        let Ok(eth) = EthernetFrame::new_checked(&frame[..]) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let src = eth.src();
        if src.is_unicast() {
            self.mac_table.insert(src, port);
        }
        let dst = eth.dst();
        let egress_ports: Vec<usize> = match self.mac_table.get(&dst) {
            Some(&p) if p != port => vec![p],
            Some(_) => Vec::new(), // destination is on the ingress port
            None => {
                self.stats.flooded += 1;
                (0..self.cages.len()).filter(|&p| p != port).collect()
            }
        };
        if egress_ports.is_empty() {
            self.stats.filtered_hairpin += 1;
            return;
        }
        self.stats.flood_copies += egress_ports.len() as u64 - 1;
        let last = egress_ports.len();
        let mut frame = frame;
        for (i, p) in egress_ports.into_iter().enumerate() {
            let copy = if i + 1 == last {
                std::mem::take(&mut frame)
            } else {
                frame.clone()
            };
            let queued = QueuedFrame {
                frame: copy,
                enqueue_ns: t_ns,
            };
            if self.matrix.offer(port, p, queued).is_err() {
                self.crosspoint_dropped += 1;
            }
        }
    }

    /// Service every output port up to `now`: while a port is idle and
    /// its column holds frames, grant round-robin, serialize at line
    /// rate, and run the granted frame through the egress cage.
    fn service(&mut self, now: u64) -> Vec<TimedDelivery> {
        let mut out = Vec::new();
        for p in 0..self.cages.len() {
            while self.out_free_ns[p] <= now {
                let Some((_input, q)) = self.matrix.arbitrate(p) else {
                    break;
                };
                self.transmit(p, q, &mut out);
            }
        }
        out
    }

    /// Drain every remaining queued frame regardless of the clock (end
    /// of run). Afterwards `stats().queued` is zero and the
    /// conservation identity closes without an in-flight term.
    pub fn drain(&mut self) -> Vec<TimedDelivery> {
        let mut out = Vec::new();
        for p in 0..self.cages.len() {
            while let Some((_input, q)) = self.matrix.arbitrate(p) {
                self.transmit(p, q, &mut out);
            }
        }
        out.sort_by_key(|d| d.departure_ns);
        out
    }

    /// Grant one frame onto output `p`: record queue latency, advance
    /// the port clock and run the egress cage at the grant instant.
    fn transmit(&mut self, p: usize, q: QueuedFrame, out: &mut Vec<TimedDelivery>) {
        let grant_ns = self.out_free_ns[p].max(q.enqueue_ns);
        self.queue_latency.record(grant_ns - q.enqueue_ns);
        let done_ns = grant_ns + serialize_ns(q.frame.len());
        self.out_free_ns[p] = done_ns;
        // Egress: fabric → module (edge side faces the fabric) → wire.
        let pass = through_cage(
            &mut self.cages[p],
            q.frame,
            Direction::EdgeToOptical,
            grant_ns,
        );
        self.stats.absorb_pass(&pass);
        for f in pass.matched {
            self.stats.delivered += 1;
            out.push(TimedDelivery {
                port: p,
                frame: f,
                departure_ns: done_ns,
            });
        }
    }

    /// Switch-level crossbar telemetry: geometry, aggregates,
    /// per-output grants and the sparse per-crosspoint counters.
    pub fn telemetry(&self) -> XbarTelemetry {
        let ports = self.cages.len();
        let totals = self.matrix.totals();
        let mut crosspoints = Vec::new();
        for input in 0..ports {
            for output in 0..ports {
                let s = self.matrix.crosspoint_stats(input, output);
                if s.pushed == 0 && s.overflows == 0 {
                    continue;
                }
                crosspoints.push(CrosspointCounters {
                    input: input as u64,
                    output: output as u64,
                    enqueued: s.pushed,
                    granted: s.popped,
                    dropped: s.overflows,
                    high_water: s.high_water as u64,
                });
            }
        }
        XbarTelemetry {
            ports: ports as u64,
            depth: self.matrix.depth() as u64,
            enqueued: totals.enqueued,
            granted: totals.granted,
            dropped: totals.dropped,
            high_water: totals.high_water as u64,
            output_grants: (0..ports).map(|p| self.matrix.grants(p)).collect(),
            crosspoints,
        }
    }

    /// Telemetry snapshots of every FlexSFP in a cage, for collector
    /// ingestion next to the switch-level [`XbarTelemetry`].
    pub fn module_snapshots(&mut self) -> Vec<TelemetrySnapshot> {
        self.cages
            .iter_mut()
            .filter_map(|c| c.module_mut().map(|m| m.telemetry_snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_apps::{AclAction, AclFirewall, AclRule};
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_ppe::Direction as Dir;
    use flexsfp_wire::builder::PacketBuilder;

    const HOST_A: MacAddr = MacAddr([0xa; 6]);
    const HOST_B: MacAddr = MacAddr([0xc; 6]);
    const HOST_C: MacAddr = MacAddr([0xe; 6]);

    fn frame(dst: MacAddr, src: MacAddr, dport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(dst, src, 0xc0a80001, 0xc0a80002, 999, dport, b"data")
    }

    fn mac(i: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, i])
    }

    #[test]
    fn learning_and_unicast_forwarding() {
        let mut sw = CrossbarSwitch::new(4, 32);
        let mut out = sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        out.extend(sw.drain());
        assert_eq!(out.len(), 3); // flooded to 1,2,3
        assert_eq!(sw.learned(), 1);
        let mut out = sw.inject(2, frame(HOST_A, HOST_B, 80), 10_000);
        out.extend(sw.drain());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 0);
        let mut out = sw.inject(0, frame(HOST_B, HOST_A, 80), 20_000);
        out.extend(sw.drain());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 2);
        let s = sw.stats();
        assert_eq!(s.sw.flooded, 1);
        assert_eq!(s.sw.flood_copies, 2);
        assert_eq!(s.sw.delivered, 5);
        assert_eq!(s.queued, 0);
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn serialization_spaces_departures_at_line_rate() {
        let mut sw = CrossbarSwitch::new(2, 64);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1_000_000);
        // Two frames for port 1, back to back at the same instant: the
        // second must wait out the first's wire time.
        let f = frame(HOST_B, HOST_A, 80);
        let wire_ns = serialize_ns(f.len());
        let mut out = sw.inject(0, f.clone(), 2_000_000);
        out.extend(sw.inject(0, f, 2_000_000));
        out.extend(sw.drain());
        let times: Vec<u64> = out.iter().map(|d| d.departure_ns).collect();
        assert_eq!(times.len(), 2);
        assert_eq!(times[1] - times[0], wire_ns);
        // The first left one wire-time after its grant.
        assert_eq!(times[0], 2_000_000 + wire_ns);
    }

    #[test]
    fn congested_output_does_not_block_another() {
        let mut sw = CrossbarSwitch::new(4, 256);
        // Learn B@1 and C@2.
        sw.inject(1, frame(HOST_A, HOST_B, 80), 0);
        sw.inject(2, frame(HOST_A, HOST_C, 80), 1);
        sw.drain();
        let t0 = 1_000_000;
        // Input 0 bursts 64 frames toward B (output 1) at one instant —
        // a deep queue — then one frame toward C (output 2).
        for _ in 0..64 {
            sw.inject(0, frame(HOST_B, HOST_A, 80), t0);
        }
        let out = sw.inject(0, frame(HOST_C, HOST_A, 80), t0);
        // The frame to C departs after exactly one wire time: the
        // congested column toward B never touched it.
        let to_c: Vec<&TimedDelivery> = out.iter().filter(|d| d.port == 2).collect();
        assert_eq!(to_c.len(), 1);
        let f_len = frame(HOST_C, HOST_A, 80).len();
        assert_eq!(to_c[0].departure_ns, t0 + serialize_ns(f_len));
        sw.drain();
        let s = sw.stats();
        assert!(s.conserved(), "{s:?}");
    }

    #[test]
    fn crosspoint_overflow_is_counted_and_conserved() {
        let mut sw = CrossbarSwitch::new(2, 4);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 0);
        sw.drain();
        // A burst at one instant toward port 1: the port grants one
        // frame immediately, four park in the crosspoint, the rest
        // overflow.
        let t0 = 1_000_000;
        for _ in 0..9 {
            sw.inject(0, frame(HOST_B, HOST_A, 80), t0);
        }
        sw.drain();
        let s = sw.stats();
        assert_eq!(s.crosspoint_dropped, 4);
        assert_eq!(s.sw.delivered, 1 + 5);
        assert_eq!(s.queued, 0);
        assert!(s.conserved(), "{s:?}");
        let t = sw.telemetry();
        assert_eq!(t.dropped, 4);
        let xp: Vec<_> = t
            .crosspoints
            .iter()
            .filter(|c| c.input == 0 && c.output == 1)
            .collect();
        assert_eq!(xp.len(), 1);
        assert_eq!(xp[0].dropped, 4);
        assert_eq!(xp[0].high_water, 4);
        // Queue latency was recorded for the parked frames.
        assert!(sw.queue_latency().count() >= 5);
        assert!(sw.queue_latency().p999() > 0);
    }

    #[test]
    fn cage_module_drops_fold_into_crossbar_stats() {
        let mut sw = CrossbarSwitch::new(2, 32);
        sw.inject(0, frame(HOST_B, HOST_A, 80), 0);
        sw.inject(1, frame(HOST_A, HOST_B, 80), 1_000);
        sw.drain();
        let mut fw = AclFirewall::new(16);
        fw.screen_direction = Some(Dir::OpticalToEdge);
        fw.add_rule(AclRule {
            src: None,
            dst: None,
            protocol: Some(17),
            src_port: None,
            dst_port: Some(53),
            priority: 1,
            action: AclAction::Deny,
        });
        let cfg = ModuleConfig {
            shell: flexsfp_core::ShellKind::OneWayFilter {
                ppe_direction: Dir::OpticalToEdge,
            },
            ..ModuleConfig::default()
        };
        sw.insert_flexsfp(0, FlexSfp::new(cfg, Box::new(fw)));
        let out = sw.inject(0, frame(HOST_B, HOST_A, 53), 2_000_000);
        assert!(out.is_empty());
        sw.drain();
        let s = sw.stats();
        assert_eq!(s.sw.dropped_by_modules, 1);
        assert!(s.conserved(), "{s:?}");
        // The cage module reports through the ordinary snapshot sweep.
        let snaps = sw.module_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].drops.app, 1);
    }

    #[test]
    fn telemetry_is_sparse_over_touched_crosspoints() {
        let mut sw = CrossbarSwitch::new(8, 16);
        for i in 0..4u8 {
            sw.inject(
                usize::from(i),
                frame(mac(100), mac(i), 80),
                u64::from(i) * 10_000,
            );
        }
        sw.drain();
        let t = sw.telemetry();
        assert_eq!(t.ports, 8);
        assert_eq!(t.depth, 16);
        // 4 floods × 7 egress ports = 28 touched crosspoints, far
        // fewer than the 64 in the matrix.
        assert_eq!(t.crosspoints.len(), 28);
        assert_eq!(t.enqueued, 28);
        assert_eq!(t.granted, 28);
        assert_eq!(t.queued(), 0);
        assert_eq!(t.output_grants.len(), 8);
        assert_eq!(t.output_grants.iter().sum::<u64>(), 28);
    }
}
