//! The §5 power-measurement experiment.
//!
//! Reproduces the paper's three-point measurement: baseline NIC
//! (3.800 W), NIC + standard SFP under line-rate stress (4.693 W), and
//! NIC + FlexSFP (5.320 W), then derives the module-level numbers the
//! paper reports: a standard SFP draws ~0.9 W, the FlexSFP ~1.5 W —
//! an FPGA premium of ~0.7 W.

use crate::nic::HostNic;
use flexsfp_core::module::{FlexSfp, ModuleConfig};

/// Results of the three-point measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerMeasurement {
    /// NIC with an empty cage, W.
    pub nic_only_w: f64,
    /// NIC + standard SFP under stress, W.
    pub nic_with_sfp_w: f64,
    /// NIC + FlexSFP under stress, W.
    pub nic_with_flexsfp_w: f64,
}

impl PowerMeasurement {
    /// Standard SFP module power (difference method).
    pub fn sfp_w(&self) -> f64 {
        self.nic_with_sfp_w - self.nic_only_w
    }

    /// FlexSFP module power.
    pub fn flexsfp_w(&self) -> f64 {
        self.nic_with_flexsfp_w - self.nic_only_w
    }

    /// The FPGA premium over a standard SFP.
    pub fn fpga_premium_w(&self) -> f64 {
        self.flexsfp_w() - self.sfp_w()
    }
}

/// The testbed.
pub struct PowerTestbed {
    nic: HostNic,
    /// Module-under-test factory (the paper used the NAT design).
    pub module_factory: fn() -> FlexSfp,
}

impl Default for PowerTestbed {
    fn default() -> Self {
        Self::new()
    }
}

fn nat_module() -> FlexSfp {
    FlexSfp::new(
        ModuleConfig::default(),
        Box::new(flexsfp_apps::StaticNat::new()),
    )
}

impl PowerTestbed {
    /// A testbed measuring the NAT-design FlexSFP.
    pub fn new() -> PowerTestbed {
        PowerTestbed {
            nic: HostNic::new(),
            module_factory: nat_module,
        }
    }

    /// Run the three-point measurement at `line_utilization`
    /// (1.0 = the paper's line-rate stress test).
    pub fn measure(&mut self, line_utilization: f64) -> PowerMeasurement {
        self.nic.eject();
        let nic_only_w = self.nic.measure_power_w(line_utilization);
        self.nic.insert_standard_sfp();
        let nic_with_sfp_w = self.nic.measure_power_w(line_utilization);
        self.nic.insert_flexsfp((self.module_factory)());
        let nic_with_flexsfp_w = self.nic.measure_power_w(line_utilization);
        self.nic.eject();
        PowerMeasurement {
            nic_only_w,
            nic_with_sfp_w,
            nic_with_flexsfp_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_measurements() {
        let m = PowerTestbed::new().measure(1.0);
        assert!((m.nic_only_w - 3.800).abs() < 0.005, "{m:?}");
        assert!((m.nic_with_sfp_w - 4.693).abs() < 0.01, "{m:?}");
        assert!((m.nic_with_flexsfp_w - 5.320).abs() < 0.02, "{m:?}");
        // Module-level: ~0.9 W vs ~1.5 W, ~0.7 W premium.
        assert!((m.sfp_w() - 0.893).abs() < 0.01);
        assert!((m.flexsfp_w() - 1.520).abs() < 0.02);
        assert!((m.fpga_premium_w() - 0.627).abs() < 0.02);
    }

    #[test]
    fn idle_draws_less_than_stress() {
        let mut tb = PowerTestbed::new();
        let idle = tb.measure(0.0);
        let busy = tb.measure(1.0);
        assert!(idle.nic_with_flexsfp_w < busy.nic_with_flexsfp_w);
        assert!(idle.nic_with_sfp_w < busy.nic_with_sfp_w);
        // The NIC baseline itself is load-independent in the model.
        assert_eq!(idle.nic_only_w, busy.nic_only_w);
    }

    #[test]
    fn flexsfp_within_transceiver_envelope() {
        // The §2 claim: FlexSFP stays in the 1–3 W transceiver band.
        let m = PowerTestbed::new().measure(1.0);
        assert!(m.flexsfp_w() > 1.0 && m.flexsfp_w() < 3.0);
    }
}
