//! Fleet orchestration: managing many FlexSFPs at once.
//!
//! §4.1: the network-accessible control interface "is essential for
//! centralized orchestration across a fleet of FlexSFPs, while
//! preserving the independence of per-port behavior." The manager
//! performs parallel rolling OTA deployments (each module is
//! independent, so deployment parallelizes perfectly across worker
//! threads) and fleet-wide health sweeps with VCSEL fault diagnosis.

use crate::mgmt::{ManagementClient, MgmtError};
use flexsfp_core::auth::AuthKey;
use flexsfp_core::failure::{diagnose, DiagnosisThresholds, FaultDiagnosis, VcselModel};
use flexsfp_core::module::FlexSfp;
use std::sync::Mutex;

/// Health snapshot of one module.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEntry {
    /// Module identifier.
    pub module_id: String,
    /// Running app and version.
    pub app: String,
    /// Application version.
    pub app_version: u32,
    /// Optical diagnosis.
    pub diagnosis: FaultDiagnosis,
    /// Module temperature, °C.
    pub temperature_c: f64,
}

/// Result of a rolling deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeployReport {
    /// Modules updated successfully.
    pub updated: Vec<String>,
    /// Modules that failed, with reasons.
    pub failed: Vec<(String, String)>,
}

/// The fleet manager. Modules are individually locked so managed
/// operations on different modules proceed in parallel.
pub struct FleetManager {
    modules: Vec<Mutex<FlexSfp>>,
    client: ManagementClient,
}

impl FleetManager {
    /// Manage `modules` with the shared fleet `key`.
    pub fn new(modules: Vec<FlexSfp>, key: AuthKey) -> FleetManager {
        FleetManager {
            modules: modules.into_iter().map(Mutex::new).collect(),
            client: ManagementClient::new(key),
        }
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when managing no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Run `f` against one module under its lock.
    pub fn with_module<R>(&self, idx: usize, f: impl FnOnce(&mut FlexSfp) -> R) -> R {
        f(&mut self.modules[idx].lock().unwrap())
    }

    /// Deploy `image` to flash `slot` on every module, in parallel
    /// across `workers` threads. Modules whose deployment fails are
    /// reported and left on their previous application.
    pub fn deploy_all(&self, slot: usize, image: &[u8], workers: usize) -> DeployReport {
        let report = Mutex::new(DeployReport::default());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = workers.clamp(1, self.modules.len().max(1));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= self.modules.len() {
                        break;
                    }
                    let mut module = self.modules[idx].lock().unwrap();
                    let id = module.config.id.clone();
                    match self.client.deploy(&mut *module, slot, image) {
                        Ok(()) => report.lock().unwrap().updated.push(id),
                        Err(e) => report.lock().unwrap().failed.push((id, e.to_string())),
                    }
                });
            }
        });
        let mut r = report.into_inner().unwrap();
        r.updated.sort();
        r.failed.sort();
        r
    }

    /// Sweep the fleet, reading DOM diagnostics and diagnosing optical
    /// faults — the §5.3 targeted-repair workflow.
    pub fn health_report(&self) -> Result<Vec<HealthEntry>, MgmtError> {
        let thresholds = DiagnosisThresholds::default();
        let model = VcselModel::default();
        let mut out = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let mut module = m.lock().unwrap();
            module.refresh_dom();
            let info = self.client.info(&mut *module)?;
            let dom = module.mgmt.read_dom();
            out.push(HealthEntry {
                module_id: info.module_id,
                app: info.app,
                app_version: info.app_version,
                diagnosis: diagnose(&dom, &model, &thresholds),
                temperature_c: dom.temperature_c,
            });
        }
        Ok(out)
    }

    /// Pull one telemetry snapshot from every module over the
    /// authenticated management channel, in fleet order. Each pull
    /// drains that module's event ring, so events appear exactly once
    /// across successive sweeps.
    pub fn telemetry_snapshots(&self) -> Result<Vec<flexsfp_obs::TelemetrySnapshot>, MgmtError> {
        let mut out = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let mut module = m.lock().unwrap();
            out.push(self.client.read_telemetry(&mut *module)?);
        }
        Ok(out)
    }

    /// Indices of modules whose lasers need attention.
    pub fn modules_needing_service(&self) -> Result<Vec<usize>, MgmtError> {
        Ok(self
            .health_report()?
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                matches!(
                    h.diagnosis,
                    FaultDiagnosis::LaserDegradation
                        | FaultDiagnosis::LaserFailed
                        | FaultDiagnosis::DriverFault
                )
            })
            .map(|(i, _)| i)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_core::Bitstream;
    use flexsfp_fabric::resources::ResourceManifest;

    fn fleet(n: usize) -> FleetManager {
        let modules = (0..n)
            .map(|i| {
                let cfg = ModuleConfig {
                    id: format!("FSFP-{i:04}"),
                    ..ModuleConfig::default()
                };
                FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
            })
            .collect();
        FleetManager::new(modules, AuthKey::DEFAULT)
    }

    #[test]
    fn parallel_rolling_deploy() {
        let f = fleet(12);
        let image =
            Bitstream::new("passthrough", 3, ResourceManifest::ZERO, 156_250_000).to_bytes();
        let report = f.deploy_all(1, &image, 4);
        assert_eq!(report.updated.len(), 12);
        assert!(report.failed.is_empty());
        for i in 0..12 {
            f.with_module(i, |m| {
                assert_eq!(m.app_version(), 3);
                assert_eq!(m.boots(), 2);
            });
        }
    }

    #[test]
    fn failed_modules_reported_not_bricked() {
        let f = fleet(3);
        // An image that is not a valid bitstream: commit succeeds (CRC
        // is over the raw bytes) but the boot falls back gracefully.
        // Instead use a valid bitstream for an unknown app: boots fall
        // back to passthrough v0 via the factory default.
        let image =
            Bitstream::new("unknown-app", 9, ResourceManifest::ZERO, 156_250_000).to_bytes();
        let report = f.deploy_all(1, &image, 2);
        // Deployment itself succeeds (flash written, activation done)…
        assert_eq!(report.updated.len(), 3);
        // …but every module fell back rather than running unknown-app.
        for i in 0..3 {
            f.with_module(i, |m| {
                assert_ne!(m.app_name(), "unknown-app");
                assert_eq!(m.boots(), 2);
            });
        }
    }

    #[test]
    fn health_sweep_flags_aging_lasers() {
        let f = fleet(4);
        // Age module 2's laser to end of life.
        f.with_module(2, |m| {
            m.set_laser_ttf_hours(50_000.0);
            m.age_laser(49_000.0);
        });
        let report = f.health_report().unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report[0].diagnosis, FaultDiagnosis::Healthy);
        assert_ne!(report[2].diagnosis, FaultDiagnosis::Healthy);
        let service = f.modules_needing_service().unwrap();
        assert_eq!(service, vec![2]);
    }

    #[test]
    fn health_report_carries_identity() {
        let f = fleet(2);
        let report = f.health_report().unwrap();
        assert_eq!(report[0].module_id, "FSFP-0000");
        assert_eq!(report[1].module_id, "FSFP-0001");
        assert_eq!(report[0].app, "passthrough");
        assert!(report[0].temperature_c > 30.0);
    }

    #[test]
    fn telemetry_sweep_covers_fleet_in_order() {
        let f = fleet(3);
        let snaps = f.telemetry_snapshots().unwrap();
        assert_eq!(snaps.len(), 3);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.module_id, format!("FSFP-{i:04}"));
            assert_eq!(s.seq, 1);
        }
        // A second sweep advances every module's sequence number.
        let again = f.telemetry_snapshots().unwrap();
        assert!(again.iter().all(|s| s.seq == 2));
    }

    #[test]
    fn empty_fleet() {
        let f = FleetManager::new(vec![], AuthKey::DEFAULT);
        assert!(f.is_empty());
        let r = f.deploy_all(1, b"x", 4);
        assert!(r.updated.is_empty() && r.failed.is_empty());
    }
}
