//! Fleet orchestration: managing many FlexSFPs at once.
//!
//! §4.1: the network-accessible control interface "is essential for
//! centralized orchestration across a fleet of FlexSFPs, while
//! preserving the independence of per-port behavior." The manager
//! performs parallel rolling OTA deployments (each module is
//! independent, so deployment parallelizes perfectly across worker
//! threads) and fleet-wide health sweeps with VCSEL fault diagnosis.
//!
//! The manager is built for a fleet whose control channels are real,
//! lossy cables (§5.3): every sweep reports a per-module `Result`
//! instead of aborting at the first unreachable module, a failed
//! deploy is rolled back to the golden image in slot 0, and modules
//! that fail repeated deploys are quarantined out of later rollouts.

use crate::mgmt::{ManagementClient, MgmtError, ModulePort};
use flexsfp_core::auth::AuthKey;
use flexsfp_core::failure::{diagnose, DiagnosisThresholds, FaultDiagnosis, VcselModel};
use flexsfp_core::module::FlexSfp;
use flexsfp_fabric::i2c::DomReading;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Health snapshot of one module.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEntry {
    /// Module identifier.
    pub module_id: String,
    /// Running app and version.
    pub app: String,
    /// Application version.
    pub app_version: u32,
    /// Optical diagnosis.
    pub diagnosis: FaultDiagnosis,
    /// Module temperature, °C.
    pub temperature_c: f64,
}

/// Result of a rolling deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeployReport {
    /// Modules updated successfully.
    pub updated: Vec<String>,
    /// Modules whose deploy failed AND whose golden rollback also
    /// failed, with reasons — these need hands-on attention.
    pub failed: Vec<(String, String)>,
    /// Modules whose deploy failed but which were successfully rolled
    /// back to the golden image in slot 0, with the deploy error.
    pub rolled_back: Vec<(String, String)>,
    /// Modules skipped because they exceeded the quarantine threshold
    /// in earlier rollouts.
    pub quarantined: Vec<String>,
}

/// Default number of consecutive failed deploys before a module is
/// quarantined out of rollouts.
pub const DEFAULT_QUARANTINE_AFTER: u32 = 3;

/// The fleet manager. Modules are individually locked so managed
/// operations on different modules proceed in parallel.
///
/// Generic over the port type: manage bare [`FlexSfp`]s directly, or
/// wrap each in a [`ImpairedPort`](crate::chaos::ImpairedPort) to run
/// the whole fleet over fault-injected channels.
pub struct FleetManager<P = FlexSfp> {
    modules: Vec<Mutex<P>>,
    client: ManagementClient,
    deploy_failures: Vec<AtomicU32>,
    quarantine_after: u32,
}

impl FleetManager<FlexSfp> {
    /// Manage `modules` with the shared fleet `key`.
    pub fn new(modules: Vec<FlexSfp>, key: AuthKey) -> FleetManager {
        FleetManager::with_client(modules, ManagementClient::new(key))
    }
}

impl<P> FleetManager<P> {
    /// Fleet size.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when managing no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Run `f` against one module under its lock.
    pub fn with_module<R>(&self, idx: usize, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.modules[idx].lock().unwrap())
    }

    /// The management client the fleet operates through (e.g. to read
    /// its transport-layer retry counters).
    pub fn client(&self) -> &ManagementClient {
        &self.client
    }

    /// Quarantine a module after this many consecutive failed deploys
    /// (default [`DEFAULT_QUARANTINE_AFTER`]).
    pub fn set_quarantine_threshold(&mut self, after: u32) {
        self.quarantine_after = after.max(1);
    }

    /// Indices of modules currently quarantined from rollouts.
    pub fn quarantined(&self) -> Vec<usize> {
        self.deploy_failures
            .iter()
            .enumerate()
            .filter(|(_, f)| f.load(Ordering::Relaxed) >= self.quarantine_after)
            .map(|(i, _)| i)
            .collect()
    }
}

impl<P: ModulePort + Send> FleetManager<P> {
    /// Manage pre-wrapped ports (e.g. impaired channels) through an
    /// explicitly configured client.
    pub fn with_client(modules: Vec<P>, client: ManagementClient) -> FleetManager<P> {
        let n = modules.len();
        FleetManager {
            modules: modules.into_iter().map(Mutex::new).collect(),
            client,
            deploy_failures: (0..n).map(|_| AtomicU32::new(0)).collect(),
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
        }
    }

    /// Identify a module over its (possibly lossy) channel, with a
    /// positional fallback when the channel is down.
    fn module_id(&self, port: &mut P, idx: usize) -> String {
        self.client
            .info(port)
            .map(|i| i.module_id)
            .unwrap_or_else(|_| format!("module-{idx}"))
    }

    /// Deploy `image` to flash `slot` on every module, in parallel
    /// across `workers` threads. Per-module outcomes:
    ///
    /// * success → `updated` (and the module's failure streak resets);
    /// * failure + successful rollback to golden slot 0 → `rolled_back`
    ///   — the module is degraded but running a known-good image;
    /// * failure + failed rollback → `failed`;
    /// * quarantined (≥ threshold consecutive failures) → skipped and
    ///   listed in `quarantined`.
    pub fn deploy_all(&self, slot: usize, image: &[u8], workers: usize) -> DeployReport {
        let report = Mutex::new(DeployReport::default());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = workers.clamp(1, self.modules.len().max(1));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= self.modules.len() {
                        break;
                    }
                    let mut module = self.modules[idx].lock().unwrap();
                    let id = self.module_id(&mut *module, idx);
                    if self.deploy_failures[idx].load(Ordering::Relaxed) >= self.quarantine_after {
                        report.lock().unwrap().quarantined.push(id);
                        continue;
                    }
                    match self.client.deploy(&mut *module, slot, image) {
                        Ok(()) => {
                            self.deploy_failures[idx].store(0, Ordering::Relaxed);
                            report.lock().unwrap().updated.push(id);
                        }
                        Err(e) => {
                            self.deploy_failures[idx].fetch_add(1, Ordering::Relaxed);
                            // Degrade, don't wedge: put the module back
                            // on the golden image rather than leaving
                            // it half-updated.
                            match self.client.activate_slot(&mut *module, 0) {
                                Ok(()) => {
                                    report.lock().unwrap().rolled_back.push((id, e.to_string()));
                                }
                                Err(r) => {
                                    report
                                        .lock()
                                        .unwrap()
                                        .failed
                                        .push((id, format!("{e}; rollback failed: {r}")));
                                }
                            }
                        }
                    }
                });
            }
        });
        let mut r = report.into_inner().unwrap();
        r.updated.sort();
        r.failed.sort();
        r.rolled_back.sort();
        r.quarantined.sort();
        r
    }

    /// Sweep the fleet, reading DOM diagnostics over the management
    /// channel and diagnosing optical faults — the §5.3 targeted-repair
    /// workflow. An unreachable module yields an `Err` entry at its
    /// index; the sweep always covers the whole fleet.
    pub fn health_report(&self) -> Vec<Result<HealthEntry, MgmtError>> {
        let thresholds = DiagnosisThresholds::default();
        let model = VcselModel::default();
        let mut out = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let mut module = m.lock().unwrap();
            out.push(self.health_of(&mut module, &model, &thresholds));
        }
        out
    }

    fn health_of(
        &self,
        module: &mut P,
        model: &VcselModel,
        thresholds: &DiagnosisThresholds,
    ) -> Result<HealthEntry, MgmtError> {
        let info = self.client.info(module)?;
        let snap = self.client.read_dom(module)?;
        // Rebuild the raw DOM reading the diagnoser works on from the
        // wire snapshot (powers travel in dBm; vcc is not exported and
        // is nominal in this model).
        let dom = DomReading {
            temperature_c: snap.temp_c,
            vcc_v: 3.3,
            tx_bias_ma: snap.bias_ma,
            tx_power_mw: 10f64.powf(snap.tx_power_dbm / 10.0),
            rx_power_mw: 10f64.powf(snap.rx_power_dbm / 10.0),
        };
        Ok(HealthEntry {
            module_id: info.module_id,
            app: info.app,
            app_version: info.app_version,
            diagnosis: diagnose(&dom, model, thresholds),
            temperature_c: snap.temp_c,
        })
    }

    /// Pull one telemetry snapshot from every module over the
    /// authenticated management channel, in fleet order. Each pull
    /// drains that module's event ring, so events appear exactly once
    /// across successive sweeps. Unreachable modules yield `Err`
    /// entries instead of aborting the sweep.
    pub fn telemetry_snapshots(&self) -> Vec<Result<flexsfp_obs::TelemetrySnapshot, MgmtError>> {
        let mut out = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let mut module = m.lock().unwrap();
            out.push(self.client.read_telemetry(&mut *module));
        }
        out
    }

    /// Indices of modules whose lasers need attention. Modules that
    /// could not be reached are not listed — they show up as `Err`
    /// entries in [`health_report`](Self::health_report) instead.
    pub fn modules_needing_service(&self) -> Vec<usize> {
        self.health_report()
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                matches!(
                    h,
                    Ok(e) if matches!(
                        e.diagnosis,
                        FaultDiagnosis::LaserDegradation
                            | FaultDiagnosis::LaserFailed
                            | FaultDiagnosis::DriverFault
                    )
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultPlan, ImpairedPort};
    use flexsfp_core::module::ModuleConfig;
    use flexsfp_core::Bitstream;
    use flexsfp_fabric::resources::ResourceManifest;

    fn module(i: usize) -> FlexSfp {
        let cfg = ModuleConfig {
            id: format!("FSFP-{i:04}"),
            ..ModuleConfig::default()
        };
        FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough))
    }

    fn fleet(n: usize) -> FleetManager {
        FleetManager::new((0..n).map(module).collect(), AuthKey::DEFAULT)
    }

    #[test]
    fn parallel_rolling_deploy() {
        let f = fleet(12);
        let image =
            Bitstream::new("passthrough", 3, ResourceManifest::ZERO, 156_250_000).to_bytes();
        let report = f.deploy_all(1, &image, 4);
        assert_eq!(report.updated.len(), 12);
        assert!(report.failed.is_empty());
        assert!(report.rolled_back.is_empty() && report.quarantined.is_empty());
        for i in 0..12 {
            f.with_module(i, |m| {
                assert_eq!(m.app_version(), 3);
                assert_eq!(m.boots(), 2);
            });
        }
    }

    #[test]
    fn failed_modules_reported_not_bricked() {
        let f = fleet(3);
        // An image that is not a valid bitstream: commit succeeds (CRC
        // is over the raw bytes) but the boot falls back gracefully.
        // Instead use a valid bitstream for an unknown app: boots fall
        // back to passthrough v0 via the factory default.
        let image =
            Bitstream::new("unknown-app", 9, ResourceManifest::ZERO, 156_250_000).to_bytes();
        let report = f.deploy_all(1, &image, 2);
        // Deployment itself succeeds (flash written, activation done)…
        assert_eq!(report.updated.len(), 3);
        // …but every module fell back rather than running unknown-app.
        for i in 0..3 {
            f.with_module(i, |m| {
                assert_ne!(m.app_name(), "unknown-app");
                assert_eq!(m.boots(), 2);
            });
        }
    }

    #[test]
    fn failed_deploy_rolls_back_to_golden() {
        let f = fleet(3);
        // Stage a golden image at the factory.
        let golden =
            Bitstream::new("passthrough", 1, ResourceManifest::ZERO, 156_250_000).to_bytes();
        for i in 0..3 {
            f.with_module(i, |m| m.flash.write_slot(0, &golden).unwrap());
        }
        // Slot 0 is protected: every deploy fails with BadSlot; the
        // manager rolls each module back to golden instead of leaving
        // it wedged.
        let image =
            Bitstream::new("passthrough", 9, ResourceManifest::ZERO, 156_250_000).to_bytes();
        let report = f.deploy_all(0, &image, 2);
        assert!(report.updated.is_empty());
        assert!(report.failed.is_empty());
        assert_eq!(report.rolled_back.len(), 3);
        assert!(report.rolled_back[0].1.contains("BadSlot"));
        for i in 0..3 {
            f.with_module(i, |m| {
                assert_eq!(m.app_version(), 1); // golden
                assert_eq!(m.boots(), 2); // rollback rebooted it
            });
        }
    }

    #[test]
    fn repeat_offenders_get_quarantined() {
        let mut f = fleet(2);
        f.set_quarantine_threshold(2);
        let image =
            Bitstream::new("passthrough", 9, ResourceManifest::ZERO, 156_250_000).to_bytes();
        // Two failing rollouts (slot 0 is protected) build the streak…
        for _ in 0..2 {
            let r = f.deploy_all(0, &image, 1);
            assert_eq!(r.rolled_back.len(), 2);
            assert!(r.quarantined.is_empty());
        }
        assert_eq!(f.quarantined(), vec![0, 1]);
        // …and the third skips both modules entirely.
        let r = f.deploy_all(0, &image, 1);
        assert!(r.rolled_back.is_empty() && r.updated.is_empty());
        assert_eq!(r.quarantined.len(), 2);
        // A successful deploy elsewhere clears the streak: not tested
        // here against slot 0 (always fails); reset is store(0) on Ok.
    }

    #[test]
    fn health_sweep_flags_aging_lasers() {
        let f = fleet(4);
        // Age module 2's laser to end of life.
        f.with_module(2, |m| {
            m.set_laser_ttf_hours(50_000.0);
            m.age_laser(49_000.0);
        });
        let report = f.health_report();
        assert_eq!(report.len(), 4);
        assert_eq!(
            report[0].as_ref().unwrap().diagnosis,
            FaultDiagnosis::Healthy
        );
        assert_ne!(
            report[2].as_ref().unwrap().diagnosis,
            FaultDiagnosis::Healthy
        );
        let service = f.modules_needing_service();
        assert_eq!(service, vec![2]);
    }

    #[test]
    fn health_report_carries_identity() {
        let f = fleet(2);
        let report = f.health_report();
        let r0 = report[0].as_ref().unwrap();
        assert_eq!(r0.module_id, "FSFP-0000");
        assert_eq!(report[1].as_ref().unwrap().module_id, "FSFP-0001");
        assert_eq!(r0.app, "passthrough");
        assert!(r0.temperature_c > 30.0);
    }

    #[test]
    fn telemetry_sweep_covers_fleet_in_order() {
        let f = fleet(3);
        let snaps = f.telemetry_snapshots();
        assert_eq!(snaps.len(), 3);
        for (i, s) in snaps.iter().enumerate() {
            let s = s.as_ref().unwrap();
            assert_eq!(s.module_id, format!("FSFP-{i:04}"));
            assert_eq!(s.seq, 1);
        }
        // A second sweep advances every module's sequence number.
        let again = f.telemetry_snapshots();
        assert!(again.iter().all(|s| s.as_ref().unwrap().seq == 2));
    }

    #[test]
    fn dead_module_yields_err_entry_not_sweep_abort() {
        // Module 1's channel is permanently down (100 % drop); the
        // sweeps still cover modules 0 and 2.
        let ports: Vec<ImpairedPort<FlexSfp>> = (0..3)
            .map(|i| {
                let plan = if i == 1 {
                    FaultPlan::ideal(1).with_drop(1.0)
                } else {
                    FaultPlan::ideal(1)
                };
                ImpairedPort::new(module(i), plan)
            })
            .collect();
        let f = FleetManager::with_client(ports, ManagementClient::new(AuthKey::DEFAULT));
        let snaps = f.telemetry_snapshots();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].as_ref().unwrap().module_id, "FSFP-0000");
        assert!(snaps[1].is_err());
        assert_eq!(snaps[2].as_ref().unwrap().module_id, "FSFP-0002");
        let health = f.health_report();
        assert!(health[0].is_ok() && health[1].is_err() && health[2].is_ok());
        // The dead module is simply absent from the service list.
        assert!(f.modules_needing_service().is_empty());
    }

    #[test]
    fn empty_fleet() {
        let f = FleetManager::new(vec![], AuthKey::DEFAULT);
        assert!(f.is_empty());
        let r = f.deploy_all(1, b"x", 4);
        assert!(r.updated.is_empty() && r.failed.is_empty());
        assert!(f.quarantined().is_empty());
    }
}
