//! Deterministic fault injection for the in-cable control channel.
//!
//! The paper's §5.3 reliability story only matters because the channel
//! between host and module is a real, lossy cable: management frames
//! ride the same physical plant as the dataplane and are dropped,
//! duplicated, corrupted and delayed by it. This module provides the
//! *seeded* impairment layer the resilience tests are built on:
//!
//! * [`FaultPlan`] — a declarative, reproducible description of how a
//!   channel misbehaves (drop/duplicate/corrupt probabilities, link
//!   flaps, jitter), driven by [`flexsfp_traffic::rng::Xoshiro256`] so
//!   a given seed always produces the same fault sequence;
//! * [`ImpairedPort`] — wraps any [`ModulePort`] (usually a
//!   [`FlexSfp`](flexsfp_core::module::FlexSfp)) and applies the plan
//!   to every request/response exchange on the OOB control channel;
//! * [`LossyLink`] — extends [`FiberLink`] with the same plan for the
//!   dataplane path, so packet traces can be carried across an
//!   impaired span with per-packet accounting.
//!
//! Everything here is deterministic: no wall clock, no global RNG.
//! Re-running a chaos experiment with the same seed replays the exact
//! same faults, which is what lets the bench suite assert byte-exact
//! convergence under impairment.

use crate::link::FiberLink;
use crate::mgmt::ModulePort;
use flexsfp_core::module::{OutputPacket, SimPacket};
use flexsfp_traffic::rng::Xoshiro256;

/// A seeded, declarative description of channel impairment.
///
/// All probabilities are per-exchange (control path) or per-packet
/// (dataplane path) and are sampled from a private
/// [`Xoshiro256`] stream seeded with `seed`, so two channels built
/// from equal plans misbehave identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; equal seeds replay equal fault sequences.
    pub seed: u64,
    /// Probability a frame is silently dropped (applied independently
    /// to the request and the response on the control path).
    pub drop_p: f64,
    /// Probability a delivered request is replayed once more and the
    /// *second* response is the one returned — exercises idempotency.
    pub duplicate_p: f64,
    /// Probability a single random bit of a frame is flipped.
    pub corrupt_p: f64,
    /// Probability an exchange starts a link flap (a burst outage).
    pub flap_p: f64,
    /// Maximum length of a flap, in consecutive lost exchanges.
    pub flap_len_max: u32,
    /// Mean of the exponential extra delay added per dataplane packet,
    /// nanoseconds (0 disables jitter).
    pub jitter_ns: u64,
}

impl FaultPlan {
    /// A perfect channel: nothing dropped, nothing corrupted. Useful
    /// as a control arm in chaos experiments.
    pub fn ideal(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            flap_p: 0.0,
            flap_len_max: 0,
            jitter_ns: 0,
        }
    }

    /// A moderately hostile cable: ~8 % frame loss, occasional
    /// duplicates, bit errors and short flaps. Deploys still converge
    /// under this plan given a sane [`RetryPolicy`](crate::mgmt::RetryPolicy).
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.08,
            duplicate_p: 0.05,
            corrupt_p: 0.02,
            flap_p: 0.01,
            flap_len_max: 3,
            jitter_ns: 500,
        }
    }

    /// Set the per-frame drop probability.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop_p = p;
        self
    }

    /// Set the request-duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate_p = p;
        self
    }

    /// Set the single-bit corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt_p = p;
        self
    }

    /// Set the link-flap probability and maximum burst length.
    pub fn with_flap(mut self, p: f64, len_max: u32) -> FaultPlan {
        self.flap_p = p;
        self.flap_len_max = len_max;
        self
    }

    /// Set the mean exponential jitter, ns.
    pub fn with_jitter(mut self, mean_ns: u64) -> FaultPlan {
        self.jitter_ns = mean_ns;
        self
    }
}

/// What an [`ImpairedPort`] did to the traffic that crossed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairStats {
    /// Exchanges attempted through the port.
    pub attempts: u64,
    /// Exchanges whose response made it back to the caller.
    pub delivered: u64,
    /// Requests dropped before reaching the module.
    pub request_drops: u64,
    /// Responses dropped on the way back.
    pub response_drops: u64,
    /// Requests replayed to the module a second time.
    pub duplicates: u64,
    /// Frames that had a bit flipped (requests + responses).
    pub corruptions: u64,
    /// Link flaps started.
    pub flaps: u64,
    /// Exchanges lost to an in-progress flap (including the one that
    /// started it).
    pub flap_losses: u64,
}

/// A [`ModulePort`] wrapper that applies a [`FaultPlan`] to every
/// exchange: the chaos layer between a management client and a module.
///
/// Fault order per exchange: flap → request drop → request corruption
/// → delivery (optionally duplicated) → response drop → response
/// corruption. A duplicated request returns the *second* response, so
/// the module's idempotency (not the wrapper) must make replays safe.
#[derive(Debug)]
pub struct ImpairedPort<P> {
    inner: P,
    plan: FaultPlan,
    rng: Xoshiro256,
    stats: ImpairStats,
    down_for: u32,
}

impl<P: ModulePort> ImpairedPort<P> {
    /// Wrap `inner` with the impairments described by `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> ImpairedPort<P> {
        ImpairedPort {
            inner,
            plan,
            rng: Xoshiro256::seed_from_u64(plan.seed),
            stats: ImpairStats::default(),
            down_for: 0,
        }
    }

    /// The wrapped port.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped port, mutably (e.g. to inspect a `FlexSfp` after a
    /// chaos run).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwrap, discarding the impairment state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Fault accounting so far.
    pub fn stats(&self) -> ImpairStats {
        self.stats
    }

    /// The plan this port was built with.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

/// Flip one uniformly random bit of `frame`.
fn flip_random_bit(rng: &mut Xoshiro256, frame: &mut [u8]) {
    if frame.is_empty() {
        return;
    }
    let byte = rng.range_usize(0, frame.len());
    let bit = rng.range_u64(0, 8) as u32;
    frame[byte] ^= 1 << bit;
}

impl<P: ModulePort> ModulePort for ImpairedPort<P> {
    fn request(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self.stats.attempts += 1;
        // A flap takes the whole channel down for a burst of exchanges.
        if self.down_for > 0 {
            self.down_for -= 1;
            self.stats.flap_losses += 1;
            return None;
        }
        if self.plan.flap_p > 0.0 && self.rng.chance(self.plan.flap_p) {
            self.stats.flaps += 1;
            self.stats.flap_losses += 1;
            self.down_for = self
                .rng
                .range_u64(1, u64::from(self.plan.flap_len_max.max(1)) + 1)
                as u32
                - 1;
            return None;
        }
        if self.plan.drop_p > 0.0 && self.rng.chance(self.plan.drop_p) {
            self.stats.request_drops += 1;
            return None;
        }
        let mut request = payload.to_vec();
        if self.plan.corrupt_p > 0.0 && self.rng.chance(self.plan.corrupt_p) {
            self.stats.corruptions += 1;
            flip_random_bit(&mut self.rng, &mut request);
        }
        let mut response = self.inner.request(&request);
        if self.plan.duplicate_p > 0.0 && self.rng.chance(self.plan.duplicate_p) {
            // The cable replayed the frame: the module sees it twice
            // and the second response is the one that arrives.
            self.stats.duplicates += 1;
            response = self.inner.request(&request);
        }
        let mut response = response?;
        if self.plan.drop_p > 0.0 && self.rng.chance(self.plan.drop_p) {
            self.stats.response_drops += 1;
            return None;
        }
        if self.plan.corrupt_p > 0.0 && self.rng.chance(self.plan.corrupt_p) {
            self.stats.corruptions += 1;
            flip_random_bit(&mut self.rng, &mut response);
        }
        self.stats.delivered += 1;
        Some(response)
    }
}

/// Per-packet accounting for a [`LossyLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkChaosStats {
    /// Packets offered to the span.
    pub offered: u64,
    /// Packets that arrived at the far end (duplicates included).
    pub delivered: u64,
    /// Packets lost in the span.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Packets that arrived with a flipped bit.
    pub corrupted: u64,
    /// Total extra delay added by jitter, ns.
    pub jitter_ns_total: u64,
}

/// A [`FiberLink`] with a [`FaultPlan`] applied to the dataplane path:
/// lossy-mode carriage with per-packet drop/duplicate/corrupt/jitter.
#[derive(Debug)]
pub struct LossyLink {
    link: FiberLink,
    plan: FaultPlan,
    rng: Xoshiro256,
    stats: LinkChaosStats,
}

impl LossyLink {
    /// Impair `link` according to `plan`.
    pub fn new(link: FiberLink, plan: FaultPlan) -> LossyLink {
        LossyLink {
            link,
            plan,
            rng: Xoshiro256::seed_from_u64(plan.seed),
            stats: LinkChaosStats::default(),
        }
    }

    /// The underlying clean span.
    pub fn link(&self) -> FiberLink {
        self.link
    }

    /// Packet accounting so far.
    pub fn stats(&self) -> LinkChaosStats {
        self.stats
    }

    /// Carry one module's optical egress across the impaired span:
    /// the lossy-mode counterpart of [`FiberLink::carry`].
    pub fn carry(&mut self, outputs: &[OutputPacket]) -> Vec<SimPacket> {
        let clean = self.link.carry(outputs);
        let mut out: Vec<SimPacket> = Vec::with_capacity(clean.len());
        for mut pkt in clean {
            self.stats.offered += 1;
            if self.plan.drop_p > 0.0 && self.rng.chance(self.plan.drop_p) {
                self.stats.dropped += 1;
                continue;
            }
            if self.plan.jitter_ns > 0 {
                let extra = self.rng.exp(self.plan.jitter_ns as f64) as u64;
                self.stats.jitter_ns_total += extra;
                pkt.arrival_ns += extra;
            }
            if self.plan.corrupt_p > 0.0 && self.rng.chance(self.plan.corrupt_p) {
                self.stats.corrupted += 1;
                flip_random_bit(&mut self.rng, &mut pkt.frame);
            }
            if self.plan.duplicate_p > 0.0 && self.rng.chance(self.plan.duplicate_p) {
                self.stats.duplicated += 1;
                self.stats.delivered += 1;
                out.push(pkt.clone());
            }
            self.stats.delivered += 1;
            out.push(pkt);
        }
        out.sort_by_key(|p| p.arrival_ns);
        out
    }
}

impl FiberLink {
    /// Wrap this span in a [`LossyLink`] applying `plan` to every
    /// packet it carries.
    pub fn impaired(self, plan: FaultPlan) -> LossyLink {
        LossyLink::new(self, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgmt::ManagementClient;
    use flexsfp_core::auth::AuthKey;
    use flexsfp_core::module::FlexSfp;
    use flexsfp_ppe::Direction;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    #[test]
    fn ideal_plan_is_transparent() {
        let mut port = ImpairedPort::new(FlexSfp::passthrough(), FaultPlan::ideal(1));
        let c = ManagementClient::new(AuthKey::DEFAULT);
        c.ping(&mut port, 7).unwrap();
        let info = c.info(&mut port).unwrap();
        assert_eq!(info.app, "passthrough");
        let s = port.stats();
        assert_eq!(s.attempts, s.delivered);
        assert_eq!(
            s.request_drops + s.response_drops + s.corruptions + s.flaps,
            0
        );
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::lossy(42);
        let run = |plan: FaultPlan| {
            let mut port = ImpairedPort::new(FlexSfp::passthrough(), plan);
            let c = ManagementClient::new(AuthKey::DEFAULT);
            let outcomes: Vec<bool> = (0..100).map(|i| c.ping(&mut port, i).is_ok()).collect();
            (outcomes, port.stats())
        };
        let (a, sa) = run(plan);
        let (b, sb) = run(plan);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // And the plan really does hurt.
        assert!(sa.request_drops + sa.response_drops + sa.flap_losses > 0);
    }

    #[test]
    fn corruption_is_rejected_by_auth_not_crashing() {
        // A corrupt-only channel: every exchange flips one bit
        // somewhere. The module's SipHash check must turn every hit
        // into a clean no-response, never a wrong answer.
        let plan = FaultPlan::ideal(9).with_corrupt(1.0);
        let mut port = ImpairedPort::new(FlexSfp::passthrough(), plan);
        let c = ManagementClient::new(AuthKey::DEFAULT);
        for i in 0..32 {
            // Either the flip hit a raw byte the codec tolerates (rare:
            // e.g. inside a string value) or the call fails cleanly.
            let _ = c.ping(&mut port, i);
        }
        assert!(port.stats().corruptions >= 32);
    }

    #[test]
    fn flaps_black_out_bursts() {
        let plan = FaultPlan::ideal(3).with_flap(1.0, 4);
        let mut port = ImpairedPort::new(FlexSfp::passthrough(), plan);
        // Every exchange either starts or continues a flap.
        for _ in 0..10 {
            assert!(port.request(b"anything").is_none());
        }
        let s = port.stats();
        assert!(s.flaps >= 1);
        assert_eq!(s.flap_losses, 10);
        assert_eq!(s.delivered, 0);
    }

    fn frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            0x0a000001,
            1,
            2,
            b"x",
        )
    }

    #[test]
    fn lossy_link_accounts_for_every_packet() {
        let mut m = FlexSfp::passthrough();
        let packets: Vec<SimPacket> = (0..200u64)
            .map(|i| SimPacket {
                arrival_ns: i * 1000,
                direction: Direction::EdgeToOptical,
                frame: frame(),
            })
            .collect();
        let report = m.run(packets);
        let plan = FaultPlan::lossy(5).with_drop(0.2).with_duplicate(0.1);
        let mut span = FiberLink::new(100.0).impaired(plan);
        let carried = span.carry(&report.outputs);
        let s = span.stats();
        assert_eq!(s.offered, 200);
        assert_eq!(s.delivered as usize, carried.len());
        assert_eq!(s.offered, s.delivered - s.duplicated + s.dropped);
        assert!(s.dropped > 0 && s.duplicated > 0);
        // Arrival order survives jitter.
        assert!(carried
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        // Determinism: a fresh span with the same plan carries the
        // same trace.
        let mut again = FiberLink::new(100.0).impaired(plan);
        let carried2 = again.carry(&report.outputs);
        assert_eq!(carried.len(), carried2.len());
        assert!(carried
            .iter()
            .zip(&carried2)
            .all(|(a, b)| a.arrival_ns == b.arrival_ns && a.frame == b.frame));
        assert_eq!(span.stats(), again.stats());
    }
}
