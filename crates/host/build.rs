//! Bakes the git revision into the collector's `flexsfp_build_info`
//! metric. Builds outside a checkout (vendored tarballs, CI caches
//! without `.git`) fall back to `unknown` — the build stays hermetic.

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=FLEXSFP_GIT_DESCRIBE={describe}");
    // Re-stamp when HEAD moves; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
