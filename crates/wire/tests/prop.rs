#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Property-based tests for wire-format invariants.

use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::checksum;
use flexsfp_wire::dns;
use flexsfp_wire::ipv4::Ipv4Packet;
use flexsfp_wire::tcp::TcpFlags;
use flexsfp_wire::udp::UdpDatagram;
use flexsfp_wire::vlan::{self, Tci};
use flexsfp_wire::{EtherType, EthernetFrame, MacAddr, TcpSegment};
use proptest::prelude::*;

proptest! {
    /// Any built IPv4/UDP packet validates under the checked views and
    /// carries the payload intact.
    #[test]
    fn built_udp_packets_validate(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1200),
    ) {
        let buf = PacketBuilder::ipv4_udp(src, dst, sport, dport, &payload);
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum_v4(src, dst));
        prop_assert_eq!(udp.src_port(), sport);
        prop_assert_eq!(udp.dst_port(), dport);
        prop_assert_eq!(udp.payload(), &payload[..]);
    }

    /// Built TCP packets validate and preserve header fields.
    #[test]
    fn built_tcp_packets_validate(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        flag_byte in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let flags = TcpFlags::from_u8(flag_byte);
        let buf = PacketBuilder::ipv4_tcp(src, dst, sport, dport, seq, flags, &payload);
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        prop_assert!(tcp.verify_checksum_v4(src, dst));
        prop_assert_eq!(tcp.seq(), seq);
        prop_assert_eq!(tcp.flags().to_u8(), flag_byte);
        prop_assert_eq!(tcp.payload(), &payload[..]);
    }

    /// Incremental checksum update (RFC 1624) over an arbitrary 32-bit
    /// field change equals a full recompute.
    #[test]
    fn incremental_update_equals_recompute(
        mut header in proptest::collection::vec(any::<u8>(), 20..=20),
        new_src in any::<u32>(),
    ) {
        // Zero the checksum field, compute, then store it.
        header[10] = 0;
        header[11] = 0;
        let c0 = checksum::checksum(&header);
        header[10..12].copy_from_slice(&c0.to_be_bytes());

        let old_src = u32::from_be_bytes(header[12..16].try_into().unwrap());
        let incremental = checksum::update32(c0, old_src, new_src);

        header[12..16].copy_from_slice(&new_src.to_be_bytes());
        header[10] = 0;
        header[11] = 0;
        let recomputed = checksum::checksum(&header);
        prop_assert_eq!(incremental, recomputed);
    }

    /// A buffer containing its own checksum always folds to 0xffff.
    #[test]
    fn embedded_checksum_folds_to_all_ones(
        mut data in proptest::collection::vec(any::<u8>(), 4..256),
    ) {
        data[0] = 0;
        data[1] = 0;
        let c = checksum::checksum(&data);
        data[0..2].copy_from_slice(&c.to_be_bytes());
        prop_assert_eq!(checksum::raw_sum(&data), 0xffff);
    }

    /// VLAN push followed by pop returns the original frame and TCI.
    #[test]
    fn vlan_push_pop_identity(
        frame in proptest::collection::vec(any::<u8>(), 14..200),
        pcp in 0u8..8,
        dei in any::<bool>(),
        vid in 0u16..4096,
    ) {
        let tci = Tci { pcp, dei, vid };
        let tagged = vlan::push_tag(&frame, EtherType::Vlan, tci).unwrap();
        let (popped, untagged) = vlan::pop_tag(&tagged).unwrap();
        prop_assert_eq!(popped, tci);
        prop_assert_eq!(untagged, frame);
    }

    /// TCI encode/decode round-trips for all in-range values.
    #[test]
    fn tci_round_trip(pcp in 0u8..8, dei in any::<bool>(), vid in 0u16..4096) {
        let t = Tci { pcp, dei, vid };
        prop_assert_eq!(Tci::from_u16(t.to_u16()), t);
    }

    /// Ethernet setters and getters are inverse.
    #[test]
    fn ethernet_field_round_trip(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        ety in any::<u16>(),
    ) {
        let mut buf = vec![0u8; 60];
        let mut f = EthernetFrame::new_unchecked(&mut buf);
        f.set_dst(MacAddr(dst));
        f.set_src(MacAddr(src));
        f.set_ethertype(EtherType::from_u16(ety));
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(f.dst(), MacAddr(dst));
        prop_assert_eq!(f.src(), MacAddr(src));
        prop_assert_eq!(f.ethertype().to_u16(), ety);
    }

    /// DNS name encode/parse round-trips for valid label strings.
    #[test]
    fn dns_query_round_trip(
        labels in proptest::collection::vec("[a-z0-9]{1,20}", 1..5),
        id in any::<u16>(),
        qtype in 1u16..300,
    ) {
        let name = labels.join(".");
        let q = dns::build_query(id, &name, qtype);
        let h = dns::DnsHeader::new_checked(&q[..]).unwrap();
        prop_assert_eq!(h.id(), id);
        let question = h.first_question().unwrap();
        prop_assert_eq!(question.qname, name);
        prop_assert_eq!(question.qtype, qtype);
    }

    /// Parsing arbitrary bytes never panics — the views either accept or
    /// return an error (hardware cannot afford a crash path).
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = EthernetFrame::new_checked(&data[..]);
        let _ = Ipv4Packet::new_checked(&data[..]);
        let _ = UdpDatagram::new_checked(&data[..]);
        let _ = TcpSegment::new_checked(&data[..]);
        let _ = flexsfp_wire::Ipv6Packet::new_checked(&data[..]);
        let _ = flexsfp_wire::ArpPacket::new_checked(&data[..]);
        let _ = flexsfp_wire::GrePacket::new_checked(&data[..]);
        let _ = flexsfp_wire::VxlanPacket::new_checked(&data[..]);
        let _ = flexsfp_wire::IcmpPacket::new_checked(&data[..]);
        if let Ok(h) = dns::DnsHeader::new_checked(&data[..]) {
            let _ = h.first_question();
        }
    }

    /// GRE encap puts the inner packet back out unchanged.
    #[test]
    fn gre_encap_preserves_inner(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        key in proptest::option::of(any::<u32>()),
        osrc in any::<u32>(),
        odst in any::<u32>(),
    ) {
        let inner = PacketBuilder::ipv4(osrc ^ 1, odst ^ 1, flexsfp_wire::IpProtocol::Udp, &payload);
        let outer = PacketBuilder::gre_encap(osrc, odst, key, &inner);
        let ip = Ipv4Packet::new_checked(&outer[..]).unwrap();
        let g = flexsfp_wire::GrePacket::new_checked(ip.payload()).unwrap();
        prop_assert_eq!(g.key(), key);
        prop_assert_eq!(g.payload(), &inner[..]);
    }
}
