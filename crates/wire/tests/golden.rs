//! Golden-vector tests: parse/emit round-trips against known byte images.
//!
//! The images below were hand-verified against RFC 791/768/793 checksum
//! arithmetic (the IPv4 header checksum of the UDP image sums to 0x701f,
//! the UDP pseudo-header checksum to 0x80b7, the TCP one to 0xdf26).
//! They pin the wire format: any change to header layout, checksum
//! computation, padding or VLAN tag insertion fails these tests with a
//! byte-level diff. Everything here runs with default features — no
//! proptest, no external dependencies.

use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::ethernet::EthernetFrame;
use flexsfp_wire::ipv4::Ipv4Packet;
use flexsfp_wire::tcp::{TcpFlags, TcpSegment};
use flexsfp_wire::udp::UdpDatagram;
use flexsfp_wire::vlan::{self, VlanFrame};
use flexsfp_wire::{EtherType, IpProtocol, MacAddr};

const SRC_IP: u32 = 0xc0a8_0001; // 192.168.0.1
const DST_IP: u32 = 0x0a00_0002; // 10.0.0.2

/// IPv4/UDP, 192.168.0.1:1234 -> 10.0.0.2:80, payload b"flexsfp".
const GOLDEN_IPV4_UDP: [u8; 35] = [
    0x45, 0x00, 0x00, 0x23, 0x00, 0x00, 0x40, 0x00, // ver/ihl tos len id flags(DF)
    0x40, 0x11, 0x70, 0x1f, 0xc0, 0xa8, 0x00, 0x01, // ttl=64 proto=17 csum src
    0x0a, 0x00, 0x00, 0x02, // dst
    0x04, 0xd2, 0x00, 0x50, 0x00, 0x0f, 0x80, 0xb7, // sport dport ulen ucsum
    0x66, 0x6c, 0x65, 0x78, 0x73, 0x66, 0x70, // "flexsfp"
];

/// IPv4/TCP SYN, 192.168.0.1:80 -> 10.0.0.2:443, seq 0x01020304, no payload.
const GOLDEN_IPV4_TCP: [u8; 40] = [
    0x45, 0x00, 0x00, 0x28, 0x00, 0x00, 0x40, 0x00, //
    0x40, 0x06, 0x70, 0x25, 0xc0, 0xa8, 0x00, 0x01, //
    0x0a, 0x00, 0x00, 0x02, //
    0x00, 0x50, 0x01, 0xbb, 0x01, 0x02, 0x03, 0x04, // sport dport seq
    0x00, 0x00, 0x00, 0x00, 0x50, 0x02, 0xff, 0xff, // ack off/flags(SYN) win
    0xdf, 0x26, 0x00, 0x00, // csum urg
];

/// The UDP packet above in an Ethernet II frame, padded to the 60-byte
/// minimum (no FCS).
const GOLDEN_ETH_UDP: [u8; 60] = [
    0x02, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x00, 0x00, 0x00, 0x02, // dst/src MAC
    0x08, 0x00, // EtherType IPv4
    0x45, 0x00, 0x00, 0x23, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x70, 0x1f, //
    0xc0, 0xa8, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02, //
    0x04, 0xd2, 0x00, 0x50, 0x00, 0x0f, 0x80, 0xb7, //
    0x66, 0x6c, 0x65, 0x78, 0x73, 0x66, 0x70, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // pad
];

/// The same frame with an 802.1Q tag, VID 100, PCP 3 (TCI 0x6064).
const GOLDEN_ETH_VLAN_UDP: [u8; 64] = [
    0x02, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x00, 0x00, 0x00, 0x02, //
    0x81, 0x00, 0x60, 0x64, // 802.1Q tag: TPID, TCI pcp=3 vid=100
    0x08, 0x00, //
    0x45, 0x00, 0x00, 0x23, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x70, 0x1f, //
    0xc0, 0xa8, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02, //
    0x04, 0xd2, 0x00, 0x50, 0x00, 0x0f, 0x80, 0xb7, //
    0x66, 0x6c, 0x65, 0x78, 0x73, 0x66, 0x70, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
];

#[test]
fn emit_ipv4_udp_matches_golden_image() {
    let buf = PacketBuilder::ipv4_udp(SRC_IP, DST_IP, 1234, 80, b"flexsfp");
    assert_eq!(buf, GOLDEN_IPV4_UDP);
}

#[test]
fn parse_ipv4_udp_golden_image() {
    let ip = Ipv4Packet::new_checked(&GOLDEN_IPV4_UDP[..]).unwrap();
    assert!(ip.verify_checksum());
    assert_eq!(ip.version(), 4);
    assert_eq!(ip.ttl(), 64);
    assert_eq!(ip.protocol(), IpProtocol::Udp);
    assert_eq!(ip.src(), SRC_IP);
    assert_eq!(ip.dst(), DST_IP);
    let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
    assert!(udp.verify_checksum_v4(SRC_IP, DST_IP));
    assert_eq!(udp.src_port(), 1234);
    assert_eq!(udp.dst_port(), 80);
    assert_eq!(udp.payload(), b"flexsfp");
}

#[test]
fn emit_ipv4_tcp_matches_golden_image() {
    let buf = PacketBuilder::ipv4_tcp(
        SRC_IP,
        DST_IP,
        80,
        443,
        0x0102_0304,
        TcpFlags::syn_only(),
        &[],
    );
    assert_eq!(buf, GOLDEN_IPV4_TCP);
}

#[test]
fn parse_ipv4_tcp_golden_image() {
    let ip = Ipv4Packet::new_checked(&GOLDEN_IPV4_TCP[..]).unwrap();
    assert!(ip.verify_checksum());
    assert_eq!(ip.protocol(), IpProtocol::Tcp);
    let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
    assert!(tcp.verify_checksum_v4(SRC_IP, DST_IP));
    assert_eq!(tcp.src_port(), 80);
    assert_eq!(tcp.dst_port(), 443);
    assert_eq!(tcp.seq(), 0x0102_0304);
    assert!(tcp.flags().syn);
    assert!(!tcp.flags().ack);
    assert_eq!(tcp.window(), 0xffff);
    assert!(tcp.payload().is_empty());
}

#[test]
fn emit_eth_udp_matches_golden_image() {
    let frame = PacketBuilder::eth_ipv4_udp(
        MacAddr::from(0x02_00_00_00_00_01u64),
        MacAddr::from(0x02_00_00_00_00_02u64),
        SRC_IP,
        DST_IP,
        1234,
        80,
        b"flexsfp",
    );
    assert_eq!(frame, GOLDEN_ETH_UDP);
}

#[test]
fn parse_eth_udp_golden_image() {
    let eth = EthernetFrame::new_checked(&GOLDEN_ETH_UDP[..]).unwrap();
    assert_eq!(eth.dst(), MacAddr::from(0x02_00_00_00_00_01u64));
    assert_eq!(eth.src(), MacAddr::from(0x02_00_00_00_00_02u64));
    assert_eq!(eth.ethertype(), EtherType::Ipv4);
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    assert!(ip.verify_checksum());
    // The Ethernet minimum-size pad is outside the IP datagram.
    assert_eq!(ip.total_len(), 35);
}

#[test]
fn vlan_tag_insertion_matches_golden_image() {
    let tagged = PacketBuilder::with_vlan(&GOLDEN_ETH_UDP, 100, 3);
    assert_eq!(tagged, GOLDEN_ETH_VLAN_UDP);
}

#[test]
fn parse_vlan_golden_image() {
    let eth = EthernetFrame::new_checked(&GOLDEN_ETH_VLAN_UDP[..]).unwrap();
    assert_eq!(eth.ethertype(), EtherType::Vlan);
    let v = VlanFrame::new_checked(eth.payload()).unwrap();
    assert_eq!(v.vid(), 100);
    assert_eq!(v.tci().pcp, 3);
    assert!(!v.tci().dei);
    assert_eq!(v.inner_ethertype(), EtherType::Ipv4);
    let ip = Ipv4Packet::new_checked(v.payload()).unwrap();
    assert!(ip.verify_checksum());
    assert_eq!(ip.dst(), DST_IP);
}

#[test]
fn vlan_pop_recovers_untagged_golden_image() {
    let (tci, untagged) = vlan::pop_tag(&GOLDEN_ETH_VLAN_UDP).unwrap();
    assert_eq!(tci.vid, 100);
    assert_eq!(tci.pcp, 3);
    assert_eq!(untagged, GOLDEN_ETH_UDP);
}
