//! IPv6 packet view.
//!
//! The paper's telecom retrofit scenario (§2.1) names "per-subscriber IPv6
//! filtering" as a policy a FlexSFP must enforce on legacy switches, so the
//! dataplane needs a first-class IPv6 view even though the NAT case study
//! is IPv4-only.

use crate::addr::IpProtocol;
use crate::{be16, check_len, set_be16, Result, WireError};

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// A 128-bit IPv6 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv6Addr(pub [u8; 16]);

impl Ipv6Addr {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Ipv6Addr = Ipv6Addr([0; 16]);

    /// Build from a slice; panics if `b.len() != 16`.
    pub fn from_bytes(b: &[u8]) -> Ipv6Addr {
        let mut out = [0u8; 16];
        out.copy_from_slice(b);
        Ipv6Addr(out)
    }

    /// True for multicast addresses (ff00::/8).
    pub fn is_multicast(&self) -> bool {
        self.0[0] == 0xff
    }

    /// True for link-local unicast (fe80::/10).
    pub fn is_link_local(&self) -> bool {
        self.0[0] == 0xfe && (self.0[1] & 0xc0) == 0x80
    }

    /// The /64 prefix as a u64 — used by per-subscriber prefix filters.
    pub fn prefix64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }
}

impl core::fmt::Display for Ipv6Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Simple full form (no ::-compression): fine for diagnostics.
        for (i, pair) in self.0.chunks(2).enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{:x}", u16::from_be_bytes([pair[0], pair[1]]))?;
        }
        Ok(())
    }
}

/// A typed view over an IPv6 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv6Packet { buffer }
    }

    /// Wrap `buffer`, validating version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        let p = Ipv6Packet { buffer };
        if p.version() != 6 {
            return Err(WireError::BadVersion);
        }
        if HEADER_LEN + p.payload_len() as usize > p.buffer.as_ref().len() {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (must be 6).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Traffic class.
    pub fn traffic_class(&self) -> u8 {
        let b = self.buffer.as_ref();
        (b[0] << 4) | (b[1] >> 4)
    }

    /// 20-bit flow label.
    pub fn flow_label(&self) -> u32 {
        let b = self.buffer.as_ref();
        (u32::from(b[1] & 0x0f) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Next header (L4 protocol or extension header).
    pub fn next_header(&self) -> IpProtocol {
        IpProtocol::from_u8(self.buffer.as_ref()[6])
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        Ipv6Addr::from_bytes(&self.buffer.as_ref()[8..24])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        Ipv6Addr::from_bytes(&self.buffer.as_ref()[24..40])
    }

    /// The payload (exactly `payload_len` bytes past the header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + self.payload_len() as usize]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    /// Set version (upper nibble of byte 0).
    pub fn set_version(&mut self, v: u8) {
        let b = self.buffer.as_mut();
        b[0] = (v << 4) | (b[0] & 0x0f);
    }

    /// Set the traffic class.
    pub fn set_traffic_class(&mut self, tc: u8) {
        let b = self.buffer.as_mut();
        b[0] = (b[0] & 0xf0) | (tc >> 4);
        b[1] = (tc << 4) | (b[1] & 0x0f);
    }

    /// Set the 20-bit flow label.
    pub fn set_flow_label(&mut self, fl: u32) {
        let b = self.buffer.as_mut();
        b[1] = (b[1] & 0xf0) | ((fl >> 16) as u8 & 0x0f);
        b[2] = (fl >> 8) as u8;
        b[3] = fl as u8;
    }

    /// Set the payload length.
    pub fn set_payload_len(&mut self, len: u16) {
        set_be16(self.buffer.as_mut(), 4, len);
    }

    /// Set the next header.
    pub fn set_next_header(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[6] = p.to_u8();
    }

    /// Set the hop limit.
    pub fn set_hop_limit(&mut self, hl: u8) {
        self.buffer.as_mut()[7] = hl;
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[8..24].copy_from_slice(&a.0);
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[24..40].copy_from_slice(&a.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        let mut p = Ipv6Packet::new_unchecked(&mut buf);
        p.set_version(6);
        p.set_traffic_class(0xb8);
        p.set_flow_label(0xabcde);
        p.set_payload_len(8);
        p.set_next_header(IpProtocol::Udp);
        p.set_hop_limit(64);
        let mut src = [0u8; 16];
        src[0] = 0x20;
        src[1] = 0x01;
        src[15] = 1;
        p.set_src(Ipv6Addr(src));
        p.set_dst(Ipv6Addr([0xff; 16]));
        buf
    }

    #[test]
    fn field_round_trip() {
        let buf = sample();
        let p = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 6);
        assert_eq!(p.traffic_class(), 0xb8);
        assert_eq!(p.flow_label(), 0xabcde);
        assert_eq!(p.payload_len(), 8);
        assert_eq!(p.next_header(), IpProtocol::Udp);
        assert_eq!(p.hop_limit(), 64);
        assert!(p.dst().is_multicast());
        assert!(!p.src().is_multicast());
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn version_check() {
        let mut buf = sample();
        buf[0] = 0x45;
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadVersion
        );
    }

    #[test]
    fn payload_len_check() {
        let mut buf = sample();
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn addr_classes() {
        let mut ll = [0u8; 16];
        ll[0] = 0xfe;
        ll[1] = 0x80;
        assert!(Ipv6Addr(ll).is_link_local());
        assert!(!Ipv6Addr(ll).is_multicast());
        let pfx = Ipv6Addr::from_bytes(&[
            0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0x42, 0, 0, 0, 0, 0, 0, 0, 1,
        ]);
        assert_eq!(pfx.prefix64(), 0x20010db8_00000042);
    }

    #[test]
    fn display_full_form() {
        let a = Ipv6Addr::from_bytes(&[0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.to_string(), "2001:db8:0:0:0:0:0:1");
    }
}
