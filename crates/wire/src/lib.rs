//! # flexsfp-wire
//!
//! Typed, zero-copy wire formats for the FlexSFP dataplane.
//!
//! The design follows the smoltcp idiom: each protocol exposes a thin
//! wrapper type (e.g. [`EthernetFrame`]) parameterized over any byte
//! container (`T: AsRef<[u8]>`, optionally `AsMut<[u8]>` for setters).
//! Constructors validate length with [`WireError`] instead of panicking,
//! so malformed packets arriving at an SFP interface can never crash the
//! dataplane model.
//!
//! Protocols implemented (everything the paper's use cases in §3 touch):
//! Ethernet II, 802.1Q VLAN (incl. QinQ), ARP, IPv4 (with options), IPv6,
//! TCP, UDP, ICMPv4, GRE, VXLAN, IP-in-IP and a minimal DNS view for
//! DNS/DoH filtering. [`checksum`] provides the Internet checksum and the
//! RFC 1624 incremental update used by the NAT fast path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod arena;
pub mod arp;
pub mod builder;
pub mod checksum;
pub mod dns;
pub mod ethernet;
pub mod gre;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod tcp;
pub mod udp;
pub mod vlan;
pub mod vxlan;

pub use addr::{EtherType, IpProtocol, MacAddr};
pub use arena::{PacketArena, SharedPacketArena};
pub use arp::{ArpOperation, ArpPacket};
pub use builder::PacketBuilder;
pub use dns::{DnsHeader, DnsQuestion};
pub use ethernet::EthernetFrame;
pub use gre::GrePacket;
pub use icmp::{IcmpPacket, IcmpType};
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;
pub use vlan::VlanFrame;
pub use vxlan::VxlanPacket;

/// Errors produced when interpreting raw bytes as a protocol unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the protocol's fixed header.
    Truncated {
        /// Bytes required by the header.
        required: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length field points outside the buffer or below the header size.
    BadLength,
    /// A version or type field holds a value this view cannot represent.
    BadVersion,
    /// A field combination is malformed (reserved bits set, bad flags, ...).
    Malformed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated {
                required,
                available,
            } => write!(f, "truncated: need {required} bytes, have {available}"),
            WireError::BadLength => write!(f, "length field inconsistent with buffer"),
            WireError::BadVersion => write!(f, "unsupported version or type"),
            WireError::Malformed => write!(f, "malformed field combination"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias for wire operations.
pub type Result<T> = core::result::Result<T, WireError>;

pub(crate) fn check_len(buf: &[u8], required: usize) -> Result<()> {
    if buf.len() < required {
        Err(WireError::Truncated {
            required,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}

/// Read a big-endian u16 at `off` (caller guarantees bounds).
pub(crate) fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Read a big-endian u32 at `off` (caller guarantees bounds).
pub(crate) fn be32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

pub(crate) fn set_be16(buf: &mut [u8], off: usize, value: u16) {
    buf[off..off + 2].copy_from_slice(&value.to_be_bytes());
}

pub(crate) fn set_be32(buf: &mut [u8], off: usize, value: u32) {
    buf[off..off + 4].copy_from_slice(&value.to_be_bytes());
}
