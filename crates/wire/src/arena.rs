//! Reusable frame-buffer pool.
//!
//! [`PacketArena`] hands out fixed-capacity `Vec<u8>` frame buffers and takes
//! them back once a packet leaves the simulation, so a streaming run touches
//! a handful of buffers instead of allocating one per packet. The arena is a
//! cheap clonable handle (internally reference-counted) intended to live on
//! one worker thread; parallel sweeps create one arena per worker.
//!
//! The lease/recycle contract is advisory: a leased buffer is a plain
//! `Vec<u8>` and may simply be dropped, in which case the arena allocates a
//! fresh buffer on the next lease. Recycling a buffer that grew beyond the
//! arena's frame capacity keeps it (capacity is the *minimum* kept), while
//! buffers that were shrunk below it are discarded rather than pooled, so the
//! steady state is a small set of full-size buffers.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default per-buffer capacity: a full 1514-byte Ethernet frame (no FCS)
/// rounded up to a friendly power-of-two-ish size with headroom for an
/// encapsulation header or a VLAN tag.
pub const DEFAULT_FRAME_CAPACITY: usize = 1536;

#[derive(Debug, Default)]
struct ArenaStats {
    leases: Cell<u64>,
    allocations: Cell<u64>,
    recycles: Cell<u64>,
    discards: Cell<u64>,
}

#[derive(Debug)]
struct ArenaInner {
    free: RefCell<Vec<Vec<u8>>>,
    frame_capacity: usize,
    stats: ArenaStats,
}

/// A pool of reusable frame buffers (see the module docs for the contract).
#[derive(Debug, Clone)]
pub struct PacketArena {
    inner: Rc<ArenaInner>,
}

impl Default for PacketArena {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketArena {
    /// An empty arena with the [`DEFAULT_FRAME_CAPACITY`].
    pub fn new() -> Self {
        Self::with_frame_capacity(DEFAULT_FRAME_CAPACITY)
    }

    /// An empty arena whose leased buffers reserve `frame_capacity` bytes.
    pub fn with_frame_capacity(frame_capacity: usize) -> Self {
        PacketArena {
            inner: Rc::new(ArenaInner {
                free: RefCell::new(Vec::new()),
                frame_capacity,
                stats: ArenaStats::default(),
            }),
        }
    }

    /// Capacity reserved in each freshly allocated buffer.
    pub fn frame_capacity(&self) -> usize {
        self.inner.frame_capacity
    }

    /// Lease an empty buffer: pooled if available, freshly allocated
    /// otherwise. The returned vector has `len() == 0` and at least
    /// [`frame_capacity`](Self::frame_capacity) spare capacity.
    pub fn lease(&self) -> Vec<u8> {
        let s = &self.inner.stats;
        s.leases.set(s.leases.get() + 1);
        if let Some(buf) = self.inner.free.borrow_mut().pop() {
            return buf;
        }
        s.allocations.set(s.allocations.get() + 1);
        Vec::with_capacity(self.inner.frame_capacity)
    }

    /// Return a buffer to the pool. The buffer is cleared; it is kept only
    /// if its capacity still covers a full frame, otherwise it is dropped
    /// (and counted as a discard).
    pub fn recycle(&self, mut buf: Vec<u8>) {
        let s = &self.inner.stats;
        if buf.capacity() < self.inner.frame_capacity {
            s.discards.set(s.discards.get() + 1);
            return;
        }
        buf.clear();
        s.recycles.set(s.recycles.get() + 1);
        self.inner.free.borrow_mut().push(buf);
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Total leases served (pooled + freshly allocated).
    pub fn leases(&self) -> u64 {
        self.inner.stats.leases.get()
    }

    /// Fresh heap allocations performed — the O(1)-memory witness: a
    /// streaming run that recycles every frame keeps this at the number of
    /// buffers simultaneously in flight, independent of trace length.
    pub fn allocations(&self) -> u64 {
        self.inner.stats.allocations.get()
    }

    /// Buffers successfully returned to the pool.
    pub fn recycles(&self) -> u64 {
        self.inner.stats.recycles.get()
    }

    /// Buffers rejected at recycle time for having lost their capacity.
    pub fn discards(&self) -> u64 {
        self.inner.stats.discards.get()
    }
}

#[derive(Debug, Default)]
struct SharedArenaStats {
    leases: AtomicU64,
    allocations: AtomicU64,
    recycles: AtomicU64,
    discards: AtomicU64,
}

#[derive(Debug)]
struct SharedArenaInner {
    free: std::sync::Mutex<Vec<Vec<u8>>>,
    frame_capacity: usize,
    stats: SharedArenaStats,
}

/// The thread-safe sibling of [`PacketArena`]: the same lease/recycle
/// contract and counters, but clonable across threads, so the sharded
/// dataplane's dispatcher, workers, and reconciler can draw from and
/// return to one pool. Frames then cross the shard boundary as moves
/// of pool-leased buffers — the O(1) allocation witness spans the
/// whole pipeline instead of one thread.
///
/// The pool lock is taken once per lease/recycle, off the per-byte
/// path; counters are relaxed atomics.
#[derive(Debug, Clone)]
pub struct SharedPacketArena {
    inner: std::sync::Arc<SharedArenaInner>,
}

impl Default for SharedPacketArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedPacketArena {
    /// An empty shared arena with the [`DEFAULT_FRAME_CAPACITY`].
    pub fn new() -> Self {
        Self::with_frame_capacity(DEFAULT_FRAME_CAPACITY)
    }

    /// An empty shared arena whose buffers reserve `frame_capacity` bytes.
    pub fn with_frame_capacity(frame_capacity: usize) -> Self {
        SharedPacketArena {
            inner: std::sync::Arc::new(SharedArenaInner {
                free: std::sync::Mutex::new(Vec::new()),
                frame_capacity,
                stats: SharedArenaStats::default(),
            }),
        }
    }

    /// Capacity reserved in each freshly allocated buffer.
    pub fn frame_capacity(&self) -> usize {
        self.inner.frame_capacity
    }

    /// Lease an empty buffer: pooled if available, freshly allocated
    /// otherwise.
    pub fn lease(&self) -> Vec<u8> {
        self.inner.stats.leases.fetch_add(1, Ordering::Relaxed);
        if let Some(buf) = self.inner.free.lock().expect("arena pool lock").pop() {
            return buf;
        }
        self.inner.stats.allocations.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(self.inner.frame_capacity)
    }

    /// Lease a buffer pre-filled with a copy of `bytes` — the one
    /// accounted copy the sharded path makes (control broadcast).
    pub fn lease_copy(&self, bytes: &[u8]) -> Vec<u8> {
        let mut buf = self.lease();
        buf.extend_from_slice(bytes);
        buf
    }

    /// Return a buffer to the pool (cleared; discarded if it lost the
    /// arena's frame capacity).
    pub fn recycle(&self, mut buf: Vec<u8>) {
        let s = &self.inner.stats;
        if buf.capacity() < self.inner.frame_capacity {
            s.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        s.recycles.fetch_add(1, Ordering::Relaxed);
        self.inner.free.lock().expect("arena pool lock").push(buf);
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.inner.free.lock().expect("arena pool lock").len()
    }

    /// Total leases served (pooled + freshly allocated).
    pub fn leases(&self) -> u64 {
        self.inner.stats.leases.load(Ordering::Relaxed)
    }

    /// Fresh heap allocations performed — the O(1)-memory witness
    /// across every thread sharing this pool.
    pub fn allocations(&self) -> u64 {
        self.inner.stats.allocations.load(Ordering::Relaxed)
    }

    /// Buffers successfully returned to the pool.
    pub fn recycles(&self) -> u64 {
        self.inner.stats.recycles.load(Ordering::Relaxed)
    }

    /// Buffers rejected at recycle time for having lost their capacity.
    pub fn discards(&self) -> u64 {
        self.inner.stats.discards.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_reuses_buffer() {
        let arena = PacketArena::new();
        let mut a = arena.lease();
        a.extend_from_slice(&[1, 2, 3]);
        let ptr = a.as_ptr();
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.lease();
        assert_eq!(b.as_ptr(), ptr, "recycled buffer must be handed back");
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert!(b.capacity() >= DEFAULT_FRAME_CAPACITY);
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.leases(), 2);
    }

    #[test]
    fn steady_state_allocations_are_bounded() {
        let arena = PacketArena::new();
        for _ in 0..10_000 {
            let mut f = arena.lease();
            f.resize(60, 0xab);
            arena.recycle(f);
        }
        assert_eq!(arena.allocations(), 1, "one in-flight frame => one alloc");
        assert_eq!(arena.leases(), 10_000);
        assert_eq!(arena.recycles(), 10_000);
    }

    #[test]
    fn undersized_buffers_are_discarded() {
        let arena = PacketArena::with_frame_capacity(256);
        arena.recycle(Vec::with_capacity(16));
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.discards(), 1);
        // Oversized buffers are fine: capacity is a minimum.
        arena.recycle(Vec::with_capacity(4096));
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn clones_share_the_pool() {
        let arena = PacketArena::new();
        let handle = arena.clone();
        handle.recycle(arena.lease());
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.leases(), 1);
    }

    #[test]
    fn shared_arena_pools_across_threads() {
        let arena = SharedPacketArena::new();
        // Lease on this thread, recycle on another, lease back here:
        // one allocation total.
        let buf = arena.lease();
        let remote = arena.clone();
        std::thread::spawn(move || remote.recycle(buf))
            .join()
            .unwrap();
        let again = arena.lease();
        assert!(again.is_empty());
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.leases(), 2);
        assert_eq!(arena.recycles(), 1);
    }

    #[test]
    fn shared_arena_lease_copy_accounts_one_lease() {
        let arena = SharedPacketArena::with_frame_capacity(256);
        let copy = arena.lease_copy(&[1, 2, 3]);
        assert_eq!(copy, vec![1, 2, 3]);
        assert_eq!(arena.leases(), 1);
        // Undersized recycles are discarded, like the single-thread pool.
        arena.recycle(Vec::with_capacity(16));
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.discards(), 1);
    }
}
