//! Reusable frame-buffer pool.
//!
//! [`PacketArena`] hands out fixed-capacity `Vec<u8>` frame buffers and takes
//! them back once a packet leaves the simulation, so a streaming run touches
//! a handful of buffers instead of allocating one per packet. The arena is a
//! cheap clonable handle (internally reference-counted) intended to live on
//! one worker thread; parallel sweeps create one arena per worker.
//!
//! The lease/recycle contract is advisory: a leased buffer is a plain
//! `Vec<u8>` and may simply be dropped, in which case the arena allocates a
//! fresh buffer on the next lease. Recycling a buffer that grew beyond the
//! arena's frame capacity keeps it (capacity is the *minimum* kept), while
//! buffers that were shrunk below it are discarded rather than pooled, so the
//! steady state is a small set of full-size buffers.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Default per-buffer capacity: a full 1514-byte Ethernet frame (no FCS)
/// rounded up to a friendly power-of-two-ish size with headroom for an
/// encapsulation header or a VLAN tag.
pub const DEFAULT_FRAME_CAPACITY: usize = 1536;

#[derive(Debug, Default)]
struct ArenaStats {
    leases: Cell<u64>,
    allocations: Cell<u64>,
    recycles: Cell<u64>,
    discards: Cell<u64>,
}

#[derive(Debug)]
struct ArenaInner {
    free: RefCell<Vec<Vec<u8>>>,
    frame_capacity: usize,
    stats: ArenaStats,
}

/// A pool of reusable frame buffers (see the module docs for the contract).
#[derive(Debug, Clone)]
pub struct PacketArena {
    inner: Rc<ArenaInner>,
}

impl Default for PacketArena {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketArena {
    /// An empty arena with the [`DEFAULT_FRAME_CAPACITY`].
    pub fn new() -> Self {
        Self::with_frame_capacity(DEFAULT_FRAME_CAPACITY)
    }

    /// An empty arena whose leased buffers reserve `frame_capacity` bytes.
    pub fn with_frame_capacity(frame_capacity: usize) -> Self {
        PacketArena {
            inner: Rc::new(ArenaInner {
                free: RefCell::new(Vec::new()),
                frame_capacity,
                stats: ArenaStats::default(),
            }),
        }
    }

    /// Capacity reserved in each freshly allocated buffer.
    pub fn frame_capacity(&self) -> usize {
        self.inner.frame_capacity
    }

    /// Lease an empty buffer: pooled if available, freshly allocated
    /// otherwise. The returned vector has `len() == 0` and at least
    /// [`frame_capacity`](Self::frame_capacity) spare capacity.
    pub fn lease(&self) -> Vec<u8> {
        let s = &self.inner.stats;
        s.leases.set(s.leases.get() + 1);
        if let Some(buf) = self.inner.free.borrow_mut().pop() {
            return buf;
        }
        s.allocations.set(s.allocations.get() + 1);
        Vec::with_capacity(self.inner.frame_capacity)
    }

    /// Return a buffer to the pool. The buffer is cleared; it is kept only
    /// if its capacity still covers a full frame, otherwise it is dropped
    /// (and counted as a discard).
    pub fn recycle(&self, mut buf: Vec<u8>) {
        let s = &self.inner.stats;
        if buf.capacity() < self.inner.frame_capacity {
            s.discards.set(s.discards.get() + 1);
            return;
        }
        buf.clear();
        s.recycles.set(s.recycles.get() + 1);
        self.inner.free.borrow_mut().push(buf);
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.inner.free.borrow().len()
    }

    /// Total leases served (pooled + freshly allocated).
    pub fn leases(&self) -> u64 {
        self.inner.stats.leases.get()
    }

    /// Fresh heap allocations performed — the O(1)-memory witness: a
    /// streaming run that recycles every frame keeps this at the number of
    /// buffers simultaneously in flight, independent of trace length.
    pub fn allocations(&self) -> u64 {
        self.inner.stats.allocations.get()
    }

    /// Buffers successfully returned to the pool.
    pub fn recycles(&self) -> u64 {
        self.inner.stats.recycles.get()
    }

    /// Buffers rejected at recycle time for having lost their capacity.
    pub fn discards(&self) -> u64 {
        self.inner.stats.discards.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_reuses_buffer() {
        let arena = PacketArena::new();
        let mut a = arena.lease();
        a.extend_from_slice(&[1, 2, 3]);
        let ptr = a.as_ptr();
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.lease();
        assert_eq!(b.as_ptr(), ptr, "recycled buffer must be handed back");
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert!(b.capacity() >= DEFAULT_FRAME_CAPACITY);
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.leases(), 2);
    }

    #[test]
    fn steady_state_allocations_are_bounded() {
        let arena = PacketArena::new();
        for _ in 0..10_000 {
            let mut f = arena.lease();
            f.resize(60, 0xab);
            arena.recycle(f);
        }
        assert_eq!(arena.allocations(), 1, "one in-flight frame => one alloc");
        assert_eq!(arena.leases(), 10_000);
        assert_eq!(arena.recycles(), 10_000);
    }

    #[test]
    fn undersized_buffers_are_discarded() {
        let arena = PacketArena::with_frame_capacity(256);
        arena.recycle(Vec::with_capacity(16));
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.discards(), 1);
        // Oversized buffers are fine: capacity is a minimum.
        arena.recycle(Vec::with_capacity(4096));
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn clones_share_the_pool() {
        let arena = PacketArena::new();
        let handle = arena.clone();
        handle.recycle(arena.lease());
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.leases(), 1);
    }
}
