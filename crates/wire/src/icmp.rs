//! ICMPv4 message view.

use crate::{be16, check_len, checksum, set_be16, Result};

/// Minimum ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMPv4 message types the dataplane distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IcmpType {
    /// Decode from the on-wire type byte.
    pub fn from_u8(v: u8) -> IcmpType {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }

    /// Encode to the on-wire type byte.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }
}

/// A typed view over an ICMPv4 message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        IcmpPacket { buffer }
    }

    /// Wrap `buffer`, validating the fixed header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        Ok(IcmpPacket { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Message type.
    pub fn msg_type(&self) -> IcmpType {
        IcmpType::from_u8(self.buffer.as_ref()[0])
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Echo identifier (valid for echo request/reply).
    pub fn echo_ident(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Echo sequence number (valid for echo request/reply).
    pub fn echo_seq(&self) -> u16 {
        be16(self.buffer.as_ref(), 6)
    }

    /// Data past the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Verify the message checksum (covers the whole ICMP message).
    pub fn verify_checksum(&self) -> bool {
        checksum::raw_sum(self.buffer.as_ref()) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> IcmpPacket<T> {
    /// Set the message type.
    pub fn set_msg_type(&mut self, t: IcmpType) {
        self.buffer.as_mut()[0] = t.to_u8();
    }

    /// Set the message code.
    pub fn set_code(&mut self, c: u8) {
        self.buffer.as_mut()[1] = c;
    }

    /// Set the echo identifier.
    pub fn set_echo_ident(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 4, v);
    }

    /// Set the echo sequence number.
    pub fn set_echo_seq(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 6, v);
    }

    /// Recompute and store the checksum.
    pub fn fill_checksum(&mut self) {
        set_be16(self.buffer.as_mut(), 2, 0);
        let c = checksum::checksum(self.buffer.as_ref());
        set_be16(self.buffer.as_mut(), 2, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let mut buf = vec![0u8; HEADER_LEN + 16];
        let mut p = IcmpPacket::new_unchecked(&mut buf);
        p.set_msg_type(IcmpType::EchoRequest);
        p.set_code(0);
        p.set_echo_ident(0x1234);
        p.set_echo_seq(7);
        p.fill_checksum();
        let p = IcmpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.msg_type(), IcmpType::EchoRequest);
        assert_eq!(p.echo_ident(), 0x1234);
        assert_eq!(p.echo_seq(), 7);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut buf = vec![0u8; HEADER_LEN];
        let mut p = IcmpPacket::new_unchecked(&mut buf);
        p.set_msg_type(IcmpType::EchoReply);
        p.fill_checksum();
        buf[7] ^= 1;
        assert!(!IcmpPacket::new_checked(&buf[..]).unwrap().verify_checksum());
    }

    #[test]
    fn type_round_trip() {
        for v in [0u8, 3, 8, 11, 42] {
            assert_eq!(IcmpType::from_u8(v).to_u8(), v);
        }
    }
}
