//! UDP datagram view.

use crate::{be16, check_len, checksum, set_be16, Result, WireError};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Wrap `buffer`, validating header and length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        let d = UdpDatagram { buffer };
        let len = d.len() as usize;
        if len < HEADER_LEN || len > d.buffer.as_ref().len() {
            return Err(WireError::BadLength);
        }
        Ok(d)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 = not computed, legal for IPv4).
    pub fn checksum_field(&self) -> u16 {
        be16(self.buffer.as_ref(), 6)
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verify the checksum against an IPv4 pseudo-header. A zero checksum
    /// field counts as valid (checksum disabled).
    pub fn verify_checksum_v4(&self, src: u32, dst: u32) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let ph = checksum::pseudo_header_sum(src.to_be_bytes(), dst.to_be_bytes(), 17, self.len());
        let body = checksum::raw_sum(&self.buffer.as_ref()[..self.len() as usize]);
        checksum::fold(ph + body) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set the source port (no checksum patch; see
    /// [`UdpDatagram::fill_checksum_v4`]).
    pub fn set_src_port(&mut self, p: u16) {
        set_be16(self.buffer.as_mut(), 0, p);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        set_be16(self.buffer.as_mut(), 2, p);
    }

    /// Set the length field.
    pub fn set_len(&mut self, l: u16) {
        set_be16(self.buffer.as_mut(), 4, l);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        set_be16(self.buffer.as_mut(), 6, c);
    }

    /// Compute and store the checksum over an IPv4 pseudo-header. Produces
    /// 0xffff instead of 0 per RFC 768 (0 means "no checksum").
    pub fn fill_checksum_v4(&mut self, src: u32, dst: u32) {
        self.set_checksum(0);
        let len = self.len();
        let ph = checksum::pseudo_header_sum(src.to_be_bytes(), dst.to_be_bytes(), 17, len);
        let body = checksum::raw_sum(&self.buffer.as_ref()[..len as usize]);
        let mut c = !(checksum::fold(ph + body) as u16);
        if c == 0 {
            c = 0xffff;
        }
        self.set_checksum(c);
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut d = UdpDatagram::new_unchecked(&mut buf);
        d.set_src_port(5000);
        d.set_dst_port(53);
        d.set_len(12);
        d.payload_mut().copy_from_slice(b"abcd");
        d.fill_checksum_v4(0x0a000001, 0x0a000002);
        buf
    }

    #[test]
    fn parse_and_verify() {
        let buf = sample();
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5000);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.len(), 12);
        assert!(!d.is_empty());
        assert_eq!(d.payload(), b"abcd");
        assert!(d.verify_checksum_v4(0x0a000001, 0x0a000002));
        // Wrong pseudo-header fails.
        assert!(!d.verify_checksum_v4(0x0a000001, 0x0a000003));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = sample();
        buf[6] = 0;
        buf[7] = 0;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum_v4(1, 2));
    }

    #[test]
    fn bad_len_rejected() {
        let mut buf = sample();
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // < header
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
        buf[4..6].copy_from_slice(&200u16.to_be_bytes()); // > buffer
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpDatagram::new_checked(&[0u8; 7][..]).is_err());
    }
}
