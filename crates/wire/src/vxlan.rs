//! VXLAN (RFC 7348) view — the second tunnel format of the §3
//! transformation use case. VXLAN rides over UDP (dst port 4789).

use crate::{check_len, Result, WireError};

/// VXLAN header length.
pub const HEADER_LEN: usize = 8;
/// IANA-assigned VXLAN UDP destination port.
pub const UDP_PORT: u16 = 4789;

/// A typed view over a VXLAN packet (header + inner Ethernet frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VxlanPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VxlanPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        VxlanPacket { buffer }
    }

    /// Wrap `buffer`, validating the I flag and reserved bits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        let p = VxlanPacket { buffer };
        let b = p.buffer.as_ref();
        // Flags: only bit 3 (I) may be set; it MUST be set.
        if b[0] != 0x08 || b[1] != 0 || b[2] != 0 || b[3] != 0 || b[7] != 0 {
            return Err(WireError::Malformed);
        }
        Ok(p)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The 24-bit VXLAN network identifier.
    pub fn vni(&self) -> u32 {
        let b = self.buffer.as_ref();
        (u32::from(b[4]) << 16) | (u32::from(b[5]) << 8) | u32::from(b[6])
    }

    /// The encapsulated Ethernet frame.
    pub fn inner_frame(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VxlanPacket<T> {
    /// Write the valid-I-flag header and the VNI (masked to 24 bits).
    pub fn init(&mut self, vni: u32) {
        let b = self.buffer.as_mut();
        b[0] = 0x08;
        b[1] = 0;
        b[2] = 0;
        b[3] = 0;
        b[4] = (vni >> 16) as u8;
        b[5] = (vni >> 8) as u8;
        b[6] = vni as u8;
        b[7] = 0;
    }
}

/// Build a VXLAN header for `vni` followed by `inner_frame`.
pub fn encapsulate(vni: u32, inner_frame: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; HEADER_LEN];
    VxlanPacket::new_unchecked(&mut out[..]).init(vni);
    out.extend_from_slice(inner_frame);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encapsulate_round_trip() {
        let inner = vec![0xaau8; 60];
        let buf = encapsulate(0x123456, &inner);
        let p = VxlanPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.vni(), 0x123456);
        assert_eq!(p.inner_frame(), &inner[..]);
    }

    #[test]
    fn vni_masked_to_24_bits() {
        let buf = encapsulate(0xff_123456, &[]);
        assert_eq!(VxlanPacket::new_checked(&buf[..]).unwrap().vni(), 0x123456);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let mut buf = encapsulate(1, &[]);
        buf[0] = 0;
        assert_eq!(
            VxlanPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn reserved_bits_rejected() {
        let mut buf = encapsulate(1, &[]);
        buf[7] = 1;
        assert!(VxlanPacket::new_checked(&buf[..]).is_err());
    }
}
