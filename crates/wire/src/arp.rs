//! ARP packet view (Ethernet/IPv4 only, which is what an SFP at the edge
//! of a legacy L2 network sees).

use crate::addr::MacAddr;
use crate::{be16, check_len, set_be16, Result, WireError};

/// Length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOperation {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
    /// Any other opcode, preserved verbatim.
    Other(u16),
}

impl ArpOperation {
    /// Decode from the on-wire opcode.
    pub fn from_u16(v: u16) -> ArpOperation {
        match v {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Other(other),
        }
    }

    /// Encode to the on-wire opcode.
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Other(v) => v,
        }
    }
}

/// A typed view over an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ArpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        ArpPacket { buffer }
    }

    /// Wrap `buffer`, validating length and the hardware/protocol types
    /// (must be Ethernet/IPv4).
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), PACKET_LEN)?;
        let p = ArpPacket { buffer };
        let b = p.buffer.as_ref();
        if be16(b, 0) != 1 || be16(b, 2) != 0x0800 || b[4] != 6 || b[5] != 4 {
            return Err(WireError::Malformed);
        }
        Ok(p)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Operation (request/reply).
    pub fn operation(&self) -> ArpOperation {
        ArpOperation::from_u16(be16(self.buffer.as_ref(), 6))
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[8..14])
    }

    /// Sender protocol (IPv4) address.
    pub fn sender_ip(&self) -> u32 {
        crate::be32(self.buffer.as_ref(), 14)
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[18..24])
    }

    /// Target protocol (IPv4) address.
    pub fn target_ip(&self) -> u32 {
        crate::be32(self.buffer.as_ref(), 24)
    }

    /// True for a gratuitous ARP (sender IP == target IP).
    pub fn is_gratuitous(&self) -> bool {
        self.sender_ip() == self.target_ip()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> ArpPacket<T> {
    /// Write the fixed Ethernet/IPv4 preamble (htype/ptype/hlen/plen).
    pub fn init_ethernet_ipv4(&mut self) {
        let b = self.buffer.as_mut();
        set_be16(b, 0, 1);
        set_be16(b, 2, 0x0800);
        b[4] = 6;
        b[5] = 4;
    }

    /// Set the operation.
    pub fn set_operation(&mut self, op: ArpOperation) {
        set_be16(self.buffer.as_mut(), 6, op.to_u16());
    }

    /// Set the sender hardware address.
    pub fn set_sender_mac(&mut self, m: MacAddr) {
        self.buffer.as_mut()[8..14].copy_from_slice(m.as_bytes());
    }

    /// Set the sender protocol address.
    pub fn set_sender_ip(&mut self, ip: u32) {
        crate::set_be32(self.buffer.as_mut(), 14, ip);
    }

    /// Set the target hardware address.
    pub fn set_target_mac(&mut self, m: MacAddr) {
        self.buffer.as_mut()[18..24].copy_from_slice(m.as_bytes());
    }

    /// Set the target protocol address.
    pub fn set_target_ip(&mut self, ip: u32) {
        crate::set_be32(self.buffer.as_mut(), 24, ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; PACKET_LEN];
        let mut p = ArpPacket::new_unchecked(&mut buf);
        p.init_ethernet_ipv4();
        p.set_operation(ArpOperation::Request);
        p.set_sender_mac(MacAddr([1; 6]));
        p.set_sender_ip(0x0a000001);
        p.set_target_mac(MacAddr::ZERO);
        p.set_target_ip(0x0a000002);
        buf
    }

    #[test]
    fn parse_round_trip() {
        let buf = sample();
        let p = ArpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.operation(), ArpOperation::Request);
        assert_eq!(p.sender_mac(), MacAddr([1; 6]));
        assert_eq!(p.sender_ip(), 0x0a000001);
        assert_eq!(p.target_ip(), 0x0a000002);
        assert!(!p.is_gratuitous());
    }

    #[test]
    fn gratuitous_detection() {
        let mut buf = sample();
        {
            let mut p = ArpPacket::new_unchecked(&mut buf);
            p.set_target_ip(0x0a000001);
        }
        assert!(ArpPacket::new_checked(&buf[..]).unwrap().is_gratuitous());
    }

    #[test]
    fn non_ethernet_rejected() {
        let mut buf = sample();
        buf[0] = 0;
        buf[1] = 6; // htype = IEEE 802
        assert_eq!(
            ArpPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn opcode_round_trip() {
        for v in [1u16, 2, 9] {
            assert_eq!(ArpOperation::from_u16(v).to_u16(), v);
        }
    }
}
