//! Minimal DNS view: header fields and first-question extraction.
//!
//! The paper cites P4DDPI-style DNS filtering and DoH blocking as edge
//! policies a FlexSFP should enforce (§2.1, §3). The module only needs to
//! read the query name of the first question at line rate — it never
//! builds responses — so this view is deliberately minimal. Name
//! decompression is bounded to protect the hardware pipeline model from
//! compression-loop attacks.

use crate::{be16, check_len, Result, WireError};

/// DNS fixed header length.
pub const HEADER_LEN: usize = 12;
/// Maximum length of a presentation-format name we will extract.
pub const MAX_NAME_LEN: usize = 255;
/// Bound on compression-pointer hops (loop protection).
const MAX_POINTER_HOPS: usize = 8;

/// A typed view over the DNS fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> DnsHeader<T> {
    /// Wrap `buffer`, validating the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        Ok(DnsHeader { buffer })
    }

    /// Transaction id.
    pub fn id(&self) -> u16 {
        be16(self.buffer.as_ref(), 0)
    }

    /// True if this is a response (QR bit).
    pub fn is_response(&self) -> bool {
        self.buffer.as_ref()[2] & 0x80 != 0
    }

    /// Opcode (0 = standard query).
    pub fn opcode(&self) -> u8 {
        (self.buffer.as_ref()[2] >> 3) & 0x0f
    }

    /// Response code.
    pub fn rcode(&self) -> u8 {
        self.buffer.as_ref()[3] & 0x0f
    }

    /// Question count.
    pub fn qdcount(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Answer count.
    pub fn ancount(&self) -> u16 {
        be16(self.buffer.as_ref(), 6)
    }

    /// Parse the first question following the header.
    pub fn first_question(&self) -> Result<DnsQuestion> {
        if self.qdcount() == 0 {
            return Err(WireError::Malformed);
        }
        parse_question(self.buffer.as_ref(), HEADER_LEN)
    }
}

/// A decoded DNS question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Query name in lowercase presentation format (`example.com`).
    pub qname: String,
    /// Query type (1 = A, 28 = AAAA, 65 = HTTPS, ...).
    pub qtype: u16,
    /// Query class (1 = IN).
    pub qclass: u16,
}

impl DnsQuestion {
    /// True if `qname` equals `domain` or is a subdomain of it.
    /// Comparison is case-insensitive (qname is already lowercased).
    pub fn matches_domain(&self, domain: &str) -> bool {
        let domain = domain.to_ascii_lowercase();
        self.qname == domain || self.qname.ends_with(&format!(".{domain}"))
    }
}

fn parse_question(buf: &[u8], qname_off: usize) -> Result<DnsQuestion> {
    let (qname, end) = parse_name(buf, qname_off)?;
    check_len(buf, end + 4)?;
    Ok(DnsQuestion {
        qname,
        qtype: be16(buf, end),
        qclass: be16(buf, end + 2),
    })
}

/// Parse a (possibly compressed) DNS name starting at `off`. Returns the
/// lowercase presentation-format name and the offset just past the name's
/// in-place encoding.
fn parse_name(buf: &[u8], mut off: usize) -> Result<(String, usize)> {
    let mut name = String::new();
    let mut hops = 0usize;
    let mut end_after: Option<usize> = None;
    loop {
        check_len(buf, off + 1)?;
        let len = buf[off] as usize;
        if len == 0 {
            off += 1;
            break;
        }
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            check_len(buf, off + 2)?;
            hops += 1;
            if hops > MAX_POINTER_HOPS {
                return Err(WireError::Malformed);
            }
            let target = (usize::from(buf[off] & 0x3f) << 8) | usize::from(buf[off + 1]);
            if end_after.is_none() {
                end_after = Some(off + 2);
            }
            if target >= off {
                // Forward pointers enable loops; reject.
                return Err(WireError::Malformed);
            }
            off = target;
            continue;
        }
        if len & 0xc0 != 0 {
            return Err(WireError::Malformed);
        }
        check_len(buf, off + 1 + len)?;
        if !name.is_empty() {
            name.push('.');
        }
        for &b in &buf[off + 1..off + 1 + len] {
            name.push(b.to_ascii_lowercase() as char);
        }
        if name.len() > MAX_NAME_LEN {
            return Err(WireError::Malformed);
        }
        off += 1 + len;
    }
    Ok((name, end_after.unwrap_or(off)))
}

/// Encode a presentation-format name into wire format labels.
pub fn encode_name(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.len() + 2);
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out
}

/// Build a minimal standard query for `name` with the given qtype.
pub fn build_query(id: u16, name: &str, qtype: u16) -> Vec<u8> {
    let mut out = vec![0u8; HEADER_LEN];
    out[0..2].copy_from_slice(&id.to_be_bytes());
    out[2] = 0x01; // RD
    out[4..6].copy_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out.extend_from_slice(&encode_name(name));
    out.extend_from_slice(&qtype.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // IN
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_query() {
        let q = build_query(0x99aa, "DoH.Example.COM", 28);
        let h = DnsHeader::new_checked(&q[..]).unwrap();
        assert_eq!(h.id(), 0x99aa);
        assert!(!h.is_response());
        assert_eq!(h.opcode(), 0);
        assert_eq!(h.qdcount(), 1);
        let question = h.first_question().unwrap();
        assert_eq!(question.qname, "doh.example.com");
        assert_eq!(question.qtype, 28);
        assert_eq!(question.qclass, 1);
    }

    #[test]
    fn domain_matching() {
        let q = DnsQuestion {
            qname: "dns.google.com".into(),
            qtype: 1,
            qclass: 1,
        };
        assert!(q.matches_domain("google.com"));
        assert!(q.matches_domain("dns.google.com"));
        assert!(q.matches_domain("GOOGLE.com"));
        assert!(!q.matches_domain("oogle.com"));
        assert!(!q.matches_domain("example.com"));
    }

    #[test]
    fn compression_pointer_resolved() {
        // Header + name "a.bc" at offset 12, then a second name that is a
        // pointer to offset 12.
        let mut buf = vec![0u8; HEADER_LEN];
        buf[4..6].copy_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&[1, b'a', 2, b'b', b'c', 0]); // offset 12..18
        let ptr_off = buf.len();
        buf.extend_from_slice(&[0xc0, 12]); // pointer to 12
        buf.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass for pointer name
        let (name, end) = parse_name(&buf, ptr_off).unwrap();
        assert_eq!(name, "a.bc");
        assert_eq!(end, ptr_off + 2);
    }

    #[test]
    fn pointer_loop_rejected() {
        // A name at offset 12 that points forward/to itself.
        let mut buf = vec![0u8; HEADER_LEN];
        buf.extend_from_slice(&[0xc0, 12]);
        assert!(parse_name(&buf, 12).is_err());
    }

    #[test]
    fn truncated_name_rejected() {
        let mut buf = vec![0u8; HEADER_LEN];
        buf.extend_from_slice(&[5, b'a', b'b']); // label claims 5, has 2
        assert!(parse_name(&buf, 12).is_err());
    }

    #[test]
    fn zero_questions_rejected() {
        let buf = [0u8; HEADER_LEN];
        let h = DnsHeader::new_checked(&buf[..]).unwrap();
        assert!(h.first_question().is_err());
    }

    #[test]
    fn overlong_name_rejected() {
        let mut buf = vec![0u8; HEADER_LEN];
        // 5 labels of 63 bytes = 319 chars > 255.
        for _ in 0..5 {
            buf.push(63);
            buf.extend_from_slice(&[b'x'; 63]);
        }
        buf.push(0);
        assert!(parse_name(&buf, HEADER_LEN).is_err());
    }
}
