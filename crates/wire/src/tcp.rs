//! TCP segment view.

use crate::{be16, be32, check_len, checksum, set_be16, set_be32, Result, WireError};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits (low byte of the flags word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN — sender finished.
    pub fin: bool,
    /// SYN — synchronize sequence numbers.
    pub syn: bool,
    /// RST — reset connection.
    pub rst: bool,
    /// PSH — push data.
    pub psh: bool,
    /// ACK — acknowledgment valid.
    pub ack: bool,
    /// URG — urgent pointer valid.
    pub urg: bool,
    /// ECE — ECN echo.
    pub ece: bool,
    /// CWR — congestion window reduced.
    pub cwr: bool,
}

impl TcpFlags {
    /// Decode from the on-wire byte.
    pub fn from_u8(v: u8) -> TcpFlags {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
            urg: v & 0x20 != 0,
            ece: v & 0x40 != 0,
            cwr: v & 0x80 != 0,
        }
    }

    /// Encode to the on-wire byte.
    pub fn to_u8(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
            | u8::from(self.urg) << 5
            | u8::from(self.ece) << 6
            | u8::from(self.cwr) << 7
    }

    /// Flags of a connection-opening segment.
    pub fn syn_only() -> TcpFlags {
        TcpFlags {
            syn: true,
            ..Default::default()
        }
    }
}

/// A typed view over a TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Wrap `buffer`, validating the data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), MIN_HEADER_LEN)?;
        let s = TcpSegment { buffer };
        let dof = s.header_len();
        if !(MIN_HEADER_LEN..=60).contains(&dof) || dof > s.buffer.as_ref().len() {
            return Err(WireError::BadLength);
        }
        Ok(s)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        be32(self.buffer.as_ref(), 4)
    }

    /// Acknowledgment number.
    pub fn ack_num(&self) -> u32 {
        be32(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_u8(self.buffer.as_ref()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        be16(self.buffer.as_ref(), 14)
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        be16(self.buffer.as_ref(), 16)
    }

    /// Urgent pointer.
    pub fn urgent(&self) -> u16 {
        be16(self.buffer.as_ref(), 18)
    }

    /// Options region.
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// Payload following the header (to end of buffer — the caller slices
    /// the buffer to the IP payload bounds first).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum_v4(&self, src: u32, dst: u32) -> bool {
        let buf = self.buffer.as_ref();
        let ph =
            checksum::pseudo_header_sum(src.to_be_bytes(), dst.to_be_bytes(), 6, buf.len() as u16);
        checksum::fold(ph + checksum::raw_sum(buf)) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        set_be16(self.buffer.as_mut(), 0, p);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        set_be16(self.buffer.as_mut(), 2, p);
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 4, v);
    }

    /// Set the acknowledgment number.
    pub fn set_ack_num(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 8, v);
    }

    /// Set the header length in bytes (multiple of 4).
    pub fn set_header_len(&mut self, len: usize) {
        let b = self.buffer.as_mut();
        b[12] = (((len / 4) as u8) << 4) | (b[12] & 0x0f);
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.buffer.as_mut()[13] = f.to_u8();
    }

    /// Set the receive window.
    pub fn set_window(&mut self, w: u16) {
        set_be16(self.buffer.as_mut(), 14, w);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        set_be16(self.buffer.as_mut(), 16, c);
    }

    /// Compute and store the checksum over an IPv4 pseudo-header.
    pub fn fill_checksum_v4(&mut self, src: u32, dst: u32) {
        self.set_checksum(0);
        let buf = self.buffer.as_ref();
        let ph =
            checksum::pseudo_header_sum(src.to_be_bytes(), dst.to_be_bytes(), 6, buf.len() as u16);
        let c = !(checksum::fold(ph + checksum::raw_sum(buf)) as u16);
        self.set_checksum(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; MIN_HEADER_LEN + 6];
        let mut s = TcpSegment::new_unchecked(&mut buf);
        s.set_src_port(443);
        s.set_dst_port(51000);
        s.set_seq(0xdeadbeef);
        s.set_ack_num(0x01020304);
        s.set_header_len(20);
        s.set_flags(TcpFlags {
            ack: true,
            psh: true,
            ..Default::default()
        });
        s.set_window(65535);
        buf[20..26].copy_from_slice(b"payload"[..6].as_ref());
        let mut s = TcpSegment::new_unchecked(&mut buf);
        s.fill_checksum_v4(0xc0a80101, 0xc0a80102);
        buf
    }

    #[test]
    fn parse_fields() {
        let buf = sample();
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 443);
        assert_eq!(s.dst_port(), 51000);
        assert_eq!(s.seq(), 0xdeadbeef);
        assert_eq!(s.ack_num(), 0x01020304);
        assert_eq!(s.header_len(), 20);
        assert!(s.flags().ack);
        assert!(s.flags().psh);
        assert!(!s.flags().syn);
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload(), &b"payloa"[..]);
        assert!(s.verify_checksum_v4(0xc0a80101, 0xc0a80102));
        assert!(!s.verify_checksum_v4(0xc0a80101, 0xc0a80103));
    }

    #[test]
    fn flags_round_trip() {
        for v in 0u8..=255 {
            assert_eq!(TcpFlags::from_u8(v).to_u8(), v);
        }
        assert!(TcpFlags::syn_only().syn);
        assert!(!TcpFlags::syn_only().ack);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = sample();
        buf[12] = 0x40; // 16-byte header < 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
        buf[12] = 0xf0; // 60-byte header > buffer
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }
}
