//! 802.1Q VLAN tag view (also used as the inner/outer tag of 802.1ad QinQ).
//!
//! A [`VlanFrame`] views the 4-byte tag that follows the Ethernet source
//! address: 16 bits of TCI (PCP, DEI, VID) followed by the encapsulated
//! EtherType. VLAN tagging / QinQ stacking is one of the paper's §3
//! "Packet Transformation" use cases.

use crate::addr::EtherType;
use crate::{be16, check_len, set_be16, Result};

/// Length of one 802.1Q tag (TCI + inner EtherType).
pub const TAG_LEN: usize = 4;

/// Tag Control Information: priority, drop-eligible, VLAN id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tci {
    /// Priority Code Point (0..=7).
    pub pcp: u8,
    /// Drop Eligible Indicator.
    pub dei: bool,
    /// VLAN identifier (0..=4095; 0 = priority tag, 4095 reserved).
    pub vid: u16,
}

impl Tci {
    /// Decode from the on-wire 16-bit TCI.
    pub fn from_u16(v: u16) -> Tci {
        Tci {
            pcp: (v >> 13) as u8,
            dei: v & 0x1000 != 0,
            vid: v & 0x0fff,
        }
    }

    /// Encode to the on-wire 16-bit TCI. VID is masked to 12 bits.
    pub fn to_u16(self) -> u16 {
        (u16::from(self.pcp & 0x7) << 13) | (u16::from(self.dei) << 12) | (self.vid & 0x0fff)
    }
}

/// A typed view over the VLAN tag region (starting at the TCI), i.e. the
/// bytes at offset 14 of a tagged Ethernet frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VlanFrame<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        VlanFrame { buffer }
    }

    /// Wrap `buffer`, validating the 4-byte tag fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), TAG_LEN)?;
        Ok(VlanFrame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The tag control information.
    pub fn tci(&self) -> Tci {
        Tci::from_u16(be16(self.buffer.as_ref(), 0))
    }

    /// VLAN identifier shortcut.
    pub fn vid(&self) -> u16 {
        self.tci().vid
    }

    /// The EtherType of the encapsulated payload.
    pub fn inner_ethertype(&self) -> EtherType {
        EtherType::from_u16(be16(self.buffer.as_ref(), 2))
    }

    /// Payload following the tag.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[TAG_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VlanFrame<T> {
    /// Set the tag control information.
    pub fn set_tci(&mut self, tci: Tci) {
        set_be16(self.buffer.as_mut(), 0, tci.to_u16());
    }

    /// Set the encapsulated EtherType.
    pub fn set_inner_ethertype(&mut self, ty: EtherType) {
        set_be16(self.buffer.as_mut(), 2, ty.to_u16());
    }

    /// Mutable payload following the tag.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[TAG_LEN..]
    }
}

/// Insert a VLAN tag into a raw Ethernet frame buffer, returning the new
/// frame. `tag_ethertype` is the tag's own ethertype (0x8100 C-tag or
/// 0x88a8 S-tag for QinQ outer tags).
pub fn push_tag(frame: &[u8], tag_ethertype: EtherType, tci: Tci) -> Result<Vec<u8>> {
    check_len(frame, crate::ethernet::HEADER_LEN)?;
    let mut out = Vec::with_capacity(frame.len() + TAG_LEN);
    out.extend_from_slice(&frame[0..12]);
    out.extend_from_slice(&tag_ethertype.to_u16().to_be_bytes());
    out.extend_from_slice(&tci.to_u16().to_be_bytes());
    out.extend_from_slice(&frame[12..]);
    Ok(out)
}

/// Remove the outermost VLAN tag from a raw Ethernet frame buffer.
/// Returns `(tci, untagged_frame)`, or an error if the frame is untagged.
pub fn pop_tag(frame: &[u8]) -> Result<(Tci, Vec<u8>)> {
    check_len(frame, crate::ethernet::HEADER_LEN + TAG_LEN)?;
    let ethertype = EtherType::from_u16(be16(frame, 12));
    if !ethertype.is_vlan() {
        return Err(crate::WireError::Malformed);
    }
    let tci = Tci::from_u16(be16(frame, 14));
    let mut out = Vec::with_capacity(frame.len() - TAG_LEN);
    out.extend_from_slice(&frame[0..12]);
    out.extend_from_slice(&frame[16..]);
    Ok((tci, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::EthernetFrame;
    use crate::MacAddr;

    #[test]
    fn tci_round_trip() {
        let t = Tci {
            pcp: 5,
            dei: true,
            vid: 0x123,
        };
        assert_eq!(Tci::from_u16(t.to_u16()), t);
        // VID masked to 12 bits.
        let big = Tci {
            pcp: 0,
            dei: false,
            vid: 0xffff,
        };
        assert_eq!(Tci::from_u16(big.to_u16()).vid, 0x0fff);
    }

    fn plain_frame() -> Vec<u8> {
        let mut buf = vec![0u8; 60];
        let mut f = EthernetFrame::new_unchecked(&mut buf);
        f.set_dst(MacAddr([0xd; 6]));
        f.set_src(MacAddr([0x5; 6]));
        f.set_ethertype(EtherType::Ipv4);
        buf
    }

    #[test]
    fn push_then_pop_is_identity() {
        let frame = plain_frame();
        let tci = Tci {
            pcp: 3,
            dei: false,
            vid: 100,
        };
        let tagged = push_tag(&frame, EtherType::Vlan, tci).unwrap();
        assert_eq!(tagged.len(), frame.len() + TAG_LEN);
        let eth = EthernetFrame::new_checked(&tagged[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Vlan);
        let vlan = VlanFrame::new_checked(eth.payload()).unwrap();
        assert_eq!(vlan.vid(), 100);
        assert_eq!(vlan.inner_ethertype(), EtherType::Ipv4);

        let (popped, untagged) = pop_tag(&tagged).unwrap();
        assert_eq!(popped, tci);
        assert_eq!(untagged, frame);
    }

    #[test]
    fn qinq_double_stack() {
        let frame = plain_frame();
        let c = Tci {
            pcp: 0,
            dei: false,
            vid: 10,
        };
        let s = Tci {
            pcp: 0,
            dei: false,
            vid: 200,
        };
        let ct = push_tag(&frame, EtherType::Vlan, c).unwrap();
        let st = push_tag(&ct, EtherType::QinQ, s).unwrap();
        let eth = EthernetFrame::new_checked(&st[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::QinQ);
        let outer = VlanFrame::new_checked(eth.payload()).unwrap();
        assert_eq!(outer.vid(), 200);
        assert_eq!(outer.inner_ethertype(), EtherType::Vlan);
        let inner = VlanFrame::new_checked(outer.payload()).unwrap();
        assert_eq!(inner.vid(), 10);
        assert_eq!(inner.inner_ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn pop_untagged_is_error() {
        assert!(pop_tag(&plain_frame()).is_err());
    }

    #[test]
    fn vlan_setters() {
        let mut buf = vec![0u8; 8];
        let mut v = VlanFrame::new_unchecked(&mut buf);
        v.set_tci(Tci {
            pcp: 7,
            dei: false,
            vid: 42,
        });
        v.set_inner_ethertype(EtherType::Arp);
        let v = VlanFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(v.tci().pcp, 7);
        assert_eq!(v.vid(), 42);
        assert_eq!(v.inner_ethertype(), EtherType::Arp);
    }
}
