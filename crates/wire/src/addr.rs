//! Link-layer addresses and protocol number enums shared across formats.

use core::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build from a byte slice; panics if `b.len() != 6`.
    pub fn from_bytes(b: &[u8]) -> MacAddr {
        let mut out = [0u8; 6];
        out.copy_from_slice(b);
        MacAddr(out)
    }

    /// The raw octets.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// True for a plain unicast address (not multicast, not broadcast).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

impl From<u64> for MacAddr {
    /// Take the low 48 bits of `v` as an address (big-endian order).
    fn from(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

/// EtherType values the FlexSFP dataplane recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// 802.1Q VLAN tag (0x8100).
    Vlan,
    /// 802.1ad service tag, outer tag of QinQ (0x88a8).
    QinQ,
    /// IPv6 (0x86dd).
    Ipv6,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Decode from the on-wire 16-bit value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x88a8 => EtherType::QinQ,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }

    /// Encode to the on-wire 16-bit value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::QinQ => 0x88a8,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }

    /// True if this ethertype introduces a VLAN tag (C-tag or S-tag).
    pub fn is_vlan(self) -> bool {
        matches!(self, EtherType::Vlan | EtherType::QinQ)
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// IP protocol numbers the dataplane recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMPv4 (1).
    Icmp,
    /// IP-in-IP encapsulation (4).
    IpIp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// GRE (47).
    Gre,
    /// ICMPv6 (58).
    Icmpv6,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Decode from the on-wire protocol number.
    pub fn from_u8(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            4 => IpProtocol::IpIp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            47 => IpProtocol::Gre,
            58 => IpProtocol::Icmpv6,
            other => IpProtocol::Other(other),
        }
    }

    /// Encode to the on-wire protocol number.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::IpIp => 4,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Gre => 47,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Other(v) => v,
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Other(v) => write!(f, "proto {v}"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x02, 0x00, 0x5e, 0x10, 0x20, 0x30]);
        assert_eq!(m.to_string(), "02:00:5e:10:20:30");
        assert!(m.is_local());
        assert!(m.is_unicast());
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let mc = MacAddr([0x01, 0, 0x5e, 0, 0, 1]);
        assert!(mc.is_multicast());
        assert!(!mc.is_unicast());
    }

    #[test]
    fn mac_from_u64_takes_low_48_bits() {
        let m = MacAddr::from(0x0011_2233_4455_u64);
        assert_eq!(m, MacAddr([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]));
        // The top 16 bits are discarded.
        let m2 = MacAddr::from(0xffff_0011_2233_4455_u64);
        assert_eq!(m2, m);
    }

    #[test]
    fn ethertype_round_trip() {
        for v in [0x0800u16, 0x0806, 0x8100, 0x88a8, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
        assert!(EtherType::Vlan.is_vlan());
        assert!(EtherType::QinQ.is_vlan());
        assert!(!EtherType::Ipv4.is_vlan());
    }

    #[test]
    fn ip_protocol_round_trip() {
        for v in [1u8, 4, 6, 17, 47, 58, 200] {
            assert_eq!(IpProtocol::from_u8(v).to_u8(), v);
        }
    }
}
