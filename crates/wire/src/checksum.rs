//! Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! The FlexSFP NAT case study rewrites the IPv4 source address at line
//! rate; in hardware that is done with an incremental checksum update
//! rather than a full recompute, because the full recompute would need the
//! whole header to stream past before the checksum field can be emitted.
//! [`update16`]/[`update32`] model exactly that hardware primitive, and the
//! property tests prove equivalence with the full recompute.

/// One's-complement sum of a byte slice, folding carries, *without* the
/// final inversion. Odd trailing byte is padded with zero on the right,
/// as the wire format requires.
pub fn raw_sum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

/// Fold a 32-bit running sum into 16 bits of one's-complement arithmetic.
pub fn fold(mut sum: u32) -> u32 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum
}

/// RFC 1071 Internet checksum of `data` (the value to place in the
/// checksum field, i.e. the inverted folded sum).
pub fn checksum(data: &[u8]) -> u16 {
    !(raw_sum(data) as u16)
}

/// Combine several partial raw sums (e.g. pseudo-header + payload).
pub fn combine(sums: &[u32]) -> u16 {
    !(fold(sums.iter().copied().fold(0u32, |a, s| a + fold(s))) as u16)
}

/// Raw sum of the IPv4/TCP/UDP pseudo-header.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, l4_len: u16) -> u32 {
    let mut sum = 0u32;
    sum += u32::from(u16::from_be_bytes([src[0], src[1]]));
    sum += u32::from(u16::from_be_bytes([src[2], src[3]]));
    sum += u32::from(u16::from_be_bytes([dst[0], dst[1]]));
    sum += u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    sum += u32::from(protocol);
    sum += u32::from(l4_len);
    fold(sum)
}

/// Incrementally update checksum `old_check` when a 16-bit field changes
/// from `old` to `new` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
pub fn update16(old_check: u16, old: u16, new: u16) -> u16 {
    let sum = u32::from(!old_check) + u32::from(!old) + u32::from(new);
    !(fold(sum) as u16)
}

/// Incrementally update checksum when a 32-bit field (e.g. an IPv4
/// address) changes. Applies [`update16`] to both halves.
pub fn update32(old_check: u16, old: u32, new: u32) -> u16 {
    let c = update16(old_check, (old >> 16) as u16, (new >> 16) as u16);
    update16(c, old as u16, new as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(raw_sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_right() {
        // 0x01 padded becomes word 0x0100.
        assert_eq!(raw_sum(&[0x01]), 0x0100);
        assert_eq!(raw_sum(&[0x00, 0x02, 0x01]), 0x0102);
    }

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn verification_property() {
        // A buffer with its checksum embedded sums to 0xffff.
        let mut header = vec![
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());
        // Known-good value for this canonical example header.
        assert_eq!(c, 0xb861);
        assert_eq!(raw_sum(&header), 0xffff);
    }

    #[test]
    fn incremental_16_matches_recompute() {
        let mut data = vec![0x45u8, 0x00, 0x01, 0x02, 0xaa, 0xbb, 0x00, 0x00];
        let c0 = checksum(&data);
        // Change word at offset 4 from 0xaabb to 0x1234.
        let updated = update16(c0, 0xaabb, 0x1234);
        data[4..6].copy_from_slice(&0x1234u16.to_be_bytes());
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn incremental_32_matches_recompute() {
        let mut data = vec![0u8; 20];
        data[0] = 0x45;
        data[12..16].copy_from_slice(&0xc0a80001u32.to_be_bytes());
        let c0 = checksum(&data);
        let updated = update32(c0, 0xc0a80001, 0x0a000001);
        data[12..16].copy_from_slice(&0x0a000001u32.to_be_bytes());
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_header_known_value() {
        // 192.168.0.1 -> 192.168.0.199, UDP, len 0x5f
        let s = pseudo_header_sum([192, 168, 0, 1], [192, 168, 0, 199], 17, 0x5f);
        // Manual: c0a8 + 0001 + c0a8 + 00c7 + 0011 + 005f = 0x1_8288 -> 0x8289
        assert_eq!(s, 0x8289);
    }

    #[test]
    fn combine_folds_partials() {
        let a = [0x12u8, 0x34, 0x56, 0x78];
        let b = [0x9au8, 0xbc];
        let whole = checksum(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        assert_eq!(combine(&[raw_sum(&a), raw_sum(&b)]), whole);
    }
}
