//! GRE (RFC 2784/2890) view — one of the tunnel encapsulations the paper's
//! §3 "Packet Transformation" use case inserts at the optical edge.

use crate::addr::EtherType;
use crate::{be16, be32, check_len, set_be16, set_be32, Result, WireError};

/// Base GRE header length (flags + protocol).
pub const BASE_HEADER_LEN: usize = 4;

/// A typed view over a GRE packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrePacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> GrePacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        GrePacket { buffer }
    }

    /// Wrap `buffer`, validating version and that all optional fields fit.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), BASE_HEADER_LEN)?;
        let p = GrePacket { buffer };
        if p.version() != 0 {
            return Err(WireError::BadVersion);
        }
        check_len(p.buffer.as_ref(), p.header_len())?;
        Ok(p)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Checksum-present flag.
    pub fn has_checksum(&self) -> bool {
        self.buffer.as_ref()[0] & 0x80 != 0
    }

    /// Key-present flag (RFC 2890).
    pub fn has_key(&self) -> bool {
        self.buffer.as_ref()[0] & 0x20 != 0
    }

    /// Sequence-present flag (RFC 2890).
    pub fn has_sequence(&self) -> bool {
        self.buffer.as_ref()[0] & 0x10 != 0
    }

    /// GRE version (must be 0).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[1] & 0x07
    }

    /// EtherType of the encapsulated protocol.
    pub fn protocol(&self) -> EtherType {
        EtherType::from_u16(be16(self.buffer.as_ref(), 2))
    }

    /// Total header length including present optional fields.
    pub fn header_len(&self) -> usize {
        let mut len = BASE_HEADER_LEN;
        if self.has_checksum() {
            len += 4; // checksum + reserved
        }
        if self.has_key() {
            len += 4;
        }
        if self.has_sequence() {
            len += 4;
        }
        len
    }

    /// The key field, if present.
    pub fn key(&self) -> Option<u32> {
        if !self.has_key() {
            return None;
        }
        let off = BASE_HEADER_LEN + if self.has_checksum() { 4 } else { 0 };
        Some(be32(self.buffer.as_ref(), off))
    }

    /// The sequence number, if present.
    pub fn sequence(&self) -> Option<u32> {
        if !self.has_sequence() {
            return None;
        }
        let off = BASE_HEADER_LEN
            + if self.has_checksum() { 4 } else { 0 }
            + if self.has_key() { 4 } else { 0 };
        Some(be32(self.buffer.as_ref(), off))
    }

    /// Encapsulated payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

/// Build a GRE header with an optional key into a fresh Vec.
pub fn build_header(protocol: EtherType, key: Option<u32>) -> Vec<u8> {
    let mut hdr = vec![0u8; BASE_HEADER_LEN + if key.is_some() { 4 } else { 0 }];
    if key.is_some() {
        hdr[0] |= 0x20;
    }
    set_be16(&mut hdr, 2, protocol.to_u16());
    if let Some(k) = key {
        set_be32(&mut hdr, 4, k);
    }
    hdr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_header() {
        let mut buf = build_header(EtherType::Ipv4, None);
        buf.extend_from_slice(b"inner");
        let p = GrePacket::new_checked(&buf[..]).unwrap();
        assert!(!p.has_checksum());
        assert!(!p.has_key());
        assert!(!p.has_sequence());
        assert_eq!(p.version(), 0);
        assert_eq!(p.protocol(), EtherType::Ipv4);
        assert_eq!(p.header_len(), 4);
        assert_eq!(p.payload(), b"inner");
        assert_eq!(p.key(), None);
        assert_eq!(p.sequence(), None);
    }

    #[test]
    fn keyed_header() {
        let mut buf = build_header(EtherType::Ipv4, Some(0xcafe_f00d));
        buf.extend_from_slice(b"x");
        let p = GrePacket::new_checked(&buf[..]).unwrap();
        assert!(p.has_key());
        assert_eq!(p.header_len(), 8);
        assert_eq!(p.key(), Some(0xcafe_f00d));
        assert_eq!(p.payload(), b"x");
    }

    #[test]
    fn nonzero_version_rejected() {
        let mut buf = build_header(EtherType::Ipv4, None);
        buf[1] |= 0x01;
        assert_eq!(
            GrePacket::new_checked(&buf[..]).unwrap_err(),
            WireError::BadVersion
        );
    }

    #[test]
    fn truncated_optional_fields_rejected() {
        let mut buf = build_header(EtherType::Ipv4, None);
        buf[0] |= 0x20; // claims key, but none present
        assert!(GrePacket::new_checked(&buf[..]).is_err());
    }
}
