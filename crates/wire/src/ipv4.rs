//! IPv4 packet view with options support and checksum helpers.

use crate::addr::IpProtocol;
use crate::{be16, check_len, checksum, set_be16, Result, WireError};

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// A typed view over an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wrap `buffer`, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), MIN_HEADER_LEN)?;
        let p = Ipv4Packet { buffer };
        let buf = p.buffer.as_ref();
        if p.version() != 4 {
            return Err(WireError::BadVersion);
        }
        let ihl = p.header_len();
        if !(MIN_HEADER_LEN..=60).contains(&ihl) || buf.len() < ihl {
            return Err(WireError::BadLength);
        }
        let total = p.total_len() as usize;
        if total < ihl || total > buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Differentiated services code point.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// Explicit congestion notification bits.
    pub fn ecn(&self) -> u8 {
        self.buffer.as_ref()[1] & 0x3
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        be16(self.buffer.as_ref(), 6) & 0x1fff
    }

    /// True if this packet is a fragment (offset != 0 or MF set).
    pub fn is_fragment(&self) -> bool {
        self.more_frags() || self.frag_offset() != 0
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Layer-4 protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_u8(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        be16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src(&self) -> u32 {
        crate::be32(self.buffer.as_ref(), 12)
    }

    /// Destination address.
    pub fn dst(&self) -> u32 {
        crate::be32(self.buffer.as_ref(), 16)
    }

    /// The options region (empty when IHL = 5).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// True if any IP options are present — the paper's packet-sanitizer
    /// use case strips/drops these.
    pub fn has_options(&self) -> bool {
        self.header_len() > MIN_HEADER_LEN
    }

    /// The L4 payload (between header and `total_len`).
    pub fn payload(&self) -> &[u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[ihl..total]
    }

    /// Verify the header checksum (sum over header must fold to 0xffff).
    pub fn verify_checksum(&self) -> bool {
        let hdr = &self.buffer.as_ref()[..self.header_len()];
        checksum::raw_sum(hdr) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set version (upper nibble of byte 0).
    pub fn set_version(&mut self, v: u8) {
        let b = self.buffer.as_mut();
        b[0] = (v << 4) | (b[0] & 0x0f);
    }

    /// Set header length in bytes (must be a multiple of 4).
    pub fn set_header_len(&mut self, len: usize) {
        let b = self.buffer.as_mut();
        b[0] = (b[0] & 0xf0) | ((len / 4) as u8 & 0x0f);
    }

    /// Set the DSCP field.
    pub fn set_dscp(&mut self, dscp: u8) {
        let b = self.buffer.as_mut();
        b[1] = (dscp << 2) | (b[1] & 0x3);
    }

    /// Set the ECN field.
    pub fn set_ecn(&mut self, ecn: u8) {
        let b = self.buffer.as_mut();
        b[1] = (b[1] & 0xfc) | (ecn & 0x3);
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        set_be16(self.buffer.as_mut(), 2, len);
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, id: u16) {
        set_be16(self.buffer.as_mut(), 4, id);
    }

    /// Set flags+fragment offset: DF, MF and 13-bit offset.
    pub fn set_fragment(&mut self, dont_frag: bool, more_frags: bool, offset: u16) {
        let v = (u16::from(dont_frag) << 14) | (u16::from(more_frags) << 13) | (offset & 0x1fff);
        set_be16(self.buffer.as_mut(), 6, v);
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Decrement TTL, updating the header checksum incrementally
    /// (returns the new TTL; saturates at 0).
    pub fn decrement_ttl(&mut self) -> u8 {
        let old = self.ttl();
        if old == 0 {
            return 0;
        }
        let new = old - 1;
        // TTL shares a 16-bit word with protocol; update that word.
        let old_word = be16(self.buffer.as_ref(), 8);
        self.buffer.as_mut()[8] = new;
        let new_word = be16(self.buffer.as_ref(), 8);
        let c = checksum::update16(self.header_checksum(), old_word, new_word);
        self.set_header_checksum(c);
        new
    }

    /// Set the L4 protocol.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[9] = p.to_u8();
    }

    /// Set the header checksum field.
    pub fn set_header_checksum(&mut self, c: u16) {
        set_be16(self.buffer.as_mut(), 10, c);
    }

    /// Set the source address.
    pub fn set_src(&mut self, addr: u32) {
        crate::set_be32(self.buffer.as_mut(), 12, addr);
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, addr: u32) {
        crate::set_be32(self.buffer.as_mut(), 16, addr);
    }

    /// Rewrite the source address and patch the header checksum with the
    /// RFC 1624 incremental update — the exact hardware operation the
    /// FlexSFP NAT performs at line rate.
    pub fn rewrite_src_incremental(&mut self, new_src: u32) {
        let old = self.src();
        let c = checksum::update32(self.header_checksum(), old, new_src);
        self.set_src(new_src);
        self.set_header_checksum(c);
    }

    /// Rewrite the destination address with incremental checksum patch.
    pub fn rewrite_dst_incremental(&mut self, new_dst: u32) {
        let old = self.dst();
        let c = checksum::update32(self.header_checksum(), old, new_dst);
        self.set_dst(new_dst);
        self.set_header_checksum(c);
    }

    /// Recompute and store the header checksum from scratch.
    pub fn fill_checksum(&mut self) {
        self.set_header_checksum(0);
        let ihl = self.header_len();
        let c = checksum::checksum(&self.buffer.as_ref()[..ihl]);
        self.set_header_checksum(c);
    }

    /// Mutable L4 payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[ihl..total]
    }
}

/// Format an IPv4 address (host-order u32 as used by the views) dotted.
pub fn fmt_addr(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        addr >> 24,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parse `a.b.c.d` into the u32 representation. Returns `None` on syntax
/// errors or out-of-range octets.
pub fn parse_addr(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut addr = 0u32;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        addr = (addr << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample_packet() -> Vec<u8> {
        PacketBuilder::ipv4_udp(
            parse_addr("192.168.0.1").unwrap(),
            parse_addr("10.0.0.2").unwrap(),
            1234,
            53,
            b"hello",
        )
    }

    #[test]
    fn parse_round_trip() {
        let buf = sample_packet();
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.protocol(), IpProtocol::Udp);
        assert_eq!(fmt_addr(p.src()), "192.168.0.1");
        assert_eq!(fmt_addr(p.dst()), "10.0.0.2");
        assert!(p.verify_checksum());
        assert!(!p.has_options());
        assert!(!p.is_fragment());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample_packet();
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadVersion
        );
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut buf = sample_packet();
        buf[0] = 0x44; // IHL=4 words = 16 bytes < 20
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn total_len_overflow_rejected() {
        let mut buf = sample_packet();
        let huge = (buf.len() + 1) as u16;
        buf[2..4].copy_from_slice(&huge.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn incremental_src_rewrite_keeps_checksum_valid() {
        let mut buf = sample_packet();
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        p.rewrite_src_incremental(parse_addr("100.64.7.9").unwrap());
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(fmt_addr(p.src()), "100.64.7.9");
        assert!(p.verify_checksum());
    }

    #[test]
    fn incremental_dst_rewrite_keeps_checksum_valid() {
        let mut buf = sample_packet();
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        p.rewrite_dst_incremental(parse_addr("172.16.5.5").unwrap());
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
    }

    #[test]
    fn ttl_decrement_patches_checksum() {
        let mut buf = sample_packet();
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        let before = p.ttl();
        let after = p.decrement_ttl();
        assert_eq!(after, before - 1);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
    }

    #[test]
    fn ttl_zero_saturates() {
        let mut buf = sample_packet();
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf);
            p.set_ttl(0);
            p.fill_checksum();
            assert_eq!(p.decrement_ttl(), 0);
        }
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
    }

    #[test]
    fn addr_parse_fmt() {
        assert_eq!(parse_addr("1.2.3.4"), Some(0x01020304));
        assert_eq!(parse_addr("255.255.255.255"), Some(0xffffffff));
        assert_eq!(parse_addr("256.0.0.1"), None);
        assert_eq!(parse_addr("1.2.3"), None);
        assert_eq!(parse_addr("1.2.3.4.5"), None);
        assert_eq!(parse_addr("a.b.c.d"), None);
        assert_eq!(fmt_addr(0x01020304), "1.2.3.4");
    }

    #[test]
    fn fragment_flags() {
        let mut buf = sample_packet();
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        p.set_fragment(true, false, 0);
        assert!(p.dont_frag());
        assert!(!p.more_frags());
        assert!(!p.is_fragment());
        p.set_fragment(false, true, 185);
        assert!(p.more_frags());
        assert_eq!(p.frag_offset(), 185);
        assert!(p.is_fragment());
    }

    #[test]
    fn dscp_ecn_fields() {
        let mut buf = sample_packet();
        let mut p = Ipv4Packet::new_unchecked(&mut buf);
        p.set_dscp(46); // EF
        p.set_ecn(1);
        assert_eq!(p.dscp(), 46);
        assert_eq!(p.ecn(), 1);
    }
}
