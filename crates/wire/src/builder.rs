//! Packet construction helpers.
//!
//! [`PacketBuilder`] assembles complete, checksum-correct frames for tests,
//! traffic generators and the tunnel-encapsulation datapath actions. All
//! emitted packets validate under the corresponding checked views.

use crate::addr::{EtherType, IpProtocol, MacAddr};
use crate::ethernet::{self, EthernetFrame};
use crate::ipv4::Ipv4Packet;
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use crate::vlan::{self, Tci};
use crate::{gre, vxlan};

/// Builder for complete frames and packets.
///
/// The associated functions return owned byte vectors; each layer's
/// checksums and length fields are filled in.
#[derive(Debug, Clone, Copy)]
pub struct PacketBuilder;

impl PacketBuilder {
    /// An IPv4 header followed by `payload`, with `protocol` and correct
    /// header checksum. TTL defaults to 64.
    pub fn ipv4(src: u32, dst: u32, protocol: IpProtocol, payload: &[u8]) -> Vec<u8> {
        let total = 20 + payload.len();
        let mut buf = vec![0u8; total];
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf);
            p.set_version(4);
            p.set_header_len(20);
            p.set_total_len(total as u16);
            p.set_ttl(64);
            p.set_fragment(true, false, 0);
            p.set_protocol(protocol);
            p.set_src(src);
            p.set_dst(dst);
            p.fill_checksum();
        }
        buf[20..].copy_from_slice(payload);
        buf
    }

    /// An IPv4/UDP packet with correct checksums.
    pub fn ipv4_udp(src: u32, dst: u32, src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let udp_len = crate::udp::HEADER_LEN + payload.len();
        let mut udp = vec![0u8; udp_len];
        {
            let mut d = UdpDatagram::new_unchecked(&mut udp);
            d.set_src_port(src_port);
            d.set_dst_port(dst_port);
            d.set_len(udp_len as u16);
        }
        udp[crate::udp::HEADER_LEN..].copy_from_slice(payload);
        UdpDatagram::new_unchecked(&mut udp).fill_checksum_v4(src, dst);
        Self::ipv4(src, dst, IpProtocol::Udp, &udp)
    }

    /// An IPv4/TCP packet with correct checksums and a 20-byte TCP header.
    #[allow(clippy::too_many_arguments)]
    pub fn ipv4_tcp(
        src: u32,
        dst: u32,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let tcp_len = crate::tcp::MIN_HEADER_LEN + payload.len();
        let mut tcp = vec![0u8; tcp_len];
        {
            let mut s = TcpSegment::new_unchecked(&mut tcp);
            s.set_src_port(src_port);
            s.set_dst_port(dst_port);
            s.set_seq(seq);
            s.set_header_len(crate::tcp::MIN_HEADER_LEN);
            s.set_flags(flags);
            s.set_window(0xffff);
        }
        tcp[crate::tcp::MIN_HEADER_LEN..].copy_from_slice(payload);
        TcpSegment::new_unchecked(&mut tcp).fill_checksum_v4(src, dst);
        Self::ipv4(src, dst, IpProtocol::Tcp, &tcp)
    }

    /// An Ethernet II frame around `payload`, padded to the 60-byte
    /// minimum (frame length excluding FCS).
    pub fn ethernet(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
        let body = ethernet::HEADER_LEN + payload.len();
        let len = body.max(ethernet::MIN_FRAME_NO_FCS);
        let mut buf = vec![0u8; len];
        {
            let mut f = EthernetFrame::new_unchecked(&mut buf);
            f.set_dst(dst);
            f.set_src(src);
            f.set_ethertype(ethertype);
        }
        buf[ethernet::HEADER_LEN..body].copy_from_slice(payload);
        buf
    }

    /// A full Ethernet/IPv4/UDP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn eth_ipv4_udp(
        dst_mac: MacAddr,
        src_mac: MacAddr,
        src: u32,
        dst: u32,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::eth_ipv4_udp_into(
            &mut buf, dst_mac, src_mac, src, dst, src_port, dst_port, payload,
        );
        buf
    }

    /// A full Ethernet/IPv4/TCP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn eth_ipv4_tcp(
        dst_mac: MacAddr,
        src_mac: MacAddr,
        src: u32,
        dst: u32,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::eth_ipv4_tcp_into(
            &mut buf, dst_mac, src_mac, src, dst, src_port, dst_port, seq, flags, payload,
        );
        buf
    }

    /// Write a complete Ethernet/IPv4/UDP frame into `buf` in place,
    /// reusing its existing capacity (at most one allocation, and none when
    /// `buf` comes from a [`crate::PacketArena`]). Byte-for-byte identical
    /// to [`PacketBuilder::eth_ipv4_udp`].
    #[allow(clippy::too_many_arguments)]
    pub fn eth_ipv4_udp_into(
        buf: &mut Vec<u8>,
        dst_mac: MacAddr,
        src_mac: MacAddr,
        src: u32,
        dst: u32,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) {
        let udp_len = crate::udp::HEADER_LEN + payload.len();
        let body =
            Self::eth_ipv4_skeleton_into(buf, dst_mac, src_mac, src, dst, IpProtocol::Udp, udp_len);
        let l4_at = ethernet::HEADER_LEN + 20;
        let udp = &mut buf[l4_at..body];
        udp[crate::udp::HEADER_LEN..].copy_from_slice(payload);
        {
            let mut d = UdpDatagram::new_unchecked(&mut *udp);
            d.set_src_port(src_port);
            d.set_dst_port(dst_port);
            d.set_len(udp_len as u16);
        }
        UdpDatagram::new_unchecked(udp).fill_checksum_v4(src, dst);
    }

    /// Write a complete Ethernet/IPv4/TCP frame into `buf` in place,
    /// reusing its existing capacity. Byte-for-byte identical to
    /// [`PacketBuilder::eth_ipv4_tcp`].
    #[allow(clippy::too_many_arguments)]
    pub fn eth_ipv4_tcp_into(
        buf: &mut Vec<u8>,
        dst_mac: MacAddr,
        src_mac: MacAddr,
        src: u32,
        dst: u32,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) {
        let tcp_len = crate::tcp::MIN_HEADER_LEN + payload.len();
        let body =
            Self::eth_ipv4_skeleton_into(buf, dst_mac, src_mac, src, dst, IpProtocol::Tcp, tcp_len);
        let l4_at = ethernet::HEADER_LEN + 20;
        let tcp = &mut buf[l4_at..body];
        tcp[crate::tcp::MIN_HEADER_LEN..].copy_from_slice(payload);
        {
            let mut s = TcpSegment::new_unchecked(&mut *tcp);
            s.set_src_port(src_port);
            s.set_dst_port(dst_port);
            s.set_seq(seq);
            s.set_header_len(crate::tcp::MIN_HEADER_LEN);
            s.set_flags(flags);
            s.set_window(0xffff);
        }
        TcpSegment::new_unchecked(tcp).fill_checksum_v4(src, dst);
    }

    /// Zero `buf`, size it for an Ethernet + IPv4 frame with an
    /// `l4_len`-byte L4 section (padding to the Ethernet minimum), and fill
    /// in both headers with the same defaults as [`PacketBuilder::ipv4`].
    /// Returns the body length (headers + L4, before padding).
    fn eth_ipv4_skeleton_into(
        buf: &mut Vec<u8>,
        dst_mac: MacAddr,
        src_mac: MacAddr,
        src: u32,
        dst: u32,
        protocol: IpProtocol,
        l4_len: usize,
    ) -> usize {
        let ip_total = 20 + l4_len;
        let body = ethernet::HEADER_LEN + ip_total;
        buf.clear();
        buf.resize(body.max(ethernet::MIN_FRAME_NO_FCS), 0);
        {
            let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
            f.set_dst(dst_mac);
            f.set_src(src_mac);
            f.set_ethertype(EtherType::Ipv4);
        }
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..body]);
            p.set_version(4);
            p.set_header_len(20);
            p.set_total_len(ip_total as u16);
            p.set_ttl(64);
            p.set_fragment(true, false, 0);
            p.set_protocol(protocol);
            p.set_src(src);
            p.set_dst(dst);
            p.fill_checksum();
        }
        body
    }

    /// Add an 802.1Q tag to an existing frame.
    pub fn with_vlan(frame: &[u8], vid: u16, pcp: u8) -> Vec<u8> {
        vlan::push_tag(
            frame,
            EtherType::Vlan,
            Tci {
                pcp,
                dei: false,
                vid,
            },
        )
        .expect("frame shorter than an Ethernet header")
    }

    /// GRE-encapsulate an IPv4 packet inside a new outer IPv4 header.
    pub fn gre_encap(outer_src: u32, outer_dst: u32, key: Option<u32>, inner_ip: &[u8]) -> Vec<u8> {
        let mut gre_payload = gre::build_header(EtherType::Ipv4, key);
        gre_payload.extend_from_slice(inner_ip);
        Self::ipv4(outer_src, outer_dst, IpProtocol::Gre, &gre_payload)
    }

    /// IP-in-IP encapsulate an IPv4 packet.
    pub fn ipip_encap(outer_src: u32, outer_dst: u32, inner_ip: &[u8]) -> Vec<u8> {
        Self::ipv4(outer_src, outer_dst, IpProtocol::IpIp, inner_ip)
    }

    /// VXLAN-encapsulate an Ethernet frame inside outer IPv4/UDP.
    /// The UDP source port carries the inner flow entropy, as RFC 7348
    /// recommends.
    pub fn vxlan_encap(
        outer_src: u32,
        outer_dst: u32,
        src_port_entropy: u16,
        vni: u32,
        inner_frame: &[u8],
    ) -> Vec<u8> {
        let vx = vxlan::encapsulate(vni, inner_frame);
        Self::ipv4_udp(outer_src, outer_dst, src_port_entropy, vxlan::UDP_PORT, &vx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4;

    const SRC: u32 = 0xc0a80001; // 192.168.0.1
    const DST: u32 = 0x0a000002; // 10.0.0.2

    #[test]
    fn ipv4_udp_validates() {
        let buf = PacketBuilder::ipv4_udp(SRC, DST, 1111, 2222, b"data");
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.protocol(), IpProtocol::Udp);
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum_v4(SRC, DST));
        assert_eq!(udp.payload(), b"data");
    }

    #[test]
    fn ipv4_tcp_validates() {
        let buf = PacketBuilder::ipv4_tcp(SRC, DST, 80, 5000, 42, TcpFlags::syn_only(), b"xyz");
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v4(SRC, DST));
        assert!(tcp.flags().syn);
        assert_eq!(tcp.payload(), b"xyz");
    }

    #[test]
    fn ethernet_padding_to_minimum() {
        let f = PacketBuilder::ethernet(MacAddr::BROADCAST, MacAddr([1; 6]), EtherType::Ipv4, b"x");
        assert_eq!(f.len(), ethernet::MIN_FRAME_NO_FCS);
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        assert_eq!(eth.payload()[0], b'x');
    }

    #[test]
    fn vlan_tagging() {
        let f = PacketBuilder::eth_ipv4_udp(MacAddr([2; 6]), MacAddr([3; 6]), SRC, DST, 1, 2, b"p");
        let tagged = PacketBuilder::with_vlan(&f, 300, 5);
        let eth = EthernetFrame::new_checked(&tagged[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Vlan);
        let v = crate::vlan::VlanFrame::new_checked(eth.payload()).unwrap();
        assert_eq!(v.vid(), 300);
        assert_eq!(v.tci().pcp, 5);
    }

    #[test]
    fn gre_encap_decap() {
        let inner = PacketBuilder::ipv4_udp(SRC, DST, 9, 10, b"in");
        let outer = PacketBuilder::gre_encap(0x01010101, 0x02020202, Some(7), &inner);
        let ip = Ipv4Packet::new_checked(&outer[..]).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Gre);
        assert!(ip.verify_checksum());
        let g = crate::gre::GrePacket::new_checked(ip.payload()).unwrap();
        assert_eq!(g.key(), Some(7));
        assert_eq!(g.payload(), &inner[..]);
    }

    #[test]
    fn ipip_encap_decap() {
        let inner = PacketBuilder::ipv4_udp(SRC, DST, 9, 10, b"in");
        let outer = PacketBuilder::ipip_encap(0x01010101, 0x02020202, &inner);
        let ip = Ipv4Packet::new_checked(&outer[..]).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::IpIp);
        assert_eq!(ip.payload(), &inner[..]);
        // The inner packet is itself valid.
        let inner_view = Ipv4Packet::new_checked(ip.payload()).unwrap();
        assert_eq!(inner_view.src(), SRC);
    }

    #[test]
    fn vxlan_encap_decap() {
        let inner =
            PacketBuilder::ethernet(MacAddr([9; 6]), MacAddr([8; 6]), EtherType::Ipv4, b"q");
        let outer = PacketBuilder::vxlan_encap(0x0b0b0b0b, 0x0c0c0c0c, 0xbeef, 5001, &inner);
        let ip = Ipv4Packet::new_checked(&outer[..]).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(udp.dst_port(), vxlan::UDP_PORT);
        assert_eq!(udp.src_port(), 0xbeef);
        let vx = VxlanView(udp.payload());
        let v = crate::vxlan::VxlanPacket::new_checked(vx.0).unwrap();
        assert_eq!(v.vni(), 5001);
        assert_eq!(v.inner_frame(), &inner[..]);
    }

    struct VxlanView<'a>(&'a [u8]);

    #[test]
    fn in_place_builders_match_allocating_path() {
        let arena = crate::PacketArena::new();
        for payload_len in [0usize, 1, 18, 100, 1472] {
            let payload = vec![0x5au8; payload_len];
            let nested_udp = {
                // The historical nested construction: UDP inside IPv4
                // inside Ethernet, one allocation per layer.
                let ip = PacketBuilder::ipv4_udp(SRC, DST, 1111, 2222, &payload);
                PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv4, &ip)
            };
            let mut buf = arena.lease();
            PacketBuilder::eth_ipv4_udp_into(
                &mut buf,
                MacAddr([1; 6]),
                MacAddr([2; 6]),
                SRC,
                DST,
                1111,
                2222,
                &payload,
            );
            assert_eq!(buf, nested_udp, "UDP payload_len={payload_len}");
            arena.recycle(buf);

            let nested_tcp = {
                let ip =
                    PacketBuilder::ipv4_tcp(SRC, DST, 80, 5000, 7, TcpFlags::syn_only(), &payload);
                PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv4, &ip)
            };
            let mut buf = arena.lease();
            PacketBuilder::eth_ipv4_tcp_into(
                &mut buf,
                MacAddr([1; 6]),
                MacAddr([2; 6]),
                SRC,
                DST,
                80,
                5000,
                7,
                TcpFlags::syn_only(),
                &payload,
            );
            assert_eq!(buf, nested_tcp, "TCP payload_len={payload_len}");
            arena.recycle(buf);
        }
        assert_eq!(arena.allocations(), 1, "all frames reuse one buffer");
    }

    #[test]
    fn fmt_helpers_agree_with_builder() {
        let buf = PacketBuilder::ipv4_udp(SRC, DST, 1, 2, &[]);
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(ipv4::fmt_addr(ip.src()), "192.168.0.1");
        assert_eq!(ipv4::parse_addr("10.0.0.2"), Some(ip.dst()));
    }
}
