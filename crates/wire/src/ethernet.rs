//! Ethernet II frame view.

use crate::addr::{EtherType, MacAddr};
use crate::{be16, check_len, set_be16, Result};

/// Length of the Ethernet II header (dst + src + ethertype), excluding FCS.
pub const HEADER_LEN: usize = 14;
/// Minimum payload so the frame (with FCS) reaches the 64-byte minimum.
pub const MIN_PAYLOAD: usize = 46;
/// Standard maximum payload (non-jumbo).
pub const MAX_PAYLOAD: usize = 1500;
/// Minimum frame length on the wire excluding FCS (64 - 4).
pub const MIN_FRAME_NO_FCS: usize = 60;
/// Maximum standard frame length excluding FCS.
pub const MAX_FRAME_NO_FCS: usize = HEADER_LEN + MAX_PAYLOAD;

/// A typed view over an Ethernet II frame (without FCS).
///
/// ```
/// use flexsfp_wire::{EthernetFrame, EtherType, MacAddr};
/// let mut buf = vec![0u8; 64];
/// let mut f = EthernetFrame::new_unchecked(&mut buf);
/// f.set_dst(MacAddr::BROADCAST);
/// f.set_ethertype(EtherType::Ipv4);
/// assert_eq!(f.ethertype(), EtherType::Ipv4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap `buffer` without validation. Accessors may panic if it is
    /// shorter than [`HEADER_LEN`]; prefer [`EthernetFrame::new_checked`].
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Wrap `buffer`, validating that the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        Ok(EthernetFrame { buffer })
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[0..6])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[6..12])
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_u16(be16(self.buffer.as_ref(), 12))
    }

    /// The payload following the 14-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Total frame length (header + payload), excluding FCS.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC address.
    pub fn set_dst(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(addr.as_bytes());
    }

    /// Set the source MAC address.
    pub fn set_src(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(addr.as_bytes());
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        set_be16(self.buffer.as_mut(), 12, ty.to_u16());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireError;

    fn sample() -> Vec<u8> {
        let mut f = vec![0u8; HEADER_LEN + 4];
        f[0..6].copy_from_slice(&[0xaa; 6]);
        f[6..12].copy_from_slice(&[0xbb; 6]);
        f[12..14].copy_from_slice(&[0x08, 0x00]);
        f[14..18].copy_from_slice(&[1, 2, 3, 4]);
        f
    }

    #[test]
    fn parse_fields() {
        let frame = EthernetFrame::new_checked(sample()).unwrap();
        assert_eq!(frame.dst(), MacAddr([0xaa; 6]));
        assert_eq!(frame.src(), MacAddr([0xbb; 6]));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[1, 2, 3, 4]);
        assert_eq!(frame.total_len(), 18);
    }

    #[test]
    fn set_fields_round_trip() {
        let mut buf = sample();
        let mut frame = EthernetFrame::new_unchecked(&mut buf);
        frame.set_dst(MacAddr([1; 6]));
        frame.set_src(MacAddr([2; 6]));
        frame.set_ethertype(EtherType::Ipv6);
        frame.payload_mut()[0] = 0xee;
        let frame = EthernetFrame::new_checked(&buf).unwrap();
        assert_eq!(frame.dst(), MacAddr([1; 6]));
        assert_eq!(frame.src(), MacAddr([2; 6]));
        assert_eq!(frame.ethertype(), EtherType::Ipv6);
        assert_eq!(frame.payload()[0], 0xee);
    }

    #[test]
    fn too_short_rejected() {
        let err = EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                required: 14,
                available: 13
            }
        );
    }
}
