#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Property tests for PPE invariants: tables vs a model, meters vs an
//! analytic bound, codelet verifier robustness, LPM vs naive search.

use flexsfp_ppe::codelet::{self, AluOp, Cmp, Field, Insn, Operand, VerdictCode, WField};
use flexsfp_ppe::match_kinds::LpmTable;
use flexsfp_ppe::meter::{Color, TokenBucket};
use flexsfp_ppe::tables::{HashTable, TableError};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The hardware hash table agrees with a HashMap model on every
    /// lookup, modulo capacity-induced insertion failures (which the
    /// model then also forgets).
    #[test]
    fn hash_table_vs_model(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<bool>()), 0..300),
    ) {
        let mut table: HashTable<u32, u16> = HashTable::new(16, 2);
        let mut model: HashMap<u32, u16> = HashMap::new();
        for (k, v, is_insert) in ops {
            let key = u32::from(k); // small key space forces collisions
            if is_insert {
                match table.insert(key, v) {
                    Ok(()) => {
                        model.insert(key, v);
                    }
                    Err(TableError::BucketFull) => {
                        // Model must NOT have it (update would succeed).
                        prop_assert!(!model.contains_key(&key));
                    }
                }
            } else {
                prop_assert_eq!(table.remove(&key), model.remove(&key));
            }
            prop_assert_eq!(table.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(table.peek(k), Some(*v));
        }
    }

    /// The flat fingerprinted layout agrees with an ordered BTreeMap
    /// model under arbitrary insert/remove/peek/clear interleavings,
    /// and a full iteration yields exactly the model's entries. The
    /// tiny key space forces both bucket collisions and 1-byte
    /// fingerprint aliases, which must fall through to the full key
    /// compare — never resolve to another key's value.
    #[test]
    fn flat_table_vs_btreemap_model(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), 0u8..10), 0..400),
    ) {
        use std::collections::BTreeMap;
        let mut table: HashTable<u32, u16> = HashTable::new(8, 2);
        let mut model: BTreeMap<u32, u16> = BTreeMap::new();
        for (k, v, action) in ops {
            let key = u32::from(k % 64);
            match action {
                0..=5 => match table.insert(key, v) {
                    Ok(()) => {
                        model.insert(key, v);
                    }
                    Err(TableError::BucketFull) => {
                        prop_assert!(!model.contains_key(&key));
                    }
                },
                6..=7 => prop_assert_eq!(table.remove(&key), model.remove(&key)),
                8 => prop_assert_eq!(table.peek(&key), model.get(&key).copied()),
                _ => {
                    table.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(table.len(), model.len());
            prop_assert!(table.load_factor() <= 1.0);
        }
        let mut got: Vec<(u32, u16)> = table.iter().collect();
        got.sort_unstable();
        let want: Vec<(u32, u16)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Token bucket conformance: green bytes over any packet schedule
    /// never exceed burst + rate × elapsed.
    #[test]
    fn token_bucket_long_run_bound(
        rate_kbps in 1u64..100_000,
        burst in 64u64..100_000,
        packets in proptest::collection::vec((1usize..2000, 0u64..1_000_000), 1..200),
    ) {
        let rate_bps = rate_kbps * 1000;
        let mut tb = TokenBucket::new(rate_bps, burst);
        let mut now = 0u64;
        let mut green_bytes = 0u64;
        for (len, gap) in packets {
            now += gap;
            if tb.meter(len, now) == Color::Green {
                green_bytes += len as u64;
            }
        }
        let budget = burst as f64 + (rate_bps / 8) as f64 * (now as f64 / 1e9);
        prop_assert!(
            green_bytes as f64 <= budget + 2000.0,
            "green {green_bytes} > budget {budget}"
        );
    }

    /// The codelet verifier never panics on arbitrary instruction
    /// sequences, and every program it accepts terminates in the
    /// interpreter.
    #[test]
    fn verifier_total_and_sound(
        raw in proptest::collection::vec((0u8..10, any::<u8>(), any::<u8>(), any::<u64>(), 0u16..16), 1..40),
    ) {
        let insns: Vec<Insn> = raw
            .into_iter()
            .map(|(op, a, b, imm, off)| match op {
                0 => Insn::LdImm(a % 12, imm),
                1 => Insn::LdField(a % 12, Field::SrcIp),
                2 => Insn::Alu(AluOp::Add, a % 12, Operand::Imm(imm)),
                3 => Insn::Alu(AluOp::Xor, a % 12, Operand::Reg(b % 12)),
                4 => Insn::Jmp(off),
                5 => Insn::JmpIf(Cmp::Gt, a % 12, Operand::Imm(imm), off),
                6 => Insn::Lookup(a % 3, b % 12),
                7 => Insn::SetField(WField::Dscp, a % 12),
                8 => Insn::Count(u16::from(a)),
                _ => Insn::Return(VerdictCode::Forward),
            })
            .collect();
        let verdict = codelet::verify(&insns, 1);
        if verdict.is_ok() {
            // Accepted programs must run to completion on a packet.
            let table = HashTable::with_capacity(16);
            let mut app = codelet::Codelet::new("fuzz", insns, vec![table]).unwrap();
            let mut frame = flexsfp_wire::builder::PacketBuilder::eth_ipv4_udp(
                flexsfp_wire::MacAddr([1; 6]),
                flexsfp_wire::MacAddr([2; 6]),
                0xc0a80001,
                0x08080808,
                1,
                2,
                b"x",
            );
            use flexsfp_ppe::{PacketProcessor, ProcessContext};
            let _ = app.process(&ProcessContext::egress(), &mut frame);
        }
    }

    /// LPM lookup equals the naive longest-match scan.
    #[test]
    fn lpm_vs_naive(
        prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u16>()), 0..50),
        probes in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let mut lpm = LpmTable::new();
        let mut naive: Vec<(u32, u8, u16)> = Vec::new();
        for (prefix, len, v) in prefixes {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
            let masked = prefix & mask;
            lpm.insert(masked, len, v);
            naive.retain(|(p, l, _)| !(*p == masked && *l == len));
            naive.push((masked, len, v));
        }
        for addr in probes {
            let expect = naive
                .iter()
                .filter(|(p, l, _)| {
                    let mask = if *l == 0 { 0 } else { u32::MAX << (32 - u32::from(*l)) };
                    addr & mask == *p
                })
                .max_by_key(|(_, l, _)| *l)
                .map(|(_, l, v)| (*l, *v));
            prop_assert_eq!(lpm.lookup(addr), expect);
        }
    }

    /// `CounterBank::snapshot` is consistent under interleaved `count`
    /// calls: every snapshot equals a model accumulated from exactly
    /// the counts issued so far — no torn, stale or phantom values.
    #[test]
    fn counter_snapshot_consistent_under_interleaved_counts(
        events in proptest::collection::vec((0usize..6, 1usize..2000, any::<bool>()), 0..300),
    ) {
        let mut bank = flexsfp_ppe::counters::CounterBank::new(4);
        let mut model = vec![(0u64, 0u64); 4]; // (packets, bytes)
        for (idx, bytes, snapshot_now) in events {
            bank.count(idx, bytes);
            if idx < 4 {
                model[idx].0 += 1;
                model[idx].1 += bytes as u64;
            }
            if snapshot_now {
                let snap = bank.snapshot();
                prop_assert_eq!(snap.len(), 4);
                for (i, c) in snap.iter().enumerate() {
                    prop_assert_eq!((c.packets, c.bytes), model[i]);
                    // Point reads agree with the latched bank.
                    prop_assert_eq!(bank.get(i), *c);
                }
            }
        }
    }

    /// Counters: count/snapshot_and_clear over arbitrary interleavings
    /// never lose or duplicate a byte.
    #[test]
    fn counter_export_lossless(
        events in proptest::collection::vec((0usize..4, 1usize..2000, any::<bool>()), 0..200),
    ) {
        let mut bank = flexsfp_ppe::counters::CounterBank::new(4);
        let mut exported = vec![0u64; 4];
        let mut total = vec![0u64; 4];
        for (idx, bytes, export_now) in events {
            bank.count(idx, bytes);
            total[idx] += bytes as u64;
            if export_now {
                for (i, c) in bank.snapshot_and_clear().into_iter().enumerate() {
                    exported[i] += c.bytes;
                }
            }
        }
        for (i, c) in bank.snapshot().into_iter().enumerate() {
            exported[i] += c.bytes;
        }
        prop_assert_eq!(exported, total);
    }
}
