//! The hardware hash-table model.
//!
//! Exact-match state in the PPE lives in bucketized hash tables carved
//! out of LSRAM: CRC-32 of the key selects a bucket, and a small number
//! of ways per bucket are probed in parallel. Unlike a software HashMap
//! there is no rehashing and no unbounded chaining — a full bucket is an
//! insertion failure the control plane must handle. The NAT case study's
//! 32 768-flow source-IP table is exactly such a structure.

use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::sram::TableShape;
use std::cell::Cell;

/// Fixed-width key material for hardware tables (13 bytes fits an IPv4
/// 5-tuple; shorter keys zero-pad).
pub trait TableKey: Copy + Eq {
    /// Serialized key bytes (zero-padded to a fixed width in hardware).
    fn key_bytes(&self) -> [u8; 13];
    /// Width of the meaningful key in bits (for memory planning).
    fn key_bits() -> u64;
}

impl TableKey for u32 {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[..4].copy_from_slice(&self.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        32
    }
}

impl TableKey for u64 {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[..8].copy_from_slice(&self.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        64
    }
}

/// IPv4 5-tuple key `(src, dst, proto, sport, dport)`.
pub type FiveTuple = (u32, u32, u8, u16, u16);

impl TableKey for FiveTuple {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.0.to_be_bytes());
        b[4..8].copy_from_slice(&self.1.to_be_bytes());
        b[8] = self.2;
        b[9..11].copy_from_slice(&self.3.to_be_bytes());
        b[11..13].copy_from_slice(&self.4.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        104
    }
}

/// Errors from table updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// Every way of the target bucket is occupied.
    BucketFull,
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::BucketFull => write!(f, "hash bucket full"),
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry<K, V> {
    key: K,
    value: V,
}

/// Statistics of a hardware hash table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Inserts rejected with a full bucket.
    pub insert_failures: u64,
}

/// A bucketized, CRC-indexed hash table of fixed capacity.
///
/// Hit/miss counters live in [`Cell`]s so [`lookup`](HashTable::lookup)
/// takes `&self` — the dataplane probes tables through shared references
/// (hardware lookups don't mutate the table), and sweep workers can hold a
/// module without exclusive access just to count hits.
#[derive(Debug, Clone)]
pub struct HashTable<K: TableKey, V: Copy> {
    buckets: Vec<Vec<Entry<K, V>>>,
    ways: usize,
    occupied: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    insert_failures: u64,
}

impl<K: TableKey, V: Copy> HashTable<K, V> {
    /// A table with `buckets` buckets (rounded up to a power of two) of
    /// `ways` entries each.
    pub fn new(buckets: usize, ways: usize) -> HashTable<K, V> {
        assert!(buckets > 0 && ways > 0);
        let buckets = buckets.next_power_of_two();
        HashTable {
            buckets: vec![Vec::new(); buckets],
            ways,
            occupied: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
            insert_failures: 0,
        }
    }

    /// A table sized for `capacity` total entries with 4-way buckets —
    /// the layout used for the NAT's 32 768-flow table.
    pub fn with_capacity(capacity: usize) -> HashTable<K, V> {
        let ways = 4;
        HashTable::new(capacity.div_ceil(ways), ways)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.ways
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    fn bucket_index(&self, key: &K) -> usize {
        (crc32(&key.key_bytes()) as usize) & (self.buckets.len() - 1)
    }

    /// Look up `key`, updating hit/miss statistics.
    pub fn lookup(&self, key: &K) -> Option<V> {
        let idx = self.bucket_index(key);
        match self.buckets[idx].iter().find(|e| e.key == *key) {
            Some(e) => {
                self.hits.set(self.hits.get() + 1);
                Some(e.value)
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Look up without touching statistics (control-plane reads).
    pub fn peek(&self, key: &K) -> Option<V> {
        let idx = self.bucket_index(key);
        self.buckets[idx]
            .iter()
            .find(|e| e.key == *key)
            .map(|e| e.value)
    }

    /// Insert or update. Fails with [`TableError::BucketFull`] when the
    /// bucket has no free way (the hardware has nowhere to put it —
    /// there is no probing across buckets).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), TableError> {
        let idx = self.bucket_index(&key);
        let bucket = &mut self.buckets[idx];
        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            e.value = value;
            return Ok(());
        }
        if bucket.len() >= self.ways {
            self.insert_failures += 1;
            return Err(TableError::BucketFull);
        }
        bucket.push(Entry { key, value });
        self.occupied += 1;
        Ok(())
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.bucket_index(key);
        let bucket = &mut self.buckets[idx];
        let pos = bucket.iter().position(|e| e.key == *key)?;
        self.occupied -= 1;
        Some(bucket.swap_remove(pos).value)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupied = 0;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TableStats {
        TableStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insert_failures: self.insert_failures,
        }
    }

    /// Iterate over `(key, value)` pairs (control-plane table dump).
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| (e.key, e.value)))
    }

    /// Memory shape for the planner: one word per entry slot wide enough
    /// for key + value + valid bit.
    pub fn table_shape(&self, value_bits: u64) -> TableShape {
        TableShape::new(self.capacity() as u64, K::key_bits() + value_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_fabric::sram::{MemoryKind, MemoryPlanner};

    #[test]
    fn insert_lookup_remove() {
        let mut t: HashTable<u32, u64> = HashTable::with_capacity(1024);
        assert!(t.is_empty());
        t.insert(0xc0a80001, 42).unwrap();
        assert_eq!(t.lookup(&0xc0a80001), Some(42));
        assert_eq!(t.lookup(&0xc0a80002), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&0xc0a80001), Some(42));
        assert_eq!(t.lookup(&0xc0a80001), None);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn update_in_place() {
        let mut t: HashTable<u32, u64> = HashTable::with_capacity(16);
        t.insert(7, 1).unwrap();
        t.insert(7, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&7), Some(2));
    }

    #[test]
    fn bucket_overflow_is_an_error() {
        // One bucket, two ways: the third distinct key must fail.
        let mut t: HashTable<u32, u64> = HashTable::new(1, 2);
        let mut inserted = 0;
        let mut failed = 0;
        for k in 0u32..3 {
            match t.insert(k, u64::from(k)) {
                Ok(()) => inserted += 1,
                Err(TableError::BucketFull) => failed += 1,
            }
        }
        assert_eq!(inserted, 2);
        assert_eq!(failed, 1);
        assert_eq!(t.stats().insert_failures, 1);
    }

    #[test]
    fn holds_nat_scale_population() {
        // The NAT's table: 32 768 entries, 4-way (8 192 buckets). At 25%
        // load the per-bucket Poisson mean is 1, so overflow is rare;
        // at 50% it degrades gracefully (a few percent), which is why
        // real deployments keep exact-match tables under-filled.
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        assert_eq!(t.capacity(), 32_768);
        let mut failures_at_quarter = 0;
        let mut failures_at_half = 0;
        for i in 0..16_384u32 {
            // Realistic subscriber addresses: 10.0.0.0/10 spread.
            let ip = 0x0a000000 | (i.wrapping_mul(7919));
            if t.insert(ip, i).is_err() {
                failures_at_half += 1;
                if i < 8_192 {
                    failures_at_quarter += 1;
                }
            }
        }
        assert!(
            failures_at_quarter < 100,
            "excessive overflow at 25% load: {failures_at_quarter}"
        );
        assert!(
            failures_at_half < 16_384 / 20,
            "worse than 5% overflow at 50% load: {failures_at_half}"
        );
        assert!(t.len() > 15_000);
    }

    #[test]
    fn five_tuple_keys() {
        let mut t: HashTable<FiveTuple, u8> = HashTable::with_capacity(64);
        let k1 = (1u32, 2u32, 6u8, 80u16, 443u16);
        let k2 = (1u32, 2u32, 6u8, 80u16, 444u16);
        t.insert(k1, 1).unwrap();
        assert_eq!(t.lookup(&k1), Some(1));
        assert_eq!(t.lookup(&k2), None);
    }

    #[test]
    fn iter_dumps_all_entries() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(64);
        for k in 0..10u32 {
            t.insert(k, k * 2).unwrap();
        }
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[3], (3, 6));
    }

    #[test]
    fn clear_resets() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(64);
        t.insert(1, 1).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(&1), None);
    }

    #[test]
    fn nat_table_memory_shape_matches_table1() {
        // 32 768 entries of src-IP (32b key) + translated IP (32b) + a
        // handful of metadata bits lands on the 160-LSRAM-block budget
        // Table 1 attributes to the NAT.
        let t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        let shape = t.table_shape(63);
        let p = MemoryPlanner::place(shape);
        assert_eq!(p.kind, MemoryKind::Lsram);
        assert_eq!(p.blocks, 160);
    }

    #[test]
    fn lookup_counts_through_shared_reference() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(16);
        t.insert(1, 10).unwrap();
        let shared: &HashTable<u32, u32> = &t;
        assert_eq!(shared.lookup(&1), Some(10));
        assert_eq!(shared.lookup(&2), None);
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(shared.stats().misses, 1);
        // peek still bypasses the counters.
        assert_eq!(shared.peek(&1), Some(10));
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_buckets() {
        let t: HashTable<u32, u32> = HashTable::new(10, 4);
        assert_eq!(t.capacity(), 16 * 4);
    }
}
