//! The hardware hash-table model.
//!
//! Exact-match state in the PPE lives in bucketized hash tables carved
//! out of LSRAM: CRC-32 of the key selects a bucket, and a small number
//! of ways per bucket are probed in parallel. Unlike a software HashMap
//! there is no rehashing and no unbounded chaining — a full bucket is an
//! insertion failure the control plane must handle. The NAT case study's
//! 32 768-flow source-IP table is exactly such a structure.

use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::sram::TableShape;
use std::cell::Cell;

/// Fixed-width key material for hardware tables (13 bytes fits an IPv4
/// 5-tuple; shorter keys zero-pad).
pub trait TableKey: Copy + Eq {
    /// Serialized key bytes (zero-padded to a fixed width in hardware).
    fn key_bytes(&self) -> [u8; 13];
    /// Width of the meaningful key in bits (for memory planning).
    fn key_bits() -> u64;
}

impl TableKey for u32 {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[..4].copy_from_slice(&self.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        32
    }
}

impl TableKey for u64 {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[..8].copy_from_slice(&self.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        64
    }
}

/// IPv4 5-tuple key `(src, dst, proto, sport, dport)`.
pub type FiveTuple = (u32, u32, u8, u16, u16);

impl TableKey for FiveTuple {
    fn key_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.0.to_be_bytes());
        b[4..8].copy_from_slice(&self.1.to_be_bytes());
        b[8] = self.2;
        b[9..11].copy_from_slice(&self.3.to_be_bytes());
        b[11..13].copy_from_slice(&self.4.to_be_bytes());
        b
    }
    fn key_bits() -> u64 {
        104
    }
}

/// Errors from table updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// Every way of the target bucket is occupied.
    BucketFull,
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::BucketFull => write!(f, "hash bucket full"),
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry<K, V> {
    key: K,
    value: V,
}

/// Statistics of a hardware hash table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Inserts rejected with a full bucket.
    pub insert_failures: u64,
}

/// Map a key's CRC-32 to a nonzero 1-byte fingerprint. The high byte is
/// used so the fingerprint bits don't overlap the bucket-index bits for
/// any realistic table size (≤ 2^24 buckets); 0 is reserved for "empty"
/// and remapped to 1.
fn fingerprint(hash: u32) -> u8 {
    let fp = (hash >> 24) as u8;
    if fp == 0 {
        1
    } else {
        fp
    }
}

/// A bucketized, CRC-indexed hash table of fixed capacity.
///
/// Storage is a single flat slot array of `buckets × ways` entries with
/// a parallel 1-byte tag array — no per-bucket `Vec`, no pointer chase.
/// A probe scans the bucket's contiguous tag bytes (one cache line for
/// any realistic associativity) and touches the wide slot array only on
/// a fingerprint match; tag 0 means the way is empty. Bucket selection
/// is unchanged from the chained layout (CRC-32 of the key masked by
/// the power-of-two bucket count), as are the BucketFull semantics, so
/// table layouts — which keys land in which bucket, and which inserts
/// overflow — are bit-identical to the previous representation.
///
/// Hit/miss counters live in [`Cell`]s so [`lookup`](HashTable::lookup)
/// takes `&self` — the dataplane probes tables through shared references
/// (hardware lookups don't mutate the table), and sweep workers can hold a
/// module without exclusive access just to count hits.
#[derive(Debug, Clone)]
pub struct HashTable<K: TableKey, V: Copy> {
    /// One byte per slot: 0 = empty, else the occupant's fingerprint.
    tags: Vec<u8>,
    /// `Some` exactly where the tag is nonzero.
    slots: Vec<Option<Entry<K, V>>>,
    bucket_mask: usize,
    ways: usize,
    occupied: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    insert_failures: u64,
}

impl<K: TableKey, V: Copy> HashTable<K, V> {
    /// A table with `buckets` buckets (rounded up to a power of two) of
    /// `ways` entries each.
    pub fn new(buckets: usize, ways: usize) -> HashTable<K, V> {
        assert!(buckets > 0 && ways > 0);
        let buckets = buckets.next_power_of_two();
        HashTable {
            tags: vec![0; buckets * ways],
            slots: vec![None; buckets * ways],
            bucket_mask: buckets - 1,
            ways,
            occupied: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
            insert_failures: 0,
        }
    }

    /// A table sized for `capacity` total entries with 4-way buckets —
    /// the layout used for the NAT's 32 768-flow table.
    pub fn with_capacity(capacity: usize) -> HashTable<K, V> {
        let ways = 4;
        HashTable::new(capacity.div_ceil(ways), ways)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Occupancy as a fraction of capacity — O(1), read on every
    /// telemetry scrape.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// The bucket `key` hashes to. Public so layout-pinning tests (and
    /// control-plane introspection) can prove which bucket an entry
    /// occupies without depending on the storage representation.
    pub fn bucket_of(&self, key: &K) -> usize {
        (crc32(&key.key_bytes()) as usize) & self.bucket_mask
    }

    /// Probe a bucket for `key`: tag scan first, full key compare only
    /// on fingerprint match. Returns the matching slot index.
    #[inline]
    fn find(&self, key: &K) -> Option<usize> {
        let h = crc32(&key.key_bytes());
        let base = ((h as usize) & self.bucket_mask) * self.ways;
        let fp = fingerprint(h);
        for w in 0..self.ways {
            if self.tags[base + w] == fp {
                if let Some(e) = &self.slots[base + w] {
                    if e.key == *key {
                        return Some(base + w);
                    }
                }
            }
        }
        None
    }

    /// Look up `key`, updating hit/miss statistics.
    pub fn lookup(&self, key: &K) -> Option<V> {
        match self.find(key) {
            Some(slot) => {
                self.hits.set(self.hits.get() + 1);
                self.slots[slot].as_ref().map(|e| e.value)
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Look up without touching statistics (control-plane reads).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.find(key)
            .and_then(|slot| self.slots[slot].as_ref())
            .map(|e| e.value)
    }

    /// Insert or update. Fails with [`TableError::BucketFull`] when the
    /// bucket has no free way (the hardware has nowhere to put it —
    /// there is no probing across buckets).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), TableError> {
        let h = crc32(&key.key_bytes());
        let base = ((h as usize) & self.bucket_mask) * self.ways;
        let fp = fingerprint(h);
        // Update in place when the key is already resident.
        for w in 0..self.ways {
            if self.tags[base + w] == fp {
                if let Some(e) = &mut self.slots[base + w] {
                    if e.key == key {
                        e.value = value;
                        return Ok(());
                    }
                }
            }
        }
        // First free way, else the bucket is full.
        for w in 0..self.ways {
            if self.tags[base + w] == 0 {
                self.tags[base + w] = fp;
                self.slots[base + w] = Some(Entry { key, value });
                self.occupied += 1;
                return Ok(());
            }
        }
        self.insert_failures += 1;
        Err(TableError::BucketFull)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.find(key)?;
        self.tags[slot] = 0;
        self.occupied -= 1;
        self.slots[slot].take().map(|e| e.value)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.tags.fill(0);
        for s in &mut self.slots {
            *s = None;
        }
        self.occupied = 0;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TableStats {
        TableStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insert_failures: self.insert_failures,
        }
    }

    /// Iterate over `(key, value)` pairs (control-plane table dump).
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.slots.iter().flatten().map(|e| (e.key, e.value))
    }

    /// Memory shape for the planner: one word per entry slot wide enough
    /// for key + value + valid bit.
    pub fn table_shape(&self, value_bits: u64) -> TableShape {
        TableShape::new(self.capacity() as u64, K::key_bits() + value_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_fabric::sram::{MemoryKind, MemoryPlanner};

    #[test]
    fn insert_lookup_remove() {
        let mut t: HashTable<u32, u64> = HashTable::with_capacity(1024);
        assert!(t.is_empty());
        t.insert(0xc0a80001, 42).unwrap();
        assert_eq!(t.lookup(&0xc0a80001), Some(42));
        assert_eq!(t.lookup(&0xc0a80002), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&0xc0a80001), Some(42));
        assert_eq!(t.lookup(&0xc0a80001), None);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn update_in_place() {
        let mut t: HashTable<u32, u64> = HashTable::with_capacity(16);
        t.insert(7, 1).unwrap();
        t.insert(7, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&7), Some(2));
    }

    #[test]
    fn bucket_overflow_is_an_error() {
        // One bucket, two ways: the third distinct key must fail.
        let mut t: HashTable<u32, u64> = HashTable::new(1, 2);
        let mut inserted = 0;
        let mut failed = 0;
        for k in 0u32..3 {
            match t.insert(k, u64::from(k)) {
                Ok(()) => inserted += 1,
                Err(TableError::BucketFull) => failed += 1,
            }
        }
        assert_eq!(inserted, 2);
        assert_eq!(failed, 1);
        assert_eq!(t.stats().insert_failures, 1);
    }

    #[test]
    fn holds_nat_scale_population() {
        // The NAT's table: 32 768 entries, 4-way (8 192 buckets). At 25%
        // load the per-bucket Poisson mean is 1, so overflow is rare;
        // at 50% it degrades gracefully (a few percent), which is why
        // real deployments keep exact-match tables under-filled.
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        assert_eq!(t.capacity(), 32_768);
        let mut failures_at_quarter = 0;
        let mut failures_at_half = 0;
        for i in 0..16_384u32 {
            // Realistic subscriber addresses: 10.0.0.0/10 spread.
            let ip = 0x0a000000 | (i.wrapping_mul(7919));
            if t.insert(ip, i).is_err() {
                failures_at_half += 1;
                if i < 8_192 {
                    failures_at_quarter += 1;
                }
            }
        }
        assert!(
            failures_at_quarter < 100,
            "excessive overflow at 25% load: {failures_at_quarter}"
        );
        assert!(
            failures_at_half < 16_384 / 20,
            "worse than 5% overflow at 50% load: {failures_at_half}"
        );
        assert!(t.len() > 15_000);
    }

    #[test]
    fn five_tuple_keys() {
        let mut t: HashTable<FiveTuple, u8> = HashTable::with_capacity(64);
        let k1 = (1u32, 2u32, 6u8, 80u16, 443u16);
        let k2 = (1u32, 2u32, 6u8, 80u16, 444u16);
        t.insert(k1, 1).unwrap();
        assert_eq!(t.lookup(&k1), Some(1));
        assert_eq!(t.lookup(&k2), None);
    }

    #[test]
    fn iter_dumps_all_entries() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(64);
        for k in 0..10u32 {
            t.insert(k, k * 2).unwrap();
        }
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[3], (3, 6));
    }

    #[test]
    fn clear_resets() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(64);
        t.insert(1, 1).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(&1), None);
    }

    #[test]
    fn nat_table_memory_shape_matches_table1() {
        // 32 768 entries of src-IP (32b key) + translated IP (32b) + a
        // handful of metadata bits lands on the 160-LSRAM-block budget
        // Table 1 attributes to the NAT.
        let t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        let shape = t.table_shape(63);
        let p = MemoryPlanner::place(shape);
        assert_eq!(p.kind, MemoryKind::Lsram);
        assert_eq!(p.blocks, 160);
    }

    #[test]
    fn lookup_counts_through_shared_reference() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(16);
        t.insert(1, 10).unwrap();
        let shared: &HashTable<u32, u32> = &t;
        assert_eq!(shared.lookup(&1), Some(10));
        assert_eq!(shared.lookup(&2), None);
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(shared.stats().misses, 1);
        // peek still bypasses the counters.
        assert_eq!(shared.peek(&1), Some(10));
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_buckets() {
        let t: HashTable<u32, u32> = HashTable::new(10, 4);
        assert_eq!(t.capacity(), 16 * 4);
    }

    #[test]
    fn load_factor_tracks_occupancy() {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(64);
        assert_eq!(t.load_factor(), 0.0);
        for k in 0..16u32 {
            t.insert(k, k).unwrap();
        }
        assert!((t.load_factor() - 0.25).abs() < 1e-12);
        t.clear();
        assert_eq!(t.load_factor(), 0.0);
    }

    /// Pinned CRC-32 bucket indices at the NAT's production geometry
    /// (32 768 entries, 4-way ⇒ 8 192 buckets). These literals were
    /// computed against the chained layout before the flat rework; if
    /// any of them moves, NAT table layouts — and therefore which
    /// inserts overflow — would silently change.
    #[test]
    fn bucket_index_golden_is_pinned() {
        let t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        for (key, bucket) in [
            (0xc0a8_0001u32, 7142usize),
            (0xc0a8_0002, 229),
            (0x0a00_0000, 164),
            (0x0a3f_ffff, 3439),
            (0x650a_0001, 3216),
            (0xdead_beef, 3803),
            (0x0000_0000, 1666),
            (0x7f00_0001, 1037),
        ] {
            assert_eq!(t.bucket_of(&key), bucket, "bucket moved for {key:#010x}");
        }
    }

    /// Model check against a BTreeMap: a seeded random stream of
    /// insert/update/remove/lookup operations must agree with the
    /// reference map on every observable, with BucketFull rejections
    /// exactly when the model already holds `ways` keys of the same
    /// bucket. Runs unconditionally (the proptest variant in
    /// `tests/prop.rs` explores more schedules behind the feature gate).
    #[test]
    fn flat_table_matches_btreemap_model() {
        use std::collections::BTreeMap;
        // SplitMix64: tiny, seedable, no dependency.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut t: HashTable<u64, u64> = HashTable::new(64, 4);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let (mut expect_hits, mut expect_misses, mut expect_failures) = (0u64, 0u64, 0u64);
        for _ in 0..20_000 {
            let r = next();
            let key = next() % 512; // dense keyspace: collisions guaranteed
            match r % 4 {
                0 | 1 => {
                    let value = next();
                    match t.insert(key, value) {
                        Ok(()) => {
                            model.insert(key, value);
                        }
                        Err(TableError::BucketFull) => {
                            expect_failures += 1;
                            assert!(!model.contains_key(&key), "rejected a resident key");
                            let bucket = t.bucket_of(&key);
                            let same_bucket =
                                model.keys().filter(|k| t.bucket_of(k) == bucket).count();
                            assert_eq!(same_bucket, 4, "BucketFull with a free way");
                        }
                    }
                }
                2 => {
                    let got = t.lookup(&key);
                    assert_eq!(got, model.get(&key).copied());
                    if got.is_some() {
                        expect_hits += 1;
                    } else {
                        expect_misses += 1;
                    }
                }
                _ => {
                    assert_eq!(t.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(t.len(), model.len());
        }
        let s = t.stats();
        assert_eq!(s.hits, expect_hits);
        assert_eq!(s.misses, expect_misses);
        assert_eq!(s.insert_failures, expect_failures);
        // The full dump agrees with the model too.
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort();
        let reference: Vec<_> = model.into_iter().collect();
        assert_eq!(pairs, reference);
    }
}
