//! Longest-prefix and ternary match structures.
//!
//! Exact matching is covered by [`crate::tables::HashTable`]. Routing-
//! style lookups need longest-prefix match ([`LpmTable`]) and ACLs need
//! ternary match with priorities ([`TernaryTable`]) — in silicon the
//! latter is a small TCAM or LUT-cascade; the model preserves its
//! first-match-by-priority semantics and capacity accounting.

use flexsfp_fabric::sram::TableShape;
use std::collections::BTreeMap;

/// A longest-prefix-match table over IPv4 prefixes.
#[derive(Debug, Clone, Default)]
pub struct LpmTable<V: Copy> {
    // One exact-match map per prefix length, searched longest-first —
    // the classic "32 parallel tables" hardware decomposition.
    levels: BTreeMap<u8, std::collections::HashMap<u32, V>>,
    entries: usize,
}

impl<V: Copy> LpmTable<V> {
    /// An empty table.
    pub fn new() -> LpmTable<V> {
        LpmTable {
            levels: BTreeMap::new(),
            entries: 0,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Insert `prefix/len → value`. Panics on `len > 32`.
    pub fn insert(&mut self, prefix: u32, len: u8, value: V) {
        assert!(len <= 32, "prefix length out of range");
        let masked = prefix & Self::mask(len);
        let level = self.levels.entry(len).or_default();
        if level.insert(masked, value).is_none() {
            self.entries += 1;
        }
    }

    /// Remove `prefix/len`.
    pub fn remove(&mut self, prefix: u32, len: u8) -> Option<V> {
        let masked = prefix & Self::mask(len);
        let v = self.levels.get_mut(&len)?.remove(&masked);
        if v.is_some() {
            self.entries -= 1;
        }
        v
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: u32) -> Option<(u8, V)> {
        for (&len, level) in self.levels.iter().rev() {
            if let Some(v) = level.get(&(addr & Self::mask(len))) {
                return Some((len, *v));
            }
        }
        None
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no prefixes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// One ternary entry: `value/mask` with a priority (lower = higher
/// priority, matching P4 convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernaryEntry<V: Copy> {
    /// Key value bits.
    pub value: [u8; 13],
    /// Care mask: 1 bits must match.
    pub mask: [u8; 13],
    /// Priority; lower wins.
    pub priority: u32,
    /// Associated data.
    pub data: V,
}

impl<V: Copy> TernaryEntry<V> {
    fn matches(&self, key: &[u8; 13]) -> bool {
        self.value
            .iter()
            .zip(&self.mask)
            .zip(key)
            .all(|((v, m), k)| v & m == k & m)
    }
}

/// A fixed-capacity ternary (TCAM-style) table.
#[derive(Debug, Clone)]
pub struct TernaryTable<V: Copy> {
    entries: Vec<TernaryEntry<V>>,
    capacity: usize,
}

impl<V: Copy> TernaryTable<V> {
    /// A table of at most `capacity` entries (TCAM rows are precious).
    pub fn new(capacity: usize) -> TernaryTable<V> {
        TernaryTable {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Install an entry; returns `false` when the table is full.
    pub fn insert(&mut self, entry: TernaryEntry<V>) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(entry);
        // Keep sorted by priority so lookup is first-match.
        self.entries.sort_by_key(|e| e.priority);
        true
    }

    /// Highest-priority matching entry.
    pub fn lookup(&self, key: &[u8; 13]) -> Option<&TernaryEntry<V>> {
        self.entries.iter().find(|e| e.matches(key))
    }

    /// Remove all entries with `priority`.
    pub fn remove_priority(&mut self, priority: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.priority != priority);
        before - self.entries.len()
    }

    /// Installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remaining rows.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Memory shape: TCAM rows cost value+mask bits per entry.
    pub fn table_shape(&self) -> TableShape {
        TableShape::new(self.capacity as u64, 2 * 13 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpm_prefers_longest() {
        let mut t = LpmTable::new();
        t.insert(0x0a000000, 8, "ten-slash-8");
        t.insert(0x0a010000, 16, "ten-one");
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(0x0a010203), Some((16, "ten-one")));
        assert_eq!(t.lookup(0x0a020304), Some((8, "ten-slash-8")));
        assert_eq!(t.lookup(0xc0a80001), Some((0, "default")));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lpm_no_default_misses() {
        let mut t = LpmTable::new();
        t.insert(0x0a000000, 8, 1u8);
        assert_eq!(t.lookup(0x0b000000), None);
    }

    #[test]
    fn lpm_insert_masks_host_bits() {
        let mut t = LpmTable::new();
        t.insert(0x0a0000ff, 24, 9u8); // host bits ignored
        assert_eq!(t.lookup(0x0a000001), Some((24, 9)));
        assert_eq!(t.remove(0x0a000000, 24), Some(9));
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_slash32_is_exact() {
        let mut t = LpmTable::new();
        t.insert(0x01020304, 32, 5u8);
        assert_eq!(t.lookup(0x01020304), Some((32, 5)));
        assert_eq!(t.lookup(0x01020305), None);
    }

    fn key(bytes: &[u8]) -> [u8; 13] {
        let mut k = [0u8; 13];
        k[..bytes.len()].copy_from_slice(bytes);
        k
    }

    #[test]
    fn ternary_priority_order() {
        let mut t = TernaryTable::new(8);
        // Low priority: match anything.
        assert!(t.insert(TernaryEntry {
            value: [0; 13],
            mask: [0; 13],
            priority: 100,
            data: "any",
        }));
        // High priority: first byte must be 0x0a.
        assert!(t.insert(TernaryEntry {
            value: key(&[0x0a]),
            mask: key(&[0xff]),
            priority: 1,
            data: "ten-net",
        }));
        assert_eq!(t.lookup(&key(&[0x0a, 0x01])).unwrap().data, "ten-net");
        assert_eq!(t.lookup(&key(&[0x0b])).unwrap().data, "any");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ternary_capacity_enforced() {
        let mut t = TernaryTable::new(1);
        assert!(t.insert(TernaryEntry {
            value: [0; 13],
            mask: [0; 13],
            priority: 1,
            data: 0u8,
        }));
        assert!(!t.insert(TernaryEntry {
            value: [0; 13],
            mask: [0; 13],
            priority: 2,
            data: 1u8,
        }));
        assert_eq!(t.free(), 0);
    }

    #[test]
    fn ternary_remove_by_priority() {
        let mut t = TernaryTable::new(4);
        for p in [1u32, 2, 2, 3] {
            t.insert(TernaryEntry {
                value: [0; 13],
                mask: [0; 13],
                priority: p,
                data: p,
            });
        }
        assert_eq!(t.remove_priority(2), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(&[0; 13]).unwrap().priority, 1);
    }

    #[test]
    fn ternary_masked_bits_ignored() {
        let mut t = TernaryTable::new(2);
        t.insert(TernaryEntry {
            value: key(&[0xaa, 0xff]),
            mask: key(&[0xff, 0x00]), // second byte don't-care
            priority: 1,
            data: (),
        });
        assert!(t.lookup(&key(&[0xaa, 0x12])).is_some());
        assert!(t.lookup(&key(&[0xab, 0xff])).is_none());
    }

    #[test]
    fn shapes() {
        let t: TernaryTable<u8> = TernaryTable::new(64);
        let s = t.table_shape();
        assert_eq!(s.entries, 64);
        assert_eq!(s.entry_bits, 208);
    }
}
