//! Action primitives of the match-action pipeline.
//!
//! Each [`Action`] is one hardware edit unit: field rewrites with
//! incremental checksum maintenance, VLAN push/pop, tunnel encap/decap,
//! counting, metering and verdict emission. The paper positions exactly
//! this action vocabulary as FlexSFP's sweet spot: "composed L2–L4
//! functions — multi-field parse/edit, label/tunnel manipulation,
//! per-packet hashing for steering, and in-band timestamping" (§5.3).

use crate::counters::CounterBank;
use crate::engine::{ProcessContext, Verdict};
use crate::meter::{Color, TokenBucket};
use crate::parser::{ParsedPacket, L4};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::{
    checksum, ethernet, ipv4::Ipv4Packet, vlan, EtherType, EthernetFrame, IpProtocol,
};

/// One action unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Rewrite the IPv4 source address (incremental checksums).
    SetIpv4Src(u32),
    /// Rewrite the IPv4 destination address (incremental checksums).
    SetIpv4Dst(u32),
    /// Set the DSCP codepoint (incremental IP checksum).
    SetDscp(u8),
    /// Decrement TTL; emits Drop when TTL would reach zero.
    DecTtl,
    /// Push an 802.1Q tag.
    PushVlan {
        /// VLAN id.
        vid: u16,
        /// Priority code point.
        pcp: u8,
    },
    /// Push an 802.1ad S-tag (QinQ outer tag).
    PushSTag {
        /// Service VLAN id.
        vid: u16,
    },
    /// Pop the outermost VLAN tag (no-op if untagged).
    PopVlan,
    /// Rewrite the outermost VLAN id (no-op if untagged).
    SetVlanVid(u16),
    /// GRE-encapsulate the IP payload in a new outer IPv4 header.
    EncapGre {
        /// Outer source address.
        src: u32,
        /// Outer destination address.
        dst: u32,
        /// Optional GRE key.
        key: u32,
    },
    /// IP-in-IP encapsulate.
    EncapIpIp {
        /// Outer source address.
        src: u32,
        /// Outer destination address.
        dst: u32,
    },
    /// VXLAN-encapsulate the whole frame in outer IPv4/UDP.
    EncapVxlan {
        /// Outer source address.
        src: u32,
        /// Outer destination address.
        dst: u32,
        /// VXLAN network identifier.
        vni: u32,
    },
    /// Strip one outer IPv4 tunnel layer (GRE or IP-in-IP).
    DecapTunnel,
    /// Count packet+bytes on counter `0`..bank size.
    Count(usize),
    /// Meter against token bucket `idx`; red packets are dropped.
    Meter(usize),
    /// Emit a final verdict.
    Emit(VerdictAction),
}

/// Verdicts an action can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictAction {
    /// Forward to natural egress.
    Forward,
    /// Drop.
    Drop,
    /// Divert to the control plane.
    ToControlPlane,
}

impl VerdictAction {
    fn to_verdict(self) -> Verdict {
        match self {
            VerdictAction::Forward => Verdict::Forward,
            VerdictAction::Drop => Verdict::Drop,
            VerdictAction::ToControlPlane => Verdict::ToControlPlane,
        }
    }
}

/// Outcome of applying one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Continue with the next action; `true` if the packet bytes or
    /// layout changed (requiring a re-parse before further matching).
    Continue {
        /// Packet was modified.
        modified: bool,
    },
    /// Stop: a verdict was decided.
    Final(Verdict),
}

/// Executes actions against packets, owning the counter bank and meters
/// the actions reference.
#[derive(Debug)]
pub struct ActionEngine {
    /// Counter bank indexed by [`Action::Count`].
    pub counters: CounterBank,
    /// Meters indexed by [`Action::Meter`].
    pub meters: Vec<TokenBucket>,
}

impl ActionEngine {
    /// An engine with `n_counters` counters and the given meters.
    pub fn new(n_counters: usize, meters: Vec<TokenBucket>) -> ActionEngine {
        ActionEngine {
            counters: CounterBank::new(n_counters),
            meters,
        }
    }

    /// Apply one action. `parsed` must describe the current `packet`.
    pub fn apply(
        &mut self,
        action: Action,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
        parsed: &ParsedPacket,
    ) -> ActionOutcome {
        match action {
            Action::SetIpv4Src(new) => rewrite_addr(packet, parsed, new, true),
            Action::SetIpv4Dst(new) => rewrite_addr(packet, parsed, new, false),
            Action::SetDscp(dscp) => set_dscp(packet, parsed, dscp),
            Action::DecTtl => dec_ttl(packet, parsed),
            Action::PushVlan { vid, pcp } => {
                *packet = vlan::push_tag(
                    packet,
                    EtherType::Vlan,
                    vlan::Tci {
                        pcp,
                        dei: false,
                        vid,
                    },
                )
                .expect("frame validated by parser");
                ActionOutcome::Continue { modified: true }
            }
            Action::PushSTag { vid } => {
                *packet = vlan::push_tag(
                    packet,
                    EtherType::QinQ,
                    vlan::Tci {
                        pcp: 0,
                        dei: false,
                        vid,
                    },
                )
                .expect("frame validated by parser");
                ActionOutcome::Continue { modified: true }
            }
            Action::PopVlan => match vlan::pop_tag(packet) {
                Ok((_tci, untagged)) => {
                    *packet = untagged;
                    ActionOutcome::Continue { modified: true }
                }
                Err(_) => ActionOutcome::Continue { modified: false },
            },
            Action::SetVlanVid(vid) => set_vlan_vid(packet, parsed, vid),
            Action::EncapGre { src, dst, key } => encap_ip_layer(packet, parsed, |inner| {
                PacketBuilder::gre_encap(src, dst, Some(key), inner)
            }),
            Action::EncapIpIp { src, dst } => encap_ip_layer(packet, parsed, |inner| {
                PacketBuilder::ipip_encap(src, dst, inner)
            }),
            Action::EncapVxlan { src, dst, vni } => {
                // Entropy source port from the inner flow (RFC 7348).
                let entropy = 0xc000 | (flexsfp_fabric::hash::crc32(packet) & 0x3fff) as u16;
                let outer = PacketBuilder::vxlan_encap(src, dst, entropy, vni, packet);
                let mut frame = Vec::with_capacity(ethernet::HEADER_LEN + outer.len());
                frame.extend_from_slice(&packet[..ethernet::HEADER_LEN]);
                frame.extend_from_slice(&outer);
                *packet = frame;
                // The outer frame carries IPv4 regardless of what the
                // inner frame was.
                EthernetFrame::new_unchecked(&mut packet[..]).set_ethertype(EtherType::Ipv4);
                ActionOutcome::Continue { modified: true }
            }
            Action::DecapTunnel => decap_tunnel(packet, parsed),
            Action::Count(idx) => {
                self.counters.count(idx, packet.len());
                ActionOutcome::Continue { modified: false }
            }
            Action::Meter(idx) => match self.meters.get_mut(idx) {
                Some(m) => match m.meter(packet.len(), ctx.timestamp_ns) {
                    Color::Green => ActionOutcome::Continue { modified: false },
                    Color::Red => ActionOutcome::Final(Verdict::Drop),
                },
                None => ActionOutcome::Continue { modified: false },
            },
            Action::Emit(v) => ActionOutcome::Final(v.to_verdict()),
        }
    }
}

/// Rewrite src or dst IPv4 address with incremental IP-header and
/// L4 (TCP/UDP pseudo-header) checksum maintenance — the NAT fast path.
fn rewrite_addr(packet: &mut [u8], parsed: &ParsedPacket, new: u32, is_src: bool) -> ActionOutcome {
    let Some(ip) = parsed.ipv4 else {
        return ActionOutcome::Continue { modified: false };
    };
    let old = if is_src { ip.src } else { ip.dst };
    if old == new {
        return ActionOutcome::Continue { modified: false };
    }
    {
        let mut view = Ipv4Packet::new_unchecked(&mut packet[ip.offset..]);
        if is_src {
            view.rewrite_src_incremental(new);
        } else {
            view.rewrite_dst_incremental(new);
        }
    }
    // Patch the L4 checksum (pseudo-header includes the addresses).
    if let Some(l4_off) = parsed.l4_offset {
        match parsed.l4 {
            L4::Tcp { .. } => {
                let coff = l4_off + 16;
                if packet.len() >= coff + 2 {
                    let oldc = u16::from_be_bytes([packet[coff], packet[coff + 1]]);
                    let newc = checksum::update32(oldc, old, new);
                    packet[coff..coff + 2].copy_from_slice(&newc.to_be_bytes());
                }
            }
            L4::Udp { .. } => {
                let coff = l4_off + 6;
                if packet.len() >= coff + 2 {
                    let oldc = u16::from_be_bytes([packet[coff], packet[coff + 1]]);
                    if oldc != 0 {
                        let mut newc = checksum::update32(oldc, old, new);
                        if newc == 0 {
                            newc = 0xffff;
                        }
                        packet[coff..coff + 2].copy_from_slice(&newc.to_be_bytes());
                    }
                }
            }
            _ => {}
        }
    }
    ActionOutcome::Continue { modified: true }
}

fn set_dscp(packet: &mut [u8], parsed: &ParsedPacket, dscp: u8) -> ActionOutcome {
    let Some(ip) = parsed.ipv4 else {
        return ActionOutcome::Continue { modified: false };
    };
    let old_word = u16::from_be_bytes([packet[ip.offset], packet[ip.offset + 1]]);
    Ipv4Packet::new_unchecked(&mut packet[ip.offset..]).set_dscp(dscp);
    let new_word = u16::from_be_bytes([packet[ip.offset], packet[ip.offset + 1]]);
    if old_word != new_word {
        let coff = ip.offset + 10;
        let oldc = u16::from_be_bytes([packet[coff], packet[coff + 1]]);
        let newc = checksum::update16(oldc, old_word, new_word);
        packet[coff..coff + 2].copy_from_slice(&newc.to_be_bytes());
        ActionOutcome::Continue { modified: true }
    } else {
        ActionOutcome::Continue { modified: false }
    }
}

fn dec_ttl(packet: &mut [u8], parsed: &ParsedPacket) -> ActionOutcome {
    let Some(ip) = parsed.ipv4 else {
        return ActionOutcome::Continue { modified: false };
    };
    if ip.ttl <= 1 {
        return ActionOutcome::Final(Verdict::Drop);
    }
    let mut view = Ipv4Packet::new_unchecked(&mut packet[ip.offset..]);
    view.decrement_ttl();
    ActionOutcome::Continue { modified: true }
}

fn set_vlan_vid(packet: &mut [u8], parsed: &ParsedPacket, vid: u16) -> ActionOutcome {
    if parsed.vlans.is_empty() {
        return ActionOutcome::Continue { modified: false };
    }
    let off = ethernet::HEADER_LEN;
    let tci = vlan::Tci {
        vid,
        ..vlan::Tci::from_u16(u16::from_be_bytes([packet[off], packet[off + 1]]))
    };
    packet[off..off + 2].copy_from_slice(&tci.to_u16().to_be_bytes());
    ActionOutcome::Continue { modified: true }
}

/// Replace the IP layer with `wrap(inner_ip)`, keeping the Ethernet (and
/// VLAN) headers in place.
fn encap_ip_layer(
    packet: &mut Vec<u8>,
    parsed: &ParsedPacket,
    wrap: impl FnOnce(&[u8]) -> Vec<u8>,
) -> ActionOutcome {
    let Some(ip) = parsed.ipv4 else {
        return ActionOutcome::Continue { modified: false };
    };
    let inner = packet[ip.offset..].to_vec();
    let outer = wrap(&inner);
    packet.truncate(ip.offset);
    packet.extend_from_slice(&outer);
    ActionOutcome::Continue { modified: true }
}

fn decap_tunnel(packet: &mut Vec<u8>, parsed: &ParsedPacket) -> ActionOutcome {
    let Some(ip) = parsed.ipv4 else {
        return ActionOutcome::Continue { modified: false };
    };
    let inner_start = match ip.protocol {
        IpProtocol::IpIp => ip.offset + ip.header_len,
        IpProtocol::Gre => {
            let gre_off = ip.offset + ip.header_len;
            match flexsfp_wire::GrePacket::new_checked(&packet[gre_off..]) {
                Ok(g) => gre_off + g.header_len(),
                Err(_) => return ActionOutcome::Final(Verdict::Drop),
            }
        }
        _ => return ActionOutcome::Continue { modified: false },
    };
    let inner = packet[inner_start..].to_vec();
    packet.truncate(ip.offset);
    packet.extend_from_slice(&inner);
    ActionOutcome::Continue { modified: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use flexsfp_wire::tcp::TcpSegment;
    use flexsfp_wire::udp::UdpDatagram;
    use flexsfp_wire::MacAddr;

    const SRC: u32 = 0xc0a80001;
    const DST: u32 = 0x0a000002;
    const NEW: u32 = 0x644f0001;

    fn engine() -> ActionEngine {
        ActionEngine::new(8, vec![TokenBucket::new(8_000_000, 2_000)])
    }

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            1000,
            2000,
            b"pp",
        )
    }

    fn apply(e: &mut ActionEngine, action: Action, pkt: &mut Vec<u8>) -> ActionOutcome {
        let parsed = Parser::default().parse(pkt).unwrap();
        e.apply(action, &ProcessContext::egress(), pkt, &parsed)
    }

    #[test]
    fn src_rewrite_fixes_all_checksums() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let out = apply(&mut e, Action::SetIpv4Src(NEW), &mut pkt);
        assert_eq!(out, ActionOutcome::Continue { modified: true });
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), NEW);
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum_v4(NEW, DST));
    }

    #[test]
    fn dst_rewrite_on_tcp_fixes_l4() {
        let mut e = engine();
        let mut pkt = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            80,
            1234,
            9,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            b"x",
        );
        apply(&mut e, Action::SetIpv4Dst(NEW), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.dst(), NEW);
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v4(SRC, NEW));
    }

    #[test]
    fn rewrite_to_same_address_is_noop() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let before = pkt.clone();
        let out = apply(&mut e, Action::SetIpv4Src(SRC), &mut pkt);
        assert_eq!(out, ActionOutcome::Continue { modified: false });
        assert_eq!(pkt, before);
    }

    #[test]
    fn dscp_rewrite_keeps_ip_checksum() {
        let mut e = engine();
        let mut pkt = udp_frame();
        apply(&mut e, Action::SetDscp(46), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.dscp(), 46);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut e = engine();
        let mut pkt = udp_frame();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[14..]);
            ip.set_ttl(1);
            ip.fill_checksum();
        }
        let out = apply(&mut e, Action::DecTtl, &mut pkt);
        assert_eq!(out, ActionOutcome::Final(Verdict::Drop));
    }

    #[test]
    fn ttl_decrement_normal() {
        let mut e = engine();
        let mut pkt = udp_frame();
        apply(&mut e, Action::DecTtl, &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn vlan_push_set_pop() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let orig = pkt.clone();
        apply(&mut e, Action::PushVlan { vid: 100, pcp: 3 }, &mut pkt);
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![100]);
        apply(&mut e, Action::SetVlanVid(200), &mut pkt);
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![200]);
        apply(&mut e, Action::PopVlan, &mut pkt);
        assert_eq!(pkt, orig);
    }

    #[test]
    fn qinq_stag_over_ctag() {
        let mut e = engine();
        let mut pkt = udp_frame();
        apply(&mut e, Action::PushVlan { vid: 10, pcp: 0 }, &mut pkt);
        apply(&mut e, Action::PushSTag { vid: 500 }, &mut pkt);
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![500, 10]);
    }

    #[test]
    fn pop_on_untagged_is_noop() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let before = pkt.clone();
        let out = apply(&mut e, Action::PopVlan, &mut pkt);
        assert_eq!(out, ActionOutcome::Continue { modified: false });
        assert_eq!(pkt, before);
    }

    #[test]
    fn gre_encap_then_decap_round_trips() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let orig = pkt.clone();
        apply(
            &mut e,
            Action::EncapGre {
                src: 0x01010101,
                dst: 0x02020202,
                key: 99,
            },
            &mut pkt,
        );
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.ipv4.unwrap().protocol, IpProtocol::Gre);
        assert_eq!(p.ipv4.unwrap().dst, 0x02020202);
        apply(&mut e, Action::DecapTunnel, &mut pkt);
        assert_eq!(pkt, orig);
    }

    #[test]
    fn ipip_encap_then_decap_round_trips() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let orig = pkt.clone();
        apply(
            &mut e,
            Action::EncapIpIp {
                src: 0x01010101,
                dst: 0x02020202,
            },
            &mut pkt,
        );
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.ipv4.unwrap().protocol, IpProtocol::IpIp);
        apply(&mut e, Action::DecapTunnel, &mut pkt);
        assert_eq!(pkt, orig);
    }

    #[test]
    fn vxlan_encap_wraps_whole_frame() {
        let mut e = engine();
        let mut pkt = udp_frame();
        let orig = pkt.clone();
        apply(
            &mut e,
            Action::EncapVxlan {
                src: 0x0b0b0b0b,
                dst: 0x0c0c0c0c,
                vni: 42,
            },
            &mut pkt,
        );
        let p = Parser::default().parse(&pkt).unwrap();
        match p.l4 {
            L4::Udp { dst_port, .. } => assert_eq!(dst_port, flexsfp_wire::vxlan::UDP_PORT),
            other => panic!("expected VXLAN UDP, got {other:?}"),
        }
        // The inner frame is recoverable.
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        let vx = flexsfp_wire::VxlanPacket::new_checked(udp.payload()).unwrap();
        assert_eq!(vx.inner_frame(), &orig[..]);
    }

    #[test]
    fn count_and_meter() {
        let mut e = engine();
        let mut pkt = udp_frame();
        apply(&mut e, Action::Count(2), &mut pkt);
        apply(&mut e, Action::Count(2), &mut pkt);
        assert_eq!(e.counters.get(2).packets, 2);
        // Meter 0 allows the 2 kB burst then drops.
        let mut green = 0;
        let mut red = 0;
        for _ in 0..100 {
            match apply(&mut e, Action::Meter(0), &mut pkt) {
                ActionOutcome::Continue { .. } => green += 1,
                ActionOutcome::Final(Verdict::Drop) => red += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(green > 0 && red > 0);
        assert_eq!(green + red, 100);
    }

    #[test]
    fn emit_verdicts() {
        let mut e = engine();
        let mut pkt = udp_frame();
        assert_eq!(
            apply(&mut e, Action::Emit(VerdictAction::Drop), &mut pkt),
            ActionOutcome::Final(Verdict::Drop)
        );
        assert_eq!(
            apply(&mut e, Action::Emit(VerdictAction::Forward), &mut pkt),
            ActionOutcome::Final(Verdict::Forward)
        );
        assert_eq!(
            apply(
                &mut e,
                Action::Emit(VerdictAction::ToControlPlane),
                &mut pkt
            ),
            ActionOutcome::Final(Verdict::ToControlPlane)
        );
    }

    #[test]
    fn ip_actions_on_non_ip_are_noops() {
        let mut e = engine();
        let mut pkt = PacketBuilder::ethernet(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            EtherType::Other(0x9999),
            b"opaque",
        );
        let before = pkt.clone();
        for a in [
            Action::SetIpv4Src(1),
            Action::SetIpv4Dst(1),
            Action::SetDscp(1),
            Action::DecTtl,
            Action::DecapTunnel,
            Action::EncapGre {
                src: 1,
                dst: 2,
                key: 3,
            },
        ] {
            let out = apply(&mut e, a, &mut pkt);
            assert_eq!(out, ActionOutcome::Continue { modified: false }, "{a:?}");
            assert_eq!(pkt, before, "{a:?}");
        }
    }
}
