//! Token-bucket meters.
//!
//! The paper's rate-limiting use case ("rate-limiting traffic from
//! selected sources", §3; Nimble-style enforcement) maps to a classic
//! hardware token bucket: a credit register refilled by wall-clock time,
//! decremented per conforming byte. The implementation is integer-exact
//! so the conformance property tests can assert tight bounds.

/// Color of a metered packet (two-color marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Conforming: within rate.
    Green,
    /// Non-conforming: exceeds rate.
    Red,
}

/// A single-rate two-color token bucket.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    /// Fill rate in bytes per second.
    rate_bytes_per_sec: u64,
    /// Bucket depth in bytes (burst allowance).
    burst_bytes: u64,
    /// Current credit in micro-tokens (bytes × 10^9 ns precision kept in
    /// token-nanoseconds to avoid rounding drift).
    credit_byte_ns: u128,
    /// Last refill timestamp, ns.
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket at `rate_bps` bits/s with `burst_bytes` of depth,
    /// starting full at time 0.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        assert!(rate_bps >= 8, "rate below one byte per second");
        assert!(burst_bytes > 0, "zero burst would drop everything");
        TokenBucket {
            rate_bytes_per_sec: rate_bps / 8,
            burst_bytes,
            credit_byte_ns: u128::from(burst_bytes) * 1_000_000_000,
            last_ns: 0,
        }
    }

    /// Configured rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bytes_per_sec * 8
    }

    /// Configured burst in bytes.
    pub fn burst_bytes(&self) -> u64 {
        self.burst_bytes
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns <= self.last_ns {
            return; // time never goes backwards in hardware
        }
        let dt = u128::from(now_ns - self.last_ns);
        self.last_ns = now_ns;
        let cap = u128::from(self.burst_bytes) * 1_000_000_000;
        self.credit_byte_ns =
            (self.credit_byte_ns + dt * u128::from(self.rate_bytes_per_sec)).min(cap);
    }

    /// Meter a packet of `len` bytes at `now_ns`. Green consumes credit;
    /// red consumes nothing.
    pub fn meter(&mut self, len: usize, now_ns: u64) -> Color {
        self.refill(now_ns);
        let need = u128::from(len as u64) * 1_000_000_000;
        if self.credit_byte_ns >= need {
            self.credit_byte_ns -= need;
            Color::Green
        } else {
            Color::Red
        }
    }

    /// Current credit in whole bytes (diagnostics).
    pub fn credit_bytes(&self) -> u64 {
        (self.credit_byte_ns / 1_000_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        // 8 Mb/s = 1 MB/s, 10 kB burst.
        let mut tb = TokenBucket::new(8_000_000, 10_000);
        // The initial burst passes...
        for _ in 0..10 {
            assert_eq!(tb.meter(1000, 0), Color::Green);
        }
        // ...then the bucket is empty.
        assert_eq!(tb.meter(1000, 0), Color::Red);
        // After 1 ms, 1000 bytes of credit accrued.
        assert_eq!(tb.meter(1000, 1_000_000), Color::Green);
        assert_eq!(tb.meter(1, 1_000_000), Color::Red);
    }

    #[test]
    fn long_term_rate_is_enforced() {
        // Offer 2× the rate for one simulated second; about half should
        // conform (plus the initial burst).
        let rate_bps = 80_000_000u64; // 10 MB/s
        let mut tb = TokenBucket::new(rate_bps, 10_000);
        let pkt = 1000usize;
        let offered = 20_000; // 20 MB over 1 s
        let mut green_bytes = 0u64;
        for i in 0..offered {
            let now = i * 50_000; // one packet every 50 µs
            if tb.meter(pkt, now) == Color::Green {
                green_bytes += pkt as u64;
            }
        }
        let expected = 10_000_000 + 10_000; // rate × 1 s + burst
        let tolerance = 20_000;
        assert!(
            (green_bytes as i64 - expected as i64).unsigned_abs() < tolerance,
            "green {green_bytes} vs expected {expected}"
        );
    }

    #[test]
    fn red_consumes_no_credit() {
        let mut tb = TokenBucket::new(8_000, 100); // 1 kB/s, 100 B burst
        assert_eq!(tb.meter(100, 0), Color::Green);
        // An oversized packet is red and must not take partial credit.
        tb.meter(1000, 1_000_000); // 1 ms -> +1 byte credit
        let before = tb.credit_bytes();
        assert_eq!(tb.meter(1000, 1_000_000), Color::Red);
        assert_eq!(tb.credit_bytes(), before);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut tb = TokenBucket::new(8_000_000, 1_000);
        tb.meter(1_000, 1_000_000);
        // Clock glitch to the past must not mint credit.
        assert_eq!(tb.meter(1_000, 500_000), Color::Red);
    }

    #[test]
    fn credit_caps_at_burst() {
        let mut tb = TokenBucket::new(8_000_000, 500);
        // A long idle period cannot bank more than the burst.
        tb.refill(10_000_000_000);
        assert_eq!(tb.credit_bytes(), 500);
        assert_eq!(tb.meter(501, 10_000_000_000), Color::Red);
        assert_eq!(tb.meter(500, 10_000_000_000), Color::Green);
    }

    #[test]
    fn getters() {
        let tb = TokenBucket::new(10_000_000, 1500);
        assert_eq!(tb.rate_bps(), 10_000_000);
        assert_eq!(tb.burst_bytes(), 1500);
    }
}
