//! The packet-processor contract between applications and the module.
//!
//! An application embedded in the PPE sees packets one at a time, in
//! arrival order, with a context naming the direction of travel and the
//! hardware timestamp. It may modify the packet in place (including
//! growing/shrinking it, as encap/decap does) and must return a
//! [`Verdict`]. The architecture shell in `flexsfp-core` decides what each
//! verdict means physically (which egress interface, the control-plane
//! FIFO, or the bit bucket).

/// Direction a packet travels through the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the host edge connector toward the optical link (egress).
    EdgeToOptical,
    /// From the optical link toward the host edge connector (ingress).
    OpticalToEdge,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::EdgeToOptical => Direction::OpticalToEdge,
            Direction::OpticalToEdge => Direction::EdgeToOptical,
        }
    }
}

/// Per-packet processing context supplied by the shell.
#[derive(Debug, Clone, Copy)]
pub struct ProcessContext {
    /// Hardware timestamp in nanoseconds since module boot.
    pub timestamp_ns: u64,
    /// Direction of travel.
    pub direction: Direction,
}

impl ProcessContext {
    /// A context at time zero in the edge→optical direction (tests).
    pub fn egress() -> ProcessContext {
        ProcessContext {
            timestamp_ns: 0,
            direction: Direction::EdgeToOptical,
        }
    }

    /// A context at time zero in the optical→edge direction (tests).
    pub fn ingress() -> ProcessContext {
        ProcessContext {
            timestamp_ns: 0,
            direction: Direction::OpticalToEdge,
        }
    }

    /// The same context at a different timestamp.
    pub fn at(self, timestamp_ns: u64) -> ProcessContext {
        ProcessContext {
            timestamp_ns,
            ..self
        }
    }
}

/// What the PPE should do with a processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward (possibly modified) to the natural egress for its
    /// direction.
    Forward,
    /// Silently discard.
    Drop,
    /// Divert to the embedded control plane (management core).
    ToControlPlane,
    /// Forward, but flip to the opposite interface (hairpin) — used by
    /// reflector-style applications in the Two-Way-Core shell.
    Reflect,
}

/// A control-plane operation against an application's tables/counters —
/// what the paper's "APIs to read/write tables and counters with atomic,
/// runtime updates at line rate" (§4.2) carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOp {
    /// Insert or update an entry.
    Insert {
        /// Application-defined table id.
        table: u8,
        /// Serialized key.
        key: Vec<u8>,
        /// Serialized value.
        value: Vec<u8>,
    },
    /// Delete an entry.
    Delete {
        /// Application-defined table id.
        table: u8,
        /// Serialized key.
        key: Vec<u8>,
    },
    /// Read one entry.
    Read {
        /// Application-defined table id.
        table: u8,
        /// Serialized key.
        key: Vec<u8>,
    },
    /// Read a counter by index.
    ReadCounter {
        /// Counter index.
        index: u32,
    },
    /// Clear all state in a table.
    Clear {
        /// Application-defined table id.
        table: u8,
    },
}

/// Result of a [`TableOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOpResult {
    /// Operation applied.
    Ok,
    /// Read result.
    Value(Vec<u8>),
    /// Counter read result.
    Counter {
        /// Packets counted.
        packets: u64,
        /// Bytes counted.
        bytes: u64,
    },
    /// Key not present.
    NotFound,
    /// Hash bucket / table capacity exhausted.
    TableFull,
    /// Malformed key/value encoding for this table.
    BadEncoding,
    /// The application does not expose this table.
    Unsupported,
}

/// One slot of a processing batch: the packet, its per-packet context,
/// and the verdict the processor writes back.
#[derive(Debug)]
pub struct BatchPacket {
    /// Processing context for this packet.
    pub ctx: ProcessContext,
    /// The frame, edited in place.
    pub frame: Vec<u8>,
    /// The processor's verdict (written by `process_batch`).
    pub verdict: Verdict,
    /// Pre-parsed microflow key, if the caller already extracted one
    /// (the dispatcher parses each frame exactly once and carries the
    /// result here so cache-enabled processors skip re-extraction).
    /// Only valid for the frame bytes as enqueued; a processor that
    /// edits the frame must not re-derive key state from the hint
    /// afterwards.
    pub key: crate::cache::KeyHint,
}

impl BatchPacket {
    /// A batch slot awaiting processing (verdict defaults to Forward,
    /// key to [`KeyHint::Unknown`](crate::cache::KeyHint::Unknown)).
    pub fn new(ctx: ProcessContext, frame: Vec<u8>) -> BatchPacket {
        BatchPacket {
            ctx,
            frame,
            verdict: Verdict::Forward,
            key: crate::cache::KeyHint::Unknown,
        }
    }

    /// A batch slot carrying a pre-parsed key hint.
    pub fn with_key(
        ctx: ProcessContext,
        frame: Vec<u8>,
        key: crate::cache::KeyHint,
    ) -> BatchPacket {
        BatchPacket {
            key,
            ..BatchPacket::new(ctx, frame)
        }
    }
}

/// A packet-processing application embeddable in the PPE.
///
/// Implementations must be deterministic: hardware pipelines have no
/// hidden nondeterminism, and the experiment harness relies on exact
/// reproducibility.
pub trait PacketProcessor: Send {
    /// Short application name for reports and fit tables.
    fn name(&self) -> &str;

    /// Process one packet. `packet` contains a complete Ethernet frame
    /// (without FCS); in-place edits, growth and shrinkage are allowed.
    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict;

    /// Process a batch of packets in arrival order, writing each slot's
    /// verdict back. Semantically identical to calling [`process`]
    /// per packet (the default does exactly that); batching exists so
    /// the simulation loop can amortize per-packet dispatch and
    /// bookkeeping, VPP-style.
    ///
    /// [`process`]: PacketProcessor::process
    fn process_batch(&mut self, batch: &mut [BatchPacket]) {
        for slot in batch {
            slot.verdict = self.process(&slot.ctx, &mut slot.frame);
        }
    }

    /// Enable or disable the processor's microflow action cache.
    /// Returns `true` if the processor supports plan caching (the
    /// default has none and returns `false`).
    fn set_flow_cache(&mut self, _enabled: bool) -> bool {
        false
    }

    /// Lifetime microflow-cache counters, `None` for processors without
    /// a cache.
    fn cache_stats(&self) -> Option<flexsfp_obs::CacheStats> {
        None
    }

    /// Current resident-entry count of the microflow cache (an O(1)
    /// gauge for per-window occupancy telemetry), `None` for processors
    /// without a cache.
    fn cache_occupancy(&self) -> Option<u64> {
        None
    }

    /// Geometry and lifetime counters of the processor's primary
    /// exact-match table (the NAT's source-IP table), `None` for
    /// processors without one. Exposed through `TelemetrySnapshot` as
    /// the `flexsfp_table_*` Prometheus family.
    fn table_stats(&self) -> Option<flexsfp_obs::TableTelemetry> {
        None
    }

    /// Fabric resources this application's synthesized core occupies
    /// (the "NAT app" row of Table 1 for the NAT). Defaults to zero for
    /// pure-software test doubles.
    fn resource_manifest(&self) -> flexsfp_fabric::ResourceManifest {
        flexsfp_fabric::ResourceManifest::ZERO
    }

    /// Pipeline depth in match-action stages, used by the latency model.
    /// The paper's §5.3 notes compact chains run "about 3–4 stages".
    fn pipeline_depth(&self) -> u32 {
        1
    }

    /// Handle a control-plane table/counter operation. Applications with
    /// runtime-updatable state override this; the default rejects
    /// everything (a fixed-function bitstream).
    fn control_op(&mut self, _op: &TableOp) -> TableOpResult {
        TableOpResult::Unsupported
    }

    /// Enable or disable flight-recorder stage stamping. While enabled
    /// the processor keeps a [`flexsfp_obs::FlightStamp`] for the most
    /// recently processed packet, retrievable via
    /// [`flight_stamp`](PacketProcessor::flight_stamp). Returns `true`
    /// if the processor can stamp (the default cannot and returns
    /// `false` — the shell then records postcards with empty stage
    /// lists, which is honest for a stage-less program).
    fn set_flight_recording(&mut self, _enabled: bool) -> bool {
        false
    }

    /// The stamp of the most recently processed packet, `None` when
    /// stamping is off or unsupported. The shell's sampler calls this
    /// immediately after processing a sampled packet.
    fn flight_stamp(&self) -> Option<flexsfp_obs::FlightStamp> {
        None
    }

    /// Drain buffered dataplane trace events (parse errors, table
    /// misses, app-level drops). Applications with an internal trace
    /// ring override this; the default traces nothing.
    fn drain_events(&mut self) -> Vec<flexsfp_obs::DataplaneEvent> {
        Vec::new()
    }

    /// Lifetime count of trace events the application lost to ring
    /// overwrite — exported with telemetry so loss is never silent.
    fn events_lost(&self) -> u64 {
        0
    }
}

/// A pass-through processor (the "empty bitstream" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl PacketProcessor for PassThrough {
    fn name(&self) -> &str {
        "passthrough"
    }

    fn process(&mut self, _ctx: &ProcessContext, _packet: &mut Vec<u8>) -> Verdict {
        Verdict::Forward
    }

    fn pipeline_depth(&self) -> u32 {
        0
    }
}

/// A processor that drops everything (used for fail-closed tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct DropAll;

impl PacketProcessor for DropAll {
    fn name(&self) -> &str {
        "drop-all"
    }

    fn process(&mut self, _ctx: &ProcessContext, _packet: &mut Vec<u8>) -> Verdict {
        Verdict::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::EdgeToOptical.reverse(), Direction::OpticalToEdge);
        assert_eq!(Direction::OpticalToEdge.reverse(), Direction::EdgeToOptical);
    }

    #[test]
    fn context_builders() {
        let c = ProcessContext::egress().at(1234);
        assert_eq!(c.timestamp_ns, 1234);
        assert_eq!(c.direction, Direction::EdgeToOptical);
        assert_eq!(
            ProcessContext::ingress().direction,
            Direction::OpticalToEdge
        );
    }

    #[test]
    fn passthrough_forwards_unchanged() {
        let mut p = PassThrough;
        let mut pkt = vec![1, 2, 3];
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, vec![1, 2, 3]);
        assert_eq!(p.pipeline_depth(), 0);
        assert_eq!(
            p.resource_manifest(),
            flexsfp_fabric::ResourceManifest::ZERO
        );
    }

    #[test]
    fn default_batch_falls_back_to_per_packet() {
        let mut p = DropAll;
        let mut batch = vec![
            BatchPacket::new(ProcessContext::egress(), vec![0; 64]),
            BatchPacket::new(ProcessContext::ingress().at(5), vec![0; 64]),
        ];
        assert_eq!(batch[0].verdict, Verdict::Forward);
        p.process_batch(&mut batch);
        assert!(batch.iter().all(|s| s.verdict == Verdict::Drop));
        // Processors without a cache report so.
        assert!(!p.set_flow_cache(true));
        assert!(p.cache_stats().is_none());
    }

    #[test]
    fn drop_all_drops() {
        let mut p = DropAll;
        let mut pkt = vec![0; 64];
        assert_eq!(
            p.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
    }
}
