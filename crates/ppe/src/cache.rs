//! The microflow action cache — the PPE's per-flow fast path.
//!
//! Real dataplanes (OVS's microflow cache, VPP's flow tables, and the
//! paper's fixed-function fast path fronting a control-plane slow path)
//! win their throughput by memoizing the *resolved outcome* of the
//! first packet of a flow and replaying it for every subsequent packet
//! of the same flow. This module provides that machinery:
//!
//! * [`FlowKey`] — a 24-byte key extracted with a *shallow* parse (a
//!   handful of direct byte reads, no [`Parser`](crate::parser::Parser)
//!   walk, no allocation) over direction, VLAN stack, the IPv4 5-tuple
//!   and the structural bits that determine how the full parser would
//!   classify the frame;
//! * [`ActionPlan`] — the memoized outcome: an ordered list of
//!   [`PlanOp`] byte edits (absolute rewrites whose values are
//!   flow-constant, RFC 1624 incremental checksum patches, VLAN tag
//!   push/pop, counter increments) plus the final [`Verdict`];
//! * [`FlowCache`] — a fixed-capacity, set-associative (4-way) cache
//!   from key to plan with hit/miss/evict/invalidate counters and an
//!   **epoch**: every control-plane table mutation bumps the epoch, and
//!   a plan recorded under an older epoch is discarded at lookup time,
//!   so a stale plan is never replayed;
//! * [`PlanRecorder`] + [`compile_action`] — used by the slow path to
//!   record a plan *while* executing the reference action
//!   implementations, so the replay semantics (including the UDP
//!   zero-checksum special cases) mirror [`crate::action`] exactly.
//!
//! # Keying contract
//!
//! A plan may be replayed for any frame with an equal [`FlowKey`], so a
//! processor must only record plans whose edits and verdict are a pure
//! function of the key fields (and of table state, which the epoch
//! guards). The key deliberately covers everything the cacheable
//! action/selector vocabulary reads: direction, VLAN count + both raw
//! TCIs, the IPv4 5-tuple, the DSCP/ECN byte, and the fragment/L4
//! structure bits. It does *not* cover MACs, TTL, IP options, payload
//! bytes or packet length — processors keying on those (or running
//! data-dependent actions like metering, TTL decrement or
//! entropy-hashed encapsulation) must not record plans; the pipeline's
//! static cacheability analysis enforces this for table pipelines.

use crate::action::Action;
use crate::counters::CounterBank;
use crate::engine::{Direction, Verdict};
use crate::parser::{ParsedPacket, L4};
use flexsfp_obs::CacheStats;
use flexsfp_wire::{checksum, EtherType};

/// Associativity of the cache (entries per set).
pub const WAYS: usize = 4;

/// Default flow capacity (sets × ways) of a processor's cache.
pub const DEFAULT_FLOWS: usize = 4096;

/// L4 classification bits of a [`FlowKey`] (mirrors what the full
/// parser would produce for the same frame).
const L4_NONE: u8 = 0; // no TCP/UDP header (other proto, fragment, truncated)
const L4_TCP: u8 = 1;
const L4_UDP: u8 = 2;

/// The microflow key: 24 bytes covering every field the cacheable
/// action/selector vocabulary can read. Compared and hashed as three
/// 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey([u64; 3]);

impl FlowKey {
    /// Shallow-extract a key from a raw frame. Returns `None` whenever
    /// the frame is not a canonical IPv4-over-Ethernet frame the key
    /// can fully describe (non-IPv4 ethertype, IP options, bad
    /// version/length fields, >2 VLAN tags) — those frames always take
    /// the slow path, which is correct for any traffic mix and free
    /// for the line-rate workloads this cache exists for.
    pub fn extract(frame: &[u8], direction: Direction) -> Option<FlowKey> {
        // Ethernet + VLAN stack (mirrors Parser::parse's walk).
        if frame.len() < 14 {
            return None;
        }
        let mut off = 12usize;
        let mut et = u16::from_be_bytes([frame[off], frame[off + 1]]);
        let mut vlans = 0u8;
        let mut outer_tci = 0u16;
        let mut inner_tci = 0u16;
        off = 14;
        while EtherType::from_u16(et).is_vlan() && vlans < 2 {
            if frame.len() < off + 4 {
                return None; // truncated tag: parser stops early — slow path
            }
            let tci = u16::from_be_bytes([frame[off], frame[off + 1]]);
            if vlans == 0 {
                outer_tci = tci;
            } else {
                inner_tci = tci;
            }
            et = u16::from_be_bytes([frame[off + 2], frame[off + 3]]);
            off += 4;
            vlans += 1;
        }
        if et != 0x0800 {
            return None; // non-IPv4 (incl. >2 tags): slow path
        }

        // IPv4 header: require the canonical option-less shape so all
        // field offsets are key-determined.
        if frame.len() < off + 20 || frame[off] != 0x45 {
            return None;
        }
        let total = u16::from_be_bytes([frame[off + 2], frame[off + 3]]) as usize;
        if !(20..=frame.len() - off).contains(&total) {
            return None; // Ipv4Packet::new_checked would reject: slow path
        }
        let dscp_ecn = frame[off + 1];
        let frag = u16::from_be_bytes([frame[off + 6], frame[off + 7]]);
        let more_frags = frag & 0x2000 != 0;
        let frag_offset = frag & 0x1fff;
        let proto = frame[off + 9];
        let src = &frame[off + 12..off + 16];
        let dst = &frame[off + 16..off + 20];

        // L4 classification, replicating the validity checks of
        // TcpSegment/UdpDatagram::new_checked over ip.payload() so the
        // key always agrees with what the full parser would see.
        let mut l4 = L4_NONE;
        let mut sport = [0u8; 2];
        let mut dport = [0u8; 2];
        if frag_offset == 0 {
            let l4_off = off + 20;
            let payload_len = total - 20;
            match proto {
                6 if payload_len >= 20 => {
                    let doff = usize::from(frame[l4_off + 12] >> 4) * 4;
                    if (20..=60).contains(&doff) && doff <= payload_len {
                        l4 = L4_TCP;
                        sport = [frame[l4_off], frame[l4_off + 1]];
                        dport = [frame[l4_off + 2], frame[l4_off + 3]];
                    }
                }
                17 if payload_len >= 8 => {
                    let ulen = u16::from_be_bytes([frame[l4_off + 4], frame[l4_off + 5]]) as usize;
                    if (8..=payload_len).contains(&ulen) {
                        l4 = L4_UDP;
                        sport = [frame[l4_off], frame[l4_off + 1]];
                        dport = [frame[l4_off + 2], frame[l4_off + 3]];
                    }
                }
                _ => {}
            }
        }

        let mut k = [0u8; 24];
        k[0] = u8::from(direction == Direction::OpticalToEdge)
            | (vlans << 1)
            | (l4 << 3)
            | (u8::from(more_frags) << 5)
            | (u8::from(frag_offset != 0) << 6);
        k[1] = dscp_ecn;
        k[2..4].copy_from_slice(&outer_tci.to_be_bytes());
        k[4..6].copy_from_slice(&inner_tci.to_be_bytes());
        k[6] = proto;
        k[8..12].copy_from_slice(src);
        k[12..16].copy_from_slice(dst);
        k[16..18].copy_from_slice(&sport);
        k[18..20].copy_from_slice(&dport);
        Some(FlowKey([
            u64::from_le_bytes(k[0..8].try_into().unwrap()),
            u64::from_le_bytes(k[8..16].try_into().unwrap()),
            u64::from_le_bytes(k[16..24].try_into().unwrap()),
        ]))
    }

    /// Cheap multiply-mix hash over the three key words.
    fn hash(&self) -> u64 {
        let [a, b, c] = self.0;
        let h = (a.rotate_left(17) ^ b).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ c.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        h ^ (h >> 31)
    }

    // Field accessors (the inverse of the packing in `extract`), used
    // by the shard dispatcher to derive flow hashes and fast filters
    // from one extraction instead of re-parsing the frame.

    /// Number of VLAN tags on the frame (0..=2).
    pub fn vlan_count(&self) -> u8 {
        ((self.0[0] >> 1) & 0x3) as u8
    }

    /// True when the key classified a valid TCP or UDP header (first
    /// fragment or unfragmented, header fully inside the IP payload).
    pub fn l4_valid(&self) -> bool {
        (self.0[0] >> 3) & 0x3 != u64::from(L4_NONE)
    }

    /// True when the frame is any fragment (more-fragments set or a
    /// nonzero fragment offset).
    pub fn is_fragment(&self) -> bool {
        self.0[0] & 0x60 != 0
    }

    /// IPv4 protocol number.
    pub fn proto(&self) -> u8 {
        ((self.0[0] >> 48) & 0xff) as u8
    }

    /// IPv4 source address (host byte order).
    pub fn src_ip(&self) -> u32 {
        (self.0[1] as u32).swap_bytes()
    }

    /// IPv4 destination address (host byte order).
    pub fn dst_ip(&self) -> u32 {
        ((self.0[1] >> 32) as u32).swap_bytes()
    }

    /// L4 source port (0 when [`l4_valid`](Self::l4_valid) is false).
    pub fn src_port(&self) -> u16 {
        (self.0[2] as u16).swap_bytes()
    }

    /// L4 destination port (0 when [`l4_valid`](Self::l4_valid) is false).
    pub fn dst_port(&self) -> u16 {
        ((self.0[2] >> 16) as u16).swap_bytes()
    }
}

/// A pre-parsed [`FlowKey`] carried alongside a frame through the
/// dispatch pipeline, so the frame is shallow-parsed exactly once no
/// matter how many stages (dispatcher hash, control filter, microflow
/// cache) need key fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyHint {
    /// No extraction has been attempted; consumers extract on demand.
    #[default]
    Unknown,
    /// Extraction was attempted and the frame has no canonical key
    /// (slow path for the cache, structural hash for the dispatcher).
    Absent,
    /// The extracted key.
    Key(FlowKey),
}

impl KeyHint {
    /// Extract once, capturing the miss as [`KeyHint::Absent`].
    pub fn compute(frame: &[u8], direction: Direction) -> KeyHint {
        match FlowKey::extract(frame, direction) {
            Some(k) => KeyHint::Key(k),
            None => KeyHint::Absent,
        }
    }

    /// The key, extracting now only if no attempt was recorded yet.
    pub fn resolve(self, frame: &[u8], direction: Direction) -> Option<FlowKey> {
        match self {
            KeyHint::Unknown => FlowKey::extract(frame, direction),
            KeyHint::Absent => None,
            KeyHint::Key(k) => Some(k),
        }
    }
}

/// One replayable edit unit of an [`ActionPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Write `data[..len]` at `offset` (values are flow-constant).
    Write {
        /// Byte offset within the frame.
        offset: u16,
        /// Number of bytes written (≤ 4).
        len: u8,
        /// The bytes to write.
        data: [u8; 4],
    },
    /// RFC 1624 incremental patch of the 16-bit checksum at `offset`
    /// for a 32-bit field change `old → new` — replayed through
    /// [`checksum::update32`] so it is bit-exact with the slow path.
    /// With `udp`, the UDP special cases apply: a stored checksum of
    /// zero ("no checksum") is left untouched, and a patched result of
    /// zero is folded to `0xffff`.
    IncrCheck32 {
        /// Byte offset of the checksum field.
        offset: u16,
        /// Old 32-bit field value.
        old: u32,
        /// New 32-bit field value.
        new: u32,
        /// Apply UDP zero-checksum semantics.
        udp: bool,
    },
    /// RFC 1624 incremental patch for a 16-bit field change.
    IncrCheck16 {
        /// Byte offset of the checksum field.
        offset: u16,
        /// Old 16-bit field value.
        old: u16,
        /// New 16-bit field value.
        new: u16,
    },
    /// Insert a 4-byte VLAN tag (TPID + TCI) after the MAC addresses.
    PushTag {
        /// TPID and TCI, in wire order.
        bytes: [u8; 4],
    },
    /// Remove the outermost 4-byte VLAN tag.
    PopTag,
    /// Increment counter `index` by one packet and the packet's
    /// *current* length (lengths are per-packet; the increment is the
    /// only side effect, which is what makes counting cacheable).
    Count {
        /// Counter index.
        index: u32,
    },
}

/// A memoized, replayable per-flow outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionPlan {
    /// Ordered edits to apply.
    pub ops: Vec<PlanOp>,
    /// Final verdict (never [`Verdict::ToControlPlane`] — those flows
    /// are uncacheable by construction).
    pub verdict: Verdict,
    /// Per-stage (index, hit) attribution for pipeline replay, so
    /// stage hit/miss counters and miss events stay exact.
    pub stage_stats: Vec<(u8, bool)>,
    /// PPE cycles the slow path charged (4 + 3 × stages run).
    pub cycles: u64,
}

/// Replay a plan against a packet. Counter increments land in
/// `counters`; byte edits mirror the reference action implementations
/// bit for bit (parity-tested against cache-off runs).
pub fn replay(plan: &ActionPlan, packet: &mut Vec<u8>, counters: &mut CounterBank) -> Verdict {
    for op in &plan.ops {
        match *op {
            PlanOp::Write { offset, len, data } => {
                let o = offset as usize;
                packet[o..o + len as usize].copy_from_slice(&data[..len as usize]);
            }
            PlanOp::IncrCheck32 {
                offset,
                old,
                new,
                udp,
            } => {
                let o = offset as usize;
                let oldc = u16::from_be_bytes([packet[o], packet[o + 1]]);
                if udp && oldc == 0 {
                    continue;
                }
                let mut newc = checksum::update32(oldc, old, new);
                if udp && newc == 0 {
                    newc = 0xffff;
                }
                packet[o..o + 2].copy_from_slice(&newc.to_be_bytes());
            }
            PlanOp::IncrCheck16 { offset, old, new } => {
                let o = offset as usize;
                let oldc = u16::from_be_bytes([packet[o], packet[o + 1]]);
                let newc = checksum::update16(oldc, old, new);
                packet[o..o + 2].copy_from_slice(&newc.to_be_bytes());
            }
            PlanOp::PushTag { bytes } => {
                packet.splice(12..12, bytes);
            }
            PlanOp::PopTag => {
                packet.drain(12..16);
            }
            PlanOp::Count { index } => {
                counters.count(index as usize, packet.len());
            }
        }
    }
    plan.verdict
}

/// Records a plan alongside slow-path execution. Starts valid; any
/// uncacheable action or verdict invalidates it, in which case
/// [`PlanRecorder::finish`] returns `None` and nothing is cached.
#[derive(Debug, Default)]
pub struct PlanRecorder {
    ops: Vec<PlanOp>,
    stage_stats: Vec<(u8, bool)>,
    cycles: u64,
    invalid: bool,
}

impl PlanRecorder {
    /// A fresh, valid recorder.
    pub fn new() -> PlanRecorder {
        PlanRecorder::default()
    }

    /// Append an op.
    pub fn push(&mut self, op: PlanOp) {
        self.ops.push(op);
    }

    /// Record one pipeline stage's hit/miss attribution.
    pub fn stage_stat(&mut self, stage: u8, hit: bool) {
        self.stage_stats.push((stage, hit));
    }

    /// Record the PPE cycle charge.
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Mark the flow uncacheable (an impure action ran).
    pub fn invalidate(&mut self) {
        self.invalid = true;
    }

    /// Finish recording. Returns `None` when the flow is uncacheable.
    pub fn finish(self, verdict: Verdict) -> Option<ActionPlan> {
        if self.invalid || verdict == Verdict::ToControlPlane {
            return None;
        }
        Some(ActionPlan {
            ops: self.ops,
            verdict,
            stage_stats: self.stage_stats,
            cycles: self.cycles,
        })
    }
}

/// Compile one action into plan ops, mirroring the dynamic no-op and
/// bounds conditions of [`crate::action`] exactly. Must be called with
/// the pre-action `packet`/`parsed` state (i.e. immediately *before*
/// `ActionEngine::apply` runs the same action). Invalidates the
/// recorder for actions outside the cacheable vocabulary.
pub fn compile_action(
    action: &Action,
    packet: &[u8],
    parsed: &ParsedPacket,
    rec: &mut PlanRecorder,
) {
    match *action {
        Action::SetIpv4Src(new) => compile_rewrite_addr(packet, parsed, new, true, rec),
        Action::SetIpv4Dst(new) => compile_rewrite_addr(packet, parsed, new, false, rec),
        Action::SetDscp(dscp) => {
            let Some(ip) = parsed.ipv4 else { return };
            let old_word = u16::from_be_bytes([packet[ip.offset], packet[ip.offset + 1]]);
            let new_word = (old_word & 0xff03) | (u16::from(dscp) << 2 & 0x00fc);
            if old_word != new_word {
                rec.push(PlanOp::Write {
                    offset: (ip.offset + 1) as u16,
                    len: 1,
                    data: [(new_word & 0xff) as u8, 0, 0, 0],
                });
                rec.push(PlanOp::IncrCheck16 {
                    offset: (ip.offset + 10) as u16,
                    old: old_word,
                    new: new_word,
                });
            }
        }
        Action::SetVlanVid(vid) => {
            if parsed.vlans.is_empty() {
                return;
            }
            let old_tci = u16::from_be_bytes([packet[14], packet[15]]);
            let new_tci = (old_tci & 0xf000) | (vid & 0x0fff);
            rec.push(PlanOp::Write {
                offset: 14,
                len: 2,
                data: [(new_tci >> 8) as u8, (new_tci & 0xff) as u8, 0, 0],
            });
        }
        Action::PushVlan { vid, pcp } => {
            let tci = (u16::from(pcp & 0x7) << 13) | (vid & 0x0fff);
            let mut bytes = [0u8; 4];
            bytes[..2].copy_from_slice(&0x8100u16.to_be_bytes());
            bytes[2..].copy_from_slice(&tci.to_be_bytes());
            rec.push(PlanOp::PushTag { bytes });
        }
        Action::PushSTag { vid } => {
            let mut bytes = [0u8; 4];
            bytes[..2].copy_from_slice(&0x88a8u16.to_be_bytes());
            bytes[2..].copy_from_slice(&(vid & 0x0fff).to_be_bytes());
            rec.push(PlanOp::PushTag { bytes });
        }
        Action::PopVlan => {
            // pop_tag is a no-op unless the outer ethertype is a tag.
            if packet.len() >= 18
                && EtherType::from_u16(u16::from_be_bytes([packet[12], packet[13]])).is_vlan()
            {
                rec.push(PlanOp::PopTag);
            }
        }
        Action::Count(idx) => rec.push(PlanOp::Count { index: idx as u32 }),
        Action::Emit(_) => {} // the verdict is recorded by finish()
        // Data- or time-dependent actions: never cacheable.
        Action::DecTtl
        | Action::EncapGre { .. }
        | Action::EncapIpIp { .. }
        | Action::EncapVxlan { .. }
        | Action::DecapTunnel
        | Action::Meter(_) => rec.invalidate(),
    }
}

/// Shared compile path for src/dst rewrites, mirroring
/// `action::rewrite_addr` (including its L4 patch conditions).
fn compile_rewrite_addr(
    packet: &[u8],
    parsed: &ParsedPacket,
    new: u32,
    is_src: bool,
    rec: &mut PlanRecorder,
) {
    let Some(ip) = parsed.ipv4 else { return };
    let old = if is_src { ip.src } else { ip.dst };
    if old == new {
        return;
    }
    let addr_off = ip.offset + if is_src { 12 } else { 16 };
    rec.push(PlanOp::Write {
        offset: addr_off as u16,
        len: 4,
        data: new.to_be_bytes(),
    });
    rec.push(PlanOp::IncrCheck32 {
        offset: (ip.offset + 10) as u16,
        old,
        new,
        udp: false,
    });
    if let Some(l4_off) = parsed.l4_offset {
        match parsed.l4 {
            L4::Tcp { .. } if packet.len() >= l4_off + 18 => {
                rec.push(PlanOp::IncrCheck32 {
                    offset: (l4_off + 16) as u16,
                    old,
                    new,
                    udp: false,
                });
            }
            L4::Udp { .. } if packet.len() >= l4_off + 8 => {
                rec.push(PlanOp::IncrCheck32 {
                    offset: (l4_off + 6) as u16,
                    old,
                    new,
                    udp: true,
                });
            }
            _ => {}
        }
    }
}

/// One way's key/epoch metadata, kept separate from the plan storage so
/// the lookup scan stays within a couple of cache lines per set.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    key: FlowKey,
    epoch: u64,
    valid: bool,
}

const EMPTY_META: SlotMeta = SlotMeta {
    key: FlowKey([0; 3]),
    epoch: 0,
    valid: false,
};

/// Fixed-capacity, set-associative microflow cache with configurable
/// geometry (sets × ways; [`WAYS`]-way by default).
///
/// Keys/epochs live in a dense metadata array scanned on lookup; the
/// heavier [`ActionPlan`]s sit in a parallel array touched only on a
/// hit.
#[derive(Debug)]
pub struct FlowCache {
    meta: Vec<SlotMeta>,
    plans: Vec<Option<ActionPlan>>,
    set_mask: usize,
    ways: usize,
    victim: Vec<u8>,
    epoch: u64,
    /// Slots currently holding a plan (valid, any epoch) — maintained
    /// on insert/invalidate so occupancy telemetry is O(1).
    resident: usize,
    stats: CacheStats,
}

impl Default for FlowCache {
    fn default() -> FlowCache {
        FlowCache::new(DEFAULT_FLOWS)
    }
}

impl FlowCache {
    /// A cache holding about `flows` plans (rounded up to a power-of-two
    /// number of [`WAYS`]-way sets).
    pub fn new(flows: usize) -> FlowCache {
        FlowCache::with_geometry(flows.max(WAYS).div_ceil(WAYS), WAYS)
    }

    /// A cache with explicit geometry: `sets` sets (rounded up to a
    /// power of two) of `ways` entries each. Higher associativity
    /// absorbs heavy-hitter skew (many hot flows colliding into one
    /// set) at the cost of a longer probe scan.
    pub fn with_geometry(sets: usize, ways: usize) -> FlowCache {
        assert!(sets > 0 && ways > 0 && ways <= 255);
        let sets = sets.next_power_of_two();
        FlowCache {
            meta: vec![EMPTY_META; sets * ways],
            plans: vec![None; sets * ways],
            set_mask: sets - 1,
            ways,
            victim: vec![0; sets],
            epoch: 0,
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.set_mask + 1
    }

    /// Entries per set (associativity).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total plan capacity (sets × ways).
    pub fn capacity(&self) -> usize {
        self.meta.len()
    }

    /// Slots currently holding a plan, in O(1). Counts every valid
    /// entry including stale-epoch ones not yet discarded — the memory
    /// actually in use, which is what occupancy telemetry wants.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidate every cached plan in O(1): entries recorded under
    /// older epochs are discarded lazily at lookup time. Call on every
    /// table insert/remove/modify.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Lifetime hit/miss/evict/invalidate counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live (current-epoch) entries — O(capacity), for tests/telemetry.
    pub fn live_len(&self) -> usize {
        self.meta
            .iter()
            .filter(|m| m.valid && m.epoch == self.epoch)
            .count()
    }

    /// Look up a plan. Counts a hit or a miss; a stale-epoch entry is
    /// discarded (counted as an invalidation *and* a miss).
    pub fn lookup(&mut self, key: &FlowKey) -> Option<&ActionPlan> {
        let base = (key.hash() as usize & self.set_mask) * self.ways;
        let set = &mut self.meta[base..base + self.ways];
        for (w, m) in set.iter_mut().enumerate() {
            if m.valid && m.key == *key {
                if m.epoch == self.epoch {
                    self.stats.hits += 1;
                    return self.plans[base + w].as_ref();
                }
                m.valid = false;
                self.plans[base + w] = None;
                self.resident -= 1;
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                return None;
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert a plan recorded under the current epoch. Prefers the
    /// entry's own slot (re-record) or an empty/stale way; otherwise
    /// evicts round-robin within the set.
    pub fn insert(&mut self, key: FlowKey, plan: ActionPlan) {
        let set = key.hash() as usize & self.set_mask;
        let base = set * self.ways;
        let meta = SlotMeta {
            key,
            epoch: self.epoch,
            valid: true,
        };
        // Same key or a free/stale way first.
        for w in 0..self.ways {
            let m = &self.meta[base + w];
            if !m.valid || m.key == key || m.epoch != self.epoch {
                self.resident += usize::from(!m.valid);
                self.meta[base + w] = meta;
                self.plans[base + w] = Some(plan);
                return;
            }
        }
        let w = usize::from(self.victim[set]) % self.ways;
        self.victim[set] = self.victim[set].wrapping_add(1);
        self.meta[base + w] = meta;
        self.plans[base + w] = Some(plan);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    const SRC: u32 = 0xc0a8_0001;
    const DST: u32 = 0x0a00_0002;

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            1000,
            2000,
            b"pp",
        )
    }

    fn plan(ops: Vec<PlanOp>) -> ActionPlan {
        ActionPlan {
            ops,
            verdict: Verdict::Forward,
            stage_stats: Vec::new(),
            cycles: 7,
        }
    }

    #[test]
    fn key_extracts_for_canonical_udp() {
        let f = udp_frame();
        let k = FlowKey::extract(&f, Direction::EdgeToOptical).unwrap();
        // Same frame, other direction: different key.
        let k2 = FlowKey::extract(&f, Direction::OpticalToEdge).unwrap();
        assert_ne!(k, k2);
        // Different source port: different key.
        let f2 = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            1001,
            2000,
            b"pp",
        );
        assert_ne!(FlowKey::extract(&f2, Direction::EdgeToOptical).unwrap(), k);
        // Same 5-tuple, different payload: same key.
        let f3 = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            1000,
            2000,
            b"qq",
        );
        assert_eq!(FlowKey::extract(&f3, Direction::EdgeToOptical).unwrap(), k);
    }

    #[test]
    fn key_accessors_invert_the_packing() {
        let f = udp_frame();
        let k = FlowKey::extract(&f, Direction::EdgeToOptical).unwrap();
        assert_eq!(k.vlan_count(), 0);
        assert!(k.l4_valid());
        assert!(!k.is_fragment());
        assert_eq!(k.proto(), 17);
        assert_eq!(k.src_ip(), SRC);
        assert_eq!(k.dst_ip(), DST);
        assert_eq!(k.src_port(), 1000);
        assert_eq!(k.dst_port(), 2000);
        // Tagged frame: vlan count tracks the stack.
        let tagged = PacketBuilder::with_vlan(&f, 100, 3);
        let kt = FlowKey::extract(&tagged, Direction::EdgeToOptical).unwrap();
        assert_eq!(kt.vlan_count(), 1);
        assert_eq!(kt.src_ip(), SRC);
        // Fragment: L4 invalid, ports zeroed, fragment bit visible.
        let mut frag = udp_frame();
        {
            let mut ip = flexsfp_wire::ipv4::Ipv4Packet::new_unchecked(&mut frag[14..]);
            ip.set_fragment(false, true, 100);
            ip.fill_checksum();
        }
        let kf = FlowKey::extract(&frag, Direction::EdgeToOptical).unwrap();
        assert!(!kf.l4_valid());
        assert!(kf.is_fragment());
        assert_eq!(kf.src_port(), 0);
        assert_eq!(kf.proto(), 17);
    }

    #[test]
    fn key_hint_resolves_without_reparsing() {
        let f = udp_frame();
        let dir = Direction::EdgeToOptical;
        let k = FlowKey::extract(&f, dir).unwrap();
        assert_eq!(KeyHint::compute(&f, dir), KeyHint::Key(k));
        assert_eq!(KeyHint::Key(k).resolve(&f, dir), Some(k));
        assert_eq!(KeyHint::Unknown.resolve(&f, dir), Some(k));
        // Absent is sticky: no re-extraction even for a parsable frame.
        assert_eq!(KeyHint::Absent.resolve(&f, dir), None);
        assert_eq!(KeyHint::compute(&[0u8; 10], dir), KeyHint::Absent);
        assert_eq!(KeyHint::default(), KeyHint::Unknown);
    }

    #[test]
    fn key_rejects_non_canonical_frames() {
        // Non-IP.
        let arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            EtherType::Arp,
            &[0u8; 28],
        );
        assert!(FlowKey::extract(&arp, Direction::EdgeToOptical).is_none());
        // Runt.
        assert!(FlowKey::extract(&[0u8; 10], Direction::EdgeToOptical).is_none());
        // Bad IP version nibble.
        let mut bad = udp_frame();
        bad[14] = 0x65;
        assert!(FlowKey::extract(&bad, Direction::EdgeToOptical).is_none());
        // Total-length larger than the frame.
        let mut bad = udp_frame();
        bad[16] = 0xff;
        assert!(FlowKey::extract(&bad, Direction::EdgeToOptical).is_none());
    }

    #[test]
    fn key_sees_vlan_stack() {
        let f = udp_frame();
        let tagged = PacketBuilder::with_vlan(&f, 100, 3);
        let k0 = FlowKey::extract(&f, Direction::EdgeToOptical).unwrap();
        let k1 = FlowKey::extract(&tagged, Direction::EdgeToOptical).unwrap();
        assert_ne!(k0, k1);
        // Different VID: different key.
        let tagged2 = PacketBuilder::with_vlan(&f, 101, 3);
        assert_ne!(
            FlowKey::extract(&tagged2, Direction::EdgeToOptical).unwrap(),
            k1
        );
    }

    #[test]
    fn key_l4_bits_track_parser() {
        // A fragment (offset != 0) has no L4 in the parser; the key
        // must differ from the first-fragment key.
        let mut frag = udp_frame();
        {
            let mut ip = flexsfp_wire::ipv4::Ipv4Packet::new_unchecked(&mut frag[14..]);
            ip.set_fragment(false, true, 100);
            ip.fill_checksum();
        }
        let whole = udp_frame();
        let kw = FlowKey::extract(&whole, Direction::EdgeToOptical).unwrap();
        let kf = FlowKey::extract(&frag, Direction::EdgeToOptical).unwrap();
        assert_ne!(kw, kf);
        let parsed = Parser::default().parse(&frag).unwrap();
        assert_eq!(parsed.l4, L4::Other);
    }

    #[test]
    fn replay_matches_slow_path_rewrite() {
        use crate::action::{ActionEngine, ActionOutcome};
        let new_src = 0x6540_0001;
        // Slow path.
        let mut slow = udp_frame();
        let parsed = Parser::default().parse(&slow).unwrap();
        let mut engine = ActionEngine::new(4, Vec::new());
        let mut rec = PlanRecorder::new();
        compile_action(&Action::SetIpv4Src(new_src), &slow, &parsed, &mut rec);
        compile_action(&Action::Count(0), &slow, &parsed, &mut rec);
        let out = engine.apply(
            Action::SetIpv4Src(new_src),
            &crate::engine::ProcessContext::egress(),
            &mut slow,
            &parsed,
        );
        assert_eq!(out, ActionOutcome::Continue { modified: true });
        engine.counters.count(0, slow.len());
        // Replay on a fresh copy of the same flow.
        let plan = rec.finish(Verdict::Forward).unwrap();
        let mut fast = udp_frame();
        let mut bank = CounterBank::new(4);
        assert_eq!(replay(&plan, &mut fast, &mut bank), Verdict::Forward);
        assert_eq!(fast, slow, "replayed bytes must equal slow-path bytes");
        assert_eq!(bank.get(0).packets, 1);
        assert_eq!(bank.get(0).bytes, engine.counters.get(0).bytes);
    }

    #[test]
    fn replay_udp_zero_checksum_skipped() {
        let mut zeroed = udp_frame();
        // Zero the UDP checksum (legal: "no checksum computed").
        zeroed[40] = 0;
        zeroed[41] = 0;
        let plan = plan(vec![PlanOp::IncrCheck32 {
            offset: 40,
            old: SRC,
            new: 0x6540_0001,
            udp: true,
        }]);
        let before = zeroed.clone();
        let mut bank = CounterBank::new(1);
        replay(&plan, &mut zeroed, &mut bank);
        assert_eq!(zeroed, before, "zero UDP checksum must stay zero");
    }

    #[test]
    fn push_pop_tag_round_trip() {
        let orig = udp_frame();
        let mut pkt = orig.clone();
        let mut bank = CounterBank::new(1);
        let push = plan(vec![PlanOp::PushTag {
            bytes: [0x81, 0x00, 0x00, 0x64],
        }]);
        replay(&push, &mut pkt, &mut bank);
        assert_eq!(Parser::default().parse(&pkt).unwrap().vlans, vec![100u16]);
        let pop = plan(vec![PlanOp::PopTag]);
        replay(&pop, &mut pkt, &mut bank);
        assert_eq!(pkt, orig);
    }

    #[test]
    fn cache_hit_miss_and_eviction_counters() {
        let mut c = FlowCache::new(8); // 2 sets × 4 ways
        let f = udp_frame();
        let k = FlowKey::extract(&f, Direction::EdgeToOptical).unwrap();
        assert!(c.lookup(&k).is_none());
        c.insert(k, plan(vec![]));
        assert!(c.lookup(&k).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Overfill one set far beyond its ways: evictions must occur.
        for sport in 0..64u16 {
            let f = PacketBuilder::eth_ipv4_udp(
                MacAddr([1; 6]),
                MacAddr([2; 6]),
                SRC,
                DST,
                sport,
                2000,
                b"x",
            );
            let k = FlowKey::extract(&f, Direction::EdgeToOptical).unwrap();
            c.insert(k, plan(vec![]));
        }
        assert!(c.stats().evictions > 0);
        assert!(c.live_len() <= 8);
    }

    fn flow_key(sport: u16) -> FlowKey {
        let f = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            sport,
            2000,
            b"x",
        );
        FlowKey::extract(&f, Direction::EdgeToOptical).unwrap()
    }

    #[test]
    fn geometry_is_configurable() {
        let c = FlowCache::with_geometry(3, 8); // sets round to a power of two
        assert_eq!((c.sets(), c.ways(), c.capacity()), (4, 8, 32));
        let d = FlowCache::new(4096);
        assert_eq!((d.sets(), d.ways(), d.capacity()), (1024, WAYS, 4096));
    }

    #[test]
    fn wider_ways_absorb_colliding_flows() {
        // One set: every flow collides. 8 ways hold 8 distinct flows
        // with zero evictions; the 9th evicts.
        let mut c = FlowCache::with_geometry(1, 8);
        for sport in 0..8u16 {
            c.insert(flow_key(sport), plan(vec![]));
        }
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.resident(), 8);
        c.insert(flow_key(8), plan(vec![]));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.resident(), 8, "eviction replaces, never grows");
    }

    #[test]
    fn resident_gauge_tracks_slot_transitions() {
        let mut c = FlowCache::new(8);
        let k = flow_key(1);
        assert_eq!(c.resident(), 0);
        c.insert(k, plan(vec![]));
        assert_eq!(c.resident(), 1);
        c.insert(k, plan(vec![])); // re-record: same slot
        assert_eq!(c.resident(), 1);
        // A stale plan still occupies memory until a lookup discards it.
        c.bump_epoch();
        assert_eq!(c.resident(), 1);
        assert_eq!(c.live_len(), 0);
        assert!(c.lookup(&k).is_none());
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn epoch_bump_invalidates_stale_plans() {
        let mut c = FlowCache::new(8);
        let k = FlowKey::extract(&udp_frame(), Direction::EdgeToOptical).unwrap();
        c.insert(k, plan(vec![]));
        assert!(c.lookup(&k).is_some());
        c.bump_epoch();
        assert!(c.lookup(&k).is_none(), "stale plan must not replay");
        assert_eq!(c.stats().invalidations, 1);
        // Re-recorded under the new epoch: live again.
        c.insert(k, plan(vec![]));
        assert!(c.lookup(&k).is_some());
    }

    #[test]
    fn recorder_invalidation_blocks_caching() {
        let f = udp_frame();
        let parsed = Parser::default().parse(&f).unwrap();
        let mut rec = PlanRecorder::new();
        compile_action(&Action::Meter(0), &f, &parsed, &mut rec);
        assert!(rec.finish(Verdict::Forward).is_none());
        let rec = PlanRecorder::new();
        assert!(rec.finish(Verdict::ToControlPlane).is_none());
    }
}
