//! FlowBlaze-style stateful processing: per-flow extended finite state
//! machines (EFSM).
//!
//! The paper cites FlowBlaze and Domino as evidence that "even more
//! advanced stateful forwarding logic can be achieved at line rate using
//! compact match-action logic" (§3). This module reproduces the EFSM
//! abstraction: each flow carries a state id and a small register file;
//! a transition table maps `(state, condition)` to `(next state, register
//! updates, packet verdict)`. Conditions and updates are drawn from a
//! closed, hardware-synthesizable vocabulary rather than arbitrary code.

use crate::engine::Verdict;
use crate::tables::{HashTable, TableError, TableKey};

/// Number of per-flow registers (FlowBlaze uses a comparable budget).
pub const REGISTERS: usize = 4;

/// Per-flow context stored in the state table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowContext {
    /// Current EFSM state.
    pub state: u16,
    /// Register file.
    pub regs: [u64; REGISTERS],
}

impl Default for FlowContext {
    fn default() -> Self {
        FlowContext {
            state: 0,
            regs: [0; REGISTERS],
        }
    }
}

/// Packet-derived inputs available to conditions and updates.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketEvent {
    /// Frame length in bytes.
    pub len: u32,
    /// Arrival timestamp, ns.
    pub timestamp_ns: u64,
    /// TCP flags byte (0 when not TCP).
    pub tcp_flags: u8,
}

/// Guard conditions — the closed comparison vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Always true (default transition).
    Always,
    /// A TCP flag bit (mask) is set.
    TcpFlagsSet(u8),
    /// Register `reg` > `imm`.
    RegGt(usize, u64),
    /// Register `reg` ≤ `imm`.
    RegLe(usize, u64),
    /// Time since register `reg` (a stored timestamp) exceeds `imm` ns.
    ElapsedGt(usize, u64),
    /// Frame length > `imm` bytes.
    LenGt(u32),
}

impl Condition {
    fn eval(&self, flow: &FlowContext, ev: &PacketEvent) -> bool {
        match *self {
            Condition::Always => true,
            Condition::TcpFlagsSet(mask) => ev.tcp_flags & mask == mask,
            Condition::RegGt(r, imm) => flow.regs[r] > imm,
            Condition::RegLe(r, imm) => flow.regs[r] <= imm,
            Condition::ElapsedGt(r, imm) => ev.timestamp_ns.saturating_sub(flow.regs[r]) > imm,
            Condition::LenGt(imm) => ev.len > imm,
        }
    }
}

/// Register update operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOp {
    /// `reg = imm`.
    Set(usize, u64),
    /// `reg += imm`.
    AddImm(usize, u64),
    /// `reg -= imm`, saturating at zero.
    SubSat(usize, u64),
    /// `reg += frame length`.
    AddLen(usize),
    /// `reg = packet timestamp`.
    LoadTime(usize),
    /// `reg += 1`.
    Inc(usize),
    /// `reg = 0`.
    Clear(usize),
}

impl RegOp {
    fn apply(&self, flow: &mut FlowContext, ev: &PacketEvent) {
        match *self {
            RegOp::Set(r, v) => flow.regs[r] = v,
            RegOp::AddImm(r, v) => flow.regs[r] = flow.regs[r].wrapping_add(v),
            RegOp::SubSat(r, v) => flow.regs[r] = flow.regs[r].saturating_sub(v),
            RegOp::AddLen(r) => flow.regs[r] = flow.regs[r].wrapping_add(u64::from(ev.len)),
            RegOp::LoadTime(r) => flow.regs[r] = ev.timestamp_ns,
            RegOp::Inc(r) => flow.regs[r] = flow.regs[r].wrapping_add(1),
            RegOp::Clear(r) => flow.regs[r] = 0,
        }
    }
}

/// One EFSM transition row.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Matching current state.
    pub from: u16,
    /// Guard condition.
    pub condition: Condition,
    /// Next state.
    pub to: u16,
    /// Register updates, applied in order.
    pub ops: Vec<RegOp>,
    /// Verdict for the triggering packet.
    pub verdict: Verdict,
}

/// A per-flow EFSM table: flow key → [`FlowContext`], plus the shared
/// transition rows (the "EFSM program").
#[derive(Debug)]
pub struct EfsmTable<K: TableKey> {
    flows: HashTable<K, FlowContext>,
    transitions: Vec<Transition>,
    /// Verdict when no transition matches (fail-open forward by default).
    pub default_verdict: Verdict,
}

impl<K: TableKey> EfsmTable<K> {
    /// A table for `capacity` flows running `transitions`.
    pub fn new(capacity: usize, transitions: Vec<Transition>) -> EfsmTable<K> {
        EfsmTable {
            flows: HashTable::with_capacity(capacity),
            transitions,
            default_verdict: Verdict::Forward,
        }
    }

    /// Process one packet of flow `key`: find the first transition whose
    /// `from` and condition match, apply it, and return its verdict.
    /// Flows are created in state 0 on first sight. If the flow table
    /// bucket is full the packet is forwarded statelessly (fail-open),
    /// mirroring what the hardware must do.
    pub fn step(&mut self, key: K, ev: &PacketEvent) -> Verdict {
        let mut flow = self.flows.lookup(&key).unwrap_or_default();
        let hit = self
            .transitions
            .iter()
            .find(|t| t.from == flow.state && t.condition.eval(&flow, ev));
        let verdict = match hit {
            Some(t) => {
                for op in &t.ops {
                    op.apply(&mut flow, ev);
                }
                flow.state = t.to;
                t.verdict
            }
            None => self.default_verdict,
        };
        match self.flows.insert(key, flow) {
            Ok(()) => verdict,
            Err(TableError::BucketFull) => self.default_verdict,
        }
    }

    /// Control-plane read of a flow's context.
    pub fn peek(&self, key: &K) -> Option<FlowContext> {
        self.flows.peek(key)
    }

    /// Remove a flow (e.g. idle timeout sweep from the control plane).
    pub fn evict(&mut self, key: &K) -> Option<FlowContext> {
        self.flows.remove(key)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYN: u8 = 0x02;
    const ACK: u8 = 0x10;

    /// A SYN-flood guard: state 0 (new) → SYN moves to state 1 and
    /// forwards; a second SYN within 1 ms in state 1 increments a
    /// counter and drops after 3 repeats; an ACK moves to established.
    fn syn_guard() -> EfsmTable<u32> {
        EfsmTable::new(
            1024,
            vec![
                Transition {
                    from: 0,
                    condition: Condition::TcpFlagsSet(SYN),
                    to: 1,
                    ops: vec![RegOp::LoadTime(0), RegOp::Inc(1)],
                    verdict: Verdict::Forward,
                },
                Transition {
                    from: 1,
                    condition: Condition::TcpFlagsSet(ACK),
                    to: 2,
                    ops: vec![RegOp::Clear(1)],
                    verdict: Verdict::Forward,
                },
                Transition {
                    from: 1,
                    condition: Condition::RegGt(1, 3),
                    to: 3, // blocked
                    ops: vec![],
                    verdict: Verdict::Drop,
                },
                Transition {
                    from: 1,
                    condition: Condition::TcpFlagsSet(SYN),
                    to: 1,
                    ops: vec![RegOp::Inc(1)],
                    verdict: Verdict::Forward,
                },
                Transition {
                    from: 3,
                    condition: Condition::Always,
                    to: 3,
                    ops: vec![],
                    verdict: Verdict::Drop,
                },
            ],
        )
    }

    fn ev(flags: u8, t: u64) -> PacketEvent {
        PacketEvent {
            len: 64,
            timestamp_ns: t,
            tcp_flags: flags,
        }
    }

    #[test]
    fn handshake_reaches_established() {
        let mut t = syn_guard();
        assert_eq!(t.step(1, &ev(SYN, 0)), Verdict::Forward);
        assert_eq!(t.step(1, &ev(ACK, 1000)), Verdict::Forward);
        assert_eq!(t.peek(&1).unwrap().state, 2);
        assert_eq!(t.peek(&1).unwrap().regs[1], 0);
    }

    #[test]
    fn repeated_syns_get_blocked() {
        let mut t = syn_guard();
        for i in 0..4 {
            assert_eq!(t.step(2, &ev(SYN, i * 100)), Verdict::Forward, "syn {i}");
        }
        // Fifth packet: reg1 is now 4 > 3 -> blocked state, drop.
        assert_eq!(t.step(2, &ev(SYN, 500)), Verdict::Drop);
        assert_eq!(t.peek(&2).unwrap().state, 3);
        // Everything from the blocked flow drops, even non-SYN.
        assert_eq!(t.step(2, &ev(ACK, 600)), Verdict::Drop);
    }

    #[test]
    fn flows_are_independent() {
        let mut t = syn_guard();
        for i in 0..4 {
            t.step(10, &ev(SYN, i));
        }
        t.step(10, &ev(SYN, 10));
        assert_eq!(t.peek(&10).unwrap().state, 3);
        // A different flow is unaffected.
        assert_eq!(t.step(11, &ev(SYN, 20)), Verdict::Forward);
        assert_eq!(t.peek(&11).unwrap().state, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_state_uses_default_verdict() {
        let mut t: EfsmTable<u32> = EfsmTable::new(16, vec![]);
        assert_eq!(t.step(5, &ev(0, 0)), Verdict::Forward);
        t.default_verdict = Verdict::Drop;
        assert_eq!(t.step(5, &ev(0, 0)), Verdict::Drop);
    }

    #[test]
    fn byte_counting_with_addlen() {
        let mut t: EfsmTable<u32> = EfsmTable::new(
            16,
            vec![Transition {
                from: 0,
                condition: Condition::Always,
                to: 0,
                ops: vec![RegOp::AddLen(2)],
                verdict: Verdict::Forward,
            }],
        );
        for _ in 0..5 {
            t.step(
                9,
                &PacketEvent {
                    len: 1500,
                    timestamp_ns: 0,
                    tcp_flags: 0,
                },
            );
        }
        assert_eq!(t.peek(&9).unwrap().regs[2], 7500);
    }

    #[test]
    fn subsat_saturates_at_zero() {
        let mut t: EfsmTable<u32> = EfsmTable::new(
            16,
            vec![Transition {
                from: 0,
                condition: Condition::Always,
                to: 0,
                ops: vec![RegOp::SubSat(0, 5)],
                verdict: Verdict::Forward,
            }],
        );
        t.step(1, &ev(0, 0));
        assert_eq!(t.peek(&1).unwrap().regs[0], 0); // not underflowed
    }

    #[test]
    fn elapsed_condition() {
        let mut t: EfsmTable<u32> = EfsmTable::new(
            16,
            vec![
                Transition {
                    from: 0,
                    condition: Condition::Always,
                    to: 1,
                    ops: vec![RegOp::LoadTime(0)],
                    verdict: Verdict::Forward,
                },
                Transition {
                    from: 1,
                    condition: Condition::ElapsedGt(0, 1_000_000),
                    to: 0,
                    ops: vec![],
                    verdict: Verdict::ToControlPlane,
                },
                Transition {
                    from: 1,
                    condition: Condition::Always,
                    to: 1,
                    ops: vec![],
                    verdict: Verdict::Forward,
                },
            ],
        );
        assert_eq!(t.step(1, &ev(0, 0)), Verdict::Forward);
        assert_eq!(t.step(1, &ev(0, 500_000)), Verdict::Forward);
        // >1 ms since the stored timestamp: report to control plane.
        assert_eq!(t.step(1, &ev(0, 1_600_000)), Verdict::ToControlPlane);
    }

    #[test]
    fn eviction() {
        let mut t = syn_guard();
        t.step(3, &ev(SYN, 0));
        assert!(t.peek(&3).is_some());
        let ctx = t.evict(&3).unwrap();
        assert_eq!(ctx.state, 1);
        assert!(t.peek(&3).is_none());
        assert!(t.is_empty());
    }
}
