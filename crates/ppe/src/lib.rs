//! # flexsfp-ppe
//!
//! The Packet Processing Engine (PPE) — the programmable heart of a
//! FlexSFP module (§4.2 of the paper) — and its programming model:
//!
//! * [`engine`] — the [`engine::PacketProcessor`] trait
//!   every application implements, verdicts and processing context;
//! * [`parser`] — the configurable header parser producing the field
//!   bundle match stages key on;
//! * [`pipeline`] — RMT-style match-action pipelines (compact chains of
//!   3–4 stages, per §5.3);
//! * [`tables`] — the hardware hash-table model (bucketized, CRC-indexed)
//!   backing exact-match stages such as the NAT's 32 k flow table;
//! * [`match_kinds`] — exact / longest-prefix / ternary match tables;
//! * [`action`] — the action primitives (rewrite, push/pop, encap,
//!   hash-steer, count, meter, timestamp, drop);
//! * [`cache`] — the microflow action cache: set-associative per-flow
//!   memoization of fully-resolved action plans with epoch-based
//!   invalidation (the fast path in front of every pipeline);
//! * [`state`] — FlowBlaze-style per-flow EFSM state tables;
//! * [`meter`] — token-bucket meters for rate limiting;
//! * [`counters`] — counters with atomic snapshot semantics;
//! * [`codelet`] — the XDP-like register VM a developer writes packet
//!   functions in before "HLS" synthesis;
//! * [`hls`] — the high-level-synthesis model mapping codelets and
//!   pipelines to fabric resources and an achievable clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod cache;
pub mod codelet;
pub mod counters;
pub mod engine;
pub mod hls;
pub mod match_kinds;
pub mod meter;
pub mod parser;
pub mod pipeline;
pub mod state;
pub mod tables;

pub use cache::{ActionPlan, FlowCache, FlowKey, KeyHint, PlanOp, PlanRecorder};
pub use engine::{
    BatchPacket, Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict,
};
pub use parser::{ParsedPacket, Parser};
pub use pipeline::{Pipeline, PipelineBuilder, PipelineObs, Stage};
pub use tables::HashTable;
