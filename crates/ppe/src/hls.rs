//! The "HLS toolchain" model: mapping packet programs to fabric
//! resources and an achievable clock.
//!
//! A real flow (§4.2) converts the packet function to HDL, synthesizes it
//! and reports LUT/FF/RAM usage plus timing closure. This module is a
//! deterministic cost model calibrated against the paper's Table 1
//! synthesis report: the NAT-class pipeline estimate lands within the
//! same resource envelope as the measured NAT app row, so fit analyses of
//! the other §3 use cases are credible in relative terms.

use crate::codelet::{Codelet, Insn};
use crate::pipeline::{Matcher, Pipeline, Stage};
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_fabric::sram::{MemoryKind, MemoryPlanner, TableShape};

/// Result of "synthesizing" a packet program.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthesisReport {
    /// Estimated fabric resources.
    pub manifest: ResourceManifest,
    /// Achievable clock in Hz for the generated core.
    pub fmax_hz: u64,
    /// Pipeline latency in clock cycles.
    pub latency_cycles: u64,
}

impl SynthesisReport {
    /// True if the core closes timing at `clock_hz`.
    pub fn meets_timing(&self, clock_hz: u64) -> bool {
        self.fmax_hz >= clock_hz
    }
}

// ---- calibrated per-construct costs -------------------------------------

/// Stream-side skeleton every PPE core carries: word alignment, metadata
/// FIFOs, verdict mux. Calibrated so skeleton + one exact-match stage +
/// rewrite actions reproduces the NAT app's Table 1 row within ~10%.
const SKELETON: ResourceManifest = ResourceManifest::new(2_100, 3_300, 12, 0);
/// Parser cost per protocol level it walks (eth/vlan/ip/l4 ≈ 4 levels).
const PARSER_LEVEL: ResourceManifest = ResourceManifest::new(450, 520, 0, 0);
/// Match-stage engine cost (key mux, hash, way comparators) excluding
/// table memory.
const EXACT_STAGE: ResourceManifest = ResourceManifest::new(2_900, 3_600, 16, 0);
/// LPM stage engine (priority encoder across levels).
const LPM_STAGE: ResourceManifest = ResourceManifest::new(3_400, 2_800, 8, 0);
/// Ternary stage engine cost per 64 rows (LUT-based TCAM emulation).
const TERNARY_PER_64: ResourceManifest = ResourceManifest::new(4_200, 1_400, 0, 0);
/// Per-action edit unit.
const ACTION_UNIT: ResourceManifest = ResourceManifest::new(650, 800, 2, 0);
/// Per-codelet-instruction cost (unrolled dataflow, one ALU per insn).
const INSN_UNIT: ResourceManifest = ResourceManifest::new(140, 190, 0, 0);

/// Base fmax of a trivial core on the MPF200T fabric (28 nm).
const FMAX_BASE_HZ: f64 = 500e6;

fn fmax_for_depth(logic_depth: f64) -> u64 {
    (FMAX_BASE_HZ / (1.0 + 0.15 * logic_depth)) as u64
}

fn memory_manifest(shapes: &[TableShape]) -> ResourceManifest {
    MemoryPlanner::plan(shapes)
}

/// Estimate a match-action [`Pipeline`].
pub fn estimate_pipeline(p: &Pipeline) -> ResourceManifest {
    let mut m = SKELETON + PARSER_LEVEL.scaled(4);
    for stage in p.stages() {
        m += estimate_stage(stage);
    }
    m
}

fn estimate_stage(stage: &Stage) -> ResourceManifest {
    let mut m = ResourceManifest::ZERO;
    match &stage.matcher {
        Matcher::Always => {}
        Matcher::Exact { selector, table } => {
            m += EXACT_STAGE;
            // Per entry: selected key bits + 32 b action value + 32 b of
            // aging metadata and valid/way state (matching the NAT's
            // 96 b/entry layout from the Table 1 footnote).
            let entry_bits = selector.key_bits() + 32 + 32;
            m += memory_manifest(&[TableShape::new(table.capacity() as u64, entry_bits)]);
        }
        Matcher::Lpm { table, .. } => {
            m += LPM_STAGE;
            // Modelled as 1k-entry levels in LSRAM.
            let installed = table.len().max(64) as u64;
            m += memory_manifest(&[TableShape::new(installed.next_power_of_two(), 64)]);
        }
        Matcher::Ternary { table, .. } => {
            let rows = (table.len() + table.free()) as u64;
            m += TERNARY_PER_64.scaled(rows.div_ceil(64));
        }
    }
    let n_actions = (stage.on_hit.len() + stage.on_miss.len()) as u64;
    m += ACTION_UNIT.scaled(n_actions.max(1));
    m
}

/// Full synthesis report for a pipeline at its natural depth.
pub fn synthesize_pipeline(p: &Pipeline) -> SynthesisReport {
    let manifest = estimate_pipeline(p);
    let depth = p.stages().len() as f64;
    // Each match stage adds ~3 pipeline registers of latency; parser 4.
    let latency = 4 + p.stages().len() as u64 * 3;
    SynthesisReport {
        manifest,
        fmax_hz: fmax_for_depth(depth),
        latency_cycles: latency,
    }
}

/// Estimate a [`Codelet`] core: instructions unroll into a dataflow
/// pipeline; tables map to memories.
pub fn synthesize_codelet(c: &Codelet) -> SynthesisReport {
    let mut m = SKELETON + PARSER_LEVEL.scaled(4);
    m += INSN_UNIT.scaled(c.program().len() as u64);
    let mut lookups = 0u64;
    for insn in c.program() {
        if matches!(insn, Insn::Lookup(..) | Insn::Update(..)) {
            lookups += 1;
        }
    }
    m += EXACT_STAGE.scaled(c.tables.len() as u64);
    let shapes: Vec<TableShape> = c.tables.iter().map(|t| t.table_shape(64)).collect();
    m += memory_manifest(&shapes);
    // Logic depth grows with the longest dependency chain; approximate
    // with program length / 4 (4-wide issue in the generated dataflow)
    // plus one level per table access.
    let depth = c.program().len() as f64 / 4.0 + lookups as f64;
    SynthesisReport {
        manifest: m,
        fmax_hz: fmax_for_depth(depth),
        latency_cycles: 4 + c.program().len() as u64 / 2,
    }
}

/// Which memory kind a table of `shape` would land in (exposed for
/// ablation studies).
pub fn placement_kind(shape: TableShape) -> MemoryKind {
    MemoryPlanner::place(shape).kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::codelet::{Cmp, Field, Operand, VerdictCode};
    use crate::pipeline::{KeySelector, ParamAction, PipelineBuilder, Stage};
    use crate::tables::HashTable;
    use flexsfp_fabric::resources::table1;
    use flexsfp_fabric::{ClockDomain, Device};

    /// A NAT-like pipeline: one 32k-entry exact-match stage keyed on
    /// source IP with a rewrite param-action.
    fn nat_like() -> Pipeline {
        let table: HashTable<[u8; 13], u32> = HashTable::with_capacity(32_768);
        PipelineBuilder::new("nat-like")
            .stage(Stage {
                name: "snat".into(),
                matcher: Matcher::Exact {
                    selector: KeySelector::SrcIp,
                    table,
                },
                param_action: ParamAction::SetIpv4Src,
                on_hit: vec![Action::Count(0)],
                on_miss: vec![Action::Count(1)],
                hits: 0,
                misses: 0,
            })
            .build()
    }

    #[test]
    fn nat_estimate_lands_near_table1_row() {
        // Table 1 NAT app row: 9 122 LUT, 11 294 FF, 36 uSRAM, 160 LSRAM.
        let est = estimate_pipeline(&nat_like());
        let lut_err = (est.lut4 as f64 - 9_122.0).abs() / 9_122.0;
        let ff_err = (est.ff as f64 - 11_294.0).abs() / 11_294.0;
        assert!(lut_err < 0.25, "LUT estimate off by {lut_err:.2}: {est:?}");
        assert!(ff_err < 0.25, "FF estimate off by {ff_err:.2}: {est:?}");
        // Table memory placement is exact.
        assert_eq!(est.lsram, 160, "{est:?}");
        assert!((30..=60).contains(&est.usram), "{est:?}");
    }

    #[test]
    fn nat_pipeline_closes_timing_at_both_clocks() {
        let rep = synthesize_pipeline(&nat_like());
        assert!(rep.meets_timing(ClockDomain::XGMII_10G.hz()));
        // The Two-Way-Core runs the PPE at 2×: still closes for a
        // 1-stage chain.
        assert!(rep.meets_timing(ClockDomain::XGMII_10G_X2.hz()));
    }

    #[test]
    fn compact_chains_close_at_2x_deep_chains_do_not() {
        // §5.3: "keeping chains compact (about 3–4 stages)" to run at 2×.
        fn chain(n: usize) -> Pipeline {
            let mut b = PipelineBuilder::new("chain");
            for i in 0..n {
                b = b.stage(Stage {
                    name: format!("s{i}"),
                    matcher: Matcher::Exact {
                        selector: KeySelector::FiveTuple,
                        table: HashTable::with_capacity(1024),
                    },
                    param_action: ParamAction::None,
                    on_hit: vec![Action::Count(0)],
                    on_miss: vec![],
                    hits: 0,
                    misses: 0,
                });
            }
            b.build()
        }
        let two_x = ClockDomain::XGMII_10G_X2.hz();
        assert!(synthesize_pipeline(&chain(3)).meets_timing(two_x));
        assert!(synthesize_pipeline(&chain(4)).meets_timing(two_x));
        assert!(!synthesize_pipeline(&chain(5)).meets_timing(two_x));
        // At 1× even deep chains close.
        assert!(synthesize_pipeline(&chain(6)).meets_timing(ClockDomain::XGMII_10G.hz()));
    }

    #[test]
    fn full_module_fits_mpf200t() {
        // NAT estimate + the calibrated interface/Mi-V rows must fit.
        let est = estimate_pipeline(&nat_like());
        let total = est + table1::MI_V + table1::ELECTRICAL_IF + table1::OPTICAL_IF;
        let report = Device::mpf200t().fit(total);
        assert!(report.fits(), "{report:?}");
    }

    #[test]
    fn estimates_grow_with_stages() {
        let one = estimate_pipeline(&nat_like());
        let mut b = PipelineBuilder::new("two");
        b = b.stage(Stage::always("a", vec![Action::Count(0)]));
        b = b.stage(Stage::always("b", vec![Action::Count(1)]));
        let two_always = estimate_pipeline(&b.build());
        // Exact-match stage with a 32k table is much bigger than two
        // trivial stages.
        assert!(one.lut4 > two_always.lut4);
        assert!(one.lsram > two_always.lsram);
    }

    #[test]
    fn codelet_synthesis_report() {
        let program = vec![
            Insn::LdField(2, Field::DstPort),
            Insn::JmpIf(Cmp::Ne, 2, Operand::Imm(53), 2),
            Insn::Return(VerdictCode::Drop),
            Insn::Return(VerdictCode::Forward),
        ];
        let c = Codelet::new("tiny", program, vec![]).unwrap();
        let rep = synthesize_codelet(&c);
        assert!(rep.manifest.lut4 > 0);
        assert!(rep.meets_timing(ClockDomain::XGMII_10G.hz()));
        assert!(rep.latency_cycles >= 4);
        // Fits comfortably.
        assert!(Device::mpf200t().fit(rep.manifest).fits());
    }

    #[test]
    fn bigger_codelets_cost_more_and_clock_lower() {
        let small = Codelet::new("s", vec![Insn::Return(VerdictCode::Forward)], vec![]).unwrap();
        let mut prog = Vec::new();
        for i in 0..200 {
            prog.push(Insn::LdImm(2, i));
        }
        prog.push(Insn::Return(VerdictCode::Forward));
        let big = Codelet::new("b", prog, vec![]).unwrap();
        let rs = synthesize_codelet(&small);
        let rb = synthesize_codelet(&big);
        assert!(rb.manifest.lut4 > rs.manifest.lut4);
        assert!(rb.fmax_hz < rs.fmax_hz);
    }

    #[test]
    fn ternary_capacity_drives_cost() {
        fn acl(rows: usize) -> Pipeline {
            PipelineBuilder::new("acl")
                .stage(Stage {
                    name: "acl".into(),
                    matcher: Matcher::Ternary {
                        selector: KeySelector::FiveTuple,
                        table: crate::match_kinds::TernaryTable::new(rows),
                    },
                    param_action: ParamAction::None,
                    on_hit: vec![Action::Emit(crate::action::VerdictAction::Drop)],
                    on_miss: vec![],
                    hits: 0,
                    misses: 0,
                })
                .build()
        }
        let small = estimate_pipeline(&acl(64));
        let big = estimate_pipeline(&acl(1024));
        assert!(big.lut4 > small.lut4);
    }
}
