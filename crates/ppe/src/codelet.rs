//! The codelet VM: an XDP-like register machine for packet functions.
//!
//! The paper's workflow (§4.2): "the developer writes the packet function
//! (e.g., an XDP program). An HLS toolchain converts it to HDL and
//! generates an IP core." The codelet ISA is that source language — a
//! loop-free register machine over parsed packet fields, hash tables and
//! counters. [`verify`] enforces the synthesizability constraints
//! (bounded size, forward-only jumps, valid operands) and [`crate::hls`]
//! maps a verified codelet to fabric resources and a clock estimate.

use crate::action::{Action, ActionEngine, ActionOutcome};
use crate::engine::{PacketProcessor, ProcessContext, Verdict};
use crate::parser::{ParsedPacket, Parser, L4};
use crate::tables::HashTable;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 11;
/// Maximum program length a codelet core can realize.
pub const MAX_INSNS: usize = 512;

/// Readable packet/metadata fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// EtherType after VLANs.
    EtherType,
    /// IPv4 source address (0 when not IPv4).
    SrcIp,
    /// IPv4 destination address.
    DstIp,
    /// IP protocol number (0 when not IP).
    Proto,
    /// L4 source port (0 when absent).
    SrcPort,
    /// L4 destination port.
    DstPort,
    /// TCP flags byte.
    TcpFlags,
    /// Frame length in bytes.
    PktLen,
    /// Outermost VLAN id (0xffff when untagged).
    OuterVlan,
    /// Hardware timestamp, ns.
    Timestamp,
    /// IPv4 DSCP.
    Dscp,
    /// IPv4 TTL.
    Ttl,
}

/// Writable packet fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WField {
    /// IPv4 source address (checksums maintained).
    SrcIp,
    /// IPv4 destination address (checksums maintained).
    DstIp,
    /// IPv4 DSCP (checksum maintained).
    Dscp,
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (mod 64).
    Shl,
    /// Logical shift right (mod 64).
    Shr,
    /// Move.
    Mov,
}

/// Jump comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater (unsigned).
    Gt,
    /// Less (unsigned).
    Lt,
    /// All mask bits set: `(a & b) == b`.
    MaskSet,
}

/// Second operand of compare/ALU-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(u8),
    /// An immediate.
    Imm(u64),
}

/// Program verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictCode {
    /// Forward the packet.
    Forward,
    /// Drop the packet.
    Drop,
    /// Divert to the control plane.
    ToControlPlane,
}

impl VerdictCode {
    fn to_verdict(self) -> Verdict {
        match self {
            VerdictCode::Forward => Verdict::Forward,
            VerdictCode::Drop => Verdict::Drop,
            VerdictCode::ToControlPlane => Verdict::ToControlPlane,
        }
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `reg = imm`.
    LdImm(u8, u64),
    /// `reg = field`.
    LdField(u8, Field),
    /// `dst = op(dst, operand)`.
    Alu(AluOp, u8, Operand),
    /// Relative forward jump by `n` instructions (1 = next).
    Jmp(u16),
    /// Jump forward by `n` when `cmp(reg, operand)` holds.
    JmpIf(Cmp, u8, Operand, u16),
    /// `r0 = table[key_reg]`, `r1 = hit?1:0`.
    Lookup(u8, u8),
    /// `table[key_reg] = value_reg` (best-effort; r1 = success).
    Update(u8, u8, u8),
    /// Write `reg` into a packet field.
    SetField(WField, u8),
    /// Count packet on counter `idx`.
    Count(u16),
    /// Finish with a verdict.
    Return(VerdictCode),
}

/// Verification errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// Program empty or longer than [`MAX_INSNS`].
    BadLength,
    /// Register index ≥ [`NUM_REGS`].
    BadRegister(usize),
    /// Jump target outside the program.
    BadJump(usize),
    /// Backward or zero-offset jump (loops are not synthesizable).
    BackwardJump(usize),
    /// Table id out of range.
    BadTable(usize),
    /// Execution can fall off the end (last path lacks `Return`).
    NoReturn,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for VerifyError {}

/// Verify a program against the synthesizability rules.
pub fn verify(program: &[Insn], num_tables: usize) -> Result<(), VerifyError> {
    if program.is_empty() || program.len() > MAX_INSNS {
        return Err(VerifyError::BadLength);
    }
    let check_reg = |r: u8, at: usize| {
        if usize::from(r) >= NUM_REGS {
            Err(VerifyError::BadRegister(at))
        } else {
            Ok(())
        }
    };
    let check_operand = |o: Operand, at: usize| match o {
        Operand::Reg(r) => check_reg(r, at),
        Operand::Imm(_) => Ok(()),
    };
    for (at, insn) in program.iter().enumerate() {
        match *insn {
            Insn::LdImm(r, _) | Insn::LdField(r, _) | Insn::SetField(_, r) => check_reg(r, at)?,
            Insn::Alu(_, d, o) => {
                check_reg(d, at)?;
                check_operand(o, at)?;
            }
            Insn::Jmp(n) => {
                if n == 0 {
                    return Err(VerifyError::BackwardJump(at));
                }
                if at + usize::from(n) >= program.len() {
                    return Err(VerifyError::BadJump(at));
                }
            }
            Insn::JmpIf(_, r, o, n) => {
                check_reg(r, at)?;
                check_operand(o, at)?;
                if n == 0 {
                    return Err(VerifyError::BackwardJump(at));
                }
                if at + usize::from(n) >= program.len() {
                    return Err(VerifyError::BadJump(at));
                }
            }
            Insn::Lookup(t, r) => {
                check_reg(r, at)?;
                if usize::from(t) >= num_tables {
                    return Err(VerifyError::BadTable(at));
                }
            }
            Insn::Update(t, k, v) => {
                check_reg(k, at)?;
                check_reg(v, at)?;
                if usize::from(t) >= num_tables {
                    return Err(VerifyError::BadTable(at));
                }
            }
            Insn::Count(_) | Insn::Return(_) => {}
        }
    }
    // Falling off the end must be impossible: the last instruction must
    // be a Return or an unconditional Jmp to exactly program end is
    // disallowed anyway, so require Return.
    if !matches!(program.last(), Some(Insn::Return(_))) {
        return Err(VerifyError::NoReturn);
    }
    Ok(())
}

/// A verified codelet bound to its tables, runnable as a
/// [`PacketProcessor`].
#[derive(Debug)]
pub struct Codelet {
    name: String,
    program: Vec<Insn>,
    /// u64-keyed hash tables the program references.
    pub tables: Vec<HashTable<u64, u64>>,
    /// Counters and field-write machinery.
    pub engine: ActionEngine,
    parser: Parser,
}

impl Codelet {
    /// Build and verify a codelet.
    pub fn new(
        name: &str,
        program: Vec<Insn>,
        tables: Vec<HashTable<u64, u64>>,
    ) -> Result<Codelet, VerifyError> {
        verify(&program, tables.len())?;
        Ok(Codelet {
            name: name.into(),
            program,
            tables,
            engine: ActionEngine::new(64, Vec::new()),
            parser: Parser::default(),
        })
    }

    /// The verified program.
    pub fn program(&self) -> &[Insn] {
        &self.program
    }

    fn read_field(field: Field, ctx: &ProcessContext, parsed: &ParsedPacket) -> u64 {
        match field {
            Field::EtherType => u64::from(parsed.ethertype.to_u16()),
            Field::SrcIp => parsed.ipv4.map_or(0, |ip| u64::from(ip.src)),
            Field::DstIp => parsed.ipv4.map_or(0, |ip| u64::from(ip.dst)),
            Field::Proto => parsed.ipv4.map_or(0, |ip| u64::from(ip.protocol.to_u8())),
            Field::SrcPort => match parsed.l4 {
                L4::Tcp { src_port, .. } => u64::from(src_port),
                L4::Udp { src_port, .. } => u64::from(src_port),
                _ => 0,
            },
            Field::DstPort => match parsed.l4 {
                L4::Tcp { dst_port, .. } => u64::from(dst_port),
                L4::Udp { dst_port, .. } => u64::from(dst_port),
                _ => 0,
            },
            Field::TcpFlags => match parsed.l4 {
                L4::Tcp { flags, .. } => u64::from(flags),
                _ => 0,
            },
            Field::PktLen => parsed.frame_len as u64,
            Field::OuterVlan => parsed.outer_vlan().map_or(0xffff, u64::from),
            Field::Timestamp => ctx.timestamp_ns,
            Field::Dscp => parsed.ipv4.map_or(0, |ip| u64::from(ip.dscp)),
            Field::Ttl => parsed.ipv4.map_or(0, |ip| u64::from(ip.ttl)),
        }
    }
}

impl PacketProcessor for Codelet {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(mut parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let mut regs = [0u64; NUM_REGS];
        let mut pc = 0usize;
        // verify() proves termination (forward-only jumps), so this loop
        // is bounded by program length.
        while pc < self.program.len() {
            let insn = self.program[pc];
            pc += 1;
            match insn {
                Insn::LdImm(r, v) => regs[usize::from(r)] = v,
                Insn::LdField(r, f) => {
                    regs[usize::from(r)] = Self::read_field(f, ctx, &parsed);
                }
                Insn::Alu(op, d, o) => {
                    let b = match o {
                        Operand::Reg(r) => regs[usize::from(r)],
                        Operand::Imm(v) => v,
                    };
                    let a = regs[usize::from(d)];
                    regs[usize::from(d)] = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Shl => a.wrapping_shl(b as u32),
                        AluOp::Shr => a.wrapping_shr(b as u32),
                        AluOp::Mov => b,
                    };
                }
                Insn::Jmp(n) => pc += usize::from(n) - 1,
                Insn::JmpIf(cmp, r, o, n) => {
                    let a = regs[usize::from(r)];
                    let b = match o {
                        Operand::Reg(rr) => regs[usize::from(rr)],
                        Operand::Imm(v) => v,
                    };
                    let taken = match cmp {
                        Cmp::Eq => a == b,
                        Cmp::Ne => a != b,
                        Cmp::Gt => a > b,
                        Cmp::Lt => a < b,
                        Cmp::MaskSet => a & b == b,
                    };
                    if taken {
                        pc += usize::from(n) - 1;
                    }
                }
                Insn::Lookup(t, kr) => {
                    let key = regs[usize::from(kr)];
                    match self.tables[usize::from(t)].lookup(&key) {
                        Some(v) => {
                            regs[0] = v;
                            regs[1] = 1;
                        }
                        None => {
                            regs[0] = 0;
                            regs[1] = 0;
                        }
                    }
                }
                Insn::Update(t, kr, vr) => {
                    let key = regs[usize::from(kr)];
                    let val = regs[usize::from(vr)];
                    regs[1] = u64::from(self.tables[usize::from(t)].insert(key, val).is_ok());
                }
                Insn::SetField(f, r) => {
                    let v = regs[usize::from(r)];
                    let action = match f {
                        WField::SrcIp => Action::SetIpv4Src(v as u32),
                        WField::DstIp => Action::SetIpv4Dst(v as u32),
                        WField::Dscp => Action::SetDscp((v & 0x3f) as u8),
                    };
                    match self.engine.apply(action, ctx, packet, &parsed) {
                        ActionOutcome::Continue { modified } => {
                            if modified {
                                if let Some(p) = self.parser.parse(packet) {
                                    parsed = p;
                                }
                            }
                        }
                        ActionOutcome::Final(v) => return v,
                    }
                }
                Insn::Count(idx) => self.engine.counters.count(usize::from(idx), packet.len()),
                Insn::Return(v) => return v.to_verdict(),
            }
        }
        // Unreachable for verified programs.
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::MacAddr;

    const SRC: u32 = 0xc0a80001;

    fn udp(dst_port: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            0x08080808,
            5555,
            dst_port,
            b"x",
        )
    }

    /// "Block UDP/53 unless the source is in the allow table."
    fn dns_guard() -> Codelet {
        let mut allow: HashTable<u64, u64> = HashTable::with_capacity(64);
        allow.insert(u64::from(SRC), 1).unwrap();
        let program = vec![
            Insn::LdField(2, Field::DstPort),
            Insn::JmpIf(Cmp::Ne, 2, Operand::Imm(53), 5), // not DNS -> forward
            Insn::LdField(3, Field::SrcIp),
            Insn::Lookup(0, 3),
            Insn::JmpIf(Cmp::Eq, 1, Operand::Imm(1), 2), // hit -> forward
            Insn::Return(VerdictCode::Drop),
            Insn::Count(0),
            Insn::Return(VerdictCode::Forward),
        ];
        Codelet::new("dns-guard", program, vec![allow]).unwrap()
    }

    #[test]
    fn allowed_source_passes() {
        let mut c = dns_guard();
        let mut pkt = udp(53);
        assert_eq!(
            c.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(c.engine.counters.get(0).packets, 1);
    }

    #[test]
    fn unknown_source_dns_drops() {
        let mut c = dns_guard();
        let mut pkt = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0x0a0a0a0a,
            0x08080808,
            5555,
            53,
            b"x",
        );
        assert_eq!(
            c.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
    }

    #[test]
    fn non_dns_always_passes() {
        let mut c = dns_guard();
        let mut pkt = udp(443);
        assert_eq!(
            c.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        // Forwarded via the "not DNS" fast path, which also counts.
        assert_eq!(c.engine.counters.get(0).packets, 1);
    }

    #[test]
    fn setfield_rewrites_with_checksums() {
        let program = vec![
            Insn::LdImm(4, 0x64400001),
            Insn::SetField(WField::SrcIp, 4),
            Insn::Return(VerdictCode::Forward),
        ];
        let mut c = Codelet::new("rewrite", program, vec![]).unwrap();
        let mut pkt = udp(80);
        c.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), 0x64400001);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn alu_and_update() {
        // Learn: table[src_ip] = pkt_len, then read it back.
        let program = vec![
            Insn::LdField(2, Field::SrcIp),
            Insn::LdField(3, Field::PktLen),
            Insn::Alu(AluOp::Add, 3, Operand::Imm(1000)),
            Insn::Update(0, 2, 3),
            Insn::Lookup(0, 2),
            Insn::Return(VerdictCode::Forward),
        ];
        let t = HashTable::with_capacity(16);
        let mut c = Codelet::new("learn", program, vec![t]).unwrap();
        let mut pkt = udp(80);
        let len = pkt.len() as u64;
        c.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(c.tables[0].peek(&u64::from(SRC)), Some(len + 1000));
    }

    #[test]
    fn verifier_rejects_bad_programs() {
        // Empty.
        assert_eq!(verify(&[], 0), Err(VerifyError::BadLength));
        // Bad register.
        assert_eq!(
            verify(&[Insn::LdImm(11, 0), Insn::Return(VerdictCode::Drop)], 0),
            Err(VerifyError::BadRegister(0))
        );
        // Bad table.
        assert_eq!(
            verify(&[Insn::Lookup(0, 0), Insn::Return(VerdictCode::Drop)], 0),
            Err(VerifyError::BadTable(0))
        );
        // Jump past the end.
        assert_eq!(
            verify(
                &[
                    Insn::JmpIf(Cmp::Eq, 0, Operand::Imm(0), 5),
                    Insn::Return(VerdictCode::Drop)
                ],
                0
            ),
            Err(VerifyError::BadJump(0))
        );
        // Zero-offset jump (would loop forever in the interpreter).
        assert_eq!(
            verify(&[Insn::Jmp(0), Insn::Return(VerdictCode::Drop)], 0),
            Err(VerifyError::BackwardJump(0))
        );
        // Missing return.
        assert_eq!(verify(&[Insn::LdImm(0, 1)], 0), Err(VerifyError::NoReturn));
    }

    #[test]
    fn verifier_accepts_jump_to_last_insn() {
        let p = vec![
            Insn::JmpIf(Cmp::Eq, 0, Operand::Imm(0), 2),
            Insn::Return(VerdictCode::Drop),
            Insn::Return(VerdictCode::Forward),
        ];
        assert!(verify(&p, 0).is_ok());
    }

    #[test]
    fn timestamp_field_readable() {
        let program = vec![
            Insn::LdField(2, Field::Timestamp),
            Insn::JmpIf(Cmp::Gt, 2, Operand::Imm(100), 2),
            Insn::Return(VerdictCode::Drop),
            Insn::Return(VerdictCode::Forward),
        ];
        let mut c = Codelet::new("ts", program, vec![]).unwrap();
        let mut pkt = udp(80);
        assert_eq!(
            c.process(&ProcessContext::egress().at(50), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(
            c.process(&ProcessContext::egress().at(500), &mut pkt),
            Verdict::Forward
        );
    }
}
