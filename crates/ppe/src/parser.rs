//! The configurable header parser.
//!
//! The first block of every PPE pipeline walks the header stack once and
//! produces a fixed field bundle ([`ParsedPacket`]) that match stages key
//! on — exactly how an RMT parser front-end feeds its match-action
//! stages. The parser is tolerant: unknown or truncated upper layers
//! yield a bundle with those layers absent rather than an error, because
//! the hardware must keep forwarding traffic it does not understand.

use flexsfp_wire::{
    ethernet, ipv4::Ipv4Packet, ipv6::Ipv6Packet, tcp::TcpSegment, udp::UdpDatagram, vlan,
    EtherType, EthernetFrame, IpProtocol, MacAddr, VlanFrame,
};

/// Maximum VLAN tags the parser follows (QinQ = 2).
pub const MAX_VLAN_TAGS: usize = 2;

/// L4 summary for the match stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4 {
    /// TCP with ports and flags byte.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Raw flag byte.
        flags: u8,
    },
    /// UDP with ports.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// ICMP with type/code.
    Icmp {
        /// ICMP type byte.
        icmp_type: u8,
        /// ICMP code byte.
        code: u8,
    },
    /// Another protocol, or a fragment whose L4 header is unavailable.
    Other,
}

/// IPv4 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Summary {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Protocol.
    pub protocol: IpProtocol,
    /// TTL.
    pub ttl: u8,
    /// DSCP.
    pub dscp: u8,
    /// True if the packet is a fragment.
    pub is_fragment: bool,
    /// True if IP options are present.
    pub has_options: bool,
    /// Byte offset of the IPv4 header within the frame.
    pub offset: usize,
    /// Header length in bytes.
    pub header_len: usize,
}

/// IPv6 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Summary {
    /// Source /64 prefix (subscriber identifier in PON/FTTH scenarios).
    pub src_prefix64: u64,
    /// Next header.
    pub next_header: IpProtocol,
    /// Hop limit.
    pub hop_limit: u8,
    /// Byte offset of the IPv6 header within the frame.
    pub offset: usize,
}

/// The parsed field bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source MAC.
    pub src_mac: MacAddr,
    /// VLAN IDs outermost-first (up to [`MAX_VLAN_TAGS`]).
    pub vlans: Vec<u16>,
    /// EtherType after any VLAN tags.
    pub ethertype: EtherType,
    /// IPv4 layer, when present and valid.
    pub ipv4: Option<Ipv4Summary>,
    /// IPv6 layer, when present and valid.
    pub ipv6: Option<Ipv6Summary>,
    /// L4 layer, when parsed.
    pub l4: L4,
    /// Byte offset where the L4 header starts, when known.
    pub l4_offset: Option<usize>,
    /// Total frame length.
    pub frame_len: usize,
}

impl ParsedPacket {
    /// The 5-tuple `(src, dst, proto, sport, dport)` when the packet is
    /// IPv4 TCP/UDP — the canonical key of firewall and NAT tables.
    pub fn five_tuple(&self) -> Option<(u32, u32, u8, u16, u16)> {
        let ip = self.ipv4?;
        match self.l4 {
            L4::Tcp {
                src_port, dst_port, ..
            } => Some((ip.src, ip.dst, 6, src_port, dst_port)),
            L4::Udp { src_port, dst_port } => Some((ip.src, ip.dst, 17, src_port, dst_port)),
            _ => None,
        }
    }

    /// The outermost VLAN id, if tagged.
    pub fn outer_vlan(&self) -> Option<u16> {
        self.vlans.first().copied()
    }
}

/// The parser block. Stateless; configuration selects how deep it walks.
#[derive(Debug, Clone, Copy)]
pub struct Parser {
    /// Follow VLAN tags (disable for pure L3 pipelines to save LUTs).
    pub parse_vlan: bool,
    /// Parse into L4 headers.
    pub parse_l4: bool,
}

impl Default for Parser {
    fn default() -> Self {
        Parser {
            parse_vlan: true,
            parse_l4: true,
        }
    }
}

impl Parser {
    /// Parse a frame into the field bundle. Returns `None` only when the
    /// frame is too short to hold an Ethernet header at all.
    pub fn parse(&self, frame: &[u8]) -> Option<ParsedPacket> {
        let eth = EthernetFrame::new_checked(frame).ok()?;
        let mut parsed = ParsedPacket {
            dst_mac: eth.dst(),
            src_mac: eth.src(),
            vlans: Vec::new(),
            ethertype: eth.ethertype(),
            ipv4: None,
            ipv6: None,
            l4: L4::Other,
            l4_offset: None,
            frame_len: frame.len(),
        };

        let mut offset = ethernet::HEADER_LEN;
        let mut ethertype = eth.ethertype();
        if self.parse_vlan {
            while ethertype.is_vlan() && parsed.vlans.len() < MAX_VLAN_TAGS {
                let Ok(v) = VlanFrame::new_checked(&frame[offset..]) else {
                    return Some(parsed);
                };
                parsed.vlans.push(v.vid());
                ethertype = v.inner_ethertype();
                offset += vlan::TAG_LEN;
            }
        }
        parsed.ethertype = ethertype;

        match ethertype {
            EtherType::Ipv4 => self.parse_ipv4(frame, offset, &mut parsed),
            EtherType::Ipv6 => self.parse_ipv6(frame, offset, &mut parsed),
            _ => {}
        }
        Some(parsed)
    }

    fn parse_ipv4(&self, frame: &[u8], offset: usize, parsed: &mut ParsedPacket) {
        let Ok(ip) = Ipv4Packet::new_checked(&frame[offset..]) else {
            return;
        };
        let summary = Ipv4Summary {
            src: ip.src(),
            dst: ip.dst(),
            protocol: ip.protocol(),
            ttl: ip.ttl(),
            dscp: ip.dscp(),
            is_fragment: ip.is_fragment(),
            has_options: ip.has_options(),
            offset,
            header_len: ip.header_len(),
        };
        parsed.ipv4 = Some(summary);
        if !self.parse_l4 {
            return;
        }
        // A non-first fragment has no L4 header.
        if ip.frag_offset() != 0 {
            return;
        }
        let l4_off = offset + ip.header_len();
        parsed.l4_offset = Some(l4_off);
        parsed.l4 = Self::parse_l4_at(ip.protocol(), ip.payload());
    }

    fn parse_ipv6(&self, frame: &[u8], offset: usize, parsed: &mut ParsedPacket) {
        let Ok(ip) = Ipv6Packet::new_checked(&frame[offset..]) else {
            return;
        };
        parsed.ipv6 = Some(Ipv6Summary {
            src_prefix64: ip.src().prefix64(),
            next_header: ip.next_header(),
            hop_limit: ip.hop_limit(),
            offset,
        });
        if !self.parse_l4 {
            return;
        }
        let l4_off = offset + flexsfp_wire::ipv6::HEADER_LEN;
        parsed.l4_offset = Some(l4_off);
        parsed.l4 = Self::parse_l4_at(ip.next_header(), ip.payload());
    }

    fn parse_l4_at(protocol: IpProtocol, payload: &[u8]) -> L4 {
        match protocol {
            IpProtocol::Tcp => match TcpSegment::new_checked(payload) {
                Ok(t) => L4::Tcp {
                    src_port: t.src_port(),
                    dst_port: t.dst_port(),
                    flags: t.flags().to_u8(),
                },
                Err(_) => L4::Other,
            },
            IpProtocol::Udp => match UdpDatagram::new_checked(payload) {
                Ok(u) => L4::Udp {
                    src_port: u.src_port(),
                    dst_port: u.dst_port(),
                },
                Err(_) => L4::Other,
            },
            IpProtocol::Icmp => {
                if payload.len() >= 2 {
                    L4::Icmp {
                        icmp_type: payload[0],
                        code: payload[1],
                    }
                } else {
                    L4::Other
                }
            }
            _ => L4::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::tcp::TcpFlags;

    const SRC: u32 = 0xc0a80a01;
    const DST: u32 = 0x08080808;

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            4321,
            53,
            b"query",
        )
    }

    #[test]
    fn parses_plain_udp() {
        let p = Parser::default().parse(&udp_frame()).unwrap();
        assert_eq!(p.dst_mac, MacAddr([1; 6]));
        assert_eq!(p.ethertype, EtherType::Ipv4);
        assert!(p.vlans.is_empty());
        let ip = p.ipv4.unwrap();
        assert_eq!(ip.src, SRC);
        assert_eq!(ip.dst, DST);
        assert_eq!(ip.protocol, IpProtocol::Udp);
        assert_eq!(ip.offset, 14);
        assert_eq!(
            p.l4,
            L4::Udp {
                src_port: 4321,
                dst_port: 53
            }
        );
        assert_eq!(p.l4_offset, Some(34));
        assert_eq!(p.five_tuple(), Some((SRC, DST, 17, 4321, 53)));
    }

    #[test]
    fn parses_tcp_flags() {
        let f = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            SRC,
            DST,
            80,
            5000,
            7,
            TcpFlags::syn_only(),
            &[],
        );
        let p = Parser::default().parse(&f).unwrap();
        match p.l4 {
            L4::Tcp {
                src_port,
                dst_port,
                flags,
            } => {
                assert_eq!(src_port, 80);
                assert_eq!(dst_port, 5000);
                assert_eq!(flags, 0x02);
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn parses_single_vlan() {
        let f = PacketBuilder::with_vlan(&udp_frame(), 100, 3);
        let p = Parser::default().parse(&f).unwrap();
        assert_eq!(p.vlans, vec![100]);
        assert_eq!(p.ethertype, EtherType::Ipv4);
        assert!(p.ipv4.is_some());
        assert_eq!(p.outer_vlan(), Some(100));
    }

    #[test]
    fn parses_qinq() {
        let inner = PacketBuilder::with_vlan(&udp_frame(), 10, 0);
        let f = flexsfp_wire::vlan::push_tag(
            &inner,
            EtherType::QinQ,
            flexsfp_wire::vlan::Tci {
                pcp: 0,
                dei: false,
                vid: 200,
            },
        )
        .unwrap();
        let p = Parser::default().parse(&f).unwrap();
        assert_eq!(p.vlans, vec![200, 10]);
        assert!(p.ipv4.is_some());
    }

    #[test]
    fn vlan_parsing_disabled() {
        let f = PacketBuilder::with_vlan(&udp_frame(), 100, 0);
        let parser = Parser {
            parse_vlan: false,
            parse_l4: true,
        };
        let p = parser.parse(&f).unwrap();
        assert!(p.vlans.is_empty());
        assert_eq!(p.ethertype, EtherType::Vlan);
        assert!(p.ipv4.is_none());
    }

    #[test]
    fn fragment_has_no_l4() {
        let mut f = udp_frame();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
            ip.set_fragment(false, true, 100);
            ip.fill_checksum();
        }
        let p = Parser::default().parse(&f).unwrap();
        let ip = p.ipv4.unwrap();
        assert!(ip.is_fragment);
        assert_eq!(p.l4, L4::Other);
        assert_eq!(p.five_tuple(), None);
    }

    #[test]
    fn truncated_l4_is_other_not_error() {
        // IPv4 claims UDP but carries only 3 payload bytes.
        let short_ip = PacketBuilder::ipv4(SRC, DST, IpProtocol::Udp, &[1, 2, 3]);
        let f =
            PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv4, &short_ip);
        let p = Parser::default().parse(&f).unwrap();
        assert!(p.ipv4.is_some());
        assert_eq!(p.l4, L4::Other);
    }

    #[test]
    fn garbage_ethertype_parses_l2_only() {
        let f = PacketBuilder::ethernet(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            EtherType::Other(0x1234),
            b"opaque",
        );
        let p = Parser::default().parse(&f).unwrap();
        assert!(p.ipv4.is_none());
        assert!(p.ipv6.is_none());
        assert_eq!(p.l4, L4::Other);
        assert_eq!(p.ethertype, EtherType::Other(0x1234));
    }

    #[test]
    fn too_short_frame_is_none() {
        assert!(Parser::default().parse(&[0u8; 10]).is_none());
    }

    #[test]
    fn ipv6_prefix_extraction() {
        let mut ip6 = vec![0u8; 40 + 8];
        {
            let mut p = Ipv6Packet::new_unchecked(&mut ip6);
            p.set_version(6);
            p.set_payload_len(8);
            p.set_next_header(IpProtocol::Udp);
            p.set_hop_limit(64);
            let mut src = [0u8; 16];
            src[..8].copy_from_slice(&0x20010db8_00000001u64.to_be_bytes());
            p.set_src(flexsfp_wire::ipv6::Ipv6Addr(src));
        }
        // Build a valid 8-byte UDP header in the payload.
        {
            let mut u = UdpDatagram::new_unchecked(&mut ip6[40..]);
            u.set_src_port(1000);
            u.set_dst_port(2000);
            u.set_len(8);
        }
        let f = PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv6, &ip6);
        let p = Parser::default().parse(&f).unwrap();
        let v6 = p.ipv6.unwrap();
        assert_eq!(v6.src_prefix64, 0x20010db8_00000001);
        assert_eq!(v6.next_header, IpProtocol::Udp);
        assert_eq!(
            p.l4,
            L4::Udp {
                src_port: 1000,
                dst_port: 2000
            }
        );
    }
}
