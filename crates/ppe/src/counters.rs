//! Dataplane counters with atomic snapshot semantics.
//!
//! The paper's control plane "exposes APIs to read/write tables and
//! counters with atomic, runtime updates at line rate" (§4.2). The
//! hardware pattern is a bank of packet/byte counters the dataplane
//! increments every cycle, with a snapshot port that latches the whole
//! bank in one cycle so the control plane never reads a torn value.

/// One packet/byte counter pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted.
    pub bytes: u64,
}

/// A bank of counters addressed by index.
#[derive(Debug, Clone)]
pub struct CounterBank {
    counters: Vec<Counter>,
}

impl CounterBank {
    /// A bank of `n` zeroed counters.
    pub fn new(n: usize) -> CounterBank {
        CounterBank {
            counters: vec![Counter::default(); n],
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the bank has no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Count one packet of `bytes` length on counter `idx`.
    /// Out-of-range indices are ignored (hardware masks the address).
    pub fn count(&mut self, idx: usize, bytes: usize) {
        if let Some(c) = self.counters.get_mut(idx) {
            c.packets += 1;
            c.bytes += bytes as u64;
        }
    }

    /// Read one counter.
    pub fn get(&self, idx: usize) -> Counter {
        self.counters.get(idx).copied().unwrap_or_default()
    }

    /// Atomically latch the whole bank.
    pub fn snapshot(&self) -> Vec<Counter> {
        self.counters.clone()
    }

    /// Atomically latch and clear (read-and-reset semantics used by
    /// telemetry export so deltas are never lost or double-counted).
    pub fn snapshot_and_clear(&mut self) -> Vec<Counter> {
        let snap = self.counters.clone();
        for c in &mut self.counters {
            *c = Counter::default();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_read() {
        let mut b = CounterBank::new(4);
        b.count(0, 64);
        b.count(0, 1500);
        b.count(3, 100);
        assert_eq!(
            b.get(0),
            Counter {
                packets: 2,
                bytes: 1564
            }
        );
        assert_eq!(b.get(3).packets, 1);
        assert_eq!(b.get(1), Counter::default());
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut b = CounterBank::new(2);
        b.count(5, 64);
        assert_eq!(b.get(5), Counter::default());
        assert_eq!(b.snapshot().iter().map(|c| c.packets).sum::<u64>(), 0);
    }

    #[test]
    fn snapshot_and_clear_is_lossless() {
        let mut b = CounterBank::new(2);
        b.count(0, 10);
        let s1 = b.snapshot_and_clear();
        b.count(0, 20);
        let s2 = b.snapshot_and_clear();
        // Every byte appears in exactly one snapshot.
        assert_eq!(s1[0].bytes + s2[0].bytes, 30);
        assert_eq!(b.get(0), Counter::default());
    }
}
