//! RMT-style match-action pipelines.
//!
//! A pipeline is a short chain of stages (the paper's §5.3: "keeping
//! chains compact (about 3–4 stages)"), each pairing a match structure
//! with hit/miss action lists. Stages can use the matched value as an
//! action parameter — that is how a single exact-match stage expresses
//! the NAT's "translate source A to B" without one rule per action.

use crate::action::{Action, ActionEngine, ActionOutcome, VerdictAction};
use crate::cache::{self, FlowCache, PlanRecorder};
use crate::engine::{BatchPacket, PacketProcessor, ProcessContext, Verdict};
use crate::match_kinds::{LpmTable, TernaryTable};
use crate::meter::TokenBucket;
use crate::parser::{ParsedPacket, Parser, L4};
use crate::tables::{HashTable, TableKey};
use flexsfp_obs::{
    CacheStats, DataplaneEvent, DropReason, EventKind, EventRing, FlightStamp, LatencyHistogram,
    StageStamp,
};

/// Maximum pipeline depth the fabric comfortably supports (§5.3).
pub const MAX_STAGES: usize = 6;

/// Which parsed field(s) a stage keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySelector {
    /// IPv4 source address.
    SrcIp,
    /// IPv4 destination address.
    DstIp,
    /// IPv4 5-tuple.
    FiveTuple,
    /// Outermost VLAN id.
    OuterVlan,
    /// EtherType after VLANs.
    EtherType,
    /// Source MAC.
    SrcMac,
    /// L4 destination port.
    L4DstPort,
    /// IPv6 source /64 prefix.
    SrcPrefix64,
}

impl KeySelector {
    /// Extract the key bytes from a parsed packet; `None` when the
    /// needed layer is absent (treated as a miss).
    pub fn extract(&self, p: &ParsedPacket) -> Option<[u8; 13]> {
        let mut k = [0u8; 13];
        match self {
            KeySelector::SrcIp => {
                k[..4].copy_from_slice(&p.ipv4?.src.to_be_bytes());
            }
            KeySelector::DstIp => {
                k[..4].copy_from_slice(&p.ipv4?.dst.to_be_bytes());
            }
            KeySelector::FiveTuple => {
                let (s, d, pr, sp, dp) = p.five_tuple()?;
                k[0..4].copy_from_slice(&s.to_be_bytes());
                k[4..8].copy_from_slice(&d.to_be_bytes());
                k[8] = pr;
                k[9..11].copy_from_slice(&sp.to_be_bytes());
                k[11..13].copy_from_slice(&dp.to_be_bytes());
            }
            KeySelector::OuterVlan => {
                k[..2].copy_from_slice(&p.outer_vlan()?.to_be_bytes());
            }
            KeySelector::EtherType => {
                k[..2].copy_from_slice(&p.ethertype.to_u16().to_be_bytes());
            }
            KeySelector::SrcMac => {
                k[..6].copy_from_slice(p.src_mac.as_bytes());
            }
            KeySelector::L4DstPort => {
                let port = match p.l4 {
                    L4::Tcp { dst_port, .. } => dst_port,
                    L4::Udp { dst_port, .. } => dst_port,
                    _ => return None,
                };
                k[..2].copy_from_slice(&port.to_be_bytes());
            }
            KeySelector::SrcPrefix64 => {
                k[..8].copy_from_slice(&p.ipv6?.src_prefix64.to_be_bytes());
            }
        }
        Some(k)
    }

    /// Width of the meaningful key in bits — what the synthesized table
    /// actually stores per entry (the generic 13-byte key is a software
    /// convenience; hardware stores only the selected fields).
    pub fn key_bits(&self) -> u64 {
        match self {
            KeySelector::SrcIp | KeySelector::DstIp => 32,
            KeySelector::FiveTuple => 104,
            KeySelector::OuterVlan => 12,
            KeySelector::EtherType | KeySelector::L4DstPort => 16,
            KeySelector::SrcMac => 48,
            KeySelector::SrcPrefix64 => 64,
        }
    }

    /// Extract as IPv4 address (for LPM stages).
    pub fn extract_ip(&self, p: &ParsedPacket) -> Option<u32> {
        match self {
            KeySelector::SrcIp => Some(p.ipv4?.src),
            KeySelector::DstIp => Some(p.ipv4?.dst),
            _ => None,
        }
    }
}

impl TableKey for [u8; 13] {
    fn key_bytes(&self) -> [u8; 13] {
        *self
    }
    fn key_bits() -> u64 {
        104
    }
}

/// The match structure of a stage.
#[derive(Debug)]
pub enum Matcher {
    /// Unconditional hit.
    Always,
    /// Exact match in a hardware hash table; the value parameterizes
    /// the stage's [`ParamAction`].
    Exact {
        /// Field(s) to key on.
        selector: KeySelector,
        /// The backing table.
        table: HashTable<[u8; 13], u32>,
    },
    /// Longest-prefix match over src/dst IPv4.
    Lpm {
        /// [`KeySelector::SrcIp`] or [`KeySelector::DstIp`].
        selector: KeySelector,
        /// The backing table.
        table: LpmTable<u32>,
    },
    /// Ternary (ACL) match with priorities.
    Ternary {
        /// Field(s) to key on.
        selector: KeySelector,
        /// The backing table.
        table: TernaryTable<u32>,
    },
}

/// How a stage uses the 32-bit value returned by a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamAction {
    /// No use of the value.
    None,
    /// Rewrite IPv4 source to the value (NAT).
    SetIpv4Src,
    /// Rewrite IPv4 destination to the value.
    SetIpv4Dst,
    /// Rewrite the outer VLAN id to (value & 0xfff).
    SetVlanVid,
    /// Count on counter index `value`.
    Count,
    /// Set DSCP to (value & 0x3f).
    SetDscp,
}

/// One match-action stage.
#[derive(Debug)]
pub struct Stage {
    /// Stage name for diagnostics.
    pub name: String,
    /// The match structure.
    pub matcher: Matcher,
    /// Use of the hit value.
    pub param_action: ParamAction,
    /// Actions applied on hit (after the param action).
    pub on_hit: Vec<Action>,
    /// Actions applied on miss.
    pub on_miss: Vec<Action>,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
}

impl Stage {
    /// A stage that always "hits" and runs `actions`.
    pub fn always(name: &str, actions: Vec<Action>) -> Stage {
        Stage {
            name: name.into(),
            matcher: Matcher::Always,
            param_action: ParamAction::None,
            on_hit: actions,
            on_miss: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Probe the stage's match structure. Shared access suffices: hardware
    /// lookups never mutate the table, and table-level hit/miss counters
    /// are interior ([`Cell`](std::cell::Cell)-based).
    fn lookup(&self, parsed: &ParsedPacket) -> Option<u32> {
        match &self.matcher {
            Matcher::Always => Some(0),
            Matcher::Exact { selector, table } => {
                let key = selector.extract(parsed)?;
                table.lookup(&key)
            }
            Matcher::Lpm { selector, table } => {
                let ip = selector.extract_ip(parsed)?;
                table.lookup(ip).map(|(_, v)| v)
            }
            Matcher::Ternary { selector, table } => {
                let key = selector.extract(parsed)?;
                table.lookup(&key).map(|e| e.data)
            }
        }
    }
}

/// Per-pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Packets processed.
    pub packets: u64,
    /// Packets that ended in a drop verdict.
    pub drops: u64,
    /// Packets diverted to the control plane.
    pub to_control: u64,
}

/// Observability state of a pipeline: the hardware-style trace ring
/// the dataplane pushes events into, and a histogram of per-packet
/// PPE occupancy in pipeline cycles.
#[derive(Debug, Default)]
pub struct PipelineObs {
    /// Dataplane trace ring (parse errors, table misses, drops).
    pub events: EventRing,
    /// Per-packet pipeline occupancy in PPE cycles (4 fixed cycles +
    /// 3 per match-action stage executed — the latency model the
    /// module simulator charges for the PPE transit).
    pub stage_cycles: LatencyHistogram,
}

/// A complete match-action pipeline, usable as a [`PacketProcessor`].
#[derive(Debug)]
pub struct Pipeline {
    name: String,
    parser: Parser,
    stages: Vec<Stage>,
    /// The action engine (counters/meters) actions execute against.
    pub engine: ActionEngine,
    stats: PipelineStats,
    /// Event trace ring and stage-timing histogram.
    pub obs: PipelineObs,
    /// The microflow action cache fronting the stages.
    cache: FlowCache,
    cache_enabled: bool,
    /// Static analysis result: every stage's selector is covered by the
    /// flow key and every action is pure (bit-exact replayable).
    cacheable: bool,
    /// Set by [`Pipeline::stage_mut`]; re-runs the analysis lazily.
    cache_dirty: bool,
    /// Flight-recorder stamping switch (off by default: the hot path
    /// pays exactly one predictable branch per packet for it).
    flight_enabled: bool,
    /// Stamp of the most recently processed packet while stamping is on.
    last_flight: Option<FlightStamp>,
}

/// Cycle the stage at `idx` begins under the 4 + 3·stages model.
fn stage_start_cycle(idx: usize) -> u32 {
    4 + 3 * idx as u32
}

impl Pipeline {
    /// Read-only view of the stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Mutable stage access (control-plane table updates). Bumps the
    /// cache epoch unconditionally — any table or action-list edit may
    /// invalidate memoized plans — and schedules a re-run of the
    /// cacheability analysis.
    pub fn stage_mut(&mut self, idx: usize) -> Option<&mut Stage> {
        self.cache.bump_epoch();
        self.cache_dirty = true;
        self.stages.get_mut(idx)
    }

    /// Pipeline statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Whether the static analysis currently deems this program
    /// cacheable (selectors covered by the flow key, all actions pure).
    pub fn is_cacheable(&mut self) -> bool {
        if self.cache_dirty {
            self.cacheable = pipeline_cacheable(&self.stages);
            self.cache_dirty = false;
        }
        self.cacheable
    }

    /// The full parse → match → action path, optionally recording a
    /// replay plan for the flow cache.
    fn process_slow(
        &mut self,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
        mut rec: Option<&mut PlanRecorder>,
    ) -> Verdict {
        self.stats.packets += 1;
        let mut flight = if self.flight_enabled {
            Some(FlightStamp::default())
        } else {
            None
        };
        let Some(mut parsed) = self.parser.parse(packet) else {
            // Unparseable runt: hardware drops it.
            self.stats.drops += 1;
            self.obs
                .events
                .record(ctx.timestamp_ns, EventKind::ParseError);
            self.obs.stage_cycles.record(4);
            if let Some(r) = rec {
                r.invalidate();
            }
            if let Some(f) = flight.take() {
                // Parser rejected it before any stage ran: empty stamp.
                self.last_flight = Some(f);
            }
            return Verdict::Drop;
        };
        let mut stages_run = 0u64;
        for idx in 0..self.stages.len() {
            stages_run += 1;
            let hit = self.stages[idx].lookup(&parsed);
            if let Some(r) = rec.as_deref_mut() {
                r.stage_stat(idx as u8, hit.is_some());
            }
            if let Some(f) = flight.as_mut() {
                f.stages.push(StageStamp {
                    stage: idx as u8,
                    hit: hit.is_some(),
                    start_cycle: stage_start_cycle(idx),
                    end_cycle: stage_start_cycle(idx + 1),
                });
            }
            if hit.is_some() {
                self.stages[idx].hits += 1;
            } else {
                self.stages[idx].misses += 1;
                self.obs
                    .events
                    .record(ctx.timestamp_ns, EventKind::TableMiss { stage: idx as u8 });
            }
            if let Some(v) = run_stage_actions(
                &mut self.engine,
                &self.parser,
                &self.stages[idx],
                hit,
                ctx,
                packet,
                &mut parsed,
                rec.as_deref_mut(),
            ) {
                match v {
                    Verdict::Drop => {
                        self.stats.drops += 1;
                        self.obs.events.record(
                            ctx.timestamp_ns,
                            EventKind::Drop {
                                reason: DropReason::App,
                            },
                        );
                    }
                    Verdict::ToControlPlane => self.stats.to_control += 1,
                    _ => {}
                }
                if let Some(r) = rec {
                    r.set_cycles(4 + 3 * stages_run);
                }
                self.obs.stage_cycles.record(4 + 3 * stages_run);
                if let Some(f) = flight.take() {
                    self.last_flight = Some(f);
                }
                return v;
            }
        }
        if let Some(r) = rec {
            r.set_cycles(4 + 3 * stages_run);
        }
        self.obs.stage_cycles.record(4 + 3 * stages_run);
        if let Some(f) = flight.take() {
            self.last_flight = Some(f);
        }
        Verdict::Forward
    }
}

/// True when the flow key covers everything this selector reads.
fn selector_cacheable(selector: &KeySelector) -> bool {
    // MACs and IPv6 prefixes are not part of the flow key (the key
    // requires canonical IPv4 frames); everything else it covers.
    !matches!(selector, KeySelector::SrcMac | KeySelector::SrcPrefix64)
}

/// True when replaying this action is bit-exact for every packet of a
/// flow: field rewrites with flow-constant values, tag push/pop,
/// counting (a pure increment), and forward/drop verdicts. Meters and
/// TTL are time/data-dependent; encap/decap embeds per-packet bytes
/// (lengths, entropy hashes); `ToControlPlane` must always take the
/// slow path so the control plane sees every such packet.
fn action_cacheable(action: &Action) -> bool {
    matches!(
        action,
        Action::SetIpv4Src(_)
            | Action::SetIpv4Dst(_)
            | Action::SetDscp(_)
            | Action::SetVlanVid(_)
            | Action::PushVlan { .. }
            | Action::PushSTag { .. }
            | Action::PopVlan
            | Action::Count(_)
            | Action::Emit(VerdictAction::Forward | VerdictAction::Drop)
    )
}

/// Whole-program cacheability: every stage's selector and both action
/// lists must qualify (all [`ParamAction`] kinds are pure by
/// construction).
fn pipeline_cacheable(stages: &[Stage]) -> bool {
    stages.iter().all(|s| {
        let selector_ok = match &s.matcher {
            Matcher::Always => true,
            Matcher::Exact { selector, .. }
            | Matcher::Lpm { selector, .. }
            | Matcher::Ternary { selector, .. } => selector_cacheable(selector),
        };
        selector_ok && s.on_hit.iter().chain(&s.on_miss).all(action_cacheable)
    })
}

/// True when the action can change the parse *structure* (layer
/// offsets), requiring a full re-parse; pure field rewrites instead
/// patch the existing [`ParsedPacket`] in place.
fn is_structural(action: &Action) -> bool {
    matches!(
        action,
        Action::PushVlan { .. }
            | Action::PushSTag { .. }
            | Action::PopVlan
            | Action::EncapGre { .. }
            | Action::EncapIpIp { .. }
            | Action::EncapVxlan { .. }
            | Action::DecapTunnel
    )
}

/// Patch the parsed bundle to reflect a non-structural edit the engine
/// just applied — what a re-parse would see, without the walk.
fn patch_parsed(action: &Action, parsed: &mut ParsedPacket) {
    match *action {
        Action::SetIpv4Src(v) => {
            if let Some(ip) = parsed.ipv4.as_mut() {
                ip.src = v;
            }
        }
        Action::SetIpv4Dst(v) => {
            if let Some(ip) = parsed.ipv4.as_mut() {
                ip.dst = v;
            }
        }
        Action::SetDscp(d) => {
            if let Some(ip) = parsed.ipv4.as_mut() {
                ip.dscp = d & 0x3f;
            }
        }
        Action::DecTtl => {
            if let Some(ip) = parsed.ipv4.as_mut() {
                ip.ttl = ip.ttl.saturating_sub(1);
            }
        }
        Action::SetVlanVid(v) => {
            if let Some(outer) = parsed.vlans.first_mut() {
                *outer = v & 0x0fff;
            }
        }
        _ => {}
    }
}

/// Run one stage's param action plus its hit/miss action list. A free
/// function over disjoint pipeline fields so the per-packet path borrows
/// the action lists in place instead of cloning them.
#[allow(clippy::too_many_arguments)]
fn run_stage_actions(
    engine: &mut ActionEngine,
    parser: &Parser,
    stage: &Stage,
    hit_value: Option<u32>,
    ctx: &ProcessContext,
    packet: &mut Vec<u8>,
    parsed: &mut ParsedPacket,
    mut rec: Option<&mut PlanRecorder>,
) -> Option<Verdict> {
    // Param action first.
    let mut reparse = false;
    if let Some(v) = hit_value {
        let action = match stage.param_action {
            ParamAction::None => None,
            ParamAction::SetIpv4Src => Some(Action::SetIpv4Src(v)),
            ParamAction::SetIpv4Dst => Some(Action::SetIpv4Dst(v)),
            ParamAction::SetVlanVid => Some(Action::SetVlanVid((v & 0xfff) as u16)),
            ParamAction::Count => Some(Action::Count(v as usize)),
            ParamAction::SetDscp => Some(Action::SetDscp((v & 0x3f) as u8)),
        };
        if let Some(a) = action {
            if let Some(r) = rec.as_deref_mut() {
                cache::compile_action(&a, packet, parsed, r);
            }
            match engine.apply(a, ctx, packet, parsed) {
                ActionOutcome::Continue { modified } => {
                    if modified {
                        if is_structural(&a) {
                            reparse = true;
                        } else {
                            patch_parsed(&a, parsed);
                        }
                    }
                }
                ActionOutcome::Final(v) => return Some(v),
            }
        }
    }
    let actions = if hit_value.is_some() {
        &stage.on_hit
    } else {
        &stage.on_miss
    };
    for &a in actions {
        if reparse {
            if let Some(p) = parser.parse(packet) {
                *parsed = p;
            }
            reparse = false;
        }
        if let Some(r) = rec.as_deref_mut() {
            cache::compile_action(&a, packet, parsed, r);
        }
        match engine.apply(a, ctx, packet, parsed) {
            ActionOutcome::Continue { modified } => {
                if modified {
                    if is_structural(&a) {
                        reparse = true;
                    } else {
                        patch_parsed(&a, parsed);
                    }
                }
            }
            ActionOutcome::Final(v) => return Some(v),
        }
    }
    if reparse {
        if let Some(p) = parser.parse(packet) {
            *parsed = p;
        }
    }
    None
}

impl Pipeline {
    /// [`PacketProcessor::process`] with a caller-supplied key hint:
    /// when the dispatcher already extracted this frame's
    /// [`FlowKey`](crate::cache::FlowKey), the cache lookup reuses it
    /// instead of re-parsing.
    fn process_hinted(
        &mut self,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
        hint: crate::cache::KeyHint,
    ) -> Verdict {
        if self.cache_enabled && self.is_cacheable() {
            if let Some(key) = hint.resolve(packet, ctx.direction) {
                if let Some(plan) = self.cache.lookup(&key) {
                    // Fast path: replay the memoized plan — no parse, no
                    // table lookups. Stage hit/miss counters and miss
                    // events replay from the recorded footprint so
                    // telemetry is identical either way.
                    self.stats.packets += 1;
                    for &(si, stage_hit) in &plan.stage_stats {
                        let stage = &mut self.stages[si as usize];
                        if stage_hit {
                            stage.hits += 1;
                        } else {
                            stage.misses += 1;
                            self.obs
                                .events
                                .record(ctx.timestamp_ns, EventKind::TableMiss { stage: si });
                        }
                    }
                    if self.flight_enabled {
                        // Rebuild the stamp from the recorded footprint:
                        // stage order and hit pattern replay exactly, so
                        // a packet's postcard is identical whether the
                        // cache intercepted it or not (only `cache_hit`
                        // tells them apart).
                        self.last_flight = Some(FlightStamp {
                            cache_hit: true,
                            stages: plan
                                .stage_stats
                                .iter()
                                .enumerate()
                                .map(|(i, &(si, stage_hit))| StageStamp {
                                    stage: si,
                                    hit: stage_hit,
                                    start_cycle: stage_start_cycle(i),
                                    end_cycle: stage_start_cycle(i + 1),
                                })
                                .collect(),
                        });
                    }
                    let cycles = plan.cycles;
                    let verdict = cache::replay(plan, packet, &mut self.engine.counters);
                    self.obs.stage_cycles.record(cycles);
                    if verdict == Verdict::Drop {
                        self.stats.drops += 1;
                        self.obs.events.record(
                            ctx.timestamp_ns,
                            EventKind::Drop {
                                reason: DropReason::App,
                            },
                        );
                    }
                    return verdict;
                }
                // Miss: run the full pipeline and record a plan for the
                // next packet of this flow.
                let mut rec = PlanRecorder::new();
                let verdict = self.process_slow(ctx, packet, Some(&mut rec));
                if let Some(plan) = rec.finish(verdict) {
                    self.cache.insert(key, plan);
                }
                return verdict;
            }
        }
        self.process_slow(ctx, packet, None)
    }
}

impl PacketProcessor for Pipeline {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        self.process_hinted(ctx, packet, crate::cache::KeyHint::Unknown)
    }

    fn process_batch(&mut self, batch: &mut [BatchPacket]) {
        // Devirtualized batch loop honoring each slot's pre-parsed key
        // hint — the single-parse contract of the dispatch pipeline.
        for slot in batch {
            slot.verdict = self.process_hinted(&slot.ctx, &mut slot.frame, slot.key);
        }
    }

    fn pipeline_depth(&self) -> u32 {
        self.stages.len() as u32
    }

    fn set_flow_cache(&mut self, enabled: bool) -> bool {
        self.cache_enabled = enabled;
        true
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn set_flight_recording(&mut self, enabled: bool) -> bool {
        self.flight_enabled = enabled;
        if !enabled {
            self.last_flight = None;
        }
        true
    }

    fn flight_stamp(&self) -> Option<FlightStamp> {
        self.last_flight.clone()
    }

    fn resource_manifest(&self) -> flexsfp_fabric::ResourceManifest {
        crate::hls::estimate_pipeline(self)
    }

    fn drain_events(&mut self) -> Vec<DataplaneEvent> {
        self.obs.events.drain()
    }

    fn events_lost(&self) -> u64 {
        self.obs.events.overwritten()
    }
}

/// Builder for [`Pipeline`].
#[derive(Debug)]
pub struct PipelineBuilder {
    name: String,
    parser: Parser,
    stages: Vec<Stage>,
    counters: usize,
    meters: Vec<TokenBucket>,
}

impl PipelineBuilder {
    /// Start a pipeline named `name`.
    pub fn new(name: &str) -> PipelineBuilder {
        PipelineBuilder {
            name: name.into(),
            parser: Parser::default(),
            stages: Vec::new(),
            counters: 16,
            meters: Vec::new(),
        }
    }

    /// Override the parser configuration.
    pub fn parser(mut self, parser: Parser) -> PipelineBuilder {
        self.parser = parser;
        self
    }

    /// Set the counter bank size.
    pub fn counters(mut self, n: usize) -> PipelineBuilder {
        self.counters = n;
        self
    }

    /// Append a meter, returning its index via the builder order.
    pub fn meter(mut self, m: TokenBucket) -> PipelineBuilder {
        self.meters.push(m);
        self
    }

    /// Append a stage. Panics beyond [`MAX_STAGES`] — the fabric cannot
    /// fit deeper chains at speed (§5.3).
    pub fn stage(mut self, stage: Stage) -> PipelineBuilder {
        assert!(
            self.stages.len() < MAX_STAGES,
            "pipeline exceeds MAX_STAGES ({MAX_STAGES})"
        );
        self.stages.push(stage);
        self
    }

    /// Finish the pipeline. The flow cache starts disabled; the shell
    /// (or bench harness) opts in via
    /// [`PacketProcessor::set_flow_cache`].
    pub fn build(self) -> Pipeline {
        let cacheable = pipeline_cacheable(&self.stages);
        Pipeline {
            name: self.name,
            parser: self.parser,
            stages: self.stages,
            engine: ActionEngine::new(self.counters, self.meters),
            stats: PipelineStats::default(),
            obs: PipelineObs::default(),
            cache: FlowCache::default(),
            cache_enabled: false,
            cacheable,
            cache_dirty: false,
            flight_enabled: false,
            last_flight: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::VerdictAction;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::MacAddr;

    const SRC: u32 = 0xc0a80005;
    const DST: u32 = 0x08080404;

    fn frame(src: u32, dport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(MacAddr([1; 6]), MacAddr([2; 6]), src, DST, 999, dport, b"d")
    }

    fn nat_pipeline() -> Pipeline {
        let mut table = HashTable::with_capacity(1024);
        let mut key = [0u8; 13];
        key[..4].copy_from_slice(&SRC.to_be_bytes());
        table.insert(key, 0x64400001).unwrap();
        PipelineBuilder::new("mini-nat")
            .stage(Stage {
                name: "snat".into(),
                matcher: Matcher::Exact {
                    selector: KeySelector::SrcIp,
                    table,
                },
                param_action: ParamAction::SetIpv4Src,
                on_hit: vec![Action::Count(0)],
                on_miss: vec![Action::Count(1)],
                hits: 0,
                misses: 0,
            })
            .build()
    }

    #[test]
    fn exact_stage_translates_on_hit() {
        let mut p = nat_pipeline();
        let mut pkt = frame(SRC, 53);
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), 0x64400001);
        assert!(ip.verify_checksum());
        assert_eq!(p.engine.counters.get(0).packets, 1);
        assert_eq!(p.stages()[0].hits, 1);
    }

    #[test]
    fn exact_stage_misses_pass_unchanged() {
        let mut p = nat_pipeline();
        let mut pkt = frame(0x0a0a0a0a, 53);
        let before = pkt.clone();
        p.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(pkt, before);
        assert_eq!(p.engine.counters.get(1).packets, 1);
        assert_eq!(p.stages()[0].misses, 1);
    }

    #[test]
    fn ternary_acl_drop_stage() {
        let mut acl = TernaryTable::new(16);
        // Block dst port 53 (bytes 11..13 of the 5-tuple key).
        let mut value = [0u8; 13];
        value[11..13].copy_from_slice(&53u16.to_be_bytes());
        let mut mask = [0u8; 13];
        mask[11..13].copy_from_slice(&0xffffu16.to_be_bytes());
        acl.insert(crate::match_kinds::TernaryEntry {
            value,
            mask,
            priority: 1,
            data: 0,
        });
        let mut p = PipelineBuilder::new("acl")
            .stage(Stage {
                name: "block-dns".into(),
                matcher: Matcher::Ternary {
                    selector: KeySelector::FiveTuple,
                    table: acl,
                },
                param_action: ParamAction::None,
                on_hit: vec![Action::Emit(VerdictAction::Drop)],
                on_miss: vec![],
                hits: 0,
                misses: 0,
            })
            .build();
        let mut dns = frame(SRC, 53);
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut dns),
            Verdict::Drop
        );
        let mut web = frame(SRC, 443);
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut web),
            Verdict::Forward
        );
        assert_eq!(p.stats().drops, 1);
        assert_eq!(p.stats().packets, 2);
    }

    #[test]
    fn lpm_stage_selects_by_prefix() {
        let mut lpm = LpmTable::new();
        lpm.insert(0xc0a80000, 16, 46); // 192.168/16 -> DSCP EF
        lpm.insert(0, 0, 0); // default -> best effort
        let mut p = PipelineBuilder::new("dscp-by-prefix")
            .stage(Stage {
                name: "classify".into(),
                matcher: Matcher::Lpm {
                    selector: KeySelector::SrcIp,
                    table: lpm,
                },
                param_action: ParamAction::SetDscp,
                on_hit: vec![],
                on_miss: vec![],
                hits: 0,
                misses: 0,
            })
            .build();
        let mut pkt = frame(SRC, 80);
        p.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.dscp(), 46);
        assert!(ip.verify_checksum());

        let mut other = frame(0x0a000001, 80);
        p.process(&ProcessContext::egress(), &mut other);
        let ip = Ipv4Packet::new_checked(&other[14..]).unwrap();
        assert_eq!(ip.dscp(), 0);
    }

    #[test]
    fn multi_stage_chain_with_reparse() {
        // Stage 1 pushes a VLAN; stage 2 keys on the new VLAN id.
        let mut vlan_table = HashTable::with_capacity(64);
        let mut key = [0u8; 13];
        key[..2].copy_from_slice(&100u16.to_be_bytes());
        vlan_table.insert(key, 7).unwrap();
        let mut p = PipelineBuilder::new("chain")
            .stage(Stage::always(
                "tag",
                vec![Action::PushVlan { vid: 100, pcp: 0 }],
            ))
            .stage(Stage {
                name: "count-by-vlan".into(),
                matcher: Matcher::Exact {
                    selector: KeySelector::OuterVlan,
                    table: vlan_table,
                },
                param_action: ParamAction::Count,
                on_hit: vec![],
                on_miss: vec![Action::Emit(VerdictAction::Drop)],
                hits: 0,
                misses: 0,
            })
            .build();
        let mut pkt = frame(SRC, 80);
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        // The second stage saw the tag pushed by the first (re-parse).
        assert_eq!(p.engine.counters.get(7).packets, 1);
        assert_eq!(p.pipeline_depth(), 2);
    }

    #[test]
    fn runt_frames_drop() {
        let mut p = nat_pipeline();
        let mut runt = vec![0u8; 6];
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut runt),
            Verdict::Drop
        );
        assert_eq!(p.stats().drops, 1);
    }

    #[test]
    fn events_trace_misses_and_drops() {
        let mut p = nat_pipeline();
        // A miss records a TableMiss event naming the stage.
        let mut miss = frame(0x0a0a0a0a, 53);
        p.process(&ProcessContext::egress().at(42), &mut miss);
        // A runt records a ParseError event.
        let mut runt = vec![0u8; 6];
        p.process(&ProcessContext::egress().at(43), &mut runt);
        let events = p.drain_events();
        assert_eq!(events.len(), 2);
        // The miss event carries the stage *index*; `p.stages()[0].name`
        // resolves it for display.
        assert_eq!(events[0].kind, EventKind::TableMiss { stage: 0 });
        assert_eq!(events[0].timestamp_ns, 42);
        assert_eq!(events[1].kind, EventKind::ParseError);
        assert_eq!(p.events_lost(), 0);
        // Drained: a second drain is empty.
        assert!(p.drain_events().is_empty());
    }

    #[test]
    fn stage_cycles_match_latency_model() {
        let mut p = nat_pipeline();
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        // One stage executed: 4 + 3×1 cycles.
        assert_eq!(p.obs.stage_cycles.count(), 1);
        assert_eq!(p.obs.stage_cycles.max(), 7);
    }

    #[test]
    #[should_panic(expected = "MAX_STAGES")]
    fn depth_limit_enforced() {
        let mut b = PipelineBuilder::new("deep");
        for i in 0..=MAX_STAGES {
            b = b.stage(Stage::always(&format!("s{i}"), vec![]));
        }
    }

    #[test]
    fn flow_cache_parity_with_slow_path() {
        // Two pipelines with identical programs; one caches.
        let mut cached = nat_pipeline();
        let mut uncached = nat_pipeline();
        assert!(cached.set_flow_cache(true));
        assert!(cached.is_cacheable());
        for round in 0..3 {
            for (src, dport) in [(SRC, 53), (SRC, 80), (0x0a0a_0a0au32, 99)] {
                let mut a = frame(src, dport);
                let mut b = a.clone();
                let va = cached.process(&ProcessContext::egress().at(round), &mut a);
                let vb = uncached.process(&ProcessContext::egress().at(round), &mut b);
                assert_eq!(va, vb);
                assert_eq!(a, b, "cache-on bytes must equal cache-off bytes");
            }
        }
        // Same packets, stats, counters, events and stage attribution.
        assert_eq!(cached.stats(), uncached.stats());
        assert_eq!(
            cached.engine.counters.get(0),
            uncached.engine.counters.get(0)
        );
        assert_eq!(
            cached.engine.counters.get(1),
            uncached.engine.counters.get(1)
        );
        assert_eq!(cached.stages()[0].hits, uncached.stages()[0].hits);
        assert_eq!(cached.stages()[0].misses, uncached.stages()[0].misses);
        assert_eq!(cached.drain_events().len(), uncached.drain_events().len());
        // And the cache actually worked: 3 flows × 3 rounds = 3 misses,
        // 6 hits.
        let s = cached.cache_stats().unwrap();
        assert_eq!((s.hits, s.misses), (6, 3));
        assert!(uncached.cache_stats().unwrap().lookups() == 0);
    }

    #[test]
    fn flight_stamps_replay_identically_from_cache() {
        let mut cached = nat_pipeline();
        let mut uncached = nat_pipeline();
        cached.set_flow_cache(true);
        assert!(cached.set_flight_recording(true));
        assert!(uncached.set_flight_recording(true));
        for round in 0..3u64 {
            let mut a = frame(SRC, 53);
            let mut b = a.clone();
            cached.process(&ProcessContext::egress().at(round), &mut a);
            uncached.process(&ProcessContext::egress().at(round), &mut b);
            let fa = cached.flight_stamp().unwrap();
            let fb = uncached.flight_stamp().unwrap();
            // Stage stamps replay bit-identically from the cached plan;
            // only the cache_hit flag distinguishes the two paths.
            assert_eq!(fa.stages, fb.stages);
            assert_eq!(fa.cache_hit, round > 0);
            assert!(!fb.cache_hit);
            assert_eq!(fa.stages.len(), 1);
            assert_eq!(fa.stages[0].start_cycle, 4);
            assert_eq!(fa.stages[0].end_cycle, 7);
            assert!(fa.stages[0].hit);
        }
    }

    #[test]
    fn flight_stamping_off_by_default_and_clearable() {
        let mut p = nat_pipeline();
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(p.flight_stamp(), None);
        p.set_flight_recording(true);
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        assert!(p.flight_stamp().is_some());
        // A runt stamps an empty stage list (parser rejected it).
        let mut runt = vec![0u8; 6];
        p.process(&ProcessContext::egress(), &mut runt);
        assert!(p.flight_stamp().unwrap().stages.is_empty());
        p.set_flight_recording(false);
        assert_eq!(p.flight_stamp(), None);
    }

    #[test]
    fn stage_mut_invalidates_cached_plans() {
        let mut p = nat_pipeline();
        p.set_flow_cache(true);
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(p.cache_stats().unwrap().hits, 1);
        // Control plane remaps SRC to a new public address.
        let new_public = 0x6440_0099u32;
        let mut key = [0u8; 13];
        key[..4].copy_from_slice(&SRC.to_be_bytes());
        if let Some(stage) = p.stage_mut(0) {
            if let Matcher::Exact { table, .. } = &mut stage.matcher {
                table.insert(key, new_public).unwrap();
            }
        }
        // The stale plan must not replay the old mapping.
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), new_public);
        assert!(ip.verify_checksum());
        assert_eq!(p.cache_stats().unwrap().invalidations, 1);
    }

    #[test]
    fn uncacheable_program_always_slow_paths() {
        let mut p = PipelineBuilder::new("ttl")
            .stage(Stage::always("dec", vec![Action::DecTtl]))
            .build();
        p.set_flow_cache(true);
        assert!(!p.is_cacheable(), "DecTtl is data-dependent");
        for ttl_round in 0..2 {
            let mut pkt = frame(SRC, 53);
            p.process(&ProcessContext::egress().at(ttl_round), &mut pkt);
            let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
            assert_eq!(ip.ttl(), 63);
            assert!(ip.verify_checksum());
        }
        assert_eq!(p.cache_stats().unwrap().lookups(), 0);
    }

    #[test]
    fn structural_actions_still_reparse() {
        // The in-place ParsedPacket patching must not break the
        // push-then-match chain (which needs a real re-parse).
        let mut p = nat_pipeline();
        p.set_flow_cache(true);
        let mut pkt = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut pkt);
        let mut again = frame(SRC, 53);
        p.process(&ProcessContext::egress(), &mut again);
        assert_eq!(pkt, again, "hit path must produce identical bytes");
    }
}
