//! Stateful in-line security: a SYN-flood guard built on the
//! FlowBlaze-style EFSM engine (§3: "programmable hardware platforms
//! like FlowBlaze and Domino have shown that even more advanced stateful
//! forwarding logic can be achieved at line rate using compact
//! match-action logic").
//!
//! Per-source EFSM: a source opening TCP connections accumulates a
//! pending-SYN credit that completed handshakes (ACKs) pay back; sources
//! whose deficit crosses a threshold are quarantined for a cooling-off
//! period, then given a clean slate. All state lives in a hardware hash
//! table; the transition rows are exactly the closed vocabulary the EFSM
//! engine synthesizes.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::parser::{Parser, L4};
use flexsfp_ppe::state::{Condition, EfsmTable, PacketEvent, RegOp, Transition};
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// EFSM states.
const TRACKING: u16 = 0;
const QUARANTINED: u16 = 1;

/// Register assignment: r0 = pending-SYN deficit, r1 = quarantine
/// entry timestamp.
const R_DEFICIT: usize = 0;
const R_QUARANTINE_T: usize = 1;

const SYN: u8 = 0x02;
const ACK: u8 = 0x10;

/// Guard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// TCP packets inspected.
    pub inspected: u64,
    /// Packets dropped while a source was quarantined.
    pub dropped: u64,
    /// Non-TCP traffic passed through.
    pub passed_non_tcp: u64,
}

/// The SYN-flood guard application.
pub struct SynFloodGuard {
    efsm: EfsmTable<u32>,
    /// Statistics.
    pub stats: GuardStats,
    /// Deficit (SYNs minus ACKs) that triggers quarantine.
    pub threshold: u64,
    parser: Parser,
}

impl SynFloodGuard {
    /// A guard tracking `capacity` sources; quarantine after `threshold`
    /// unanswered SYNs, release after `quarantine_ns`.
    pub fn new(capacity: usize, threshold: u64, quarantine_ns: u64) -> SynFloodGuard {
        let transitions = vec![
            // Deficit crossed the threshold: quarantine the source.
            Transition {
                from: TRACKING,
                condition: Condition::RegGt(R_DEFICIT, threshold),
                to: QUARANTINED,
                ops: vec![RegOp::LoadTime(R_QUARANTINE_T)],
                verdict: Verdict::Drop,
            },
            // A SYN raises the deficit.
            Transition {
                from: TRACKING,
                condition: Condition::TcpFlagsSet(SYN),
                to: TRACKING,
                ops: vec![RegOp::Inc(R_DEFICIT)],
                verdict: Verdict::Forward,
            },
            // An ACK (handshake completion) pays one back.
            Transition {
                from: TRACKING,
                condition: Condition::TcpFlagsSet(ACK),
                to: TRACKING,
                ops: vec![RegOp::SubSat(R_DEFICIT, 1)],
                verdict: Verdict::Forward,
            },
            // Other TCP segments of tracked sources pass.
            Transition {
                from: TRACKING,
                condition: Condition::Always,
                to: TRACKING,
                ops: vec![],
                verdict: Verdict::Forward,
            },
            // Quarantine expiry: clean slate.
            Transition {
                from: QUARANTINED,
                condition: Condition::ElapsedGt(R_QUARANTINE_T, quarantine_ns),
                to: TRACKING,
                ops: vec![RegOp::Clear(R_DEFICIT)],
                verdict: Verdict::Forward,
            },
            // Still quarantined: drop everything.
            Transition {
                from: QUARANTINED,
                condition: Condition::Always,
                to: QUARANTINED,
                ops: vec![],
                verdict: Verdict::Drop,
            },
        ];
        SynFloodGuard {
            efsm: EfsmTable::new(capacity, transitions),
            stats: GuardStats::default(),
            threshold,
            parser: Parser::default(),
        }
    }

    /// Is `src` currently quarantined?
    pub fn is_quarantined(&self, src: u32) -> bool {
        self.efsm.peek(&src).is_some_and(|f| f.state == QUARANTINED)
    }

    /// Tracked sources.
    pub fn tracked(&self) -> usize {
        self.efsm.len()
    }
}

impl PacketProcessor for SynFloodGuard {
    fn name(&self) -> &str {
        "syn-flood-guard"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let (Some(ip), L4::Tcp { flags, .. }) = (parsed.ipv4, parsed.l4) else {
            self.stats.passed_non_tcp += 1;
            return Verdict::Forward;
        };
        self.stats.inspected += 1;
        let verdict = self.efsm.step(
            ip.src,
            &PacketEvent {
                len: packet.len() as u32,
                timestamp_ns: ctx.timestamp_ns,
                tcp_flags: flags,
            },
        );
        if verdict == Verdict::Drop {
            self.stats.dropped += 1;
        }
        verdict
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // EFSM engine (condition evaluators + register ALUs) + the
        // per-flow state table (32 b key + 16 b state + 4×64 b regs).
        ResourceManifest::new(6_200, 7_400, 32, 44)
    }

    fn pipeline_depth(&self) -> u32 {
        3 // parse → state lookup → transition/update
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Manual release of a source (key = 4-byte IP).
            TableOp::Delete { table: 0, key } => {
                let Ok(b) = <[u8; 4]>::try_from(&key[..]) else {
                    return TableOpResult::BadEncoding;
                };
                match self.efsm.evict(&u32::from_be_bytes(b)) {
                    Some(_) => TableOpResult::Ok,
                    None => TableOpResult::NotFound,
                }
            }
            TableOp::ReadCounter { index } => {
                let packets = match index {
                    0 => self.stats.inspected,
                    1 => self.stats.dropped,
                    _ => return TableOpResult::NotFound,
                };
                TableOpResult::Counter { packets, bytes: 0 }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::tcp::TcpFlags;
    use flexsfp_wire::MacAddr;

    const ATTACKER: u32 = 0x0bad0001;
    const CLIENT: u32 = 0xc0a80001;
    const SERVER: u32 = 0x0a000050;

    fn tcp(src: u32, flags: TcpFlags, sport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            SERVER,
            sport,
            443,
            0,
            flags,
            &[],
        )
    }

    fn syn() -> TcpFlags {
        TcpFlags::syn_only()
    }

    fn ack() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }

    fn guard() -> SynFloodGuard {
        SynFloodGuard::new(1024, 10, 1_000_000)
    }

    #[test]
    fn normal_client_never_quarantined() {
        let mut g = guard();
        // 50 handshakes: SYN then ACK each time.
        for i in 0..50u64 {
            let mut s = tcp(CLIENT, syn(), 5000 + i as u16);
            assert_eq!(
                g.process(&ProcessContext::egress().at(i * 1000), &mut s),
                Verdict::Forward
            );
            let mut a = tcp(CLIENT, ack(), 5000 + i as u16);
            assert_eq!(
                g.process(&ProcessContext::egress().at(i * 1000 + 500), &mut a),
                Verdict::Forward
            );
        }
        assert!(!g.is_quarantined(CLIENT));
        assert_eq!(g.stats.dropped, 0);
    }

    #[test]
    fn syn_flood_gets_quarantined_then_released() {
        let mut g = guard();
        let mut dropped_at = None;
        for i in 0..20u64 {
            let mut s = tcp(ATTACKER, syn(), 6000 + i as u16);
            if g.process(&ProcessContext::egress().at(i * 100), &mut s) == Verdict::Drop {
                dropped_at = Some(i);
                break;
            }
        }
        // Threshold 10: the 12th SYN (deficit 11 > 10) is dropped.
        assert_eq!(dropped_at, Some(11));
        assert!(g.is_quarantined(ATTACKER));
        // Everything from the attacker drops during quarantine.
        let mut a = tcp(ATTACKER, ack(), 1);
        assert_eq!(
            g.process(&ProcessContext::egress().at(5_000), &mut a),
            Verdict::Drop
        );
        // After the cooling-off period the source gets a clean slate.
        let mut s = tcp(ATTACKER, syn(), 7000);
        assert_eq!(
            g.process(&ProcessContext::egress().at(2_100_000), &mut s),
            Verdict::Forward
        );
        assert!(!g.is_quarantined(ATTACKER));
    }

    #[test]
    fn sources_are_isolated() {
        let mut g = guard();
        for i in 0..15u64 {
            let mut s = tcp(ATTACKER, syn(), 6000 + i as u16);
            let _ = g.process(&ProcessContext::egress().at(i * 100), &mut s);
        }
        assert!(g.is_quarantined(ATTACKER));
        let mut s = tcp(CLIENT, syn(), 5000);
        assert_eq!(
            g.process(&ProcessContext::egress().at(2_000), &mut s),
            Verdict::Forward
        );
        assert_eq!(g.tracked(), 2);
    }

    #[test]
    fn non_tcp_unaffected() {
        let mut g = guard();
        let mut udp = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            ATTACKER,
            SERVER,
            1,
            53,
            b"q",
        );
        assert_eq!(
            g.process(&ProcessContext::egress(), &mut udp),
            Verdict::Forward
        );
        assert_eq!(g.stats.passed_non_tcp, 1);
        assert_eq!(g.stats.inspected, 0);
    }

    #[test]
    fn manual_release_via_control_plane() {
        let mut g = guard();
        for i in 0..15u64 {
            let mut s = tcp(ATTACKER, syn(), 6000 + i as u16);
            let _ = g.process(&ProcessContext::egress().at(i * 100), &mut s);
        }
        assert!(g.is_quarantined(ATTACKER));
        assert_eq!(
            g.control_op(&TableOp::Delete {
                table: 0,
                key: ATTACKER.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        assert!(!g.is_quarantined(ATTACKER));
        let mut s = tcp(ATTACKER, syn(), 9000);
        assert_eq!(
            g.process(&ProcessContext::egress().at(99_999), &mut s),
            Verdict::Forward
        );
    }

    #[test]
    fn counters_and_fit() {
        let mut g = guard();
        for i in 0..15u64 {
            let mut s = tcp(ATTACKER, syn(), 6000 + i as u16);
            let _ = g.process(&ProcessContext::egress().at(i * 100), &mut s);
        }
        match g.control_op(&TableOp::ReadCounter { index: 1 }) {
            TableOpResult::Counter { packets, .. } => assert!(packets > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(flexsfp_fabric::Device::mpf200t()
            .fit(g.resource_manifest())
            .fits());
    }
}
