//! Application factory: bitstream metadata → application instance.
//!
//! In hardware, a bitstream *is* the application; in the model, the
//! bitstream's metadata names the application and carries its JSON
//! configuration, and this registry instantiates the matching Rust
//! implementation at boot. Install it on a module with
//! [`flexsfp_core::FlexSfp::set_factory`] to make OTA reprogramming
//! switch between any of the §3 use cases.

use crate::dnsfilter::DnsFilter;
use crate::firewall::{AclFirewall, AclRule};
use crate::ipv6filter::Ipv6SubscriberFilter;
use crate::lb::L4LoadBalancer;
use crate::nat::StaticNat;
use crate::ratelimit::PerSourceRateLimiter;
use crate::sanitizer::{Sanitizer, SanitizerPolicy};
use crate::stateful::SynFloodGuard;
use crate::telemetry::TelemetryProbe;
use crate::tunnel::{TunnelGateway, TunnelKind};
use crate::vlan::VlanTagger;
use flexsfp_core::bitstream::BitstreamMeta;
use flexsfp_core::module::AppFactory;
use flexsfp_obs::FromJson;
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::PacketProcessor;

/// Instantiate the application named by `meta`, honouring its JSON
/// `config`. Unknown names return `None` (the module falls back to its
/// golden image).
pub fn build_app(meta: &BitstreamMeta) -> Option<Box<dyn PacketProcessor>> {
    let cfg = &meta.config;
    match meta.app.as_str() {
        "passthrough" => Some(Box::new(PassThrough)),
        "nat" => {
            let capacity = cfg["table_size"].as_u64().unwrap_or(32_768) as usize;
            let mut nat = StaticNat::with_capacity(capacity);
            if let Some(mappings) = cfg["mappings"].as_array() {
                for m in mappings {
                    let (Some(private), Some(public)) =
                        (m["private"].as_u64(), m["public"].as_u64())
                    else {
                        continue;
                    };
                    let _ = nat.add_mapping(private as u32, public as u32);
                }
            }
            Some(Box::new(nat))
        }
        "firewall" => {
            let capacity = cfg["capacity"].as_u64().unwrap_or(256) as usize;
            let mut fw = AclFirewall::new(capacity);
            if cfg["default"].as_str() == Some("deny") {
                fw.default_action = crate::firewall::AclAction::Deny;
            }
            if let Some(rules) = cfg["rules"].as_array() {
                for r in rules {
                    if let Some(rule) = AclRule::from_json(r) {
                        fw.add_rule(rule);
                    }
                }
            }
            Some(Box::new(fw))
        }
        "vlan-tagger" => {
            let vid = cfg["vid"].as_u64().unwrap_or(1) as u16;
            let mut t = VlanTagger::new(vid);
            if let Some(s) = cfg["s_tag"].as_u64() {
                t = t.with_s_tag(s as u16);
            }
            Some(Box::new(t))
        }
        "tunnel-gw" => {
            let local = cfg["local"].as_u64()? as u32;
            let remote = cfg["remote"].as_u64()? as u32;
            let kind = match cfg["kind"].as_str()? {
                "gre" => TunnelKind::Gre {
                    key: cfg["key"].as_u64().unwrap_or(0) as u32,
                },
                "vxlan" => TunnelKind::Vxlan {
                    vni: cfg["vni"].as_u64().unwrap_or(0) as u32,
                },
                "ipip" => TunnelKind::IpIp,
                _ => return None,
            };
            Some(Box::new(TunnelGateway::new(kind, local, remote)))
        }
        "l4-lb" => {
            let vip = cfg["vip"].as_u64()? as u32;
            let port = cfg["port"].as_u64().unwrap_or(0) as u16;
            let backends: Vec<u32> = cfg["backends"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_u64())
                        .map(|v| v as u32)
                        .collect()
                })
                .unwrap_or_default();
            Some(Box::new(L4LoadBalancer::new(vip, port, backends)))
        }
        "telemetry" => {
            let flows = cfg["flows"].as_u64().unwrap_or(8_192) as usize;
            let window = cfg["window_ns"].as_u64().unwrap_or(100_000);
            let threshold = cfg["burst_bytes"].as_u64().unwrap_or(50_000);
            let mut t = TelemetryProbe::new(flows, window, threshold);
            t.tag_timestamps = cfg["tag_timestamps"].as_bool().unwrap_or(false);
            Some(Box::new(t))
        }
        "rate-limiter" => Some(Box::new(PerSourceRateLimiter::new())),
        "dns-filter" => {
            let mut f = DnsFilter::new();
            if let Some(domains) = cfg["blocked"].as_array() {
                for d in domains.iter().filter_map(|v| v.as_str()) {
                    f.block_domain(d);
                }
            }
            if let Some(resolvers) = cfg["doh_resolvers"].as_array() {
                for r in resolvers.iter().filter_map(|v| v.as_u64()) {
                    f.block_doh_resolver(r as u32);
                }
            }
            Some(Box::new(f))
        }
        "sanitizer" => Some(Box::new(Sanitizer::new(SanitizerPolicy::default()))),
        "syn-flood-guard" => {
            let capacity = cfg["capacity"].as_u64().unwrap_or(4_096) as usize;
            let threshold = cfg["threshold"].as_u64().unwrap_or(64);
            let quarantine = cfg["quarantine_ns"].as_u64().unwrap_or(5_000_000_000);
            Some(Box::new(SynFloodGuard::new(
                capacity, threshold, quarantine,
            )))
        }
        "ipv6-filter" => {
            let mut f = Ipv6SubscriberFilter::new();
            f.block_all_v6 = cfg["block_all"].as_bool().unwrap_or(false);
            if let Some(delegations) = cfg["delegations"].as_array() {
                for d in delegations {
                    let (Some(prefix), Some(sub)) =
                        (d["prefix64"].as_u64(), d["subscriber"].as_u64())
                    else {
                        continue;
                    };
                    f.delegate(prefix, sub as u32);
                }
            }
            Some(Box::new(f))
        }
        _ => None,
    }
}

/// A boxed [`AppFactory`] for [`flexsfp_core::FlexSfp::set_factory`].
pub fn app_factory() -> AppFactory {
    Box::new(build_app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_core::Bitstream;
    use flexsfp_fabric::resources::ResourceManifest;

    fn meta(app: &str, config: flexsfp_obs::Value) -> BitstreamMeta {
        Bitstream::new(app, 1, ResourceManifest::ZERO, 156_250_000)
            .with_config(config)
            .meta
    }

    #[test]
    fn builds_every_registered_app() {
        let cases = vec![
            ("passthrough", flexsfp_obs::json!({})),
            ("nat", flexsfp_obs::json!({"table_size": 1024})),
            ("firewall", flexsfp_obs::json!({"default": "deny"})),
            ("vlan-tagger", flexsfp_obs::json!({"vid": 100})),
            (
                "tunnel-gw",
                flexsfp_obs::json!({"kind": "gre", "local": 1, "remote": 2, "key": 3}),
            ),
            (
                "l4-lb",
                flexsfp_obs::json!({"vip": 167772161u32, "port": 80, "backends": [1, 2]}),
            ),
            ("telemetry", flexsfp_obs::json!({"flows": 128})),
            ("rate-limiter", flexsfp_obs::json!({})),
            ("dns-filter", flexsfp_obs::json!({"blocked": ["x.com"]})),
            ("sanitizer", flexsfp_obs::json!({})),
            ("syn-flood-guard", flexsfp_obs::json!({"threshold": 32})),
            (
                "ipv6-filter",
                flexsfp_obs::json!({"delegations": [{"prefix64": 1u64, "subscriber": 2}]}),
            ),
        ];
        for (name, cfg) in cases {
            let app = build_app(&meta(name, cfg)).unwrap_or_else(|| panic!("{name} not built"));
            assert_eq!(app.name(), name);
        }
    }

    #[test]
    fn unknown_app_rejected() {
        assert!(build_app(&meta("quantum-router", flexsfp_obs::json!({}))).is_none());
    }

    #[test]
    fn nat_mappings_from_config() {
        let cfg = flexsfp_obs::json!({
            "table_size": 64,
            "mappings": [{"private": 0xc0a80001u32, "public": 0x65000001u32}]
        });
        let mut app = build_app(&meta("nat", cfg)).unwrap();
        // Verify via control-plane read.
        let r = app.control_op(&flexsfp_ppe::TableOp::Read {
            table: 0,
            key: 0xc0a80001u32.to_be_bytes().to_vec(),
        });
        assert_eq!(
            r,
            flexsfp_ppe::TableOpResult::Value(0x65000001u32.to_be_bytes().to_vec())
        );
    }

    #[test]
    fn tunnel_requires_endpoints() {
        assert!(build_app(&meta("tunnel-gw", flexsfp_obs::json!({"kind": "gre"}))).is_none());
        assert!(build_app(&meta(
            "tunnel-gw",
            flexsfp_obs::json!({"kind": "bad", "local": 1, "remote": 2})
        ))
        .is_none());
    }

    #[test]
    fn ota_switch_between_apps_on_module() {
        use flexsfp_core::module::{FlexSfp, ModuleConfig};
        let mut m = FlexSfp::new(
            ModuleConfig::default(),
            build_app(&meta("nat", flexsfp_obs::json!({}))).unwrap(),
        );
        m.set_factory(app_factory());
        // Stage a firewall bitstream and activate it.
        let bs = Bitstream::new(
            "firewall",
            2,
            ResourceManifest::new(8_000, 6_000, 24, 2),
            156_250_000,
        )
        .with_config(flexsfp_obs::json!({"default": "deny"}));
        m.flash.write_slot(1, &bs.to_bytes()).unwrap();
        m.control.pending_activation = Some(1);
        assert!(m.maybe_reboot());
        assert_eq!(m.app_name(), "firewall");
        assert_eq!(m.app_version(), 2);
    }
}
