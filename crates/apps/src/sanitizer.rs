//! Packet sanitization and protocol validation (§3): "removing
//! deprecated headers, blocking malformed packets".
//!
//! The sanitizer enforces a configurable hygiene policy at the optical
//! edge: malformed L3/L4 headers, bad IP checksums, IPv4 options
//! (deprecated in practice and a classic evasion vector), tiny-fragment
//! attacks and spoofed RFC 1918 sources can each be dropped before they
//! touch the switch.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};
use flexsfp_wire::ipv4::Ipv4Packet;
use flexsfp_wire::EtherType;

/// Reasons a packet can be rejected, with independent counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerStats {
    /// Frames shorter than an Ethernet header / unparseable L2.
    pub runt: u64,
    /// IPv4 header failed validation (version/length/checksum).
    pub bad_ip_header: u64,
    /// IPv4 options present.
    pub ip_options: u64,
    /// Fragment with a tiny offset (overlap-attack signature).
    pub tiny_fragment: u64,
    /// RFC 1918 source seen on the optical (public) side.
    pub spoofed_private: u64,
    /// TTL of zero on arrival.
    pub zero_ttl: u64,
    /// Clean packets passed.
    pub passed: u64,
}

impl SanitizerStats {
    /// Total drops.
    pub fn dropped(&self) -> u64 {
        self.runt
            + self.bad_ip_header
            + self.ip_options
            + self.tiny_fragment
            + self.spoofed_private
            + self.zero_ttl
    }
}

/// Policy switches.
#[derive(Debug, Clone, Copy)]
pub struct SanitizerPolicy {
    /// Verify the IPv4 header checksum.
    pub check_ip_checksum: bool,
    /// Drop packets carrying IPv4 options.
    pub drop_ip_options: bool,
    /// Drop first fragments too small to contain a full L4 header and
    /// non-first fragments with offset 1 (tiny-fragment attack).
    pub drop_tiny_fragments: bool,
    /// Drop RFC 1918 sources arriving from the optical side.
    pub drop_private_from_optical: bool,
    /// Drop packets that arrive with TTL 0.
    pub drop_zero_ttl: bool,
}

impl Default for SanitizerPolicy {
    fn default() -> Self {
        SanitizerPolicy {
            check_ip_checksum: true,
            drop_ip_options: true,
            drop_tiny_fragments: true,
            drop_private_from_optical: true,
            drop_zero_ttl: true,
        }
    }
}

fn is_rfc1918(addr: u32) -> bool {
    (addr & 0xff00_0000) == 0x0a00_0000 // 10/8
        || (addr & 0xfff0_0000) == 0xac10_0000 // 172.16/12
        || (addr & 0xffff_0000) == 0xc0a8_0000 // 192.168/16
}

/// The sanitizer application.
pub struct Sanitizer {
    /// Policy in force.
    pub policy: SanitizerPolicy,
    /// Statistics.
    pub stats: SanitizerStats,
    parser: Parser,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Self::new(SanitizerPolicy::default())
    }
}

impl Sanitizer {
    /// A sanitizer enforcing `policy`.
    pub fn new(policy: SanitizerPolicy) -> Sanitizer {
        Sanitizer {
            policy,
            stats: SanitizerStats::default(),
            parser: Parser::default(),
        }
    }
}

impl PacketProcessor for Sanitizer {
    fn name(&self) -> &str {
        "sanitizer"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            self.stats.runt += 1;
            return Verdict::Drop;
        };
        if parsed.ethertype == EtherType::Ipv4 {
            // Re-validate at full strictness (the parser is tolerant).
            let ip_off = match parsed.ipv4 {
                Some(ip) => ip.offset,
                None => {
                    // Claimed IPv4 but failed structural validation.
                    self.stats.bad_ip_header += 1;
                    return Verdict::Drop;
                }
            };
            let ip = match Ipv4Packet::new_checked(&packet[ip_off..]) {
                Ok(ip) => ip,
                Err(_) => {
                    self.stats.bad_ip_header += 1;
                    return Verdict::Drop;
                }
            };
            if self.policy.check_ip_checksum && !ip.verify_checksum() {
                self.stats.bad_ip_header += 1;
                return Verdict::Drop;
            }
            if self.policy.drop_zero_ttl && ip.ttl() == 0 {
                self.stats.zero_ttl += 1;
                return Verdict::Drop;
            }
            if self.policy.drop_ip_options && ip.has_options() {
                self.stats.ip_options += 1;
                return Verdict::Drop;
            }
            if self.policy.drop_tiny_fragments && ip.frag_offset() == 1 {
                self.stats.tiny_fragment += 1;
                return Verdict::Drop;
            }
            if self.policy.drop_private_from_optical
                && ctx.direction == flexsfp_ppe::Direction::OpticalToEdge
                && is_rfc1918(ip.src())
            {
                self.stats.spoofed_private += 1;
                return Verdict::Drop;
            }
        }
        self.stats.passed += 1;
        Verdict::Forward
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Pure combinational validation: no tables at all.
        ResourceManifest::new(3_900, 4_300, 10, 0)
    }

    fn pipeline_depth(&self) -> u32 {
        1
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            TableOp::ReadCounter { index } => {
                let packets = match index {
                    0 => self.stats.passed,
                    1 => self.stats.dropped(),
                    2 => self.stats.bad_ip_header,
                    3 => self.stats.ip_options,
                    4 => self.stats.spoofed_private,
                    _ => return TableOpResult::NotFound,
                };
                TableOpResult::Counter { packets, bytes: 0 }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::{IpProtocol, MacAddr};

    fn clean_frame(src: u32) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            0x08080808,
            1000,
            2000,
            b"ok",
        )
    }

    #[test]
    fn clean_traffic_passes() {
        let mut s = Sanitizer::default();
        let mut pkt = clean_frame(0x2d2d2d2d);
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(s.stats.passed, 1);
        assert_eq!(s.stats.dropped(), 0);
    }

    #[test]
    fn corrupted_checksum_dropped() {
        let mut s = Sanitizer::default();
        let mut pkt = clean_frame(0x2d2d2d2d);
        pkt[14 + 10] ^= 0xff; // flip checksum bits
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(s.stats.bad_ip_header, 1);
    }

    #[test]
    fn truncated_ip_dropped() {
        let mut s = Sanitizer::default();
        // EtherType says IPv4 but only 6 bytes follow.
        let mut pkt = PacketBuilder::ethernet(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            EtherType::Ipv4,
            &[0x45, 0, 0, 99, 0, 0],
        );
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(s.stats.bad_ip_header, 1);
    }

    #[test]
    fn ip_options_dropped() {
        let mut s = Sanitizer::default();
        // Build a 24-byte header (IHL=6) with a NOP-padded options word.
        let payload = b"data";
        let total = 24 + payload.len();
        let mut ip = vec![0u8; total];
        ip[0] = 0x46;
        ip[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        ip[8] = 64;
        ip[9] = IpProtocol::Udp.to_u8();
        ip[20] = 0x01; // NOP options
        ip[21] = 0x01;
        ip[22] = 0x01;
        ip[23] = 0x00; // EOL
        let c = flexsfp_wire::checksum::checksum(&ip[..24]);
        ip[10..12].copy_from_slice(&c.to_be_bytes());
        ip[24..].copy_from_slice(payload);
        let mut pkt =
            PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv4, &ip);
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(s.stats.ip_options, 1);
        // With the policy off, it passes.
        let mut lax = Sanitizer::new(SanitizerPolicy {
            drop_ip_options: false,
            ..SanitizerPolicy::default()
        });
        let mut pkt2 =
            PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv4, &ip);
        assert_eq!(
            lax.process(&ProcessContext::ingress(), &mut pkt2),
            Verdict::Forward
        );
    }

    #[test]
    fn tiny_fragment_dropped() {
        let mut s = Sanitizer::default();
        let mut pkt = clean_frame(0x2d2d2d2d);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[14..]);
            ip.set_fragment(false, true, 1);
            ip.fill_checksum();
        }
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(s.stats.tiny_fragment, 1);
    }

    #[test]
    fn private_source_from_optical_dropped() {
        let mut s = Sanitizer::default();
        for src in [0x0a010101u32, 0xac100101, 0xc0a80101] {
            let mut pkt = clean_frame(src);
            assert_eq!(
                s.process(&ProcessContext::ingress(), &mut pkt),
                Verdict::Drop,
                "{src:08x}"
            );
        }
        assert_eq!(s.stats.spoofed_private, 3);
        // The same sources are fine from the edge (that's where they
        // legitimately live).
        let mut pkt = clean_frame(0x0a010101);
        assert_eq!(
            s.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
    }

    #[test]
    fn zero_ttl_dropped() {
        let mut s = Sanitizer::default();
        let mut pkt = clean_frame(0x2d2d2d2d);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[14..]);
            ip.set_ttl(0);
            ip.fill_checksum();
        }
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(s.stats.zero_ttl, 1);
    }

    #[test]
    fn runt_frames_dropped() {
        let mut s = Sanitizer::default();
        let mut runt = vec![0u8; 8];
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut runt),
            Verdict::Drop
        );
        assert_eq!(s.stats.runt, 1);
    }

    #[test]
    fn non_ip_passes() {
        let mut s = Sanitizer::default();
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            s.process(&ProcessContext::ingress(), &mut arp),
            Verdict::Forward
        );
    }

    #[test]
    fn counters_via_control_plane() {
        let mut s = Sanitizer::default();
        let mut pkt = clean_frame(0x0a000001);
        s.process(&ProcessContext::ingress(), &mut pkt);
        assert_eq!(
            s.control_op(&TableOp::ReadCounter { index: 4 }),
            TableOpResult::Counter {
                packets: 1,
                bytes: 0
            }
        );
    }
}
