//! Monitoring & observability at the wire (§3).
//!
//! Three of the paper's telemetry primitives in one application:
//!
//! 1. **NetFlow-like flow accounting** — per-flow packet/byte/timestamps
//!    in a hardware hash table, exported through the control plane with
//!    read-and-reset semantics;
//! 2. **In-band timestamp tagging** — the IPv4 Identification field is
//!    rewritten with a truncated hardware timestamp (a PINT-style
//!    lightweight in-band signal that survives legacy switches);
//! 3. **Microburst detection** — a windowed byte counter flags windows
//!    whose instantaneous rate exceeds a threshold, catching events that
//!    coarse SNMP polling can never see ("wire-level capillarity").

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::tables::{FiveTuple, HashTable};
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};
use flexsfp_wire::checksum;
use flexsfp_wire::ipv4::Ipv4Packet;

/// One flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowRecord {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// First-seen timestamp, ns.
    pub first_ns: u64,
    /// Last-seen timestamp, ns.
    pub last_ns: u64,
}

/// Microburst detector state.
#[derive(Debug, Clone, Copy)]
pub struct MicroburstDetector {
    /// Window length, ns.
    pub window_ns: u64,
    /// Bytes within a window that constitute a burst.
    pub threshold_bytes: u64,
    window_start_ns: u64,
    window_bytes: u64,
    /// Bursty windows observed.
    pub bursts: u64,
    /// Peak single-window byte count.
    pub peak_bytes: u64,
}

impl MicroburstDetector {
    /// A detector with `window_ns` windows flagged above
    /// `threshold_bytes`.
    pub fn new(window_ns: u64, threshold_bytes: u64) -> MicroburstDetector {
        MicroburstDetector {
            window_ns,
            threshold_bytes,
            window_start_ns: 0,
            window_bytes: 0,
            bursts: 0,
            peak_bytes: 0,
        }
    }

    /// Account a packet; returns `true` if this packet tipped the
    /// current window over the threshold.
    pub fn record(&mut self, now_ns: u64, len: usize) -> bool {
        if now_ns.saturating_sub(self.window_start_ns) >= self.window_ns {
            self.window_start_ns = now_ns - (now_ns % self.window_ns);
            self.window_bytes = 0;
        }
        let before = self.window_bytes;
        self.window_bytes += len as u64;
        self.peak_bytes = self.peak_bytes.max(self.window_bytes);
        let crossed = before < self.threshold_bytes && self.window_bytes >= self.threshold_bytes;
        if crossed {
            self.bursts += 1;
        }
        crossed
    }
}

/// One exported flow record in a compact NetFlow-v5-like wire layout
/// (40 bytes): src(4) dst(4) sport(2) dport(2) proto(1) pad(3)
/// packets(8) bytes(8) first_us(4) last_us(4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportRecord {
    /// Flow key.
    pub key: FiveTuple,
    /// The accounted record.
    pub record: FlowRecord,
}

/// Serialized size of one [`ExportRecord`].
pub const EXPORT_RECORD_BYTES: usize = 40;

impl ExportRecord {
    /// Serialize to the 40-byte wire layout.
    pub fn to_bytes(&self) -> [u8; EXPORT_RECORD_BYTES] {
        let (src, dst, proto, sport, dport) = self.key;
        let mut b = [0u8; EXPORT_RECORD_BYTES];
        b[0..4].copy_from_slice(&src.to_be_bytes());
        b[4..8].copy_from_slice(&dst.to_be_bytes());
        b[8..10].copy_from_slice(&sport.to_be_bytes());
        b[10..12].copy_from_slice(&dport.to_be_bytes());
        b[12] = proto;
        b[16..24].copy_from_slice(&self.record.packets.to_be_bytes());
        b[24..32].copy_from_slice(&self.record.bytes.to_be_bytes());
        b[32..36].copy_from_slice(&((self.record.first_ns / 1_000) as u32).to_be_bytes());
        b[36..40].copy_from_slice(&((self.record.last_ns / 1_000) as u32).to_be_bytes());
        b
    }

    /// Parse a 40-byte wire record.
    pub fn from_bytes(b: &[u8]) -> Option<ExportRecord> {
        if b.len() < EXPORT_RECORD_BYTES {
            return None;
        }
        let u32be = |off: usize| u32::from_be_bytes(b[off..off + 4].try_into().unwrap());
        let u64be = |off: usize| u64::from_be_bytes(b[off..off + 8].try_into().unwrap());
        Some(ExportRecord {
            key: (
                u32be(0),
                u32be(4),
                b[12],
                u16::from_be_bytes([b[8], b[9]]),
                u16::from_be_bytes([b[10], b[11]]),
            ),
            record: FlowRecord {
                packets: u64be(16),
                bytes: u64be(24),
                first_ns: u64::from(u32be(32)) * 1_000,
                last_ns: u64::from(u32be(36)) * 1_000,
            },
        })
    }
}

/// The telemetry probe application.
pub struct TelemetryProbe {
    flows: HashTable<FiveTuple, FlowRecord>,
    /// Microburst detector over all traffic.
    pub microburst: MicroburstDetector,
    /// Enable in-band timestamp tagging (IPv4 ID rewrite).
    pub tag_timestamps: bool,
    parser: Parser,
    /// Flows that could not be tracked (hash bucket full).
    pub untracked: u64,
}

impl TelemetryProbe {
    /// A probe tracking up to `flow_capacity` flows, flagging windows of
    /// `window_ns` above `burst_threshold_bytes`.
    pub fn new(flow_capacity: usize, window_ns: u64, burst_threshold_bytes: u64) -> TelemetryProbe {
        TelemetryProbe {
            flows: HashTable::with_capacity(flow_capacity),
            microburst: MicroburstDetector::new(window_ns, burst_threshold_bytes),
            tag_timestamps: false,
            parser: Parser::default(),
            untracked: 0,
        }
    }

    /// Number of tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Read one flow record.
    pub fn flow(&self, key: &FiveTuple) -> Option<FlowRecord> {
        self.flows.peek(key)
    }

    /// Export all flow records and reset the cache (read-and-reset, so
    /// consecutive exports never double-count).
    pub fn export_and_reset(&mut self) -> Vec<(FiveTuple, FlowRecord)> {
        let records: Vec<_> = self.flows.iter().collect();
        self.flows.clear();
        records
    }

    /// Serialize up to `max` flow records in the NetFlow-like wire
    /// format and evict them from the cache — the control plane reads
    /// this in slices so one export never exceeds a control frame.
    pub fn export_wire(&mut self, max: usize) -> Vec<u8> {
        let batch: Vec<(FiveTuple, FlowRecord)> = self.flows.iter().take(max).collect();
        let mut out = Vec::with_capacity(4 + batch.len() * EXPORT_RECORD_BYTES);
        out.extend_from_slice(&(batch.len() as u32).to_be_bytes());
        for (key, record) in batch {
            out.extend_from_slice(&ExportRecord { key, record }.to_bytes());
            self.flows.remove(&key);
        }
        out
    }
}

/// Parse an [`TelemetryProbe::export_wire`] payload back into records
/// (the host-side collector's decoder).
pub fn parse_export(payload: &[u8]) -> Option<Vec<ExportRecord>> {
    if payload.len() < 4 {
        return None;
    }
    let count = u32::from_be_bytes(payload[..4].try_into().unwrap()) as usize;
    if payload.len() < 4 + count * EXPORT_RECORD_BYTES {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = 4 + i * EXPORT_RECORD_BYTES;
        out.push(ExportRecord::from_bytes(
            &payload[off..off + EXPORT_RECORD_BYTES],
        )?);
    }
    Some(out)
}

impl PacketProcessor for TelemetryProbe {
    fn name(&self) -> &str {
        "telemetry"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Forward; // observe, never interfere
        };
        self.microburst.record(ctx.timestamp_ns, packet.len());
        if let Some(key) = parsed.five_tuple() {
            let mut rec = self.flows.lookup(&key).unwrap_or(FlowRecord {
                first_ns: ctx.timestamp_ns,
                ..Default::default()
            });
            rec.packets += 1;
            rec.bytes += packet.len() as u64;
            rec.last_ns = ctx.timestamp_ns;
            if self.flows.insert(key, rec).is_err() {
                self.untracked += 1;
            }
        }
        if self.tag_timestamps {
            if let Some(ip) = parsed.ipv4 {
                // Truncated microsecond timestamp into the ID field,
                // checksum patched incrementally.
                let stamp = ((ctx.timestamp_ns / 1_000) & 0xffff) as u16;
                let off = ip.offset;
                let old_id = u16::from_be_bytes([packet[off + 4], packet[off + 5]]);
                if old_id != stamp {
                    let mut view = Ipv4Packet::new_unchecked(&mut packet[off..]);
                    view.set_ident(stamp);
                    let oldc = view.header_checksum();
                    let newc = checksum::update16(oldc, old_id, stamp);
                    view.set_header_checksum(newc);
                }
            }
        }
        Verdict::Forward
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Flow cache dominates: capacity × (104b key + 192b record).
        let mem =
            flexsfp_fabric::sram::MemoryPlanner::plan(&[flexsfp_fabric::sram::TableShape::new(
                self.flows.capacity() as u64,
                104 + 192,
            )]);
        ResourceManifest::new(5_400, 6_800, 28, 0) + mem
    }

    fn pipeline_depth(&self) -> u32 {
        2
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Reading "table 1" with an empty key exports a compact
            // summary: number of flows, bursts, peak window bytes.
            TableOp::Read { table: 1, .. } => {
                let mut out = Vec::with_capacity(24);
                out.extend_from_slice(&(self.flows.len() as u64).to_be_bytes());
                out.extend_from_slice(&self.microburst.bursts.to_be_bytes());
                out.extend_from_slice(&self.microburst.peak_bytes.to_be_bytes());
                TableOpResult::Value(out)
            }
            // Table 2: NetFlow-like export — read-and-evict up to 32
            // records per request.
            TableOp::Read { table: 2, .. } => TableOpResult::Value(self.export_wire(32)),
            TableOp::Clear { table: 0 } => {
                self.flows.clear();
                TableOpResult::Ok
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    const SRC: u32 = 0xc0a80001;
    const DST: u32 = 0x08080808;

    fn frame(sport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(MacAddr([1; 6]), MacAddr([2; 6]), SRC, DST, sport, 80, b"pp")
    }

    fn probe() -> TelemetryProbe {
        TelemetryProbe::new(1024, 100_000, 10_000)
    }

    #[test]
    fn flow_accounting() {
        let mut p = probe();
        for i in 0..5u64 {
            let mut pkt = frame(5000);
            p.process(&ProcessContext::egress().at(i * 1000), &mut pkt);
        }
        let mut other = frame(6000);
        p.process(&ProcessContext::egress().at(9_999), &mut other);
        assert_eq!(p.flow_count(), 2);
        let rec = p.flow(&(SRC, DST, 17, 5000, 80)).unwrap();
        assert_eq!(rec.packets, 5);
        assert_eq!(rec.first_ns, 0);
        assert_eq!(rec.last_ns, 4000);
        assert!(rec.bytes > 0);
    }

    #[test]
    fn export_and_reset_is_lossless() {
        let mut p = probe();
        let mut pkt = frame(5000);
        p.process(&ProcessContext::egress(), &mut pkt);
        let first = p.export_and_reset();
        assert_eq!(first.len(), 1);
        assert_eq!(p.flow_count(), 0);
        let mut pkt2 = frame(5000);
        p.process(&ProcessContext::egress().at(100), &mut pkt2);
        let second = p.export_and_reset();
        // Packet counts across exports sum to the true total.
        let total: u64 = first.iter().chain(&second).map(|(_, r)| r.packets).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn microburst_detection() {
        let mut p = probe(); // 100 µs windows, 10 kB threshold
                             // A burst: 20 × 1000 B within one window.
        let mut burst_flagged = false;
        for i in 0..20u64 {
            let mut pkt = frame(5000);
            pkt.resize(1000, 0);
            let before = p.microburst.bursts;
            p.process(&ProcessContext::egress().at(i * 1_000), &mut pkt);
            if p.microburst.bursts > before {
                burst_flagged = true;
            }
        }
        assert!(burst_flagged);
        assert_eq!(p.microburst.bursts, 1);
        assert!(p.microburst.peak_bytes >= 10_000);
        // Spread the same bytes over many windows: no new burst.
        for i in 0..20u64 {
            let mut pkt = frame(5001);
            pkt.resize(1000, 0);
            p.process(
                &ProcessContext::egress().at(10_000_000 + i * 200_000),
                &mut pkt,
            );
        }
        assert_eq!(p.microburst.bursts, 1);
    }

    #[test]
    fn timestamp_tagging_keeps_checksum_valid() {
        let mut p = probe();
        p.tag_timestamps = true;
        let mut pkt = frame(5000);
        p.process(&ProcessContext::egress().at(123_456_789), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert!(ip.verify_checksum());
        // 123 456 789 ns = 123 456 µs -> truncated to 16 bits.
        assert_eq!(ip.ident(), (123_456 & 0xffff) as u16);
    }

    #[test]
    fn observation_never_drops() {
        let mut p = probe();
        let mut junk = vec![0u8; 60];
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut junk),
            Verdict::Forward
        );
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            flexsfp_wire::EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            p.process(&ProcessContext::egress(), &mut arp),
            Verdict::Forward
        );
    }

    #[test]
    fn summary_via_control_plane() {
        let mut p = probe();
        let mut pkt = frame(5000);
        p.process(&ProcessContext::egress(), &mut pkt);
        match p.control_op(&TableOp::Read {
            table: 1,
            key: vec![],
        }) {
            TableOpResult::Value(v) => {
                let flows = u64::from_be_bytes(v[0..8].try_into().unwrap());
                assert_eq!(flows, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn export_record_wire_round_trip() {
        let rec = ExportRecord {
            key: (0xc0a80001, 0x08080808, 17, 5000, 53),
            record: FlowRecord {
                packets: 123,
                bytes: 45_678,
                first_ns: 1_000_000,
                last_ns: 9_000_000,
            },
        };
        let parsed = ExportRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(parsed, rec);
        assert!(ExportRecord::from_bytes(&[0u8; 10]).is_none());
    }

    #[test]
    fn wire_export_evicts_and_parses() {
        let mut p = probe();
        for sport in 5000..5010u16 {
            let mut pkt = frame(sport);
            p.process(&ProcessContext::egress().at(1_000), &mut pkt);
        }
        assert_eq!(p.flow_count(), 10);
        // Export in slices of 4: 4 + 4 + 2.
        let mut all = Vec::new();
        loop {
            let payload = p.export_wire(4);
            let records = parse_export(&payload).unwrap();
            if records.is_empty() {
                break;
            }
            all.extend(records);
        }
        assert_eq!(all.len(), 10);
        assert_eq!(p.flow_count(), 0);
        let mut sports: Vec<u16> = all.iter().map(|r| r.key.3).collect();
        sports.sort();
        assert_eq!(sports, (5000..5010).collect::<Vec<_>>());
        for r in &all {
            assert_eq!(r.record.packets, 1);
            // Timestamps survive the microsecond wire granularity.
            assert_eq!(r.record.first_ns, 1_000);
        }
    }

    #[test]
    fn wire_export_via_control_op() {
        let mut p = probe();
        let mut pkt = frame(6000);
        p.process(&ProcessContext::egress(), &mut pkt);
        match p.control_op(&TableOp::Read {
            table: 2,
            key: vec![],
        }) {
            TableOpResult::Value(v) => {
                let records = parse_export(&v).unwrap();
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].key.3, 6000);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Second read is empty (read-and-evict).
        match p.control_op(&TableOp::Read {
            table: 2,
            key: vec![],
        }) {
            TableOpResult::Value(v) => assert!(parse_export(&v).unwrap().is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn manifest_scales_with_capacity() {
        let small = TelemetryProbe::new(1024, 1, 1);
        let big = TelemetryProbe::new(32_768, 1, 1);
        assert!(big.resource_manifest().lsram > small.resource_manifest().lsram);
    }
}
