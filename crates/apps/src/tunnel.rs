//! Tunnel encapsulation gateways: GRE, VXLAN and IP-in-IP (§3).
//!
//! "Programmable SFPs can insert tunneling headers for GRE, VXLAN, or
//! IP-in-IP without involving the host." The gateway encapsulates in the
//! edge→optical direction and decapsulates matching tunnels in the
//! reverse direction, so the host sees plain traffic while the fiber
//! carries the overlay.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::action::{Action, ActionEngine, ActionOutcome};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};
use flexsfp_wire::IpProtocol;

/// Tunnel type selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelKind {
    /// GRE with a key (RFC 2890).
    Gre {
        /// GRE key identifying the tenant/service.
        key: u32,
    },
    /// VXLAN (RFC 7348).
    Vxlan {
        /// VXLAN network identifier.
        vni: u32,
    },
    /// Plain IP-in-IP (RFC 2003).
    IpIp,
}

/// Counter indices.
pub mod counters {
    /// Frames encapsulated.
    pub const ENCAPPED: usize = 0;
    /// Frames decapsulated.
    pub const DECAPPED: usize = 1;
    /// Reverse-direction frames that were not our tunnel.
    pub const PASSED: usize = 2;
}

/// The tunnel gateway application.
pub struct TunnelGateway {
    /// Tunnel type and identifier.
    pub kind: TunnelKind,
    /// Outer source address (this module's underlay address).
    pub local: u32,
    /// Outer destination (remote tunnel endpoint).
    pub remote: u32,
    engine: ActionEngine,
    parser: Parser,
}

impl TunnelGateway {
    /// A gateway tunnelling `local → remote`.
    pub fn new(kind: TunnelKind, local: u32, remote: u32) -> TunnelGateway {
        TunnelGateway {
            kind,
            local,
            remote,
            engine: ActionEngine::new(4, Vec::new()),
            parser: Parser::default(),
        }
    }

    /// Read a counter.
    pub fn counter(&self, idx: usize) -> flexsfp_ppe::counters::Counter {
        self.engine.counters.get(idx)
    }

    fn encap_action(&self) -> Action {
        match self.kind {
            TunnelKind::Gre { key } => Action::EncapGre {
                src: self.local,
                dst: self.remote,
                key,
            },
            TunnelKind::Vxlan { vni } => Action::EncapVxlan {
                src: self.local,
                dst: self.remote,
                vni,
            },
            TunnelKind::IpIp => Action::EncapIpIp {
                src: self.local,
                dst: self.remote,
            },
        }
    }

    /// Is this reverse-direction packet our tunnel's traffic?
    fn is_our_tunnel(&self, packet: &[u8]) -> bool {
        let Some(parsed) = self.parser.parse(packet) else {
            return false;
        };
        let Some(ip) = parsed.ipv4 else {
            return false;
        };
        if ip.dst != self.local || ip.src != self.remote {
            return false;
        }
        match self.kind {
            TunnelKind::Gre { key } => {
                ip.protocol == IpProtocol::Gre
                    && flexsfp_wire::GrePacket::new_checked(&packet[ip.offset + ip.header_len..])
                        .map(|g| g.key() == Some(key))
                        .unwrap_or(false)
            }
            TunnelKind::Vxlan { vni } => {
                matches!(parsed.l4, flexsfp_ppe::parser::L4::Udp { dst_port, .. } if dst_port == flexsfp_wire::vxlan::UDP_PORT)
                    && parsed
                        .l4_offset
                        .and_then(|off| {
                            flexsfp_wire::VxlanPacket::new_checked(
                                &packet[off + flexsfp_wire::udp::HEADER_LEN..],
                            )
                            .ok()
                        })
                        .map(|v| v.vni() == vni)
                        .unwrap_or(false)
            }
            TunnelKind::IpIp => ip.protocol == IpProtocol::IpIp,
        }
    }

    fn decap(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        match self.kind {
            TunnelKind::Gre { .. } | TunnelKind::IpIp => {
                let Some(parsed) = self.parser.parse(packet) else {
                    return Verdict::Drop;
                };
                match self.engine.apply(Action::DecapTunnel, ctx, packet, &parsed) {
                    ActionOutcome::Continue { .. } => {}
                    ActionOutcome::Final(v) => return v,
                }
            }
            TunnelKind::Vxlan { .. } => {
                // VXLAN decap recovers the whole inner Ethernet frame.
                let Some(parsed) = self.parser.parse(packet) else {
                    return Verdict::Drop;
                };
                let Some(l4_off) = parsed.l4_offset else {
                    return Verdict::Drop;
                };
                let inner_start =
                    l4_off + flexsfp_wire::udp::HEADER_LEN + flexsfp_wire::vxlan::HEADER_LEN;
                if inner_start >= packet.len() {
                    return Verdict::Drop;
                }
                let inner = packet[inner_start..].to_vec();
                *packet = inner;
            }
        }
        self.engine.counters.count(counters::DECAPPED, packet.len());
        Verdict::Forward
    }
}

impl PacketProcessor for TunnelGateway {
    fn name(&self) -> &str {
        "tunnel-gw"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        match ctx.direction {
            Direction::EdgeToOptical => {
                let Some(parsed) = self.parser.parse(packet) else {
                    return Verdict::Drop;
                };
                // Only IP traffic is tunnelled for GRE/IPIP; VXLAN can
                // carry any Ethernet frame.
                if parsed.ipv4.is_none() && !matches!(self.kind, TunnelKind::Vxlan { .. }) {
                    return Verdict::Forward;
                }
                match self.engine.apply(self.encap_action(), ctx, packet, &parsed) {
                    ActionOutcome::Continue { .. } => {}
                    ActionOutcome::Final(v) => return v,
                }
                self.engine.counters.count(counters::ENCAPPED, packet.len());
                Verdict::Forward
            }
            Direction::OpticalToEdge => {
                if self.is_our_tunnel(packet) {
                    self.decap(ctx, packet)
                } else {
                    self.engine.counters.count(counters::PASSED, packet.len());
                    Verdict::Forward
                }
            }
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Header construction tables + length/checksum recompute units.
        match self.kind {
            TunnelKind::Vxlan { .. } => ResourceManifest::new(5_100, 6_400, 22, 2),
            TunnelKind::Gre { .. } => ResourceManifest::new(4_300, 5_600, 18, 1),
            TunnelKind::IpIp => ResourceManifest::new(3_700, 4_900, 16, 1),
        }
    }

    fn pipeline_depth(&self) -> u32 {
        2
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Runtime endpoint re-pointing: key "remote", 4-byte value.
            TableOp::Insert {
                table: 0,
                key,
                value,
            } if key == b"remote" => {
                let Ok(bytes) = <[u8; 4]>::try_from(&value[..]) else {
                    return TableOpResult::BadEncoding;
                };
                self.remote = u32::from_be_bytes(bytes);
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => {
                let c = self.engine.counters.get(*index as usize);
                TableOpResult::Counter {
                    packets: c.packets,
                    bytes: c.bytes,
                }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::MacAddr;

    const LOCAL: u32 = 0x0a640001;
    const REMOTE: u32 = 0x0a640002;

    fn host_frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80005,
            0x5db8d822,
            3333,
            80,
            b"payload",
        )
    }

    fn round_trip(kind: TunnelKind) {
        let mut gw = TunnelGateway::new(kind, LOCAL, REMOTE);
        let mut pkt = host_frame();
        let orig = pkt.clone();
        // Encap toward the fiber.
        assert_eq!(
            gw.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_ne!(pkt, orig);
        assert_eq!(gw.counter(counters::ENCAPPED).packets, 1);
        // The far-end module would decap; simulate the return path by
        // swapping outer addresses.
        let mut returning = pkt.clone();
        {
            let parsed = Parser::default().parse(&returning).unwrap();
            let ip = parsed.ipv4.unwrap();
            let mut view = Ipv4Packet::new_unchecked(&mut returning[ip.offset..]);
            view.set_src(REMOTE);
            view.set_dst(LOCAL);
            view.fill_checksum();
        }
        assert_eq!(
            gw.process(&ProcessContext::ingress(), &mut returning),
            Verdict::Forward
        );
        assert_eq!(gw.counter(counters::DECAPPED).packets, 1);
        // Inner frame recovered intact.
        assert_eq!(returning, orig);
    }

    #[test]
    fn gre_round_trip() {
        round_trip(TunnelKind::Gre { key: 7001 });
    }

    #[test]
    fn ipip_round_trip() {
        round_trip(TunnelKind::IpIp);
    }

    #[test]
    fn vxlan_round_trip() {
        round_trip(TunnelKind::Vxlan { vni: 88 });
    }

    #[test]
    fn foreign_traffic_passes_reverse() {
        let mut gw = TunnelGateway::new(TunnelKind::Gre { key: 1 }, LOCAL, REMOTE);
        let mut pkt = host_frame();
        let before = pkt.clone();
        assert_eq!(
            gw.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
        assert_eq!(gw.counter(counters::PASSED).packets, 1);
    }

    #[test]
    fn wrong_gre_key_not_decapped() {
        let mut gw_a = TunnelGateway::new(TunnelKind::Gre { key: 1 }, LOCAL, REMOTE);
        let mut gw_b = TunnelGateway::new(TunnelKind::Gre { key: 2 }, LOCAL, REMOTE);
        let mut pkt = host_frame();
        gw_a.process(&ProcessContext::egress(), &mut pkt);
        // Swap addresses for the return.
        {
            let parsed = Parser::default().parse(&pkt).unwrap();
            let ip = parsed.ipv4.unwrap();
            let mut view = Ipv4Packet::new_unchecked(&mut pkt[ip.offset..]);
            view.set_src(REMOTE);
            view.set_dst(LOCAL);
            view.fill_checksum();
        }
        let before = pkt.clone();
        // Key-2 gateway refuses to decap key-1 traffic.
        assert_eq!(
            gw_b.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
        assert_eq!(gw_b.counter(counters::PASSED).packets, 1);
    }

    #[test]
    fn non_ip_not_tunnelled_by_gre() {
        let mut gw = TunnelGateway::new(TunnelKind::Gre { key: 1 }, LOCAL, REMOTE);
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            flexsfp_wire::EtherType::Arp,
            &[0u8; 28],
        );
        let before = arp.clone();
        assert_eq!(
            gw.process(&ProcessContext::egress(), &mut arp),
            Verdict::Forward
        );
        assert_eq!(arp, before);
    }

    #[test]
    fn vxlan_tunnels_any_frame() {
        let mut gw = TunnelGateway::new(TunnelKind::Vxlan { vni: 9 }, LOCAL, REMOTE);
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            flexsfp_wire::EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            gw.process(&ProcessContext::egress(), &mut arp),
            Verdict::Forward
        );
        assert_eq!(gw.counter(counters::ENCAPPED).packets, 1);
        let p = Parser::default().parse(&arp).unwrap();
        assert!(p.ipv4.is_some());
    }

    #[test]
    fn runtime_endpoint_repoint() {
        let mut gw = TunnelGateway::new(TunnelKind::IpIp, LOCAL, REMOTE);
        let new_remote: u32 = 0x0a6400aa;
        assert_eq!(
            gw.control_op(&TableOp::Insert {
                table: 0,
                key: b"remote".to_vec(),
                value: new_remote.to_be_bytes().to_vec(),
            }),
            TableOpResult::Ok
        );
        let mut pkt = host_frame();
        gw.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.dst(), new_remote);
    }

    use flexsfp_ppe::parser::Parser;
}
