//! # flexsfp-apps
//!
//! The FlexSFP use-case applications from §3 of the paper, each
//! implemented against the PPE programming model:
//!
//! * [`nat`] — the §5.1 case study: static 1:1 source NAT with a
//!   32 768-flow hash table (the Table 1 resource row);
//! * [`firewall`] — per-port ACL firewalling at the optical edge;
//! * [`vlan`] — VLAN access tagging and QinQ for legacy L2 segmentation;
//! * [`tunnel`] — GRE / VXLAN / IP-in-IP encap/decap gateways;
//! * [`lb`] — a Katran-style L4 load balancer with Maglev-style
//!   consistent hashing;
//! * [`telemetry`] — NetFlow-like flow accounting, in-band timestamp
//!   tagging and microburst detection;
//! * [`ratelimit`] — per-source token-bucket rate limiting;
//! * [`dnsfilter`] — P4DDPI-style DNS/DoH filtering;
//! * [`ipv6filter`] — per-subscriber IPv6 source validation (§2.1);
//! * [`sanitizer`] — packet sanitization and protocol validation;
//! * [`stateful`] — a FlowBlaze-style EFSM SYN-flood guard.
//!
//! [`factory`] resolves bitstream metadata to application instances so a
//! module can be OTA-reprogrammed between any of these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnsfilter;
pub mod factory;
pub mod firewall;
pub mod ipv6filter;
pub mod lb;
pub mod nat;
pub mod ratelimit;
pub mod sanitizer;
pub mod stateful;
pub mod telemetry;
pub mod tunnel;
pub mod vlan;

pub use dnsfilter::DnsFilter;
pub use firewall::{AclAction, AclFirewall, AclRule};
pub use ipv6filter::Ipv6SubscriberFilter;
pub use lb::L4LoadBalancer;
pub use nat::StaticNat;
pub use ratelimit::PerSourceRateLimiter;
pub use sanitizer::Sanitizer;
pub use stateful::SynFloodGuard;
pub use telemetry::TelemetryProbe;
pub use tunnel::TunnelGateway;
pub use vlan::VlanTagger;
