//! Per-port ACL firewalling at the optical edge.
//!
//! §3: "packet filtering and firewalling can occur directly at the
//! optical edge, dropping traffic before it reaches the NIC, the switch,
//! or even the customer premises." Rules are 5-tuple ternary matches
//! with priorities; the default policy is configurable. Rules can be
//! installed at runtime from the control plane (table id 0 with a
//! serialized rule encoding).

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_obs::json::{FromJson, ToJson, Value};
use flexsfp_ppe::counters::CounterBank;
use flexsfp_ppe::match_kinds::{TernaryEntry, TernaryTable};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::pipeline::KeySelector;
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// What a matching rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AclAction {
    /// Let the packet through.
    Permit,
    /// Silently drop it.
    Deny,
    /// Send it to the control plane (e.g. log-and-punt).
    Punt,
}

/// One ACL rule over the IPv4 5-tuple; `None` fields are wildcards.
/// Address fields take `(addr, prefix_len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AclRule {
    /// Source prefix.
    pub src: Option<(u32, u8)>,
    /// Destination prefix.
    pub dst: Option<(u32, u8)>,
    /// IP protocol.
    pub protocol: Option<u8>,
    /// Exact source port.
    pub src_port: Option<u16>,
    /// Exact destination port.
    pub dst_port: Option<u16>,
    /// Priority: lower wins.
    pub priority: u32,
    /// Action on match.
    pub action: AclAction,
}

impl ToJson for AclAction {
    fn to_json(&self) -> Value {
        Value::Str(
            match self {
                AclAction::Permit => "Permit",
                AclAction::Deny => "Deny",
                AclAction::Punt => "Punt",
            }
            .to_string(),
        )
    }
}

impl FromJson for AclAction {
    fn from_json(v: &Value) -> Option<AclAction> {
        match v.as_str()? {
            "Permit" => Some(AclAction::Permit),
            "Deny" => Some(AclAction::Deny),
            "Punt" => Some(AclAction::Punt),
            _ => None,
        }
    }
}

flexsfp_obs::impl_json_struct!(AclRule {
    src,
    dst,
    protocol,
    src_port,
    dst_port,
    priority,
    action,
});

impl AclRule {
    /// A wildcard rule with the given action and priority.
    pub fn any(priority: u32, action: AclAction) -> AclRule {
        AclRule {
            src: None,
            dst: None,
            protocol: None,
            src_port: None,
            dst_port: None,
            priority,
            action,
        }
    }

    fn to_entry(self) -> TernaryEntry<AclAction> {
        let mut value = [0u8; 13];
        let mut mask = [0u8; 13];
        if let Some((addr, len)) = self.src {
            let m = prefix_mask(len);
            value[0..4].copy_from_slice(&(addr & m).to_be_bytes());
            mask[0..4].copy_from_slice(&m.to_be_bytes());
        }
        if let Some((addr, len)) = self.dst {
            let m = prefix_mask(len);
            value[4..8].copy_from_slice(&(addr & m).to_be_bytes());
            mask[4..8].copy_from_slice(&m.to_be_bytes());
        }
        if let Some(p) = self.protocol {
            value[8] = p;
            mask[8] = 0xff;
        }
        if let Some(p) = self.src_port {
            value[9..11].copy_from_slice(&p.to_be_bytes());
            mask[9..11].copy_from_slice(&[0xff, 0xff]);
        }
        if let Some(p) = self.dst_port {
            value[11..13].copy_from_slice(&p.to_be_bytes());
            mask[11..13].copy_from_slice(&[0xff, 0xff]);
        }
        TernaryEntry {
            value,
            mask,
            priority: self.priority,
            data: self.action,
        }
    }
}

fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len.min(32)))
    }
}

/// Counter indices.
pub mod counters {
    /// Permitted packets.
    pub const PERMITTED: usize = 0;
    /// Denied packets.
    pub const DENIED: usize = 1;
    /// Punted packets.
    pub const PUNTED: usize = 2;
    /// Non-matchable (non-IPv4-TCP/UDP) packets.
    pub const UNMATCHED: usize = 3;
}

/// The ACL firewall application.
pub struct AclFirewall {
    table: TernaryTable<AclAction>,
    counters: CounterBank,
    parser: Parser,
    /// Policy for packets with no matching rule.
    pub default_action: AclAction,
    /// Directions the firewall screens (both by default).
    pub screen_direction: Option<Direction>,
}

impl AclFirewall {
    /// A firewall with room for `capacity` rules and a default-permit
    /// policy.
    pub fn new(capacity: usize) -> AclFirewall {
        AclFirewall {
            table: TernaryTable::new(capacity),
            counters: CounterBank::new(8),
            parser: Parser::default(),
            default_action: AclAction::Permit,
            screen_direction: None,
        }
    }

    /// Install a rule; `false` when the table is full.
    pub fn add_rule(&mut self, rule: AclRule) -> bool {
        self.table.insert(rule.to_entry())
    }

    /// Remove all rules at `priority`; returns how many were removed.
    pub fn remove_priority(&mut self, priority: u32) -> usize {
        self.table.remove_priority(priority)
    }

    /// Installed rules.
    pub fn rule_count(&self) -> usize {
        self.table.len()
    }

    /// Read a counter.
    pub fn counter(&self, idx: usize) -> flexsfp_ppe::counters::Counter {
        self.counters.get(idx)
    }
}

impl PacketProcessor for AclFirewall {
    fn name(&self) -> &str {
        "firewall"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        if let Some(dir) = self.screen_direction {
            if ctx.direction != dir {
                return Verdict::Forward;
            }
        }
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let Some(key) = KeySelector::FiveTuple.extract(&parsed) else {
            // Not an IPv4 TCP/UDP packet: fail according to policy on
            // the L3 source alone when IPv4, else forward L2 control
            // traffic (ARP must keep working on a retrofit port).
            self.counters.count(counters::UNMATCHED, packet.len());
            return Verdict::Forward;
        };
        let action = self
            .table
            .lookup(&key)
            .map_or(self.default_action, |e| e.data);
        match action {
            AclAction::Permit => {
                self.counters.count(counters::PERMITTED, packet.len());
                Verdict::Forward
            }
            AclAction::Deny => {
                self.counters.count(counters::DENIED, packet.len());
                Verdict::Drop
            }
            AclAction::Punt => {
                self.counters.count(counters::PUNTED, packet.len());
                Verdict::ToControlPlane
            }
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Ternary rows are the cost driver (LUT-cascade TCAM emulation).
        let rows = (self.table.len() + self.table.free()) as u64;
        ResourceManifest::new(3_200, 4_100, 24, 2)
            + ResourceManifest::new(4_200, 1_400, 0, 0).scaled(rows.div_ceil(64))
    }

    fn pipeline_depth(&self) -> u32 {
        1
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            TableOp::Insert {
                table: 0, value, ..
            } => {
                let Some(rule) = std::str::from_utf8(value)
                    .ok()
                    .and_then(|s| Value::parse(s).ok())
                    .and_then(|v| AclRule::from_json(&v))
                else {
                    return TableOpResult::BadEncoding;
                };
                if self.add_rule(rule) {
                    TableOpResult::Ok
                } else {
                    TableOpResult::TableFull
                }
            }
            TableOp::Delete { table: 0, key } => {
                let Ok(bytes) = <[u8; 4]>::try_from(&key[..]) else {
                    return TableOpResult::BadEncoding;
                };
                let priority = u32::from_be_bytes(bytes);
                if self.remove_priority(priority) > 0 {
                    TableOpResult::Ok
                } else {
                    TableOpResult::NotFound
                }
            }
            TableOp::ReadCounter { index } => {
                let c = self.counters.get(*index as usize);
                TableOpResult::Counter {
                    packets: c.packets,
                    bytes: c.bytes,
                }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    const INSIDE: u32 = 0xc0a80101;
    const OUTSIDE: u32 = 0x2d2d2d2d;

    fn udp(src: u32, dst: u32, dport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            dst,
            1234,
            dport,
            b"x",
        )
    }

    fn tcp(src: u32, dst: u32, dport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            dst,
            1234,
            dport,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        )
    }

    #[test]
    fn deny_rule_blocks_matching_traffic() {
        let mut fw = AclFirewall::new(64);
        assert!(fw.add_rule(AclRule {
            src: None,
            dst: None,
            protocol: Some(17),
            src_port: None,
            dst_port: Some(53),
            priority: 10,
            action: AclAction::Deny,
        }));
        let mut dns = udp(INSIDE, OUTSIDE, 53);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut dns),
            Verdict::Drop
        );
        let mut web = udp(INSIDE, OUTSIDE, 443);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut web),
            Verdict::Forward
        );
        assert_eq!(fw.counter(counters::DENIED).packets, 1);
        assert_eq!(fw.counter(counters::PERMITTED).packets, 1);
    }

    #[test]
    fn priority_order_first_match_wins() {
        let mut fw = AclFirewall::new(64);
        // Specific permit for one host overrides a broad deny.
        fw.add_rule(AclRule {
            src: Some((INSIDE, 32)),
            ..AclRule::any(1, AclAction::Permit)
        });
        fw.add_rule(AclRule {
            src: Some((0xc0a80100, 24)),
            ..AclRule::any(5, AclAction::Deny)
        });
        let mut ours = tcp(INSIDE, OUTSIDE, 80);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut ours),
            Verdict::Forward
        );
        let mut neighbor = tcp(0xc0a80102, OUTSIDE, 80);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut neighbor),
            Verdict::Drop
        );
    }

    #[test]
    fn default_deny_policy() {
        let mut fw = AclFirewall::new(8);
        fw.default_action = AclAction::Deny;
        fw.add_rule(AclRule {
            dst_port: Some(443),
            protocol: Some(6),
            ..AclRule::any(1, AclAction::Permit)
        });
        let mut https = tcp(INSIDE, OUTSIDE, 443);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut https),
            Verdict::Forward
        );
        let mut telnet = tcp(INSIDE, OUTSIDE, 23);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut telnet),
            Verdict::Drop
        );
    }

    #[test]
    fn punt_action_diverts_to_control_plane() {
        let mut fw = AclFirewall::new(8);
        fw.add_rule(AclRule {
            dst_port: Some(22),
            protocol: Some(6),
            ..AclRule::any(1, AclAction::Punt)
        });
        let mut ssh = tcp(OUTSIDE, INSIDE, 22);
        assert_eq!(
            fw.process(&ProcessContext::ingress(), &mut ssh),
            Verdict::ToControlPlane
        );
        assert_eq!(fw.counter(counters::PUNTED).packets, 1);
    }

    #[test]
    fn arp_passes_even_with_default_deny() {
        let mut fw = AclFirewall::new(8);
        fw.default_action = AclAction::Deny;
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            flexsfp_wire::EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut arp),
            Verdict::Forward
        );
        assert_eq!(fw.counter(counters::UNMATCHED).packets, 1);
    }

    #[test]
    fn directional_screening() {
        let mut fw = AclFirewall::new(8);
        fw.screen_direction = Some(Direction::OpticalToEdge);
        fw.add_rule(AclRule::any(1, AclAction::Deny));
        // Egress unscreened.
        let mut out = tcp(INSIDE, OUTSIDE, 80);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut out),
            Verdict::Forward
        );
        // Ingress screened.
        let mut inbound = tcp(OUTSIDE, INSIDE, 80);
        assert_eq!(
            fw.process(&ProcessContext::ingress(), &mut inbound),
            Verdict::Drop
        );
    }

    #[test]
    fn control_plane_rule_install() {
        let mut fw = AclFirewall::new(8);
        let rule = AclRule {
            protocol: Some(17),
            dst_port: Some(53),
            ..AclRule::any(3, AclAction::Deny)
        };
        let r = fw.control_op(&TableOp::Insert {
            table: 0,
            key: vec![],
            value: rule.to_json().to_string().into_bytes(),
        });
        assert_eq!(r, TableOpResult::Ok);
        let mut dns = udp(INSIDE, OUTSIDE, 53);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut dns),
            Verdict::Drop
        );
        // Delete by priority.
        assert_eq!(
            fw.control_op(&TableOp::Delete {
                table: 0,
                key: 3u32.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        let mut dns2 = udp(INSIDE, OUTSIDE, 53);
        assert_eq!(
            fw.process(&ProcessContext::egress(), &mut dns2),
            Verdict::Forward
        );
    }

    #[test]
    fn capacity_exhaustion_reported() {
        let mut fw = AclFirewall::new(1);
        assert!(fw.add_rule(AclRule::any(1, AclAction::Deny)));
        assert!(!fw.add_rule(AclRule::any(2, AclAction::Deny)));
        let r = fw.control_op(&TableOp::Insert {
            table: 0,
            key: vec![],
            value: AclRule::any(3, AclAction::Deny)
                .to_json()
                .to_string()
                .into_bytes(),
        });
        assert_eq!(r, TableOpResult::TableFull);
    }

    #[test]
    fn manifest_scales_with_rules() {
        let small = AclFirewall::new(64);
        let big = AclFirewall::new(1024);
        assert!(big.resource_manifest().lut4 > small.resource_manifest().lut4);
        // Both fit the device.
        assert!(flexsfp_fabric::Device::mpf200t()
            .fit(big.resource_manifest())
            .fits());
    }
}
