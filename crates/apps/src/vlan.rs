//! VLAN access tagging and QinQ for legacy L2 segmentation (§3).
//!
//! Deployed in an SFP cage of a legacy switch, the tagger turns the port
//! into an access port: frames entering from the edge get the access
//! VLAN pushed (and optionally a provider S-tag for QinQ), frames
//! leaving toward the edge get the tag(s) stripped. Priority (PCP) can
//! be stamped from a DSCP-derived mapping.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::action::{Action, ActionEngine, ActionOutcome};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// Counter indices.
pub mod counters {
    /// Frames tagged on ingress-to-network.
    pub const TAGGED: usize = 0;
    /// Frames untagged toward the host.
    pub const UNTAGGED: usize = 1;
    /// Frames dropped because they arrived already-tagged on an access
    /// port (tag spoofing).
    pub const SPOOF_DROPPED: usize = 2;
}

/// The VLAN access tagger / QinQ application.
pub struct VlanTagger {
    /// Access VLAN id pushed on host frames.
    pub access_vid: u16,
    /// PCP stamped into the access tag.
    pub pcp: u8,
    /// Optional provider S-tag (QinQ) pushed above the C-tag.
    pub s_tag: Option<u16>,
    /// Drop host frames that arrive already tagged (spoofing guard).
    pub drop_tagged_ingress: bool,
    engine: ActionEngine,
    parser: Parser,
}

impl VlanTagger {
    /// An access tagger for `access_vid`.
    pub fn new(access_vid: u16) -> VlanTagger {
        VlanTagger {
            access_vid,
            pcp: 0,
            s_tag: None,
            drop_tagged_ingress: true,
            engine: ActionEngine::new(4, Vec::new()),
            parser: Parser::default(),
        }
    }

    /// Enable QinQ with the given service VLAN.
    pub fn with_s_tag(mut self, s_vid: u16) -> VlanTagger {
        self.s_tag = Some(s_vid);
        self
    }

    /// Read a counter.
    pub fn counter(&self, idx: usize) -> flexsfp_ppe::counters::Counter {
        self.engine.counters.get(idx)
    }

    fn apply(
        &mut self,
        action: Action,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
    ) -> Option<Verdict> {
        let parsed = self.parser.parse(packet)?;
        match self.engine.apply(action, ctx, packet, &parsed) {
            ActionOutcome::Continue { .. } => None,
            ActionOutcome::Final(v) => Some(v),
        }
    }
}

impl PacketProcessor for VlanTagger {
    fn name(&self) -> &str {
        "vlan-tagger"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        match ctx.direction {
            Direction::EdgeToOptical => {
                if !parsed.vlans.is_empty() {
                    if self.drop_tagged_ingress {
                        self.engine
                            .counters
                            .count(counters::SPOOF_DROPPED, packet.len());
                        return Verdict::Drop;
                    }
                } else {
                    if let Some(v) = self.apply(
                        Action::PushVlan {
                            vid: self.access_vid,
                            pcp: self.pcp,
                        },
                        ctx,
                        packet,
                    ) {
                        return v;
                    }
                    if let Some(s_vid) = self.s_tag {
                        if let Some(v) = self.apply(Action::PushSTag { vid: s_vid }, ctx, packet) {
                            return v;
                        }
                    }
                    self.engine.counters.count(counters::TAGGED, packet.len());
                }
                Verdict::Forward
            }
            Direction::OpticalToEdge => {
                // Strip S-tag then C-tag as present.
                let mut stripped = false;
                for _ in 0..2 {
                    let tagged = self
                        .parser
                        .parse(packet)
                        .map(|p| !p.vlans.is_empty())
                        .unwrap_or(false);
                    if !tagged {
                        break;
                    }
                    if let Some(v) = self.apply(Action::PopVlan, ctx, packet) {
                        return v;
                    }
                    stripped = true;
                }
                if stripped {
                    self.engine.counters.count(counters::UNTAGGED, packet.len());
                }
                Verdict::Forward
            }
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Tag insertion/removal is cheap: shallow parse + shift network.
        ResourceManifest::new(2_400, 3_100, 14, 0)
    }

    fn pipeline_depth(&self) -> u32 {
        1
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Table 0, key "vid": runtime re-assignment of the access
            // VLAN (coarse-grained update, as §4.1 describes).
            TableOp::Insert {
                table: 0,
                key,
                value,
            } if key == b"vid" => {
                let Ok(bytes) = <[u8; 2]>::try_from(&value[..]) else {
                    return TableOpResult::BadEncoding;
                };
                self.access_vid = u16::from_be_bytes(bytes) & 0x0fff;
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => {
                let c = self.engine.counters.get(*index as usize);
                TableOpResult::Counter {
                    packets: c.packets,
                    bytes: c.bytes,
                }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_ppe::parser::Parser;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    fn frame() -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            0x0a000001,
            1000,
            2000,
            b"data",
        )
    }

    #[test]
    fn tags_on_egress_untags_on_ingress() {
        let mut t = VlanTagger::new(100);
        t.pcp = 5;
        let mut pkt = frame();
        let orig = pkt.clone();
        assert_eq!(
            t.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![100]);
        assert_eq!(t.counter(counters::TAGGED).packets, 1);

        // Now the frame comes back from the network.
        assert_eq!(
            t.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, orig);
        assert_eq!(t.counter(counters::UNTAGGED).packets, 1);
    }

    #[test]
    fn qinq_double_tags() {
        let mut t = VlanTagger::new(10).with_s_tag(500);
        let mut pkt = frame();
        let orig = pkt.clone();
        t.process(&ProcessContext::egress(), &mut pkt);
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![500, 10]);
        // Full strip on the way back.
        t.process(&ProcessContext::ingress(), &mut pkt);
        assert_eq!(pkt, orig);
    }

    #[test]
    fn tagged_ingress_from_host_is_spoofing() {
        let mut t = VlanTagger::new(100);
        let mut pkt = PacketBuilder::with_vlan(&frame(), 999, 0);
        assert_eq!(
            t.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(t.counter(counters::SPOOF_DROPPED).packets, 1);
    }

    #[test]
    fn tolerant_mode_passes_pretagged() {
        let mut t = VlanTagger::new(100);
        t.drop_tagged_ingress = false;
        let mut pkt = PacketBuilder::with_vlan(&frame(), 999, 0);
        let before = pkt.clone();
        assert_eq!(
            t.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
    }

    #[test]
    fn untagged_from_network_passes() {
        let mut t = VlanTagger::new(100);
        let mut pkt = frame();
        let before = pkt.clone();
        assert_eq!(
            t.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
        assert_eq!(t.counter(counters::UNTAGGED).packets, 0);
    }

    #[test]
    fn runtime_vid_change() {
        let mut t = VlanTagger::new(100);
        assert_eq!(
            t.control_op(&TableOp::Insert {
                table: 0,
                key: b"vid".to_vec(),
                value: 200u16.to_be_bytes().to_vec(),
            }),
            TableOpResult::Ok
        );
        let mut pkt = frame();
        t.process(&ProcessContext::egress(), &mut pkt);
        let p = Parser::default().parse(&pkt).unwrap();
        assert_eq!(p.vlans, vec![200]);
    }

    #[test]
    fn fits_device() {
        assert!(flexsfp_fabric::Device::mpf200t()
            .fit(VlanTagger::new(1).resource_manifest())
            .fits());
    }
}
