//! DNS and DoH filtering (P4DDPI-style, §2.1/§3).
//!
//! Two mechanisms the telecom retrofit scenario needs:
//!
//! 1. **Plain-DNS qname filtering** — UDP/53 queries are shallow-parsed
//!    in the dataplane; queries for blocked domains (or their
//!    subdomains) are dropped.
//! 2. **DoH resolver blocking** — DNS-over-HTTPS hides qnames inside
//!    TLS, so enforcement falls back to blocking TCP/443 to known DoH
//!    resolver addresses (the operational state of the art).

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::parser::{Parser, L4};
use flexsfp_ppe::tables::HashTable;
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};
use flexsfp_wire::dns::DnsHeader;

/// Filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// DNS queries inspected.
    pub inspected: u64,
    /// Queries dropped on a blocklist hit.
    pub blocked_dns: u64,
    /// TCP/443 packets to blocked DoH resolvers dropped.
    pub blocked_doh: u64,
    /// Malformed DNS punted to the control plane.
    pub punted_malformed: u64,
}

/// The DNS/DoH filter application.
pub struct DnsFilter {
    blocked_domains: Vec<String>,
    doh_resolvers: HashTable<u32, u32>,
    /// Statistics.
    pub stats: FilterStats,
    /// Punt malformed DNS to the control plane instead of forwarding.
    pub punt_malformed: bool,
    parser: Parser,
}

impl Default for DnsFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl DnsFilter {
    /// An empty filter.
    pub fn new() -> DnsFilter {
        DnsFilter {
            blocked_domains: Vec::new(),
            doh_resolvers: HashTable::with_capacity(1024),
            stats: FilterStats::default(),
            punt_malformed: false,
            parser: Parser::default(),
        }
    }

    /// Block `domain` and all its subdomains.
    pub fn block_domain(&mut self, domain: &str) {
        self.blocked_domains.push(domain.to_ascii_lowercase());
    }

    /// Block TCP/443 to a known DoH resolver address.
    pub fn block_doh_resolver(&mut self, addr: u32) {
        let _ = self.doh_resolvers.insert(addr, 1);
    }

    fn is_blocked_name(&self, qname: &str) -> bool {
        self.blocked_domains
            .iter()
            .any(|d| qname == d || qname.ends_with(&format!(".{d}")))
    }
}

impl PacketProcessor for DnsFilter {
    fn name(&self) -> &str {
        "dns-filter"
    }

    fn process(&mut self, _ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let Some(ip) = parsed.ipv4 else {
            return Verdict::Forward;
        };
        match parsed.l4 {
            L4::Udp { dst_port: 53, .. } => {
                self.stats.inspected += 1;
                let Some(l4_off) = parsed.l4_offset else {
                    return Verdict::Forward;
                };
                let dns_bytes = &packet[l4_off + flexsfp_wire::udp::HEADER_LEN..];
                let question = DnsHeader::new_checked(dns_bytes)
                    .ok()
                    .filter(|h| !h.is_response())
                    .and_then(|h| h.first_question().ok());
                match question {
                    Some(q) => {
                        if self.is_blocked_name(&q.qname) {
                            self.stats.blocked_dns += 1;
                            return Verdict::Drop;
                        }
                        Verdict::Forward
                    }
                    None => {
                        if self.punt_malformed {
                            self.stats.punted_malformed += 1;
                            Verdict::ToControlPlane
                        } else {
                            Verdict::Forward
                        }
                    }
                }
            }
            L4::Tcp { dst_port: 443, .. } => {
                if self.doh_resolvers.lookup(&ip.dst).is_some() {
                    self.stats.blocked_doh += 1;
                    Verdict::Drop
                } else {
                    Verdict::Forward
                }
            }
            _ => Verdict::Forward,
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // The qname matcher is the expensive part: a label-walking FSM
        // plus a suffix-comparison table per blocked domain.
        ResourceManifest::new(
            7_200 + 220 * self.blocked_domains.len() as u64,
            8_500 + 180 * self.blocked_domains.len() as u64,
            40,
            6,
        )
    }

    fn pipeline_depth(&self) -> u32 {
        3 // parse → qname walk → verdict
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Table 0: blocked domains (key = UTF-8 domain).
            TableOp::Insert { table: 0, key, .. } => {
                let Ok(domain) = std::str::from_utf8(key) else {
                    return TableOpResult::BadEncoding;
                };
                self.block_domain(domain);
                TableOpResult::Ok
            }
            // Table 1: DoH resolver addresses.
            TableOp::Insert { table: 1, key, .. } => {
                let Ok(bytes) = <[u8; 4]>::try_from(&key[..]) else {
                    return TableOpResult::BadEncoding;
                };
                self.block_doh_resolver(u32::from_be_bytes(bytes));
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => {
                let packets = match index {
                    0 => self.stats.inspected,
                    1 => self.stats.blocked_dns,
                    2 => self.stats.blocked_doh,
                    _ => return TableOpResult::NotFound,
                };
                TableOpResult::Counter { packets, bytes: 0 }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::dns;
    use flexsfp_wire::MacAddr;

    const CLIENT: u32 = 0xc0a80010;
    const RESOLVER: u32 = 0x08080808;
    const DOH: u32 = 0x01010101; // 1.1.1.1

    fn dns_query(name: &str) -> Vec<u8> {
        let q = dns::build_query(0x1234, name, 1);
        PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            CLIENT,
            RESOLVER,
            40_000,
            53,
            &q,
        )
    }

    fn filter() -> DnsFilter {
        let mut f = DnsFilter::new();
        f.block_domain("ads.example");
        f.block_doh_resolver(DOH);
        f
    }

    #[test]
    fn blocked_domain_dropped() {
        let mut f = filter();
        let mut q = dns_query("ads.example");
        assert_eq!(f.process(&ProcessContext::egress(), &mut q), Verdict::Drop);
        assert_eq!(f.stats.blocked_dns, 1);
    }

    #[test]
    fn subdomain_of_blocked_dropped() {
        let mut f = filter();
        let mut q = dns_query("tracker.ads.example");
        assert_eq!(f.process(&ProcessContext::egress(), &mut q), Verdict::Drop);
    }

    #[test]
    fn unrelated_domains_pass() {
        let mut f = filter();
        for name in ["example.com", "notads.example.com", "ads.example.org"] {
            let mut q = dns_query(name);
            assert_eq!(
                f.process(&ProcessContext::egress(), &mut q),
                Verdict::Forward,
                "{name}"
            );
        }
        assert_eq!(f.stats.blocked_dns, 0);
        assert_eq!(f.stats.inspected, 3);
    }

    #[test]
    fn case_insensitive_matching() {
        let mut f = filter();
        let mut q = dns_query("ADS.Example");
        assert_eq!(f.process(&ProcessContext::egress(), &mut q), Verdict::Drop);
    }

    #[test]
    fn doh_resolver_blocked_on_443() {
        let mut f = filter();
        let mut tls = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            CLIENT,
            DOH,
            50_000,
            443,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut tls),
            Verdict::Drop
        );
        assert_eq!(f.stats.blocked_doh, 1);
        // Ordinary HTTPS to another address passes.
        let mut ok = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            CLIENT,
            0x5db8d822,
            50_000,
            443,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut ok),
            Verdict::Forward
        );
    }

    #[test]
    fn dns_responses_not_filtered() {
        let mut f = filter();
        // A response (QR bit set) for a blocked name still passes —
        // we filter queries, not answers arriving from the resolver.
        let mut resp_payload = dns::build_query(1, "ads.example", 1);
        resp_payload[2] |= 0x80;
        let mut frame = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            RESOLVER,
            CLIENT,
            40_000,
            53,
            &resp_payload,
        );
        assert_eq!(
            f.process(&ProcessContext::ingress(), &mut frame),
            Verdict::Forward
        );
    }

    #[test]
    fn malformed_dns_punt_mode() {
        let mut f = filter();
        f.punt_malformed = true;
        let mut junk = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            CLIENT,
            RESOLVER,
            40_000,
            53,
            &[0xff; 5], // shorter than a DNS header
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut junk),
            Verdict::ToControlPlane
        );
        assert_eq!(f.stats.punted_malformed, 1);
    }

    #[test]
    fn control_plane_blocklist_management() {
        let mut f = DnsFilter::new();
        assert_eq!(
            f.control_op(&TableOp::Insert {
                table: 0,
                key: b"doh.example".to_vec(),
                value: vec![]
            }),
            TableOpResult::Ok
        );
        let mut q = dns_query("doh.example");
        assert_eq!(f.process(&ProcessContext::egress(), &mut q), Verdict::Drop);
        assert_eq!(
            f.control_op(&TableOp::Insert {
                table: 1,
                key: DOH.to_be_bytes().to_vec(),
                value: vec![]
            }),
            TableOpResult::Ok
        );
        assert_eq!(
            f.control_op(&TableOp::ReadCounter { index: 1 }),
            TableOpResult::Counter {
                packets: 1,
                bytes: 0
            }
        );
    }

    #[test]
    fn non_dns_udp_not_inspected() {
        let mut f = filter();
        let mut ntp = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            CLIENT,
            RESOLVER,
            123,
            123,
            &[0u8; 48],
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut ntp),
            Verdict::Forward
        );
        assert_eq!(f.stats.inspected, 0);
    }
}
