//! Per-subscriber IPv6 source filtering (§2.1).
//!
//! The telecom retrofit scenario names "per-subscriber policies such as
//! IPv6 filtering" as something legacy aggregation switches cannot do.
//! This app implements SAVI/BCP 38-style source validation at the access
//! port: each subscriber port owns a set of delegated /64 prefixes, and
//! IPv6 traffic heading upstream must source from one of them. Policy
//! knobs cover the operational variants: drop-all-IPv6 (the crude legacy
//! "IPv6 filtering"), permit-known-prefixes, and punt-unknown for
//! learning.

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::tables::HashTable;
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};
use flexsfp_wire::EtherType;

/// What to do with IPv6 from an unknown prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownPrefixPolicy {
    /// Drop silently (strict SAVI).
    Drop,
    /// Punt to the control plane (learning/diagnostics).
    Punt,
    /// Forward (monitor-only; counters still track).
    Permit,
}

/// Filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct V6FilterStats {
    /// IPv6 packets from delegated prefixes.
    pub valid: u64,
    /// IPv6 packets from unknown prefixes.
    pub unknown: u64,
    /// IPv6 packets dropped by the block-all policy.
    pub blocked_all: u64,
    /// Non-IPv6 traffic passed through.
    pub non_v6: u64,
}

/// The per-subscriber IPv6 source filter.
pub struct Ipv6SubscriberFilter {
    /// Delegated /64 prefixes → subscriber id.
    prefixes: HashTable<u64, u32>,
    /// Crude mode: block every IPv6 packet (some operators' first ask).
    pub block_all_v6: bool,
    /// Policy for unknown source prefixes.
    pub unknown_policy: UnknownPrefixPolicy,
    /// Direction screened (upstream: edge→optical).
    pub screen_direction: Direction,
    /// Statistics.
    pub stats: V6FilterStats,
    parser: Parser,
}

impl Default for Ipv6SubscriberFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl Ipv6SubscriberFilter {
    /// A strict filter with room for 4 096 delegations.
    pub fn new() -> Ipv6SubscriberFilter {
        Ipv6SubscriberFilter {
            prefixes: HashTable::with_capacity(4_096),
            block_all_v6: false,
            unknown_policy: UnknownPrefixPolicy::Drop,
            screen_direction: Direction::EdgeToOptical,
            stats: V6FilterStats::default(),
            parser: Parser::default(),
        }
    }

    /// Delegate `prefix64` to `subscriber`.
    pub fn delegate(&mut self, prefix64: u64, subscriber: u32) -> bool {
        self.prefixes.insert(prefix64, subscriber).is_ok()
    }

    /// Number of delegated prefixes.
    pub fn delegation_count(&self) -> usize {
        self.prefixes.len()
    }
}

impl PacketProcessor for Ipv6SubscriberFilter {
    fn name(&self) -> &str {
        "ipv6-filter"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        if ctx.direction != self.screen_direction {
            return Verdict::Forward;
        }
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        if parsed.ethertype != EtherType::Ipv6 {
            self.stats.non_v6 += 1;
            return Verdict::Forward;
        }
        if self.block_all_v6 {
            self.stats.blocked_all += 1;
            return Verdict::Drop;
        }
        let Some(v6) = parsed.ipv6 else {
            // Claimed IPv6 but malformed: never let it upstream.
            self.stats.unknown += 1;
            return Verdict::Drop;
        };
        if self.prefixes.lookup(&v6.src_prefix64).is_some() {
            self.stats.valid += 1;
            return Verdict::Forward;
        }
        self.stats.unknown += 1;
        match self.unknown_policy {
            UnknownPrefixPolicy::Drop => Verdict::Drop,
            UnknownPrefixPolicy::Punt => Verdict::ToControlPlane,
            UnknownPrefixPolicy::Permit => Verdict::Forward,
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // 64-bit exact match over 4k entries: (64+32+32) b × 4 096 =
        // modest LSRAM + a shallow parse path.
        ResourceManifest::new(3_800, 4_600, 18, 26)
    }

    fn pipeline_depth(&self) -> u32 {
        1
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Table 0: delegations. key = 8-byte prefix, value = 4-byte
            // subscriber id.
            TableOp::Insert {
                table: 0,
                key,
                value,
            } => {
                let (Ok(p), Ok(s)) = (
                    <[u8; 8]>::try_from(&key[..]),
                    <[u8; 4]>::try_from(&value[..]),
                ) else {
                    return TableOpResult::BadEncoding;
                };
                if self.delegate(u64::from_be_bytes(p), u32::from_be_bytes(s)) {
                    TableOpResult::Ok
                } else {
                    TableOpResult::TableFull
                }
            }
            TableOp::Delete { table: 0, key } => {
                let Ok(p) = <[u8; 8]>::try_from(&key[..]) else {
                    return TableOpResult::BadEncoding;
                };
                match self.prefixes.remove(&u64::from_be_bytes(p)) {
                    Some(_) => TableOpResult::Ok,
                    None => TableOpResult::NotFound,
                }
            }
            TableOp::ReadCounter { index } => {
                let packets = match index {
                    0 => self.stats.valid,
                    1 => self.stats.unknown,
                    2 => self.stats.blocked_all,
                    _ => return TableOpResult::NotFound,
                };
                TableOpResult::Counter { packets, bytes: 0 }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv6::{Ipv6Addr, Ipv6Packet};
    use flexsfp_wire::{IpProtocol, MacAddr};

    const SUB_PREFIX: u64 = 0x2001_0db8_0001_0000;

    fn v6_frame(src_prefix: u64) -> Vec<u8> {
        let mut ip6 = vec![0u8; 40 + 8];
        {
            let mut p = Ipv6Packet::new_unchecked(&mut ip6);
            p.set_version(6);
            p.set_payload_len(8);
            p.set_next_header(IpProtocol::Udp);
            p.set_hop_limit(64);
            let mut src = [0u8; 16];
            src[..8].copy_from_slice(&src_prefix.to_be_bytes());
            src[15] = 0x42;
            p.set_src(Ipv6Addr(src));
            p.set_dst(Ipv6Addr([
                0x20, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9,
            ]));
        }
        {
            let mut u = flexsfp_wire::UdpDatagram::new_unchecked(&mut ip6[40..]);
            u.set_src_port(1000);
            u.set_dst_port(2000);
            u.set_len(8);
        }
        PacketBuilder::ethernet(MacAddr([1; 6]), MacAddr([2; 6]), EtherType::Ipv6, &ip6)
    }

    fn filter() -> Ipv6SubscriberFilter {
        let mut f = Ipv6SubscriberFilter::new();
        assert!(f.delegate(SUB_PREFIX, 1001));
        f
    }

    #[test]
    fn delegated_prefix_passes() {
        let mut f = filter();
        let mut pkt = v6_frame(SUB_PREFIX);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(f.stats.valid, 1);
    }

    #[test]
    fn unknown_prefix_dropped_strict() {
        let mut f = filter();
        let mut pkt = v6_frame(0x2001_0db8_9999_0000);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(f.stats.unknown, 1);
    }

    #[test]
    fn unknown_prefix_punt_and_permit_modes() {
        let mut f = filter();
        f.unknown_policy = UnknownPrefixPolicy::Punt;
        let mut pkt = v6_frame(0xdead_beef_0000_0000);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::ToControlPlane
        );
        f.unknown_policy = UnknownPrefixPolicy::Permit;
        let mut pkt = v6_frame(0xdead_beef_0000_0000);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(f.stats.unknown, 2);
    }

    #[test]
    fn block_all_mode() {
        let mut f = filter();
        f.block_all_v6 = true;
        let mut pkt = v6_frame(SUB_PREFIX); // even the delegated one
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(f.stats.blocked_all, 1);
    }

    #[test]
    fn ipv4_unaffected() {
        let mut f = filter();
        let mut v4 = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            0x08080808,
            1,
            2,
            b"x",
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut v4),
            Verdict::Forward
        );
        assert_eq!(f.stats.non_v6, 1);
    }

    #[test]
    fn downstream_direction_unscreened() {
        let mut f = filter();
        let mut pkt = v6_frame(0xdead_beef_0000_0000);
        assert_eq!(
            f.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(f.stats.unknown, 0);
    }

    #[test]
    fn malformed_v6_dropped() {
        let mut f = filter();
        // EtherType says IPv6 but only 10 bytes follow.
        let mut pkt = PacketBuilder::ethernet(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            EtherType::Ipv6,
            &[0x60, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        );
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
    }

    #[test]
    fn control_plane_delegation_lifecycle() {
        let mut f = Ipv6SubscriberFilter::new();
        let r = f.control_op(&TableOp::Insert {
            table: 0,
            key: SUB_PREFIX.to_be_bytes().to_vec(),
            value: 77u32.to_be_bytes().to_vec(),
        });
        assert_eq!(r, TableOpResult::Ok);
        assert_eq!(f.delegation_count(), 1);
        let mut pkt = v6_frame(SUB_PREFIX);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(
            f.control_op(&TableOp::Delete {
                table: 0,
                key: SUB_PREFIX.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        let mut pkt = v6_frame(SUB_PREFIX);
        assert_eq!(
            f.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(
            f.control_op(&TableOp::ReadCounter { index: 1 }),
            TableOpResult::Counter {
                packets: 1,
                bytes: 0
            }
        );
    }

    #[test]
    fn fits_device() {
        assert!(flexsfp_fabric::Device::mpf200t()
            .fit(Ipv6SubscriberFilter::new().resource_manifest())
            .fits());
    }
}
