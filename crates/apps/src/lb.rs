//! A Katran-style L4 load balancer at the optical boundary (§3).
//!
//! "Load balancing is another natural fit, such as hashing over packet
//! headers to distribute flows across uplinks, similar to Katran, but
//! executed directly at the optical boundary." VIP traffic is steered to
//! backends with a Maglev-style consistent-hash table (flat lookup
//! array — exactly the structure an LSRAM holds), so backend changes
//! disturb a minimal fraction of flows. Steering rewrites the
//! destination address (DNAT-style, as Katran's IPIP-encap equivalent).

use flexsfp_fabric::hash::{crc32, toeplitz_v4_4tuple, RSS_DEFAULT_KEY};
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::action::{Action, ActionEngine, ActionOutcome};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// Size of the Maglev lookup table (a prime, per the Maglev paper).
pub const TABLE_SIZE: usize = 65_537;

/// Counter indices.
pub mod counters {
    /// VIP packets steered.
    pub const STEERED: usize = 0;
    /// Non-VIP packets passed through.
    pub const PASSED: usize = 1;
    /// VIP packets dropped because no backend is healthy.
    pub const NO_BACKEND: usize = 2;
}

/// Build a Maglev lookup table mapping `TABLE_SIZE` slots onto the given
/// backends (by index). Returns an empty Vec when `backends` is empty.
pub fn maglev_table(backends: &[u32], table_size: usize) -> Vec<u32> {
    if backends.is_empty() {
        return Vec::new();
    }
    let m = table_size as u64;
    // Per-backend permutation parameters from two hashes.
    let params: Vec<(u64, u64)> = backends
        .iter()
        .map(|b| {
            let h1 = u64::from(crc32(&b.to_be_bytes()));
            let h2 = u64::from(crc32(&(b ^ 0xffff_ffff).to_be_bytes()));
            (h1 % m, h2 % (m - 1) + 1)
        })
        .collect();
    let mut next = vec![0u64; backends.len()];
    let mut entry = vec![u32::MAX; table_size];
    let mut filled = 0usize;
    while filled < table_size {
        for (i, &(offset, skip)) in params.iter().enumerate() {
            // Find this backend's next preferred empty slot.
            loop {
                let c = ((offset + next[i] * skip) % m) as usize;
                next[i] += 1;
                if entry[c] == u32::MAX {
                    entry[c] = i as u32;
                    filled += 1;
                    break;
                }
            }
            if filled == table_size {
                break;
            }
        }
    }
    entry
}

/// The L4 load balancer application.
pub struct L4LoadBalancer {
    /// The virtual IP being balanced.
    pub vip: u32,
    /// Service port on the VIP (0 = any port).
    pub vip_port: u16,
    backends: Vec<u32>,
    lookup: Vec<u32>,
    engine: ActionEngine,
    parser: Parser,
}

impl L4LoadBalancer {
    /// A balancer for `vip:vip_port` over `backends`.
    pub fn new(vip: u32, vip_port: u16, backends: Vec<u32>) -> L4LoadBalancer {
        let lookup = maglev_table(&backends, TABLE_SIZE);
        L4LoadBalancer {
            vip,
            vip_port,
            backends,
            lookup,
            engine: ActionEngine::new(4, Vec::new()),
            parser: Parser::default(),
        }
    }

    /// Current backends.
    pub fn backends(&self) -> &[u32] {
        &self.backends
    }

    /// Replace the backend set (rebuilds the Maglev table).
    pub fn set_backends(&mut self, backends: Vec<u32>) {
        self.lookup = maglev_table(&backends, TABLE_SIZE);
        self.backends = backends;
    }

    /// The backend a given 4-tuple steers to (diagnostics / tests).
    pub fn backend_for(&self, src: u32, dst: u32, sport: u16, dport: u16) -> Option<u32> {
        if self.lookup.is_empty() {
            return None;
        }
        let h = toeplitz_v4_4tuple(&RSS_DEFAULT_KEY, src, dst, sport, dport);
        let slot = (h as usize) % self.lookup.len();
        self.backends.get(self.lookup[slot] as usize).copied()
    }

    /// Read a counter.
    pub fn counter(&self, idx: usize) -> flexsfp_ppe::counters::Counter {
        self.engine.counters.get(idx)
    }
}

impl PacketProcessor for L4LoadBalancer {
    fn name(&self) -> &str {
        "l4-lb"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let Some((src, dst, _proto, sport, dport)) = parsed.five_tuple() else {
            self.engine.counters.count(counters::PASSED, packet.len());
            return Verdict::Forward;
        };
        if dst != self.vip || (self.vip_port != 0 && dport != self.vip_port) {
            self.engine.counters.count(counters::PASSED, packet.len());
            return Verdict::Forward;
        }
        let Some(backend) = self.backend_for(src, dst, sport, dport) else {
            self.engine
                .counters
                .count(counters::NO_BACKEND, packet.len());
            return Verdict::Drop;
        };
        match self
            .engine
            .apply(Action::SetIpv4Dst(backend), ctx, packet, &parsed)
        {
            ActionOutcome::Continue { .. } => {}
            ActionOutcome::Final(v) => return v,
        }
        self.engine.counters.count(counters::STEERED, packet.len());
        Verdict::Forward
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // Toeplitz tree + the 64k-entry lookup array in LSRAM
        // (65 537 × 8 b ≈ 512 kb ≈ 26 blocks).
        ResourceManifest::new(6_800, 7_900, 30, 26)
    }

    fn pipeline_depth(&self) -> u32 {
        2
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // Insert/delete backends by 4-byte address; key unused.
            TableOp::Insert {
                table: 0, value, ..
            } => {
                let Ok(bytes) = <[u8; 4]>::try_from(&value[..]) else {
                    return TableOpResult::BadEncoding;
                };
                let b = u32::from_be_bytes(bytes);
                if !self.backends.contains(&b) {
                    let mut next = self.backends.clone();
                    next.push(b);
                    self.set_backends(next);
                }
                TableOpResult::Ok
            }
            TableOp::Delete { table: 0, key } => {
                let Ok(bytes) = <[u8; 4]>::try_from(&key[..]) else {
                    return TableOpResult::BadEncoding;
                };
                let b = u32::from_be_bytes(bytes);
                let before = self.backends.len();
                let next: Vec<u32> = self.backends.iter().copied().filter(|x| *x != b).collect();
                if next.len() == before {
                    return TableOpResult::NotFound;
                }
                self.set_backends(next);
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => {
                let c = self.engine.counters.get(*index as usize);
                TableOpResult::Counter {
                    packets: c.packets,
                    bytes: c.bytes,
                }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::MacAddr;

    const VIP: u32 = 0x0a636363;
    const B1: u32 = 0x0a000001;
    const B2: u32 = 0x0a000002;
    const B3: u32 = 0x0a000003;

    fn lb() -> L4LoadBalancer {
        L4LoadBalancer::new(VIP, 80, vec![B1, B2, B3])
    }

    fn vip_frame(src: u32, sport: u16) -> Vec<u8> {
        PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            VIP,
            sport,
            80,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        )
    }

    #[test]
    fn vip_traffic_steers_to_a_backend() {
        let mut lb = lb();
        let mut pkt = vip_frame(0xc0a80001, 5000);
        assert_eq!(
            lb.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert!([B1, B2, B3].contains(&ip.dst()));
        assert!(ip.verify_checksum());
        assert_eq!(lb.counter(counters::STEERED).packets, 1);
    }

    #[test]
    fn same_flow_always_same_backend() {
        let mut lb = lb();
        let mut first = None;
        for _ in 0..10 {
            let mut pkt = vip_frame(0xc0a80001, 5000);
            lb.process(&ProcessContext::egress(), &mut pkt);
            let dst = Ipv4Packet::new_checked(&pkt[14..]).unwrap().dst();
            match first {
                None => first = Some(dst),
                Some(d) => assert_eq!(dst, d),
            }
        }
    }

    #[test]
    fn non_vip_traffic_passes() {
        let mut lb = lb();
        let mut pkt = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            0x08080808,
            5000,
            80,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        );
        let before = pkt.clone();
        assert_eq!(
            lb.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
        assert_eq!(lb.counter(counters::PASSED).packets, 1);
    }

    #[test]
    fn wrong_port_passes() {
        let mut lb = lb();
        let mut pkt = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            0xc0a80001,
            VIP,
            5000,
            8080,
            0,
            flexsfp_wire::tcp::TcpFlags::syn_only(),
            &[],
        );
        let before = pkt.clone();
        lb.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(pkt, before);
    }

    #[test]
    fn no_backends_drops_vip_traffic() {
        let mut lb = L4LoadBalancer::new(VIP, 80, vec![]);
        let mut pkt = vip_frame(1, 2);
        assert_eq!(
            lb.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Drop
        );
        assert_eq!(lb.counter(counters::NO_BACKEND).packets, 1);
    }

    #[test]
    fn maglev_balance_is_even() {
        let table = maglev_table(&[B1, B2, B3], TABLE_SIZE);
        let mut counts = [0usize; 3];
        for &e in &table {
            counts[e as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // Maglev guarantees near-perfect balance.
        assert!(max / min < 1.02, "imbalance: {counts:?}");
    }

    #[test]
    fn maglev_minimal_disruption_on_backend_loss() {
        let before = maglev_table(&[B1, B2, B3], TABLE_SIZE);
        let after = maglev_table(&[B1, B3], TABLE_SIZE);
        // Slots that pointed to the surviving backends should mostly
        // stay put: only ~1/3 of slots (B2's) must move.
        let mut moved_surviving = 0usize;
        let mut surviving = 0usize;
        for (b, a) in before.iter().zip(&after) {
            let before_backend = [B1, B2, B3][*b as usize];
            let after_backend = [B1, B3][*a as usize];
            if before_backend != B2 {
                surviving += 1;
                if before_backend != after_backend {
                    moved_surviving += 1;
                }
            }
        }
        let disruption = moved_surviving as f64 / surviving as f64;
        assert!(disruption < 0.25, "disruption {disruption:.3}");
    }

    #[test]
    fn flow_distribution_across_backends() {
        let lb = lb();
        let mut counts = std::collections::HashMap::new();
        for i in 0..3000u32 {
            let b = lb
                .backend_for(0xc0a80000 + i, VIP, 1024 + (i % 1000) as u16, 80)
                .unwrap();
            *counts.entry(b).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (_, c) in counts {
            assert!(c > 700, "uneven flow split: {c}");
        }
    }

    #[test]
    fn control_plane_backend_management() {
        let mut lb = L4LoadBalancer::new(VIP, 80, vec![B1]);
        assert_eq!(
            lb.control_op(&TableOp::Insert {
                table: 0,
                key: vec![],
                value: B2.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        assert_eq!(lb.backends(), &[B1, B2]);
        assert_eq!(
            lb.control_op(&TableOp::Delete {
                table: 0,
                key: B1.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        assert_eq!(lb.backends(), &[B2]);
        assert_eq!(
            lb.control_op(&TableOp::Delete {
                table: 0,
                key: B1.to_be_bytes().to_vec()
            }),
            TableOpResult::NotFound
        );
    }
}
