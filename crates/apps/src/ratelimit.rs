//! Per-source rate limiting (§3): "rate-limiting traffic from selected
//! sources", Nimble-style, enforced before traffic ever reaches the
//! switch.
//!
//! Each configured source prefix owns a token bucket. Packets from
//! unconfigured sources follow the default policy (forward, or a shared
//! default bucket).

use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_ppe::match_kinds::LpmTable;
use flexsfp_ppe::meter::{Color, TokenBucket};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::{PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// Counter-style statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LimiterStats {
    /// Packets passed (green).
    pub passed: u64,
    /// Packets dropped (red).
    pub dropped: u64,
    /// Packets from sources with no limit configured.
    pub unlimited: u64,
}

/// The per-source rate limiter application.
pub struct PerSourceRateLimiter {
    // prefix -> bucket index
    classifier: LpmTable<u32>,
    buckets: Vec<TokenBucket>,
    /// Statistics.
    pub stats: LimiterStats,
    parser: Parser,
}

impl Default for PerSourceRateLimiter {
    fn default() -> Self {
        Self::new()
    }
}

impl PerSourceRateLimiter {
    /// An empty limiter (everything unlimited until configured).
    pub fn new() -> PerSourceRateLimiter {
        PerSourceRateLimiter {
            classifier: LpmTable::new(),
            buckets: Vec::new(),
            stats: LimiterStats::default(),
            parser: Parser::default(),
        }
    }

    /// Limit `prefix/len` to `rate_bps` with `burst_bytes` of burst.
    /// Returns the bucket index.
    pub fn add_limit(&mut self, prefix: u32, len: u8, rate_bps: u64, burst_bytes: u64) -> usize {
        let idx = self.buckets.len();
        self.buckets.push(TokenBucket::new(rate_bps, burst_bytes));
        self.classifier.insert(prefix, len, idx as u32);
        idx
    }

    /// Number of configured limits.
    pub fn limit_count(&self) -> usize {
        self.buckets.len()
    }
}

impl PacketProcessor for PerSourceRateLimiter {
    fn name(&self) -> &str {
        "rate-limiter"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            return Verdict::Drop;
        };
        let Some(ip) = parsed.ipv4 else {
            self.stats.unlimited += 1;
            return Verdict::Forward;
        };
        let Some((_len, bucket_idx)) = self.classifier.lookup(ip.src) else {
            self.stats.unlimited += 1;
            return Verdict::Forward;
        };
        match self.buckets[bucket_idx as usize].meter(packet.len(), ctx.timestamp_ns) {
            Color::Green => {
                self.stats.passed += 1;
                Verdict::Forward
            }
            Color::Red => {
                self.stats.dropped += 1;
                Verdict::Drop
            }
        }
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // LPM classifier + one credit register pair per bucket.
        ResourceManifest::new(
            4_600 + 40 * self.buckets.len() as u64,
            5_200 + 96 * self.buckets.len() as u64,
            16 + self.buckets.len() as u64 / 4,
            2,
        )
    }

    fn pipeline_depth(&self) -> u32 {
        2
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        match op {
            // key = prefix(4) | len(1); value = rate_bps(8) | burst(8)
            TableOp::Insert {
                table: 0,
                key,
                value,
            } => {
                if key.len() != 5 || value.len() != 16 {
                    return TableOpResult::BadEncoding;
                }
                let prefix = u32::from_be_bytes(key[0..4].try_into().unwrap());
                let len = key[4];
                if len > 32 {
                    return TableOpResult::BadEncoding;
                }
                let rate = u64::from_be_bytes(value[0..8].try_into().unwrap());
                let burst = u64::from_be_bytes(value[8..16].try_into().unwrap());
                if rate < 8 || burst == 0 {
                    return TableOpResult::BadEncoding;
                }
                self.add_limit(prefix, len, rate, burst);
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => match index {
                0 => TableOpResult::Counter {
                    packets: self.stats.passed,
                    bytes: 0,
                },
                1 => TableOpResult::Counter {
                    packets: self.stats.dropped,
                    bytes: 0,
                },
                _ => TableOpResult::NotFound,
            },
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::MacAddr;

    fn frame(src: u32, len: usize) -> Vec<u8> {
        let mut f = PacketBuilder::eth_ipv4_udp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            src,
            0x08080808,
            1,
            2,
            &vec![0u8; len.saturating_sub(42)],
        );
        f.truncate(len.max(60));
        f
    }

    #[test]
    fn limited_source_is_throttled() {
        let mut rl = PerSourceRateLimiter::new();
        // 8 Mb/s = 1 MB/s, 5 kB burst on 10.0.0.0/8.
        rl.add_limit(0x0a000000, 8, 8_000_000, 5_000);
        let mut passed = 0;
        let mut dropped = 0;
        // Offer 100 × 1000 B instantly: burst allows ~5.
        for _ in 0..100 {
            let mut pkt = frame(0x0a010203, 1000);
            match rl.process(&ProcessContext::egress().at(0), &mut pkt) {
                Verdict::Forward => passed += 1,
                Verdict::Drop => dropped += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(passed, 5);
        assert_eq!(dropped, 95);
        assert_eq!(rl.stats.passed, 5);
    }

    #[test]
    fn rate_recovers_over_time() {
        let mut rl = PerSourceRateLimiter::new();
        rl.add_limit(0x0a000000, 8, 8_000_000, 1_000);
        let mut pkt = frame(0x0a000001, 1000);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Forward
        );
        let mut pkt = frame(0x0a000001, 1000);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(1), &mut pkt),
            Verdict::Drop
        );
        // After 1 ms, 1000 bytes of credit at 1 MB/s.
        let mut pkt = frame(0x0a000001, 1000);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(1_000_001), &mut pkt),
            Verdict::Forward
        );
    }

    #[test]
    fn unconfigured_sources_unlimited() {
        let mut rl = PerSourceRateLimiter::new();
        rl.add_limit(0x0a000000, 8, 8_000, 100);
        for _ in 0..50 {
            let mut pkt = frame(0xc0a80001, 1000);
            assert_eq!(
                rl.process(&ProcessContext::egress().at(0), &mut pkt),
                Verdict::Forward
            );
        }
        assert_eq!(rl.stats.unlimited, 50);
        assert_eq!(rl.stats.dropped, 0);
    }

    #[test]
    fn longest_prefix_limit_wins() {
        let mut rl = PerSourceRateLimiter::new();
        // Broad generous limit, narrow tight limit.
        rl.add_limit(0x0a000000, 8, 80_000_000, 100_000);
        rl.add_limit(0x0a0a0000, 16, 8_000, 60); // one 60B packet only
        let mut pkt = frame(0x0a0a0001, 60);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Forward
        );
        let mut pkt = frame(0x0a0a0001, 60);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Drop
        );
        // A sibling under the /8 is unaffected by the /16's exhaustion.
        let mut pkt = frame(0x0a0b0001, 60);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Forward
        );
    }

    #[test]
    fn control_plane_configuration() {
        let mut rl = PerSourceRateLimiter::new();
        let mut key = 0x0a000000u32.to_be_bytes().to_vec();
        key.push(8);
        let mut value = 8_000_000u64.to_be_bytes().to_vec();
        value.extend_from_slice(&1_000u64.to_be_bytes());
        assert_eq!(
            rl.control_op(&TableOp::Insert {
                table: 0,
                key,
                value
            }),
            TableOpResult::Ok
        );
        assert_eq!(rl.limit_count(), 1);
        let mut pkt = frame(0x0a000001, 1000);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Forward
        );
        let mut pkt = frame(0x0a000001, 1000);
        assert_eq!(
            rl.process(&ProcessContext::egress().at(0), &mut pkt),
            Verdict::Drop
        );
        // Stats via counters.
        assert_eq!(
            rl.control_op(&TableOp::ReadCounter { index: 1 }),
            TableOpResult::Counter {
                packets: 1,
                bytes: 0
            }
        );
    }

    #[test]
    fn bad_configs_rejected() {
        let mut rl = PerSourceRateLimiter::new();
        assert_eq!(
            rl.control_op(&TableOp::Insert {
                table: 0,
                key: vec![1, 2, 3],
                value: vec![0; 16]
            }),
            TableOpResult::BadEncoding
        );
        let mut key = 0u32.to_be_bytes().to_vec();
        key.push(40); // bad prefix length
        assert_eq!(
            rl.control_op(&TableOp::Insert {
                table: 0,
                key,
                value: vec![0; 16]
            }),
            TableOpResult::BadEncoding
        );
    }
}
