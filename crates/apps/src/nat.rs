//! The §5.1 case study: a static 1:1 source NAT.
//!
//! "A basic one-to-one NAT function, capable of translating source IP
//! addresses for outgoing traffic at 10 Gbps line-rate … uses a basic
//! source IP hash table to store 32,768 flows." Translation rewrites the
//! IPv4 source with the RFC 1624 incremental checksum update (IP header
//! and TCP/UDP pseudo-header), exactly like the hardware fast path. The
//! table is runtime-updatable through the control plane (table id 0;
//! keys and values are 4-byte big-endian IPv4 addresses).

use flexsfp_fabric::resources::{table1, ResourceManifest};
use flexsfp_obs::{CacheStats, FlightStamp, StageStamp};
use flexsfp_ppe::action::{Action, ActionEngine, ActionOutcome};
use flexsfp_ppe::cache::{self, FlowCache, PlanOp, PlanRecorder};
use flexsfp_ppe::parser::Parser;
use flexsfp_ppe::tables::{HashTable, TableError};
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, TableOp, TableOpResult, Verdict};

/// Counter indices exposed by the NAT.
pub mod counters {
    /// Packets translated.
    pub const TRANSLATED: usize = 0;
    /// Packets passed through untranslated (table miss).
    pub const MISSED: usize = 1;
    /// Non-IPv4 packets passed through.
    pub const NON_IP: usize = 2;
}

/// The flow capacity of the §5.1 prototype table.
pub const FLOW_CAPACITY: usize = 32_768;

/// Static 1:1 source NAT.
pub struct StaticNat {
    table: HashTable<u32, u32>,
    engine: ActionEngine,
    parser: Parser,
    /// Which direction gets translated (the paper's "outgoing traffic":
    /// edge→optical).
    pub translate_direction: Direction,
    /// Microflow action cache: the resolved rewrite + counter plan per
    /// 5-tuple, skipping the full parse and table lookup on hits. Every
    /// mapping mutation bumps its epoch, so stale plans never replay.
    cache: FlowCache,
    cache_enabled: bool,
    /// Flight-recorder stamping switch (off by default).
    flight_enabled: bool,
    /// Stamp of the most recently processed packet while stamping is on.
    last_flight: Option<FlightStamp>,
}

/// Build the NAT's two-stage stamp (match, then rewrite) under the
/// 4 + 3·stages cycle model. On a table miss only the match stage runs.
fn nat_stamp(cache_hit: bool, stage_stats: &[(u8, bool)]) -> FlightStamp {
    FlightStamp {
        cache_hit,
        stages: stage_stats
            .iter()
            .enumerate()
            .map(|(i, &(stage, hit))| StageStamp {
                stage,
                hit,
                start_cycle: 4 + 3 * i as u32,
                end_cycle: 4 + 3 * (i as u32 + 1),
            })
            .collect(),
    }
}

impl Default for StaticNat {
    fn default() -> Self {
        Self::new()
    }
}

impl StaticNat {
    /// A NAT with the prototype's 32 768-flow table.
    pub fn new() -> StaticNat {
        Self::with_capacity(FLOW_CAPACITY)
    }

    /// A NAT with a custom table capacity (the table-sizing ablation).
    /// The microflow cache is sized to the table: a NAT provisioned for
    /// N subscriber flows must not thrash a fixed 4 k-entry cache the
    /// moment the live flow set outgrows it.
    pub fn with_capacity(capacity: usize) -> StaticNat {
        let table = HashTable::with_capacity(capacity);
        let cache = FlowCache::new(table.capacity());
        StaticNat {
            table,
            engine: ActionEngine::new(4, Vec::new()),
            parser: Parser::default(),
            translate_direction: Direction::EdgeToOptical,
            cache,
            cache_enabled: false,
            flight_enabled: false,
            last_flight: None,
        }
    }

    /// Install a translation `private → public`.
    pub fn add_mapping(&mut self, private: u32, public: u32) -> Result<(), TableError> {
        self.cache.bump_epoch();
        self.table.insert(private, public)
    }

    /// Remove a translation.
    pub fn remove_mapping(&mut self, private: u32) -> Option<u32> {
        self.cache.bump_epoch();
        self.table.remove(&private)
    }

    /// Installed mappings.
    pub fn mapping_count(&self) -> usize {
        self.table.len()
    }

    /// Read a counter.
    pub fn counter(&self, idx: usize) -> flexsfp_ppe::counters::Counter {
        self.engine.counters.get(idx)
    }

    /// The full parse → lookup → rewrite path, optionally recording a
    /// replay plan for the flow cache.
    fn process_slow(
        &mut self,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
        mut rec: Option<&mut PlanRecorder>,
    ) -> Verdict {
        let Some(parsed) = self.parser.parse(packet) else {
            if let Some(r) = rec {
                r.invalidate();
            }
            if self.flight_enabled {
                // Parser rejected it before the match stage: empty stamp.
                self.last_flight = Some(nat_stamp(false, &[]));
            }
            return Verdict::Drop;
        };
        let Some(ip) = parsed.ipv4 else {
            if let Some(r) = rec.as_deref_mut() {
                r.stage_stat(0, false);
                r.push(PlanOp::Count {
                    index: counters::NON_IP as u32,
                });
            }
            self.engine.counters.count(counters::NON_IP, packet.len());
            if self.flight_enabled {
                // No IPv4 source to match on: the match stage missed.
                self.last_flight = Some(nat_stamp(false, &[(0, false)]));
            }
            return Verdict::Forward;
        };
        match self.table.lookup(&ip.src) {
            Some(public) => {
                if let Some(r) = rec.as_deref_mut() {
                    r.stage_stat(0, true);
                    r.stage_stat(1, true);
                    cache::compile_action(&Action::SetIpv4Src(public), packet, &parsed, r);
                    r.push(PlanOp::Count {
                        index: counters::TRANSLATED as u32,
                    });
                }
                if self.flight_enabled {
                    self.last_flight = Some(nat_stamp(false, &[(0, true), (1, true)]));
                }
                match self
                    .engine
                    .apply(Action::SetIpv4Src(public), ctx, packet, &parsed)
                {
                    ActionOutcome::Continue { .. } => {}
                    ActionOutcome::Final(v) => return v,
                }
                self.engine
                    .counters
                    .count(counters::TRANSLATED, packet.len());
            }
            None => {
                if let Some(r) = rec {
                    r.stage_stat(0, false);
                    r.push(PlanOp::Count {
                        index: counters::MISSED as u32,
                    });
                }
                self.engine.counters.count(counters::MISSED, packet.len());
                if self.flight_enabled {
                    // Only the match stage ran; the rewrite was skipped.
                    self.last_flight = Some(nat_stamp(false, &[(0, false)]));
                }
            }
        }
        Verdict::Forward
    }
}

impl StaticNat {
    /// `process` with a caller-supplied key hint: a dispatcher that
    /// already extracted this frame's
    /// [`FlowKey`](flexsfp_ppe::cache::FlowKey) passes it through so
    /// the cache lookup skips the re-parse.
    fn process_hinted(
        &mut self,
        ctx: &ProcessContext,
        packet: &mut Vec<u8>,
        hint: flexsfp_ppe::cache::KeyHint,
    ) -> Verdict {
        if ctx.direction != self.translate_direction {
            if self.flight_enabled {
                // Bypassed the pipeline entirely: empty stage list.
                self.last_flight = Some(nat_stamp(false, &[]));
            }
            return Verdict::Forward;
        }
        if self.cache_enabled {
            if let Some(key) = hint.resolve(packet, ctx.direction) {
                if let Some(plan) = self.cache.lookup(&key) {
                    // Fast path: shallow key parse only — no parser
                    // walk, no table lookup, no checksum recompute.
                    if self.flight_enabled {
                        // Replay the recorded stage footprint so the
                        // postcard matches the slow path bit-for-bit
                        // (only `cache_hit` tells the paths apart).
                        self.last_flight = Some(nat_stamp(true, &plan.stage_stats));
                    }
                    return cache::replay(plan, packet, &mut self.engine.counters);
                }
                let mut rec = PlanRecorder::new();
                let verdict = self.process_slow(ctx, packet, Some(&mut rec));
                if let Some(plan) = rec.finish(verdict) {
                    self.cache.insert(key, plan);
                }
                return verdict;
            }
        }
        self.process_slow(ctx, packet, None)
    }
}

impl PacketProcessor for StaticNat {
    fn name(&self) -> &str {
        "nat"
    }

    fn process(&mut self, ctx: &ProcessContext, packet: &mut Vec<u8>) -> Verdict {
        self.process_hinted(ctx, packet, flexsfp_ppe::cache::KeyHint::Unknown)
    }

    fn process_batch(&mut self, batch: &mut [flexsfp_ppe::engine::BatchPacket]) {
        // Honor each slot's pre-parsed key hint (single-parse path).
        for slot in batch {
            slot.verdict = self.process_hinted(&slot.ctx, &mut slot.frame, slot.key);
        }
    }

    fn set_flow_cache(&mut self, enabled: bool) -> bool {
        self.cache_enabled = enabled;
        true
    }

    fn set_flight_recording(&mut self, enabled: bool) -> bool {
        self.flight_enabled = enabled;
        if !enabled {
            self.last_flight = None;
        }
        true
    }

    fn flight_stamp(&self) -> Option<FlightStamp> {
        self.last_flight.clone()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn cache_occupancy(&self) -> Option<u64> {
        Some(self.cache.resident() as u64)
    }

    fn table_stats(&self) -> Option<flexsfp_obs::TableTelemetry> {
        let s = self.table.stats();
        Some(flexsfp_obs::TableTelemetry {
            capacity: self.table.capacity() as u64,
            occupied: self.table.len() as u64,
            hits: s.hits,
            misses: s.misses,
            insert_failures: s.insert_failures,
        })
    }

    fn resource_manifest(&self) -> ResourceManifest {
        // The calibrated synthesis result from Table 1 ("NAT app" row)
        // for the prototype capacity; other capacities scale the LSRAM
        // share via the memory planner.
        if self.table.capacity() == FLOW_CAPACITY {
            table1::NAT_APP
        } else {
            let mem = flexsfp_fabric::sram::MemoryPlanner::plan(&[
                flexsfp_fabric::sram::TableShape::new(self.table.capacity() as u64, 96),
            ]);
            ResourceManifest::new(table1::NAT_APP.lut4, table1::NAT_APP.ff, mem.usram + 36, 0)
                + ResourceManifest::new(0, 0, 0, mem.lsram)
        }
    }

    fn pipeline_depth(&self) -> u32 {
        2 // match stage + rewrite stage
    }

    fn control_op(&mut self, op: &TableOp) -> TableOpResult {
        fn ip_key(k: &[u8]) -> Option<u32> {
            Some(u32::from_be_bytes(k.try_into().ok()?))
        }
        match op {
            TableOp::Insert {
                table: 0,
                key,
                value,
            } => {
                let (Some(k), Some(v)) = (ip_key(key), ip_key(value)) else {
                    return TableOpResult::BadEncoding;
                };
                match self.add_mapping(k, v) {
                    Ok(()) => TableOpResult::Ok,
                    Err(TableError::BucketFull) => TableOpResult::TableFull,
                }
            }
            TableOp::Delete { table: 0, key } => {
                let Some(k) = ip_key(key) else {
                    return TableOpResult::BadEncoding;
                };
                match self.remove_mapping(k) {
                    Some(_) => TableOpResult::Ok,
                    None => TableOpResult::NotFound,
                }
            }
            TableOp::Read { table: 0, key } => {
                let Some(k) = ip_key(key) else {
                    return TableOpResult::BadEncoding;
                };
                match self.table.peek(&k) {
                    Some(v) => TableOpResult::Value(v.to_be_bytes().to_vec()),
                    None => TableOpResult::NotFound,
                }
            }
            TableOp::Clear { table: 0 } => {
                self.cache.bump_epoch();
                self.table.clear();
                TableOpResult::Ok
            }
            TableOp::ReadCounter { index } => {
                let c = self.engine.counters.get(*index as usize);
                TableOpResult::Counter {
                    packets: c.packets,
                    bytes: c.bytes,
                }
            }
            _ => TableOpResult::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::builder::PacketBuilder;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::tcp::TcpFlags;
    use flexsfp_wire::udp::UdpDatagram;
    use flexsfp_wire::{MacAddr, TcpSegment};

    const PRIVATE: u32 = 0xc0a80042; // 192.168.0.66
    const PUBLIC: u32 = 0x650a0001; // 101.10.0.1
    const DST: u32 = 0x08080808;

    fn udp_frame(src: u32) -> Vec<u8> {
        PacketBuilder::eth_ipv4_udp(MacAddr([1; 6]), MacAddr([2; 6]), src, DST, 4000, 80, b"req")
    }

    fn nat_with_mapping() -> StaticNat {
        let mut n = StaticNat::new();
        n.add_mapping(PRIVATE, PUBLIC).unwrap();
        n
    }

    #[test]
    fn translates_mapped_source_udp() {
        let mut n = nat_with_mapping();
        let mut pkt = udp_frame(PRIVATE);
        assert_eq!(
            n.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), PUBLIC);
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum_v4(PUBLIC, DST));
        assert_eq!(n.counter(counters::TRANSLATED).packets, 1);
    }

    #[test]
    fn translates_tcp_with_l4_checksum() {
        let mut n = nat_with_mapping();
        let mut pkt = PacketBuilder::eth_ipv4_tcp(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            PRIVATE,
            DST,
            4000,
            443,
            1,
            TcpFlags::syn_only(),
            &[],
        );
        n.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), PUBLIC);
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v4(PUBLIC, DST));
    }

    #[test]
    fn unmapped_source_passes_untouched() {
        let mut n = nat_with_mapping();
        let mut pkt = udp_frame(0x0a0b0c0d);
        let before = pkt.clone();
        assert_eq!(
            n.process(&ProcessContext::egress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
        assert_eq!(n.counter(counters::MISSED).packets, 1);
    }

    #[test]
    fn reverse_direction_not_translated() {
        let mut n = nat_with_mapping();
        let mut pkt = udp_frame(PRIVATE);
        let before = pkt.clone();
        assert_eq!(
            n.process(&ProcessContext::ingress(), &mut pkt),
            Verdict::Forward
        );
        assert_eq!(pkt, before);
    }

    #[test]
    fn non_ip_counted_and_forwarded() {
        let mut n = nat_with_mapping();
        let mut arp = PacketBuilder::ethernet(
            MacAddr::BROADCAST,
            MacAddr([2; 6]),
            flexsfp_wire::EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            n.process(&ProcessContext::egress(), &mut arp),
            Verdict::Forward
        );
        assert_eq!(n.counter(counters::NON_IP).packets, 1);
    }

    #[test]
    fn manifest_matches_table1_row() {
        let n = StaticNat::new();
        assert_eq!(n.resource_manifest(), table1::NAT_APP);
        assert_eq!(n.resource_manifest().lsram, 160);
    }

    #[test]
    fn smaller_tables_use_less_lsram() {
        let small = StaticNat::with_capacity(1024);
        assert!(small.resource_manifest().lsram < 160);
        let big = StaticNat::with_capacity(65_536);
        assert!(big.resource_manifest().lsram > 160);
    }

    #[test]
    fn control_plane_inserts_and_reads() {
        let mut n = StaticNat::new();
        let r = n.control_op(&TableOp::Insert {
            table: 0,
            key: PRIVATE.to_be_bytes().to_vec(),
            value: PUBLIC.to_be_bytes().to_vec(),
        });
        assert_eq!(r, TableOpResult::Ok);
        assert_eq!(
            n.control_op(&TableOp::Read {
                table: 0,
                key: PRIVATE.to_be_bytes().to_vec()
            }),
            TableOpResult::Value(PUBLIC.to_be_bytes().to_vec())
        );
        // The dataplane sees the runtime update immediately.
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), PUBLIC);
        // Delete and verify miss.
        assert_eq!(
            n.control_op(&TableOp::Delete {
                table: 0,
                key: PRIVATE.to_be_bytes().to_vec()
            }),
            TableOpResult::Ok
        );
        assert_eq!(
            n.control_op(&TableOp::Read {
                table: 0,
                key: PRIVATE.to_be_bytes().to_vec()
            }),
            TableOpResult::NotFound
        );
    }

    #[test]
    fn control_plane_counter_read() {
        let mut n = nat_with_mapping();
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        match n.control_op(&TableOp::ReadCounter { index: 0 }) {
            TableOpResult::Counter { packets, bytes } => {
                assert_eq!(packets, 1);
                assert!(bytes > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_encodings_rejected() {
        let mut n = StaticNat::new();
        assert_eq!(
            n.control_op(&TableOp::Insert {
                table: 0,
                key: vec![1, 2],
                value: vec![3, 4, 5, 6]
            }),
            TableOpResult::BadEncoding
        );
        assert_eq!(
            n.control_op(&TableOp::Insert {
                table: 9,
                key: vec![0; 4],
                value: vec![0; 4]
            }),
            TableOpResult::Unsupported
        );
    }

    #[test]
    fn flow_cache_parity_udp_and_tcp() {
        let mut cached = nat_with_mapping();
        let mut uncached = nat_with_mapping();
        assert!(cached.set_flow_cache(true));
        for _round in 0..3 {
            for src in [PRIVATE, 0x0a0b_0c0d] {
                let mut a = udp_frame(src);
                let mut b = a.clone();
                assert_eq!(
                    cached.process(&ProcessContext::egress(), &mut a),
                    uncached.process(&ProcessContext::egress(), &mut b),
                );
                assert_eq!(a, b, "cache-on bytes must equal cache-off bytes");
                let mut a = PacketBuilder::eth_ipv4_tcp(
                    MacAddr([1; 6]),
                    MacAddr([2; 6]),
                    src,
                    DST,
                    4000,
                    443,
                    7,
                    TcpFlags::syn_only(),
                    b"hello",
                );
                let mut b = a.clone();
                cached.process(&ProcessContext::egress(), &mut a);
                uncached.process(&ProcessContext::egress(), &mut b);
                assert_eq!(a, b);
            }
        }
        for idx in [counters::TRANSLATED, counters::MISSED, counters::NON_IP] {
            assert_eq!(cached.counter(idx), uncached.counter(idx));
        }
        // 4 flows × 3 rounds: 4 misses then 8 hits.
        let s = cached.cache_stats().unwrap();
        assert_eq!((s.hits, s.misses), (8, 4));
        assert_eq!(uncached.cache_stats().unwrap().lookups(), 0);
    }

    #[test]
    fn mapping_mutations_invalidate_cached_plans() {
        let mut n = nat_with_mapping();
        n.set_flow_cache(true);
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(n.cache_stats().unwrap().hits, 1);
        // Remap through the control plane: the cached plan is stale.
        let new_public = 0x650a_00ffu32;
        assert_eq!(
            n.control_op(&TableOp::Insert {
                table: 0,
                key: PRIVATE.to_be_bytes().to_vec(),
                value: new_public.to_be_bytes().to_vec(),
            }),
            TableOpResult::Ok
        );
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
        assert_eq!(ip.src(), new_public, "stale plan must not replay");
        assert!(ip.verify_checksum());
        assert_eq!(n.cache_stats().unwrap().invalidations, 1);
        // Removal invalidates too: traffic falls back to MISSED.
        n.remove_mapping(PRIVATE);
        let mut pkt = udp_frame(PRIVATE);
        let before = pkt.clone();
        n.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(pkt, before);
        assert_eq!(n.counter(counters::MISSED).packets, 1);
    }

    #[test]
    fn reverse_direction_bypasses_cache() {
        let mut n = nat_with_mapping();
        n.set_flow_cache(true);
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::ingress(), &mut pkt);
        assert_eq!(n.cache_stats().unwrap().lookups(), 0);
    }

    #[test]
    fn table_telemetry_and_cache_occupancy_exported() {
        let mut n = nat_with_mapping();
        n.set_flow_cache(true);
        let t = n.table_stats().unwrap();
        assert_eq!(t.capacity, FLOW_CAPACITY as u64);
        assert_eq!(t.occupied, 1);
        assert!((t.load_factor() - 1.0 / FLOW_CAPACITY as f64).abs() < 1e-15);
        assert_eq!(n.cache_occupancy(), Some(0));
        // One translated packet: a table hit and a recorded plan.
        let mut pkt = udp_frame(PRIVATE);
        n.process(&ProcessContext::egress(), &mut pkt);
        let t = n.table_stats().unwrap();
        assert_eq!((t.hits, t.misses), (1, 0));
        assert_eq!(n.cache_occupancy(), Some(1));
        // A miss flows through too.
        let mut pkt = udp_frame(0x0102_0304);
        n.process(&ProcessContext::egress(), &mut pkt);
        assert_eq!(n.table_stats().unwrap().misses, 1);
    }

    #[test]
    fn population_at_prototype_scale() {
        // Install ~16k mappings (50% load) and translate a sample.
        let mut n = StaticNat::new();
        let mut installed = Vec::new();
        for i in 0..16_384u32 {
            let private = 0x0a100000 + i;
            let public = 0x65000000 + i;
            if n.add_mapping(private, public).is_ok() {
                installed.push((private, public));
            }
        }
        assert!(installed.len() > 15_500, "installed {}", installed.len());
        for &(private, public) in installed.iter().step_by(1000) {
            let mut pkt = udp_frame(private);
            n.process(&ProcessContext::egress(), &mut pkt);
            let ip = Ipv4Packet::new_checked(&pkt[14..]).unwrap();
            assert_eq!(ip.src(), public);
            assert!(ip.verify_checksum());
        }
    }
}
