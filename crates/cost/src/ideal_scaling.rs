//! The ideal-scaling normalization rule.
//!
//! "Drawing inspiration from [Of Apples and Oranges, HotNets '23] …
//! Table 3 normalizes both capital expense and peak board power to a
//! 10 Gb/s slice" (§5.2): divide by the device's line capacity and
//! multiply by 10 G. The rule is deliberately generous to big devices
//! (it assumes perfect slicing), which makes FlexSFP's win conservative.

/// An inclusive numeric range (costs and powers are quoted as bands).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Range {
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

flexsfp_obs::impl_json_struct!(Range { min, max });

impl Range {
    /// A range.
    pub const fn new(min: f64, max: f64) -> Range {
        Range { min, max }
    }

    /// A degenerate single-value range.
    pub const fn exact(v: f64) -> Range {
        Range { min: v, max: v }
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        (self.min + self.max) / 2.0
    }

    /// Scale both ends.
    pub fn scaled(&self, k: f64) -> Range {
        Range {
            min: self.min * k,
            max: self.max * k,
        }
    }

    /// True when `v` falls inside (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }

    /// True when the two ranges overlap.
    pub fn overlaps(&self, other: &Range) -> bool {
        self.min <= other.max && other.min <= self.max
    }

    /// Format as "a-b" (or "a" when exact), trimming trailing zeros.
    pub fn fmt_band(&self, digits: usize) -> String {
        if (self.max - self.min).abs() < f64::EPSILON {
            format!("{:.*}", digits, self.min)
        } else {
            format!("{:.*}-{:.*}", digits, self.min, digits, self.max)
        }
    }
}

/// Normalize a raw quantity for a device of `capacity_gbps` to a
/// 10 Gb/s slice.
pub fn per_10g(raw: Range, capacity_gbps: f64) -> Range {
    assert!(capacity_gbps > 0.0);
    raw.scaled(10.0 / capacity_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_arithmetic() {
        // A $2000, 100 G device is $200 per 10 G slice.
        let r = per_10g(Range::exact(2_000.0), 100.0);
        assert_eq!(r.min, 200.0);
        assert_eq!(r.max, 200.0);
        // A 10 G device normalizes to itself.
        let same = per_10g(Range::new(250.0, 300.0), 10.0);
        assert_eq!(same, Range::new(250.0, 300.0));
    }

    #[test]
    fn range_helpers() {
        let r = Range::new(1.0, 3.0);
        assert_eq!(r.mid(), 2.0);
        assert!(r.contains(1.0));
        assert!(r.contains(3.0));
        assert!(!r.contains(3.01));
        assert!(r.overlaps(&Range::new(2.5, 9.0)));
        assert!(!r.overlaps(&Range::new(3.5, 9.0)));
        assert_eq!(r.fmt_band(0), "1-3");
        assert_eq!(Range::exact(1.5).fmt_band(1), "1.5");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        per_10g(Range::exact(1.0), 0.0);
    }
}
