//! Table 2: published FPGA network functions normalized to 4-input
//! logic-element equivalents, fit-checked against the FlexSFP's MPF200T.
//!
//! "We report four FPGA implementations of network functions found in
//! literature to check whether they could potentially or not fit inside
//! the FlexSFP itself" (§5.1). Normalization: 1 LUT6 ≈ 1.6 LE,
//! 1 ALM ≈ 2 LE.

use flexsfp_fabric::resources::{normalize, Device};

/// Vendor logic unit a design was reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LogicUnit {
    /// Xilinx 6-input LUTs.
    Lut6,
    /// Intel adaptive logic modules.
    Alm,
    /// Already in 4-input LEs.
    Le,
}

/// One published design (a Table 2 row).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PublishedDesign {
    /// Design name.
    pub name: String,
    /// Reported logic count in `unit`s.
    pub logic: u64,
    /// Unit of `logic`.
    pub unit: LogicUnit,
    /// Block RAM in kilobits.
    pub bram_kbits: u64,
}

impl PublishedDesign {
    /// Logic in 4-input LE equivalents.
    pub fn logic_le(&self) -> u64 {
        match self.unit {
            LogicUnit::Lut6 => normalize::lut6_to_le(self.logic),
            LogicUnit::Alm => normalize::alm_to_le(self.logic),
            LogicUnit::Le => self.logic,
        }
    }
}

/// Fit assessment of a design against a device.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignFit {
    /// Design name.
    pub name: String,
    /// Logic in LE.
    pub logic_le: u64,
    /// BRAM kbits.
    pub bram_kbits: u64,
    /// Logic fits the device.
    pub logic_fits: bool,
    /// BRAM fits the device.
    pub bram_fits: bool,
}

flexsfp_obs::impl_json_struct!(DesignFit {
    name,
    logic_le,
    bram_kbits,
    logic_fits,
    bram_fits,
});

impl DesignFit {
    /// Fits in both dimensions.
    pub fn fits(&self) -> bool {
        self.logic_fits && self.bram_fits
    }
}

/// The Table 2 rows.
pub fn published_designs() -> Vec<PublishedDesign> {
    vec![
        PublishedDesign {
            name: "FlowBlaze (1 stage)".into(),
            logic: 71_712,
            unit: LogicUnit::Lut6,
            bram_kbits: 14_148,
        },
        PublishedDesign {
            name: "Pigasus".into(),
            logic: 207_960,
            unit: LogicUnit::Alm,
            bram_kbits: 64_400,
        },
        PublishedDesign {
            name: "hXDP (1 core)".into(),
            logic: 68_689,
            unit: LogicUnit::Lut6,
            bram_kbits: 1_799,
        },
        PublishedDesign {
            name: "ClickNP IPSec GW".into(),
            logic: 242_592,
            unit: LogicUnit::Lut6,
            bram_kbits: 39_161,
        },
    ]
}

/// Fit-check each design against `device`.
pub fn fit_check(device: &Device) -> Vec<DesignFit> {
    published_designs()
        .into_iter()
        .map(|d| {
            let le = d.logic_le();
            DesignFit {
                logic_fits: le <= device.logic_elements,
                bram_fits: d.bram_kbits <= device.bram_kbits,
                name: d.name,
                logic_le: le,
                bram_kbits: d.bram_kbits,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_les_match_table2() {
        let designs = published_designs();
        // Table 2 quotes ≈115k / ≈416k / ≈109k / ≈388k LE.
        let le: Vec<u64> = designs.iter().map(|d| d.logic_le()).collect();
        assert!((114_000..=116_000).contains(&le[0]), "FlowBlaze {le:?}");
        assert!((415_000..=417_000).contains(&le[1]), "Pigasus {le:?}");
        assert!((109_000..=110_500).contains(&le[2]), "hXDP {le:?}");
        assert!((387_000..=389_000).contains(&le[3]), "ClickNP {le:?}");
    }

    #[test]
    fn fit_verdicts_against_mpf200t() {
        let fits = fit_check(&Device::mpf200t());
        let by_name = |n: &str| fits.iter().find(|f| f.name.starts_with(n)).unwrap();
        // hXDP (1 core) is the only design that fits outright — the
        // order-of-magnitude viability argument of §5.1.
        let hxdp = by_name("hXDP");
        assert!(hxdp.fits(), "{hxdp:?}");
        // FlowBlaze's logic fits, but one stage already exceeds the
        // 13.3 Mb of BRAM.
        let fb = by_name("FlowBlaze");
        assert!(fb.logic_fits);
        assert!(!fb.bram_fits);
        // Pigasus and ClickNP exceed the fabric outright.
        assert!(!by_name("Pigasus").logic_fits);
        assert!(!by_name("ClickNP").logic_fits);
    }

    #[test]
    fn le_unit_passthrough() {
        let d = PublishedDesign {
            name: "x".into(),
            logic: 1234,
            unit: LogicUnit::Le,
            bram_kbits: 0,
        };
        assert_eq!(d.logic_le(), 1234);
    }
}
