//! # flexsfp-cost
//!
//! The economics layer behind the paper's §5.2 cost analysis:
//!
//! * [`ideal_scaling`] — the Sadok et al. "ideal scaling" rule that
//!   normalizes capital cost and peak power to a 10 Gb/s slice;
//! * [`catalog`] — the solutions of Table 3 (BlueField-2 DPU, many-core
//!   SmartNICs, FPGA SmartNICs, FlexSFP) with raw prices/power and
//!   their normalized columns;
//! * [`bom`] — the FlexSFP bill of materials underlying the $250–300
//!   estimate;
//! * [`designs`] — the published FPGA designs of Table 2, normalized to
//!   4-input logic-element equivalents and fit-checked against the
//!   MPF200T.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bom;
pub mod catalog;
pub mod designs;
pub mod ideal_scaling;

pub use bom::FlexSfpBom;
pub use catalog::{solutions, Solution};
pub use designs::{published_designs, DesignFit, PublishedDesign};
pub use ideal_scaling::{per_10g, Range};
