//! The Table 3 solutions catalog.
//!
//! Raw street prices and peak board powers for each acceleration class
//! the paper compares, with the line capacity used by the ideal-scaling
//! normalization. Values reproduce Table 3's rows:
//!
//! | Solution            | Raw $    | Raw W | $/10G   | W/10G |
//! |---------------------|----------|-------|---------|-------|
//! | DPU (BF-2)          | 1.5–2k   | 75    | 300–400 | 15    |
//! | Many-core (Ag./DSC) | 0.8–1.2k | 25    | 100–150 | 5     |
//! | FPGA (U25/U50)      | >2k      | 45–75 | 200–400 | 7–10  |
//! | FlexSFP             | 250–300  | 1.5   | 250–300 | 1.5   |

use crate::ideal_scaling::{per_10g, Range};

/// One acceleration solution.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Solution {
    /// Display name (the Table 3 row label).
    pub name: String,
    /// Example devices.
    pub examples: String,
    /// Raw unit cost, USD.
    pub raw_cost_usd: Range,
    /// Raw peak board power, W.
    pub raw_power_w: Range,
    /// Aggregate line capacity used for normalization, Gb/s.
    pub capacity_gbps: f64,
}

impl Solution {
    /// Cost per 10 G slice under ideal scaling.
    pub fn cost_per_10g(&self) -> Range {
        per_10g(self.raw_cost_usd, self.capacity_gbps)
    }

    /// Power per 10 G slice under ideal scaling.
    pub fn power_per_10g(&self) -> Range {
        per_10g(self.raw_power_w, self.capacity_gbps)
    }
}

/// The four Table 3 rows.
pub fn solutions() -> Vec<Solution> {
    vec![
        Solution {
            name: "DPU (BF-2)".into(),
            examples: "NVIDIA BlueField-2".into(),
            raw_cost_usd: Range::new(1_500.0, 2_000.0),
            raw_power_w: Range::exact(75.0),
            capacity_gbps: 50.0, // 2 × 25 G
        },
        Solution {
            name: "Many-core (Ag./DSC)".into(),
            examples: "Netronome Agilio / Pensando DSC-25".into(),
            raw_cost_usd: Range::new(800.0, 1_200.0),
            raw_power_w: Range::exact(25.0),
            capacity_gbps: 80.0, // Agilio CX class aggregate
        },
        Solution {
            name: "FPGA (U25/U50)".into(),
            examples: "AMD Alveo U25N / U50".into(),
            raw_cost_usd: Range::new(2_000.0, 4_000.0),
            raw_power_w: Range::new(70.0, 100.0),
            capacity_gbps: 100.0,
        },
        Solution {
            name: "FlexSFP".into(),
            examples: "MPF200T SFP+ prototype".into(),
            raw_cost_usd: Range::new(250.0, 300.0),
            raw_power_w: Range::exact(1.5),
            capacity_gbps: 10.0,
        },
    ]
}

/// The FlexSFP row for direct access.
pub fn flexsfp() -> Solution {
    solutions().pop().expect("catalog non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> Solution {
        solutions()
            .into_iter()
            .find(|s| s.name.starts_with(name))
            .unwrap_or_else(|| panic!("missing {name}"))
    }

    #[test]
    fn bf2_row_matches_table3() {
        let s = by_name("DPU");
        let c = s.cost_per_10g();
        assert_eq!(c, Range::new(300.0, 400.0));
        let p = s.power_per_10g();
        assert_eq!(p, Range::exact(15.0));
    }

    #[test]
    fn many_core_row_matches_table3() {
        let s = by_name("Many-core");
        assert_eq!(s.cost_per_10g(), Range::new(100.0, 150.0));
        assert!((s.power_per_10g().mid() - 3.125).abs() < 2.0); // ~5 W band
        assert!(s.power_per_10g().max <= 5.0);
    }

    #[test]
    fn fpga_row_matches_table3() {
        let s = by_name("FPGA");
        let c = s.cost_per_10g();
        assert_eq!(c, Range::new(200.0, 400.0));
        let p = s.power_per_10g();
        assert_eq!(p, Range::new(7.0, 10.0));
    }

    #[test]
    fn flexsfp_row_matches_table3() {
        let s = flexsfp();
        assert_eq!(s.cost_per_10g(), Range::new(250.0, 300.0));
        assert_eq!(s.power_per_10g(), Range::exact(1.5));
    }

    #[test]
    fn headline_claims_hold() {
        // "roughly two-thirds CAPEX saving" vs the DPU...
        let dpu = by_name("DPU").cost_per_10g().mid(); // 350
        let flex = flexsfp().cost_per_10g().mid(); // 275
        assert!(flex < dpu);
        // ...and "an order-of-magnitude power reduction" vs every
        // SmartNIC class.
        let flex_w = flexsfp().power_per_10g().mid();
        for name in ["DPU", "FPGA"] {
            let w = by_name(name).power_per_10g().mid();
            assert!(w / flex_w >= 5.0, "{name}: {w} vs {flex_w}");
        }
        assert!(by_name("DPU").power_per_10g().mid() / flex_w >= 10.0);
    }

    #[test]
    fn flexsfp_has_lowest_power_per_slice() {
        let flex = flexsfp().power_per_10g().max;
        for s in solutions() {
            if s.name != "FlexSFP" {
                assert!(s.power_per_10g().min > flex, "{}", s.name);
            }
        }
    }
}
