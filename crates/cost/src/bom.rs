//! The FlexSFP bill of materials (§5.2).
//!
//! "The most significant cost driver is the FPGA … approximately $200
//! per unit for orders of 1,000 pieces or more. A standards-compliant
//! 10GBASE-SR SFP transceiver is inexpensive at scale (~$10). The
//! remaining components … are conservatively estimated to add $50–$100
//! per unit. Summing these contributions yields a direct production cost
//! around $300 per unit, with potential reductions toward $250 as volume
//! increases."

use crate::ideal_scaling::Range;

/// One BOM line item.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BomItem {
    /// Component name.
    pub name: String,
    /// Unit cost band, USD.
    pub cost_usd: Range,
}

/// The FlexSFP prototype bill of materials.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlexSfpBom {
    /// Line items.
    pub items: Vec<BomItem>,
    /// Volume discount applied to the summed total at scale (fraction
    /// of list, e.g. 0.85 at high volume).
    pub volume_factor: Range,
}

impl Default for FlexSfpBom {
    fn default() -> Self {
        Self::prototype()
    }
}

impl FlexSfpBom {
    /// The paper's §5.2 breakdown.
    pub fn prototype() -> FlexSfpBom {
        FlexSfpBom {
            items: vec![
                BomItem {
                    name: "MPF200T-FCSG325E FPGA (1k-unit pricing)".into(),
                    cost_usd: Range::exact(200.0),
                },
                BomItem {
                    name: "10GBASE-SR optics (TOSA/ROSA, tier-1 OEM)".into(),
                    cost_usd: Range::exact(10.0),
                },
                BomItem {
                    name: "Laser driver + limiting amplifier".into(),
                    cost_usd: Range::new(8.0, 15.0),
                },
                BomItem {
                    name: "Voltage regulators + reference oscillator".into(),
                    cost_usd: Range::new(6.0, 12.0),
                },
                BomItem {
                    name: "128 Mb SPI flash".into(),
                    cost_usd: Range::new(2.0, 4.0),
                },
                BomItem {
                    name: "6-layer PCB".into(),
                    cost_usd: Range::new(10.0, 20.0),
                },
                BomItem {
                    name: "Assembly: reflow, inspection, functional test".into(),
                    cost_usd: Range::new(24.0, 49.0),
                },
            ],
            volume_factor: Range::new(0.85, 1.0),
        }
    }

    /// Summed list-price band.
    pub fn subtotal(&self) -> Range {
        let min = self.items.iter().map(|i| i.cost_usd.min).sum();
        let max = self.items.iter().map(|i| i.cost_usd.max).sum();
        Range::new(min, max)
    }

    /// Production cost band after volume scaling — the Table 3
    /// "Raw $" 250–300 band.
    pub fn unit_cost(&self) -> Range {
        let sub = self.subtotal();
        Range::new(
            sub.min * self.volume_factor.min,
            sub.max * self.volume_factor.max,
        )
    }

    /// Share of unit cost attributable to the FPGA (the paper's "most
    /// significant cost driver" claim).
    pub fn fpga_share(&self) -> f64 {
        let fpga = self
            .items
            .iter()
            .find(|i| i.name.contains("FPGA"))
            .map(|i| i.cost_usd.mid())
            .unwrap_or(0.0);
        fpga / self.subtotal().mid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_lands_in_paper_band() {
        let bom = FlexSfpBom::prototype();
        let cost = bom.unit_cost();
        // $250–300 with volume effects (allowing the conservative ends).
        assert!(cost.min >= 215.0 && cost.min <= 260.0, "{cost:?}");
        assert!(cost.max >= 295.0 && cost.max <= 315.0, "{cost:?}");
        // "Around $300 per unit" at list.
        assert!((bom.subtotal().max - 310.0).abs() <= 10.0);
    }

    #[test]
    fn non_fpga_extras_in_50_to_100_band() {
        let bom = FlexSfpBom::prototype();
        let extras: Range = {
            let items: Vec<_> = bom
                .items
                .iter()
                .filter(|i| !i.name.contains("FPGA") && !i.name.contains("10GBASE"))
                .collect();
            Range::new(
                items.iter().map(|i| i.cost_usd.min).sum(),
                items.iter().map(|i| i.cost_usd.max).sum(),
            )
        };
        assert!(extras.min >= 50.0 && extras.max <= 100.0, "{extras:?}");
    }

    #[test]
    fn fpga_is_dominant_cost() {
        let bom = FlexSfpBom::prototype();
        assert!(bom.fpga_share() > 0.6, "{}", bom.fpga_share());
    }

    #[test]
    fn bom_matches_catalog_row() {
        let bom_cost = FlexSfpBom::prototype().unit_cost();
        let catalog = crate::catalog::flexsfp().raw_cost_usd;
        assert!(bom_cost.overlaps(&catalog));
    }
}
