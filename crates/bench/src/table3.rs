//! Table 3: raw and ideal-scaled cost/power per 10 Gb/s.

use crate::render;
use flexsfp_cost::catalog::{solutions, Solution};
use flexsfp_cost::ideal_scaling::Range;

/// One rendered row.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Row {
    /// Solution name.
    pub name: String,
    /// Raw cost band, USD.
    pub raw_cost: Range,
    /// Raw power band, W.
    pub raw_power: Range,
    /// Cost per 10 G slice.
    pub cost_per_10g: Range,
    /// Power per 10 G slice.
    pub power_per_10g: Range,
}

flexsfp_obs::impl_json_struct!(Row {
    name,
    raw_cost,
    raw_power,
    cost_per_10g,
    power_per_10g
});

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Table rows.
    pub rows: Vec<Row>,
}

flexsfp_obs::impl_json_struct!(Report { rows });

/// Regenerate Table 3.
pub fn run() -> Report {
    let rows = solutions()
        .into_iter()
        .map(|s: Solution| Row {
            cost_per_10g: s.cost_per_10g(),
            power_per_10g: s.power_per_10g(),
            name: s.name,
            raw_cost: s.raw_cost_usd,
            raw_power: s.raw_power_w,
        })
        .collect();
    Report { rows }
}

/// Render in the paper's layout.
pub fn render(r: &Report) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                row.raw_cost.fmt_band(0),
                row.raw_power.fmt_band(1),
                row.cost_per_10g.fmt_band(0),
                row.power_per_10g.fmt_band(1),
            ]
        })
        .collect();
    format!(
        "Table 3: Raw and ideal-scaled cost/power (per 10 Gb/s)\n{}",
        render::table(&["Solution", "Raw $", "Raw W", "$/10G", "W/10G"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_in_paper_order() {
        let r = run();
        let names: Vec<&str> = r.rows.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "DPU (BF-2)",
                "Many-core (Ag./DSC)",
                "FPGA (U25/U50)",
                "FlexSFP"
            ]
        );
    }

    #[test]
    fn flexsfp_row_values() {
        let r = run();
        let flex = r.rows.last().unwrap();
        assert_eq!(flex.cost_per_10g, Range::new(250.0, 300.0));
        assert_eq!(flex.power_per_10g, Range::exact(1.5));
    }

    #[test]
    fn render_contains_key_bands() {
        let text = render(&run());
        assert!(text.contains("300-400"), "{text}");
        assert!(text.contains("250-300"));
        assert!(text.contains("1.5"));
        assert!(text.contains("15.0"));
    }

    #[test]
    fn shape_flexsfp_wins_power_dpu_wins_nothing() {
        // The qualitative claims the table supports.
        let r = run();
        let flex = r.rows.last().unwrap();
        for row in &r.rows[..3] {
            assert!(
                row.power_per_10g.min > flex.power_per_10g.max,
                "{}",
                row.name
            );
        }
        // FlexSFP's cost is competitive with the DPU band, not with the
        // many-core band — exactly what the paper concedes.
        let dpu = &r.rows[0];
        assert!(flex.cost_per_10g.max <= dpu.cost_per_10g.min + 50.0);
        let many = &r.rows[1];
        assert!(many.cost_per_10g.max < flex.cost_per_10g.min + 100.0);
    }
}
